#include "campaign/campaign.hh"

#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "campaign/stitch.hh"
#include "store/result_store.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace campaign {

namespace {

std::string
readFileText(const std::string &path, const std::string &context)
{
    std::ifstream in(path);
    if (!in) {
        fatal(context, ": cannot read '", path,
              "' (worker did not finish?); re-run the shard");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        fatal("campaign merge: cannot write '", path, "'");
    out << text;
    if (!out.flush())
        fatal("campaign merge: failed writing '", path, "'");
}

/** Pin the calling (child) process to the interleaved CPU set of one
 *  launcher slot: cpu % stride == worker % stride, stride = the
 *  concurrent worker count clamped to the online CPU count so every
 *  worker keeps at least one CPU. Best-effort: failure warns. */
void
pinToWorkerSet(std::size_t worker, std::size_t workers)
{
    long online = ::sysconf(_SC_NPROCESSORS_ONLN);
    if (online < 1 || workers == 0)
        return;
    std::size_t stride = std::min(workers, (std::size_t)online);
    cpu_set_t set;
    CPU_ZERO(&set);
    for (long cpu = 0; cpu < online && cpu < CPU_SETSIZE; ++cpu) {
        if ((std::size_t)cpu % stride == worker % stride)
            CPU_SET(cpu, &set);
    }
    if (CPU_COUNT(&set) == 0)
        return;
    if (::sched_setaffinity(0, sizeof(set), &set) != 0) {
        warn("campaign launch: sched_setaffinity failed: ",
             std::strerror(errno));
    }
}

} // namespace

std::string
campaignCacheDir(const std::string &dir)
{
    return dir + "/cache";
}

std::string
mergedDir(const std::string &dir)
{
    return dir + "/merged";
}

CampaignManifest
planCampaign(const std::string &dir, const SweepConfig &config,
             std::size_t shardCount)
{
    ShardPlan plan = makeShardPlan(config, shardCount);
    std::error_code ec;
    std::filesystem::create_directories(campaignCacheDir(dir), ec);
    if (ec) {
        fatal("campaign plan: cannot create '", dir, "': ",
              ec.message());
    }
    if (std::filesystem::exists(dir + "/campaign.json")) {
        CampaignManifest existing = loadManifest(dir);
        if (existing.fingerprint == plan.fingerprint &&
            existing.shardCount == shardCount &&
            existing.granularity == plan.runLength) {
            return existing; // identical re-plan: keep all progress
        }
        fatal("campaign plan: '", dir,
              "' already holds a different campaign (fingerprint ",
              existing.fingerprint, ", ", existing.shardCount,
              " shards vs requested ", plan.fingerprint, ", ",
              shardCount, "); use a fresh directory");
    }
    CampaignManifest manifest;
    manifest.fingerprint = plan.fingerprint;
    manifest.shardCount = shardCount;
    manifest.granularity = plan.runLength;
    for (std::size_t k = 0; k < shardCount; ++k)
        manifest.shards.push_back(
            ShardEntry{k, shardDirName(k), "pending", 0});
    saveManifest(dir, manifest);
    return manifest;
}

std::vector<EvalResult>
runShard(const std::string &dir, const SweepConfig &config,
         std::size_t shard, const ParallelSweepRunner &runner)
{
    CampaignManifest manifest = loadManifest(dir);
    if (shard >= manifest.shardCount) {
        fatal("campaign run: shard ", shard, " out of range (",
              manifest.shardCount, " shards)");
    }
    ShardPlan planned = makeShardPlan(config, manifest.shardCount);
    if (planned.fingerprint != manifest.fingerprint) {
        fatal("campaign run: sweep fingerprint ", planned.fingerprint,
              " does not match campaign fingerprint ",
              manifest.fingerprint,
              " (config edited after `campaign plan`?)");
    }
    std::string shardDir = dir + "/" + manifest.shards[shard].dir;
    std::error_code ec;
    std::filesystem::create_directories(shardDir, ec);
    if (ec) {
        fatal("campaign run: cannot create '", shardDir, "': ",
              ec.message());
    }
    // The attempt is recorded before any work so a kill at any point
    // still counts against the retry budget.
    ShardState state = loadShardState(shardDir, manifest.fingerprint);
    ++state.attempts;
    state.completed = false;
    saveShardState(shardDir, manifest.fingerprint, shard,
                   manifest.shardCount, state);

    SweepConfig shardConfig = config;
    shardConfig.outDir = shardDir;
    shardConfig.cacheDir = campaignCacheDir(dir);
    shardConfig.resume = true; // shard retries always resume
    auto rows =
        runner.runSelected(shardConfig,
                           manifest.plan().selector(shard));

    state.completed = true;
    saveShardState(shardDir, manifest.fingerprint, shard,
                   manifest.shardCount, state);
    return rows;
}

MergeSummary
mergeCampaign(const std::string &dir)
{
    CampaignManifest manifest = loadManifest(dir);
    ShardPlan plan = manifest.plan();
    MergeSummary summary;
    summary.shardCount = manifest.shardCount;

    bool haveSlots = false;
    std::size_t totalSlots = 0;
    std::map<std::size_t, std::string> journal; // slot -> raw line
    std::vector<std::vector<std::string>> jsonRows(manifest.shardCount);
    std::vector<std::vector<std::string>> csvRows(manifest.shardCount);
    std::string csvHeader;

    for (std::size_t k = 0; k < manifest.shardCount; ++k) {
        std::string shardDir = dir + "/" + manifest.shards[k].dir;
        std::string context = "campaign merge: shard " +
            std::to_string(k) + " ('" + shardDir + "')";

        store::CheckpointScan scan = store::scanCheckpoint(shardDir);
        if (!scan.headerOk) {
            fatal(context, ": checkpoint journal missing or "
                  "unreadable; run the shard first");
        }
        if (scan.format != store::kFormatVersion) {
            fatal(context, ": journal written with format ",
                  scan.format, ", this build reads format ",
                  store::kFormatVersion);
        }
        if (scan.fingerprint != manifest.fingerprint) {
            fatal(context, ": journal fingerprint ", scan.fingerprint,
                  " does not match campaign fingerprint ",
                  manifest.fingerprint);
        }
        if (!haveSlots) {
            totalSlots = scan.slots;
            haveSlots = true;
        } else if (scan.slots != totalSlots) {
            fatal(context, ": journal claims ", scan.slots,
                  " slots where other shards claim ", totalSlots);
        }
        // Within one journal a re-journaled slot resolves exactly as
        // resume replay does: the last valid entry wins.
        std::map<std::size_t, std::string> mine;
        for (auto &entry : scan.entries) {
            std::size_t owner = plan.shardOf(entry.slot);
            if (owner != k) {
                fatal(context, ": journal carries slot ", entry.slot,
                      ", which the plan assigns to shard ", owner);
            }
            mine[entry.slot] = std::move(entry.line);
        }
        std::size_t owned = plan.ownedCount(k, totalSlots);
        if (mine.size() != owned) {
            fatal(context, ": incomplete — ", mine.size(), " of ",
                  owned, " owned slots journaled; re-run the shard "
                  "(it resumes from the journal)");
        }
        for (auto &[slot, line] : mine)
            journal.emplace(slot, std::move(line));

        auto rows = splitSerializedResults(
            readFileText(shardDir + "/results.json", context),
            context);
        if (rows.size() != owned) {
            fatal(context, ": results.json holds ", rows.size(),
                  " rows for ", owned, " journaled slots (stale "
                  "artifact); re-run the shard to regenerate it");
        }
        jsonRows[k] = std::move(rows);

        CsvSplit csv = splitResultsCsv(
            readFileText(shardDir + "/results.csv", context), context);
        if (csv.rows.size() != owned) {
            fatal(context, ": results.csv holds ", csv.rows.size(),
                  " rows for ", owned, " journaled slots (stale "
                  "artifact); re-run the shard to regenerate it");
        }
        if (k == 0)
            csvHeader = std::move(csv.header);
        else if (csv.header != csvHeader)
            fatal(context, ": results.csv header differs from shard 0");
        csvRows[k] = std::move(csv.rows);

        if (!std::filesystem::exists(shardDir + "/stats.json")) {
            fatal(context, ": stats.json missing (worker did not "
                  "finish); re-run the shard");
        }
        store::StoreStats stats = store::loadStats(shardDir);
        summary.stats.cacheHits += stats.cacheHits;
        summary.stats.cacheMisses += stats.cacheMisses;
        summary.stats.cacheStores += stats.cacheStores;
        summary.stats.checkpointLoaded += stats.checkpointLoaded;
        summary.stats.checkpointComputed += stats.checkpointComputed;
    }
    if (journal.size() != totalSlots) {
        panic("campaign merge: stitched ", journal.size(),
              " slots for a sweep of ", totalSlots);
    }

    // Interleave the shard artifacts' rows back into global slot
    // order. Each shard's rows are ascending over its owned slots, so
    // walking the slot space and pulling the owner's next row aligns
    // every row with its slot without parsing any of them.
    std::vector<std::string> orderedJson;
    std::vector<std::string> orderedCsv;
    orderedJson.reserve(totalSlots);
    orderedCsv.reserve(totalSlots);
    std::vector<std::size_t> next(manifest.shardCount, 0);
    for (std::size_t slot = 0; slot < totalSlots; ++slot) {
        std::size_t k = plan.shardOf(slot);
        orderedJson.push_back(std::move(jsonRows[k][next[k]]));
        orderedCsv.push_back(std::move(csvRows[k][next[k]]));
        ++next[k];
    }

    std::string outDir = mergedDir(dir);
    store::ResultStore merged(outDir, campaignCacheDir(dir));
    {
        // The canonical journal, entries in slot order — the byte
        // sequence a single -j1 process would have journaled. One
        // buffered write: per-line flushing is for crash-durability
        // of in-flight sweeps, which a merge of finished shards
        // doesn't need.
        std::string buffer =
            store::checkpointHeaderLine(manifest.fingerprint,
                                        totalSlots) + "\n";
        for (const auto &[slot, line] : journal) {
            buffer += line;
            buffer += '\n';
        }
        writeText(outDir + "/checkpoint.jsonl", buffer);
    }
    writeText(outDir + "/results.json",
              joinSerializedResults(orderedJson));
    writeText(outDir + "/results.csv",
              joinResultsCsv(csvHeader, orderedCsv));
    merged.writeStats(summary.stats);

    for (std::size_t k = 0; k < manifest.shardCount; ++k) {
        std::string shardDir = dir + "/" + manifest.shards[k].dir;
        manifest.shards[k].status = "complete";
        manifest.shards[k].attempts =
            loadShardState(shardDir, manifest.fingerprint).attempts;
    }
    saveManifest(dir, manifest);

    summary.totalSlots = totalSlots;
    return summary;
}

bool
CampaignStatus::allComplete() const
{
    for (const auto &shard : shards)
        if (!shard.completed)
            return false;
    return true;
}

CampaignStatus
campaignStatus(const std::string &dir)
{
    CampaignStatus status;
    status.manifest = loadManifest(dir);
    ShardPlan plan = status.manifest.plan();
    status.merged =
        std::filesystem::exists(mergedDir(dir) + "/results.json");

    // Two passes: the sweep's total slot count is only known from a
    // journal header, and per-shard owned counts need it.
    std::vector<std::size_t> doneSlots(status.manifest.shardCount, 0);
    for (std::size_t k = 0; k < status.manifest.shardCount; ++k) {
        std::string shardDir =
            dir + "/" + status.manifest.shards[k].dir;
        store::CheckpointScan scan = store::scanCheckpoint(shardDir);
        if (!scan.headerOk || scan.format != store::kFormatVersion ||
            scan.fingerprint != status.manifest.fingerprint)
            continue;
        if (status.totalSlots == 0)
            status.totalSlots = scan.slots;
        std::set<std::size_t> seen;
        for (const auto &entry : scan.entries)
            if (plan.shardOf(entry.slot) == k)
                seen.insert(entry.slot);
        doneSlots[k] = seen.size();
    }
    for (std::size_t k = 0; k < status.manifest.shardCount; ++k) {
        std::string shardDir =
            dir + "/" + status.manifest.shards[k].dir;
        ShardState state =
            loadShardState(shardDir, status.manifest.fingerprint);
        ShardProgress progress;
        progress.shard = k;
        progress.attempts = state.attempts;
        progress.completed = state.completed;
        progress.doneSlots = doneSlots[k];
        progress.ownedSlots = status.totalSlots
            ? plan.ownedCount(k, status.totalSlots)
            : 0;
        progress.state = state.completed ? "complete"
            : (progress.doneSlots ? "partial" : "pending");
        status.shards.push_back(std::move(progress));
    }
    return status;
}

bool
launchCampaign(const std::string &dir, const LaunchOptions &options,
               const ShardWorker &worker)
{
    CampaignManifest manifest = loadManifest(dir);
    std::size_t nshards = manifest.shardCount;
    std::size_t workers = options.workers
        ? std::min(options.workers, nshards)
        : nshards;

    std::vector<std::size_t> queue;
    for (std::size_t k = 0; k < nshards; ++k) {
        ShardState state = loadShardState(
            dir + "/" + manifest.shards[k].dir, manifest.fingerprint);
        manifest.shards[k].attempts = state.attempts;
        if (state.completed) {
            manifest.shards[k].status = "complete";
            inform("campaign launch: shard ", k,
                   " already complete; skipping");
        } else {
            queue.push_back(k);
        }
    }
    saveManifest(dir, manifest);

    // A worker that dies before it can even bump its attempt counter
    // (exec failure, fork bomb protection, ...) must not retry
    // forever: launches this invocation count against the budget too.
    std::vector<std::uint64_t> launches(nshards, 0);
    std::vector<char> failed(nshards, 0);
    std::map<pid_t, std::size_t> running;
    bool ok = true;

    auto giveUp = [&](std::size_t shard, std::uint64_t attempts) {
        warn("campaign launch: shard ", shard, " failed after ",
             attempts, " attempts; giving up");
        failed[shard] = 1;
        ok = false;
    };

    std::size_t qi = 0;
    while (qi < queue.size() || !running.empty()) {
        while (qi < queue.size() && running.size() < workers) {
            std::size_t shard = queue[qi++];
            ++launches[shard];
            pid_t pid = ::fork();
            if (pid < 0) {
                warn("campaign launch: fork failed for shard ", shard,
                     ": ", std::strerror(errno));
                giveUp(shard, launches[shard]);
                continue;
            }
            if (pid == 0) {
                if (options.pinCpus)
                    pinToWorkerSet(shard, workers);
                int rc = 1;
                try {
                    rc = worker(shard);
                } catch (...) {
                    rc = 1;
                }
                ::_exit(rc & 0xFF);
            }
            running.emplace(pid, shard);
        }
        if (running.empty())
            break;
        int wstatus = 0;
        pid_t pid = ::waitpid(-1, &wstatus, 0);
        if (pid < 0) {
            if (errno == EINTR)
                continue;
            fatal("campaign launch: waitpid: ", std::strerror(errno));
        }
        auto it = running.find(pid);
        if (it == running.end())
            continue;
        std::size_t shard = it->second;
        running.erase(it);

        std::string shardDir = dir + "/" + manifest.shards[shard].dir;
        ShardState state =
            loadShardState(shardDir, manifest.fingerprint);
        manifest.shards[shard].attempts = state.attempts;
        bool exitOk =
            WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
        if (exitOk && state.completed) {
            manifest.shards[shard].status = "complete";
            inform("campaign launch: shard ", shard,
                   " complete (attempt ", state.attempts, ")");
        } else {
            manifest.shards[shard].status =
                state.attempts ? "partial" : "pending";
            std::uint64_t attempts =
                std::max(state.attempts, launches[shard]);
            if (attempts >= options.maxAttempts) {
                giveUp(shard, attempts);
            } else {
                warn("campaign launch: shard ", shard,
                     WIFSIGNALED(wstatus) ? " was killed (signal "
                                          : " exited (status ",
                     WIFSIGNALED(wstatus) ? WTERMSIG(wstatus)
                                          : WEXITSTATUS(wstatus),
                     "); retrying");
                queue.push_back(shard);
            }
        }
        saveManifest(dir, manifest);
    }
    return ok;
}

} // namespace campaign
} // namespace nvmexp
