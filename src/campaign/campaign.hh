/**
 * @file
 * Distributed sweep campaigns: one sweep's cross product sharded
 * across worker processes, each writing an ordinary result store,
 * then merged into one canonical store byte-identical to what a
 * single-process `--out` run of the same config would have produced.
 *
 * Lifecycle (see campaign/manifest.hh for the directory layout):
 *
 *   planCampaign   write the versioned manifest (fingerprint + shard
 *                  table); idempotent for an identical plan, fatal
 *                  for a conflicting one
 *   runShard       one worker process: resumes its shard store and
 *                  evaluates exactly the slots the ShardPlan assigns
 *                  it (safe to kill at any byte — the next attempt
 *                  resumes from the journal, exactly like --resume)
 *   mergeCampaign  validate every shard (fingerprint, slot coverage,
 *                  artifact consistency) and splice the shard
 *                  journals/artifacts into <dir>/merged
 *   campaignStatus read-only progress snapshot
 *   launchCampaign single-node driver: forks N local workers
 *                  (optionally pinned round-robin to CPU sets) and
 *                  retries crashed shards until done or out of
 *                  attempts
 */

#ifndef NVMEXP_CAMPAIGN_CAMPAIGN_HH
#define NVMEXP_CAMPAIGN_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/manifest.hh"
#include "campaign/shard_plan.hh"
#include "core/parallel_sweep.hh"

namespace nvmexp {
namespace campaign {

/** Shared characterization cache of campaign `dir`. */
std::string campaignCacheDir(const std::string &dir);

/** The canonical merged store of campaign `dir`. */
std::string mergedDir(const std::string &dir);

/**
 * Create campaign `dir` and write its manifest for `shardCount`
 * shards of `config`'s sweep. Re-planning an existing campaign is a
 * no-op when fingerprint/shard count/granularity all match (so a
 * launcher can always plan first) and fatal otherwise.
 */
CampaignManifest planCampaign(const std::string &dir,
                              const SweepConfig &config,
                              std::size_t shardCount);

/**
 * Run shard `shard` of the campaign in this process: bumps the
 * shard's attempt counter, resumes its store, evaluates its owned
 * slots via `runner`, and marks the shard complete. `config` must be
 * the campaign's sweep (fingerprint-checked against the manifest);
 * its outDir/cacheDir/resume are overridden with the shard store,
 * the campaign's shared cache, and true. Returns the shard's owned
 * rows in ascending slot order.
 */
std::vector<EvalResult> runShard(const std::string &dir,
                                 const SweepConfig &config,
                                 std::size_t shard,
                                 const ParallelSweepRunner &runner);

/** What mergeCampaign produced (for logging and tests). */
struct MergeSummary
{
    std::size_t totalSlots = 0;
    std::size_t shardCount = 0;
    store::StoreStats stats; ///< summed over the shard stores
};

/**
 * Merge every shard store into <dir>/merged. Validates per shard —
 * journal header present with the campaign fingerprint, identical
 * slot counts, no foreign slots, full coverage of the owned slots,
 * results artifacts consistent with the journal — and refuses with a
 * file+shard diagnostic otherwise (an incomplete shard is re-run, not
 * merged around). The merged checkpoint journal, results.json, and
 * results.csv are byte-identical to a single-process run's (journal
 * entries in slot order); stats.json holds the summed shard counters.
 */
MergeSummary mergeCampaign(const std::string &dir);

/** Read-only progress of one shard. */
struct ShardProgress
{
    std::size_t shard = 0;
    std::uint64_t attempts = 0;
    bool completed = false;       ///< worker reached the end
    std::size_t doneSlots = 0;    ///< journaled (valid) slots
    std::size_t ownedSlots = 0;   ///< 0 while the total is unknown
    std::string state;            ///< pending | partial | complete
};

/** Read-only snapshot of a whole campaign. */
struct CampaignStatus
{
    CampaignManifest manifest;
    std::size_t totalSlots = 0;   ///< 0 until some shard journaled
    bool merged = false;          ///< merged/results.json exists
    std::vector<ShardProgress> shards;

    bool allComplete() const;
};

CampaignStatus campaignStatus(const std::string &dir);

/** Single-node launcher policy. */
struct LaunchOptions
{
    /** Concurrent worker processes; 0 means one per shard. */
    std::size_t workers = 0;
    /** Give up on a shard once its cumulative attempt counter (which
     *  survives across launcher invocations) reaches this. */
    std::uint64_t maxAttempts = 3;
    /** Pin each worker to an interleaved CPU set (cpu % workers ==
     *  worker % workers), HPCAT-style, so co-resident workers don't
     *  migrate onto each other's cores. */
    bool pinCpus = false;
};

/** Runs one shard inside a forked child; returns the child's exit
 *  code. Either execs `campaign run` (the CLI) or calls runShard
 *  in-process (tests, bench). */
using ShardWorker = std::function<int(std::size_t shard)>;

/**
 * Fork-and-supervise local workers until every shard completes or
 * exhausts its attempts. Already-complete shards are skipped, crashed
 * ones retried (their stores resume). The manifest's shard table is
 * updated as shards finish. Returns true when all shards completed.
 *
 * The caller must not hold live thread pools when this forks; create
 * runners inside `worker` (each child is its own process).
 */
bool launchCampaign(const std::string &dir, const LaunchOptions &options,
                    const ShardWorker &worker);

} // namespace campaign
} // namespace nvmexp

#endif // NVMEXP_CAMPAIGN_CAMPAIGN_HH
