/**
 * @file
 * Byte-exact splicing of shard result artifacts.
 *
 * A shard store's results.json/.csv hold exactly the shard's owned
 * rows, serialized by the one true serializer
 * (store::serializeResults / ResultStore::writeResults) in ascending
 * slot order. Because the serialized text of a row is independent of
 * which rows surround it (fixed indentation depth in the JSON
 * artifact, self-contained records in the CSV), the campaign merge
 * can reassemble the canonical artifacts by interleaving the shard
 * artifacts' row texts in global slot order — no re-parsing or
 * re-serializing of result values, which is what keeps merge cost a
 * small fraction of the work the shards parallelized. The envelope
 * (format header, brackets, header row) is taken from the serializer
 * itself, never duplicated here, so a format bump cannot drift; the
 * byte-identity differential suite pins the equivalence end to end.
 */

#ifndef NVMEXP_CAMPAIGN_STITCH_HH
#define NVMEXP_CAMPAIGN_STITCH_HH

#include <string>
#include <vector>

namespace nvmexp {
namespace campaign {

/**
 * Split one serializeResults() artifact into its per-row texts (the
 * row objects exactly as printed, indentation not included). fatal()
 * with `context` when the text does not match the serializer's
 * envelope — a torn or foreign file.
 */
std::vector<std::string>
splitSerializedResults(const std::string &text,
                       const std::string &context);

/** Inverse of splitSerializedResults: the artifact serializeResults()
 *  would produce for these rows in this order. */
std::string
joinSerializedResults(const std::vector<std::string> &rows);

/** A results.csv split into its header line and record texts (no
 *  trailing newlines; a record may span lines inside quotes). */
struct CsvSplit
{
    std::string header;
    std::vector<std::string> rows;
};

/** Split a results.csv artifact; fatal() with `context` on a torn
 *  file (unterminated quote or missing final newline). */
CsvSplit splitResultsCsv(const std::string &text,
                         const std::string &context);

/** Inverse of splitResultsCsv. */
std::string joinResultsCsv(const std::string &header,
                           const std::vector<std::string> &rows);

} // namespace campaign
} // namespace nvmexp

#endif // NVMEXP_CAMPAIGN_STITCH_HH
