#include "campaign/shard_plan.hh"

#include <algorithm>

#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace campaign {

std::function<bool(std::size_t)>
ShardPlan::selector(std::size_t shard) const
{
    if (shard >= shardCount) {
        fatal("shard plan: shard ", shard, " out of range (",
              shardCount, " shards)");
    }
    ShardPlan plan = *this; // self-contained copy for the closure
    return [plan, shard](std::size_t slot) {
        return plan.owns(shard, slot);
    };
}

std::size_t
ShardPlan::ownedCount(std::size_t shard, std::size_t totalSlots) const
{
    std::size_t owned = 0;
    for (std::size_t begin = 0; begin < totalSlots;
         begin += runLength) {
        if (shardOf(begin) == shard)
            owned += std::min(runLength, totalSlots - begin);
    }
    return owned;
}

ShardPlan
makeShardPlan(const SweepConfig &rawConfig, std::size_t shardCount)
{
    if (shardCount == 0)
        fatal("shard plan: campaign needs at least one shard, got ",
              shardCount);
    SweepConfig storage;
    const SweepConfig &config = expandSweepWorkloads(rawConfig, storage);
    ShardPlan plan;
    plan.fingerprint = store::sweepFingerprint(config);
    // One run = the reliability-spec block of one (array, traffic)
    // pair: the slot index is a*(T*S) + t*S + s with specs innermost,
    // so spec blocks are the finest contiguous unit that never splits
    // what the batched evaluator amortizes together.
    plan.runLength =
        std::max<std::size_t>(1, config.reliability.size());
    plan.shardCount = shardCount;
    plan.rotation =
        (std::size_t)(store::fnv1a64(plan.fingerprint) % shardCount);
    return plan;
}

} // namespace campaign
} // namespace nvmexp
