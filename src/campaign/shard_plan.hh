/**
 * @file
 * Deterministic partitioning of a sweep's expanded slot index space
 * across N campaign shards.
 *
 * The unit of assignment is one contiguous run of `runLength` slots —
 * the reliability-spec block of one (array, traffic) pair, the same
 * innermost granularity the batched evaluator amortizes over — so a
 * shard always owns whole spec blocks. Assignment is a pure function
 * of (fingerprint, shard count, slot): no characterization, no I/O,
 * no state. Every participant (planner, shard workers, merge, status)
 * recomputes the identical mapping from the manifest alone, which is
 * what makes a campaign safely resumable across processes and hosts.
 */

#ifndef NVMEXP_CAMPAIGN_SHARD_PLAN_HH
#define NVMEXP_CAMPAIGN_SHARD_PLAN_HH

#include <cstddef>
#include <functional>
#include <string>

#include "core/sweep.hh"

namespace nvmexp {
namespace campaign {

struct ShardPlan
{
    /** Fingerprint of the fully workload-expanded sweep. */
    std::string fingerprint;
    /** Contiguous slots per assignment unit (>= 1). */
    std::size_t runLength = 1;
    /** Number of shards (>= 1). */
    std::size_t shardCount = 1;
    /** Fingerprint-derived offset so the unit->shard mapping differs
     *  between sweeps (pure function of fingerprint + shardCount). */
    std::size_t rotation = 0;

    /** Owning shard of one slot. */
    std::size_t shardOf(std::size_t slot) const
    {
        return (slot / runLength + rotation) % shardCount;
    }

    bool owns(std::size_t shard, std::size_t slot) const
    {
        return shardOf(slot) == shard;
    }

    /** Ownership predicate for ParallelSweepRunner::runSelected. */
    std::function<bool(std::size_t)> selector(std::size_t shard) const;

    /** Slots shard owns out of a sweep of `totalSlots`. */
    std::size_t ownedCount(std::size_t shard,
                           std::size_t totalSlots) const;
};

/**
 * Plan a campaign of `shardCount` shards over `config`'s expanded
 * cross product. Derives the fingerprint and the spec-block run
 * length without characterizing anything; fatal() on a zero shard
 * count.
 */
ShardPlan makeShardPlan(const SweepConfig &config,
                        std::size_t shardCount);

} // namespace campaign
} // namespace nvmexp

#endif // NVMEXP_CAMPAIGN_SHARD_PLAN_HH
