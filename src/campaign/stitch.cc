#include "campaign/stitch.hh"

#include <iterator>

#include "store/result_store.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace campaign {

namespace {

/** The serializer's envelope, derived from serializeResults itself on
 *  an empty row set: "<prefix>[]<suffix>". Never hand-written, so a
 *  format bump changes the splice automatically. */
struct Envelope
{
    std::string prefix; ///< up to (not including) the rows array
    std::string suffix; ///< after the rows array
};

const Envelope &
envelope()
{
    static const Envelope env = [] {
        std::string empty = store::serializeResults({});
        std::size_t open = empty.find("[]");
        if (open == std::string::npos) {
            panic("campaign stitch: serializeResults({}) has no empty "
                  "rows array");
        }
        return Envelope{empty.substr(0, open), empty.substr(open + 2)};
    }();
    return env;
}

/** One past the end of the balanced JSON value starting at `begin`
 *  (must be '{'), or npos on malformed/truncated text. */
std::size_t
scanRow(const std::string &text, std::size_t begin)
{
    int depth = 0;
    bool inString = false;
    bool escaped = false;
    for (std::size_t i = begin; i < text.size(); ++i) {
        char c = text[i];
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        if (c == '"') {
            inString = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

[[noreturn]] void
tornResults(const std::string &context)
{
    fatal(context, ": results.json does not match the serialized-"
          "results envelope (torn write or foreign file); re-run the "
          "shard with resume to regenerate it");
}

} // namespace

std::vector<std::string>
splitSerializedResults(const std::string &text,
                       const std::string &context)
{
    const Envelope &env = envelope();
    if (text.compare(0, env.prefix.size(), env.prefix) != 0)
        tornResults(context);
    std::vector<std::string> rows;
    std::size_t pos = env.prefix.size();
    if (text.compare(pos, 2, "[]") == 0) {
        if (text.substr(pos + 2) != env.suffix)
            tornResults(context);
        return rows;
    }
    if (pos >= text.size() || text[pos] != '[')
        tornResults(context);
    ++pos;
    // Rows sit at a fixed depth: "\n    {...}" separated by commas,
    // then "\n  ]" closes the array.
    for (;;) {
        if (text.compare(pos, 5, "\n    ") != 0)
            tornResults(context);
        pos += 5;
        std::size_t end = scanRow(text, pos);
        if (pos >= text.size() || text[pos] != '{' ||
            end == std::string::npos)
            tornResults(context);
        rows.push_back(text.substr(pos, end - pos));
        pos = end;
        if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
        }
        if (text.compare(pos, 4, "\n  ]") != 0 ||
            text.substr(pos + 4) != env.suffix)
            tornResults(context);
        return rows;
    }
}

std::string
joinSerializedResults(const std::vector<std::string> &rows)
{
    const Envelope &env = envelope();
    if (rows.empty())
        return env.prefix + "[]" + env.suffix;
    std::string out = env.prefix;
    out += '[';
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i)
            out += ',';
        out += "\n    ";
        out += rows[i];
    }
    out += "\n  ]";
    out += env.suffix;
    return out;
}

CsvSplit
splitResultsCsv(const std::string &text, const std::string &context)
{
    CsvSplit split;
    std::vector<std::string> records;
    std::size_t begin = 0;
    bool inQuotes = false;
    // Quote parity handles quoted fields that embed commas, quotes
    // ("" escapes), or newlines — a record ends only at an unquoted
    // newline.
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c == '"') {
            inQuotes = !inQuotes;
        } else if (c == '\n' && !inQuotes) {
            records.push_back(text.substr(begin, i - begin));
            begin = i + 1;
        }
    }
    if (inQuotes || begin != text.size() || records.empty()) {
        fatal(context, ": results.csv is torn (unterminated quote or "
              "missing final newline); re-run the shard with resume "
              "to regenerate it");
    }
    split.header = std::move(records.front());
    split.rows.assign(std::make_move_iterator(records.begin() + 1),
                      std::make_move_iterator(records.end()));
    return split;
}

std::string
joinResultsCsv(const std::string &header,
               const std::vector<std::string> &rows)
{
    std::string out = header;
    out += '\n';
    for (const auto &row : rows) {
        out += row;
        out += '\n';
    }
    return out;
}

} // namespace campaign
} // namespace nvmexp
