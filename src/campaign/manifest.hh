/**
 * @file
 * The campaign manifest (campaign.json) and per-shard progress files
 * (shard.json).
 *
 * A campaign directory looks like:
 *
 *   <dir>/campaign.json        versioned manifest: sweep fingerprint,
 *                              shard table with status/attempts
 *   <dir>/config.json          verbatim copy of the experiment config
 *                              (CLI campaigns; programmatic ones skip
 *                              it)
 *   <dir>/cache/               ONE characterization cache shared by
 *                              every shard and the merged store
 *   <dir>/shards/shard-<k>/    an ordinary result store per shard
 *                              (checkpoint journal, results.json/.csv,
 *                              stats.json) plus its shard.json
 *   <dir>/merged/              the canonical merged store
 *
 * Single-writer discipline: campaign.json is written only by the
 * coordinating process (plan / status / launcher / merge). A shard
 * worker writes only inside its own shard directory — its store plus
 * shard.json ({attempts, completed}) — so concurrent workers never
 * race on a shared file. Both files are written atomically
 * (write-then-rename); a torn shard.json reads as "no progress" and
 * simply causes a redundant (resume, hence cheap) retry.
 */

#ifndef NVMEXP_CAMPAIGN_MANIFEST_HH
#define NVMEXP_CAMPAIGN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/shard_plan.hh"
#include "util/json.hh"

namespace nvmexp {
namespace campaign {

/** Version of the campaign.json/shard.json schema itself, separate
 *  from the store format the fingerprint is defined over. */
constexpr int kCampaignFormatVersion = 1;

/** One row of the manifest's shard table. */
struct ShardEntry
{
    std::size_t id = 0;
    std::string dir;           ///< store dir, relative to campaign dir
    std::string status;        ///< "pending" | "partial" | "complete"
    std::uint64_t attempts = 0;
};

struct CampaignManifest
{
    std::string fingerprint;
    std::size_t shardCount = 0;
    std::size_t granularity = 1; ///< ShardPlan::runLength
    std::vector<ShardEntry> shards;

    /** Reconstruct the slot->shard mapping (pure function of the
     *  manifest fields). */
    ShardPlan plan() const;

    JsonValue toJson() const;
    /** Validating parse; fatal() with `context` on any structural
     *  problem (wrong versions, inconsistent shard table, ...). */
    static CampaignManifest fromJson(const JsonValue &doc,
                                     const std::string &context);
};

/** Relative shard-store directory for shard k ("shards/shard-k"). */
std::string shardDirName(std::size_t shard);

/** Load+validate <dir>/campaign.json; fatal() if absent or invalid. */
CampaignManifest loadManifest(const std::string &dir);

/** Atomically write <dir>/campaign.json. */
void saveManifest(const std::string &dir, const CampaignManifest &m);

/** A worker's own progress record (shard.json in its store dir). */
struct ShardState
{
    std::uint64_t attempts = 0;
    bool completed = false;
};

/** Lenient read of <shardDir>/shard.json: a missing, torn, or
 *  foreign-fingerprint file reads as zero progress. */
ShardState loadShardState(const std::string &shardDir,
                          const std::string &fingerprint);

/** Atomically write <shardDir>/shard.json. */
void saveShardState(const std::string &shardDir,
                    const std::string &fingerprint, std::size_t shard,
                    std::size_t shardCount, const ShardState &state);

} // namespace campaign
} // namespace nvmexp

#endif // NVMEXP_CAMPAIGN_MANIFEST_HH
