#include "campaign/manifest.hh"

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "store/result_store.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace campaign {

namespace {

/** Typed member guards: the fatal()-based JsonValue accessors must
 *  never run on untrusted shapes (same discipline as the store). */
bool
hasString(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isString();
}

bool
hasNumber(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isNumber();
}

bool
hasBool(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isBool();
}

bool
validStatus(const std::string &status)
{
    return status == "pending" || status == "partial" ||
        status == "complete";
}

/** Write-then-rename, same contract as the store's cache writes: a
 *  reader never observes a torn manifest or shard.json. */
void
writeAtomically(const std::string &path, const JsonValue &doc)
{
    static std::atomic<std::uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
        "." + std::to_string(counter.fetch_add(1));
    doc.writeFile(tmp);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal("campaign: cannot move '", tmp, "': ", ec.message());
}

/** The version/fingerprint preamble both files share. */
void
checkVersions(const JsonValue &doc, const std::string &context)
{
    if (!doc.isObject())
        fatal(context, ": document must be a JSON object");
    if (!hasNumber(doc, "format") ||
        (int)doc.at("format").asNumber() != store::kFormatVersion) {
        fatal(context, ": \"format\" must be the store format version ",
              store::kFormatVersion, " this build reads");
    }
    if (!hasNumber(doc, "campaign_format") ||
        (int)doc.at("campaign_format").asNumber() !=
            kCampaignFormatVersion) {
        fatal(context, ": \"campaign_format\" must be ",
              kCampaignFormatVersion);
    }
    if (!hasString(doc, "fingerprint") ||
        doc.at("fingerprint").asString().empty()) {
        fatal(context,
              ": \"fingerprint\" must be the sweep fingerprint string");
    }
}

} // namespace

ShardPlan
CampaignManifest::plan() const
{
    ShardPlan plan;
    plan.fingerprint = fingerprint;
    plan.runLength = granularity;
    plan.shardCount = shardCount;
    plan.rotation =
        (std::size_t)(store::fnv1a64(fingerprint) % shardCount);
    return plan;
}

JsonValue
CampaignManifest::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(store::kFormatVersion));
    v.set("campaign_format",
          JsonValue::makeNumber(kCampaignFormatVersion));
    v.set("fingerprint", JsonValue::makeString(fingerprint));
    v.set("shard_count", JsonValue::makeNumber((double)shardCount));
    v.set("granularity", JsonValue::makeNumber((double)granularity));
    JsonValue table = JsonValue::makeArray();
    for (const auto &shard : shards) {
        JsonValue row = JsonValue::makeObject();
        row.set("id", JsonValue::makeNumber((double)shard.id));
        row.set("dir", JsonValue::makeString(shard.dir));
        row.set("status", JsonValue::makeString(shard.status));
        row.set("attempts",
                JsonValue::makeNumber((double)shard.attempts));
        table.append(std::move(row));
    }
    v.set("shards", std::move(table));
    return v;
}

CampaignManifest
CampaignManifest::fromJson(const JsonValue &doc,
                           const std::string &context)
{
    checkVersions(doc, context);
    CampaignManifest m;
    m.fingerprint = doc.at("fingerprint").asString();
    if (!hasNumber(doc, "shard_count") ||
        doc.at("shard_count").asNumber() < 1) {
        fatal(context, ": \"shard_count\" must be a positive integer");
    }
    m.shardCount = (std::size_t)doc.at("shard_count").asNumber();
    if (!hasNumber(doc, "granularity") ||
        doc.at("granularity").asNumber() < 1) {
        fatal(context, ": \"granularity\" must be a positive integer");
    }
    m.granularity = (std::size_t)doc.at("granularity").asNumber();
    if (!doc.has("shards") || !doc.at("shards").isArray())
        fatal(context, ": \"shards\" must be the shard table array");
    const auto &table = doc.at("shards").asArray();
    if (table.size() != m.shardCount) {
        fatal(context, ": shard table has ", table.size(),
              " entries for shard_count ", m.shardCount);
    }
    for (std::size_t k = 0; k < table.size(); ++k) {
        const JsonValue &row = table[k];
        ShardEntry entry;
        if (!hasNumber(row, "id") ||
            (std::size_t)row.at("id").asNumber() != k) {
            fatal(context, ": shard table entry ", k,
                  " must carry \"id\": ", k);
        }
        entry.id = k;
        if (!hasString(row, "dir") || row.at("dir").asString().empty())
            fatal(context, ": shard ", k, " needs a non-empty \"dir\"");
        entry.dir = row.at("dir").asString();
        if (!hasString(row, "status") ||
            !validStatus(row.at("status").asString())) {
            fatal(context, ": shard ", k,
                  " \"status\" must be pending, partial, or complete");
        }
        entry.status = row.at("status").asString();
        if (!hasNumber(row, "attempts") ||
            row.at("attempts").asNumber() < 0) {
            fatal(context, ": shard ", k,
                  " \"attempts\" must be a non-negative integer");
        }
        entry.attempts =
            (std::uint64_t)row.at("attempts").asNumber();
        m.shards.push_back(std::move(entry));
    }
    return m;
}

std::string
shardDirName(std::size_t shard)
{
    return "shards/shard-" + std::to_string(shard);
}

CampaignManifest
loadManifest(const std::string &dir)
{
    std::string path = dir + "/campaign.json";
    if (!std::filesystem::exists(path)) {
        fatal("campaign: no manifest at '", path,
              "' (run `campaign plan` first)");
    }
    return CampaignManifest::fromJson(JsonValue::parseFile(path),
                                      "campaign manifest '" + path +
                                          "'");
}

void
saveManifest(const std::string &dir, const CampaignManifest &m)
{
    writeAtomically(dir + "/campaign.json", m.toJson());
}

ShardState
loadShardState(const std::string &shardDir,
               const std::string &fingerprint)
{
    ShardState state;
    std::string path = shardDir + "/shard.json";
    std::ifstream in(path);
    std::ostringstream buffer;
    if (in)
        buffer << in.rdbuf();
    JsonValue doc;
    if (!in || !JsonValue::tryParse(buffer.str(), doc))
        return state;
    if (!hasString(doc, "fingerprint") ||
        doc.at("fingerprint").asString() != fingerprint)
        return state;
    if (hasNumber(doc, "attempts") && doc.at("attempts").asNumber() >= 0)
        state.attempts = (std::uint64_t)doc.at("attempts").asNumber();
    if (hasBool(doc, "completed"))
        state.completed = doc.at("completed").asBool();
    return state;
}

void
saveShardState(const std::string &shardDir,
               const std::string &fingerprint, std::size_t shard,
               std::size_t shardCount, const ShardState &state)
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(store::kFormatVersion));
    v.set("campaign_format",
          JsonValue::makeNumber(kCampaignFormatVersion));
    v.set("fingerprint", JsonValue::makeString(fingerprint));
    v.set("shard", JsonValue::makeNumber((double)shard));
    v.set("shard_count", JsonValue::makeNumber((double)shardCount));
    v.set("attempts", JsonValue::makeNumber((double)state.attempts));
    v.set("completed", JsonValue::makeBool(state.completed));
    writeAtomically(shardDir + "/shard.json", v);
}

} // namespace campaign
} // namespace nvmexp
