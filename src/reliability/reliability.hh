/**
 * @file
 * Reliability as a first-class sweep axis (paper Sec. V-C).
 *
 * The paper's reliability study asks "does ECC rescue an otherwise
 * too-faulty MLC configuration?" (MaxNVM-style mitigation). This
 * module turns that question into a sweepable dimension: a
 * ReliabilitySpec selects an ECC scheme and scrub interval, and the
 * ReliabilityEvaluator composes the cell's FaultModel raw BER with the
 * scheme's analytical correction strength to produce the word/image
 * failure rates and code-overhead numbers the metric registry exposes
 * (raw_ber, uncorrectable_word_rate, ecc_overhead,
 * effective_density_mb_per_mm2, ...). Every swept configuration then
 * carries its full cross-layer cost vector, reliability included.
 */

#ifndef NVMEXP_RELIABILITY_RELIABILITY_HH
#define NVMEXP_RELIABILITY_RELIABILITY_HH

#include <string>
#include <vector>

#include "nvsim/array_model.hh"
#include "util/json.hh"

namespace nvmexp {
namespace reliability {

/**
 * One analytical ECC scheme: a (codeBits, dataBits) block code that
 * corrects up to `correctable` bit errors per codeword. "none" and the
 * concrete Hamming SEC-DED code are the paper's Sec. V-C schemes; the
 * BCH-style multi-bit entries are the analytical extension (14-/21-bit
 * syndromes over GF(2^7) cover 64 data bits for t=2/t=3).
 */
struct EccScheme
{
    std::string name;         ///< config/CLI key, e.g. "secded-72-64"
    std::string description;  ///< one-liner for --list-ecc
    int dataBits = 64;        ///< data bits per codeword (k)
    int codeBits = 64;        ///< stored bits per codeword (n)
    int correctable = 0;      ///< correctable errors per codeword (t)

    /** Storage overhead ratio: stored bits / data bits. */
    double overhead() const
    {
        return (double)codeBits / (double)dataBits;
    }
};

/** The fixed scheme vocabulary, in listing order. */
const std::vector<EccScheme> &eccSchemes();

/** @return the scheme or nullptr when unknown. */
const EccScheme *findEccScheme(const std::string &name);

/** @return the scheme; fatal with the known-name list when unknown
 *  (`context` prefixes the message, e.g. "--filter"). */
const EccScheme &requireEccScheme(const std::string &name,
                                  const std::string &context = "");

/**
 * One point on the reliability sweep axis: which code protects the
 * array and how often stored data is scrubbed (re-read and
 * re-written, resetting retention drift). scrubIntervalSec == 0 means
 * no accumulation window: only the instantaneous read BER applies.
 */
struct ReliabilitySpec
{
    std::string ecc = "none";
    double scrubIntervalSec = 0.0;

    /** Stable encoding for sweep fingerprints. */
    JsonValue toJson() const;
};

/** Per-configuration reliability numbers attached to every
 *  EvalResult; defaults describe the un-protected, un-scrubbed case
 *  of a fault-free cell. */
struct ReliabilityResult
{
    std::string scheme = "none";
    double scrubIntervalSec = 0.0;
    /** Instantaneous per-bit raw error rate from the FaultModel. */
    double rawBer = 0.0;
    /** Per-bit error probability at the end of a scrub interval
     *  (raw BER plus retention drift for non-volatile cells). */
    double scrubbedBer = 0.0;
    /** Probability a codeword holds more errors than the scheme
     *  corrects. */
    double uncorrectableWordRate = 0.0;
    /** Probability any codeword of the full array is uncorrectable. */
    double uncorrectableImageRate = 0.0;
    /** Stored bits / data bits of the selected scheme. */
    double eccOverhead = 1.0;
};

/**
 * Evaluates one ReliabilitySpec against characterized arrays. The
 * scheme name is resolved (and validated) once at construction; the
 * per-array evaluation is purely analytical and deterministic, so
 * results are identical across worker counts.
 */
class ReliabilityEvaluator
{
  public:
    /** @param context prefixes validation errors (e.g. a config
     *  name). Fatal on unknown scheme or negative/non-finite scrub
     *  interval. */
    explicit ReliabilityEvaluator(const ReliabilitySpec &spec,
                                  const std::string &context = "");

    const ReliabilitySpec &spec() const { return spec_; }

    ReliabilityResult evaluate(const ArrayResult &array) const;

    /**
     * Spec-independent raw FaultModel BER of an array's cell — the
     * term every spec on the reliability axis shares. The batch
     * evaluation path computes it once per array and re-evaluates
     * only the ECC/scrub terms across the (innermost) spec axis.
     */
    static double rawBitErrorRate(const ArrayResult &array);

    /**
     * evaluate() with the raw BER already in hand:
     * evaluate(a) == evaluate(a, rawBitErrorRate(a)) bit for bit.
     */
    ReliabilityResult evaluate(const ArrayResult &array,
                               double rawBer) const;

    /**
     * Retention-drift model: a non-volatile cell left un-scrubbed for
     * its full rated retention accumulates this drift-induced BER;
     * shorter windows scale linearly. Volatile (powered, refreshed)
     * cells do not drift.
     */
    static constexpr double kRetentionBer = 1e-3;

  private:
    ReliabilitySpec spec_;
    const EccScheme *scheme_;  ///< registry entry, process lifetime
};

} // namespace reliability
} // namespace nvmexp

#endif // NVMEXP_RELIABILITY_RELIABILITY_HH
