#include "reliability/reliability.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "fault/ecc.hh"
#include "fault/fault_model.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace reliability {

const std::vector<EccScheme> &
eccSchemes()
{
    static const std::vector<EccScheme> schemes = {
        {"none", "no correction: raw cell storage", 64, 64, 0},
        {"secded-72-64",
         "Hamming(72,64) SEC-DED: corrects 1, detects 2 "
         "(concrete codec in src/fault/ecc.hh)", 64, 72, 1},
        {"dec-78-64",
         "analytical BCH-style double-error correction "
         "(2 x 7-bit syndromes over 64 data bits)", 64, 78, 2},
        {"tec-85-64",
         "analytical BCH-style triple-error correction "
         "(3 x 7-bit syndromes over 64 data bits)", 64, 85, 3},
    };
    return schemes;
}

const EccScheme *
findEccScheme(const std::string &name)
{
    for (const auto &scheme : eccSchemes())
        if (scheme.name == name)
            return &scheme;
    return nullptr;
}

const EccScheme &
requireEccScheme(const std::string &name, const std::string &context)
{
    const EccScheme *scheme = findEccScheme(name);
    if (!scheme) {
        std::ostringstream known;
        for (const auto &entry : eccSchemes())
            known << " " << entry.name;
        fatal(context.empty() ? "ecc" : context + ": ecc", " scheme '",
              name, "' unknown (known schemes:", known.str(), ")");
    }
    return *scheme;
}

JsonValue
ReliabilitySpec::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("ecc", JsonValue::makeString(ecc));
    v.set("scrub_interval_sec",
          JsonValue::makeNumber(scrubIntervalSec));
    return v;
}

ReliabilityEvaluator::ReliabilityEvaluator(const ReliabilitySpec &spec,
                                           const std::string &context)
    : spec_(spec), scheme_(&requireEccScheme(spec.ecc, context))
{
    if (!(spec_.scrubIntervalSec >= 0.0) ||
        !std::isfinite(spec_.scrubIntervalSec)) {
        fatal(context.empty() ? "reliability" : context,
              ": scrub interval must be a finite non-negative number "
              "of seconds, got ", spec_.scrubIntervalSec);
    }
}

double
ReliabilityEvaluator::rawBitErrorRate(const ArrayResult &array)
{
    FaultModel model(array.cell);
    return model.bitErrorRate();
}

ReliabilityResult
ReliabilityEvaluator::evaluate(const ArrayResult &array) const
{
    return evaluate(array, rawBitErrorRate(array));
}

ReliabilityResult
ReliabilityEvaluator::evaluate(const ArrayResult &array,
                               double rawBer) const
{
    ReliabilityResult r;
    r.scheme = scheme_->name;
    r.scrubIntervalSec = spec_.scrubIntervalSec;
    r.eccOverhead = scheme_->overhead();
    r.rawBer = rawBer;

    // Retention drift accumulates between scrubs for non-volatile
    // cells (volatile arrays are powered and refreshed): linear
    // growth reaching kRetentionBer at the rated retention time,
    // composed independently with the instantaneous read BER.
    double drift = 0.0;
    if (array.cell.nonVolatile && spec_.scrubIntervalSec > 0.0 &&
        array.cell.retention > 0.0) {
        drift = kRetentionBer *
            std::min(1.0, spec_.scrubIntervalSec / array.cell.retention);
    }
    r.scrubbedBer = r.rawBer + drift - r.rawBer * drift;

    // Uncorrectable iff a codeword holds more than `correctable`
    // errors at the worst point of the scrub window.
    r.uncorrectableWordRate = binomialTailAtLeast(
        scheme_->codeBits, scheme_->correctable + 1, r.scrubbedBer);

    // Whole-image failure over every codeword the array stores. The
    // log1p/expm1 form stays exact for word rates far below 1e-16.
    double words = std::floor(array.capacityBytes * 8.0 /
                              (double)scheme_->codeBits);
    if (words > 0.0 && r.uncorrectableWordRate > 0.0) {
        r.uncorrectableImageRate = r.uncorrectableWordRate >= 1.0
            ? 1.0
            : -std::expm1(words * std::log1p(-r.uncorrectableWordRate));
    }
    return r;
}

} // namespace reliability
} // namespace nvmexp
