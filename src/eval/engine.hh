/**
 * @file
 * Analytical evaluation engine (paper Sec. II-B).
 *
 * Combines an array characterization (src/nvsim) with application
 * traffic (src/eval/traffic.hh) to produce the application-level
 * metrics the paper's case studies plot: total memory power, aggregate
 * access latency (the long-pole, bandwidth-driven performance model),
 * projected memory lifetime, and energy-per-event for intermittent
 * operation.
 */

#ifndef NVMEXP_EVAL_ENGINE_HH
#define NVMEXP_EVAL_ENGINE_HH

#include <limits>

#include "eval/traffic.hh"
#include "nvsim/array_model.hh"
#include "reliability/reliability.hh"

namespace nvmexp {

/** Application-level metrics for (array, traffic). */
struct EvalResult
{
    ArrayResult array;
    TrafficPattern traffic;

    double dynamicPower = 0.0;   ///< W from read/write access energy
    double leakagePower = 0.0;   ///< W
    double totalPower = 0.0;     ///< W

    /**
     * Long-pole model: seconds of aggregated access latency per second
     * of workload execution. Above 1.0 the memory slows the
     * application down by this factor (paper Sec. II-B).
     */
    double latencyLoad = 0.0;
    double slowdown = 1.0;       ///< max(1, latencyLoad)

    /** Aggregated access latency over the execution window [s]. */
    double totalAccessLatency = 0.0;

    bool meetsReadBandwidth = true;
    bool meetsWriteBandwidth = true;

    /**
     * Reliability numbers for this configuration under the sweep's
     * ReliabilitySpec (scheme "none", no scrubbing, when the sweep
     * has no reliability axis). Annotated by the sweep engine —
     * evaluate() itself leaves the defaults, since reliability is a
     * property of (array, spec), not of traffic.
     */
    reliability::ReliabilityResult reliability;

    /** Projected array lifetime under this write rate [s];
     *  +inf for unlimited-endurance cells or zero write traffic. */
    double lifetimeSec = std::numeric_limits<double>::infinity();

    /** @return lifetime in years (365-day years). */
    double lifetimeYears() const { return lifetimeSec / (365.0 * 86400.0); }

    /** Memory can serve this workload at full speed. */
    bool viable() const
    {
        return slowdown <= 1.0 + 1e-12 && meetsReadBandwidth &&
            meetsWriteBandwidth;
    }
};

/**
 * Evaluate one array against one traffic pattern.
 *
 * @param array optimized array design from ArrayDesigner
 * @param traffic workload traffic (word-access rates for array.wordBits)
 */
EvalResult evaluate(const ArrayResult &array,
                    const TrafficPattern &traffic);

/**
 * Intermittent-operation scenario (paper Sec. IV-A2): the system wakes
 * up per inference event, performs the event's accesses, and powers
 * off. Non-volatile arrays retain state; volatile arrays must either
 * stay powered (leak) or restore contents from off-chip DRAM on wake.
 */
struct IntermittentConfig
{
    double eventsPerDay = 86400.0;   ///< wake-ups per day
    double readsPerEvent = 0.0;      ///< word reads per event
    double writesPerEvent = 0.0;     ///< word writes per event
    double computeTimePerEvent = 0.0;///< s the array stays powered/event
    /**
     * Bytes restored from DRAM on each wake-up when the array is
     * volatile (e.g., all DNN weights).
     */
    double restoreBytesOnWake = 0.0;
    /** Off-chip restore energy per byte [J/B] (DRAM access + link). */
    double restoreEnergyPerByte = 50e-12;
    /** Off-chip restore bandwidth [B/s] for wake-up latency. */
    double restoreBandwidth = 10e9;
    /**
     * Residual sleep leakage of a power-gated non-volatile macro as a
     * fraction of its active leakage (retention keepers, always-on
     * rails). Volatile arrays instead choose the cheaper of staying
     * fully powered or restoring from DRAM on every wake.
     */
    double sleepLeakFraction = 0.15;
};

/** Energy and latency of one intermittent event. */
struct IntermittentResult
{
    double energyPerEvent = 0.0;   ///< J, incl. restore for volatile
    double standbyEnergyPerDay = 0.0;  ///< J of sleep/retention leakage
    double energyPerDay = 0.0;     ///< J, events + standby
    double wakeLatency = 0.0;      ///< s before the event can compute
    double eventLatency = 0.0;     ///< s of aggregated access latency
    /** Lifetime under the daily write load [s]; +inf when nothing
     *  wears the array (unlimited endurance or no writes). */
    double lifetimeSec = std::numeric_limits<double>::infinity();
    bool keptPowered = false;      ///< volatile array stayed powered
    /**
     * Non-volatile retention covers the powered-off interval between
     * wake-ups (always true for powered/restored volatile arrays).
     */
    bool retentionOk = true;
};

/** Evaluate an intermittent use case on an array. */
IntermittentResult evaluateIntermittent(const ArrayResult &array,
                                        const IntermittentConfig &config);

/**
 * Write-buffer co-design model (paper Sec. V-D): a small, faster
 * front buffer masks a fraction of the eNVM write latency and absorbs
 * a fraction of the write traffic via in-place updates.
 */
struct WriteBufferConfig
{
    double latencyMaskFraction = 0.0;   ///< [0,1] of write latency hidden
    double trafficReduction = 0.0;      ///< [0,1] of writes absorbed
};

/**
 * Evaluate (array, traffic) as if fronted by a write buffer: write
 * latency seen by the system is (1-mask)*writeLatency and write
 * traffic reaching the eNVM is (1-reduction)*writes.
 */
EvalResult evaluateWithWriteBuffer(const ArrayResult &array,
                                   const TrafficPattern &traffic,
                                   const WriteBufferConfig &config);

} // namespace nvmexp

#endif // NVMEXP_EVAL_ENGINE_HH
