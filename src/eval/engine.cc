#include "eval/engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace nvmexp {

namespace {

/** Lifetime under ideal wear-leveling: every word wears evenly. */
double
lifetimeSeconds(const ArrayResult &array, double writesPerSec)
{
    if (writesPerSec <= 0.0)
        return std::numeric_limits<double>::infinity();
    double totalWrites = array.cell.endurance * array.words();
    return totalWrites / writesPerSec;
}

} // namespace

EvalResult
evaluate(const ArrayResult &array, const TrafficPattern &traffic)
{
    traffic.validate();
    EvalResult r;
    r.array = array;
    r.traffic = traffic;

    r.dynamicPower = traffic.readsPerSec * array.readEnergy +
        traffic.writesPerSec * array.writeEnergy;
    r.leakagePower = array.leakage;
    r.totalPower = r.dynamicPower + r.leakagePower;

    // Long-pole, bandwidth-driven performance model: aggregate access
    // latency per second of execution, assuming bank-level overlap.
    double banks = std::max(1, array.org.banks);
    r.latencyLoad = (traffic.readsPerSec * array.readLatency +
                     traffic.writesPerSec * array.writeLatency) / banks;
    r.slowdown = std::max(1.0, r.latencyLoad);
    r.totalAccessLatency =
        traffic.readsPerExec() * array.readLatency +
        traffic.writesPerExec() * array.writeLatency;

    r.meetsReadBandwidth =
        traffic.readBytesPerSec(array.wordBits) <= array.readBandwidth;
    r.meetsWriteBandwidth =
        traffic.writeBytesPerSec(array.wordBits) <= array.writeBandwidth;

    r.lifetimeSec = lifetimeSeconds(array, traffic.writesPerSec);
    return r;
}

IntermittentResult
evaluateIntermittent(const ArrayResult &array,
                     const IntermittentConfig &config)
{
    if (config.eventsPerDay <= 0.0)
        fatal("intermittent model needs a positive wake-up rate");
    if (config.readsPerEvent < 0.0 || config.writesPerEvent < 0.0)
        fatal("intermittent model: negative per-event access counts");

    IntermittentResult r;

    double accessEnergy = config.readsPerEvent * array.readEnergy +
        config.writesPerEvent * array.writeEnergy;
    r.eventLatency = config.readsPerEvent * array.readLatency +
        config.writesPerEvent * array.writeLatency;

    double onTime = std::max(config.computeTimePerEvent, r.eventLatency);
    double leakEnergy = array.leakage * onTime;

    constexpr double kSecPerDay = 86400.0;
    double restoreEnergy = 0.0;
    double restoreWrites = 0.0;
    r.wakeLatency = 0.0;

    if (array.cell.nonVolatile) {
        // Power-gated between events with residual retention leakage.
        r.standbyEnergyPerDay =
            config.sleepLeakFraction * array.leakage * kSecPerDay;
        // The cell must retain state across the off interval.
        double offInterval = kSecPerDay / config.eventsPerDay;
        r.retentionOk = array.cell.retention >= offInterval;
    } else if (config.restoreBytesOnWake > 0.0) {
        // Volatile storage: choose the cheaper of staying powered all
        // day or restoring contents from DRAM on each wake-up.
        double restorePerEvent = config.restoreBytesOnWake *
            config.restoreEnergyPerByte;
        restoreWrites = config.restoreBytesOnWake * 8.0 /
            (double)array.wordBits;
        restorePerEvent += restoreWrites * array.writeEnergy;
        double restoreDay = restorePerEvent * config.eventsPerDay;
        double poweredDay = array.leakage * kSecPerDay;
        if (poweredDay <= restoreDay) {
            r.keptPowered = true;
            r.standbyEnergyPerDay = poweredDay;
            restoreWrites = 0.0;
        } else {
            restoreEnergy = restorePerEvent;
            r.wakeLatency = config.restoreBytesOnWake /
                config.restoreBandwidth;
        }
    } else {
        // Volatile with nothing to retain: free power-off.
        r.standbyEnergyPerDay = 0.0;
    }

    r.energyPerEvent = accessEnergy + leakEnergy + restoreEnergy;
    r.energyPerDay = r.energyPerEvent * config.eventsPerDay +
        r.standbyEnergyPerDay;
    double writesPerDay =
        (config.writesPerEvent + restoreWrites) * config.eventsPerDay;
    if (writesPerDay > 0.0) {
        r.lifetimeSec = array.cell.endurance * array.words() /
            (writesPerDay / 86400.0);
    } else {
        r.lifetimeSec = std::numeric_limits<double>::infinity();
    }
    return r;
}

EvalResult
evaluateWithWriteBuffer(const ArrayResult &array,
                        const TrafficPattern &traffic,
                        const WriteBufferConfig &config)
{
    if (config.latencyMaskFraction < 0.0 ||
        config.latencyMaskFraction > 1.0 ||
        config.trafficReduction < 0.0 || config.trafficReduction > 1.0) {
        fatal("write-buffer fractions must lie in [0, 1]");
    }
    ArrayResult buffered = array;
    buffered.writeLatency =
        array.writeLatency * (1.0 - config.latencyMaskFraction);
    // Keep a floor: even a fully masked write costs a buffer access.
    buffered.writeLatency =
        std::max(buffered.writeLatency, array.readLatency * 0.5);
    double wordBytes = (double)array.wordBits / 8.0;
    buffered.writeBandwidth = (double)buffered.org.banks * wordBytes /
        buffered.writeLatency;

    TrafficPattern reduced = traffic.scaled(1.0, traffic.name + "+wbuf");
    reduced.writesPerSec =
        traffic.writesPerSec * (1.0 - config.trafficReduction);

    return evaluate(buffered, reduced);
}

} // namespace nvmexp
