/**
 * @file
 * Application memory-traffic descriptions (the application level of
 * the NVMExplorer configuration stack, Sec. II-A).
 *
 * A TrafficPattern captures how a workload exercises one memory array:
 * word-access rates, the read/write mix, and the execution window the
 * counts were measured over. Patterns come from workload substrates
 * (src/dnn, src/graph, src/cachesim) or from generic rate sweeps
 * (Sec. IV-B's 1-10 GB/s x 1-100 MB/s grid).
 */

#ifndef NVMEXP_EVAL_TRAFFIC_HH
#define NVMEXP_EVAL_TRAFFIC_HH

#include <string>
#include <vector>

namespace nvmexp {

/**
 * Memory traffic to one array over an execution window.
 *
 * Rates are in array-word accesses per second; helpers convert from
 * byte bandwidths given the array word size.
 */
struct TrafficPattern
{
    std::string name;
    double readsPerSec = 0.0;   ///< word reads per second
    double writesPerSec = 0.0;  ///< word writes per second
    double execTime = 1.0;      ///< seconds the counts are measured over

    /** Total reads over the execution window. */
    double readsPerExec() const { return readsPerSec * execTime; }
    /** Total writes over the execution window. */
    double writesPerExec() const { return writesPerSec * execTime; }

    /** Read fraction of all accesses (1.0 when idle). */
    double readFraction() const;

    /** Required read bandwidth [bytes/s] for a given word size. */
    double readBytesPerSec(int wordBits) const;
    /** Required write bandwidth [bytes/s] for a given word size. */
    double writeBytesPerSec(int wordBits) const;

    /** Build from byte bandwidths (generic-rate studies). */
    static TrafficPattern fromByteRates(const std::string &name,
                                        double readBytesPerSec,
                                        double writeBytesPerSec,
                                        int wordBits,
                                        double execTime = 1.0);

    /** Build from access counts over an execution window. */
    static TrafficPattern fromCounts(const std::string &name,
                                     double reads, double writes,
                                     double execTime);

    /** Scale both rates (e.g., multi-task = N x single-task). */
    TrafficPattern scaled(double factor, const std::string &newName) const;

    /** Validate invariants; fatal() on nonsense (negative rates...). */
    void validate() const;
};

/**
 * Log-spaced generic traffic grid covering [readLo, readHi] x
 * [writeLo, writeHi] bytes/s with `steps` points per axis
 * (the paper's graph-processing generic sweep).
 */
std::vector<TrafficPattern>
genericTrafficGrid(double readLoBps, double readHiBps, double writeLoBps,
                   double writeHiBps, int steps, int wordBits);

} // namespace nvmexp

#endif // NVMEXP_EVAL_TRAFFIC_HH
