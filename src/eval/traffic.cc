#include "eval/traffic.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

double
TrafficPattern::readFraction() const
{
    double total = readsPerSec + writesPerSec;
    return total > 0.0 ? readsPerSec / total : 1.0;
}

double
TrafficPattern::readBytesPerSec(int wordBits) const
{
    return readsPerSec * (double)wordBits / 8.0;
}

double
TrafficPattern::writeBytesPerSec(int wordBits) const
{
    return writesPerSec * (double)wordBits / 8.0;
}

TrafficPattern
TrafficPattern::fromByteRates(const std::string &name,
                              double readBytesPerSec,
                              double writeBytesPerSec, int wordBits,
                              double execTime)
{
    if (wordBits <= 0)
        fatal("fromByteRates: non-positive word size");
    TrafficPattern t;
    t.name = name;
    t.readsPerSec = readBytesPerSec / ((double)wordBits / 8.0);
    t.writesPerSec = writeBytesPerSec / ((double)wordBits / 8.0);
    t.execTime = execTime;
    t.validate();
    return t;
}

TrafficPattern
TrafficPattern::fromCounts(const std::string &name, double reads,
                           double writes, double execTime)
{
    if (execTime <= 0.0)
        fatal("fromCounts: non-positive execution time");
    TrafficPattern t;
    t.name = name;
    t.readsPerSec = reads / execTime;
    t.writesPerSec = writes / execTime;
    t.execTime = execTime;
    t.validate();
    return t;
}

TrafficPattern
TrafficPattern::scaled(double factor, const std::string &newName) const
{
    if (factor < 0.0)
        fatal("traffic scale factor must be non-negative");
    TrafficPattern t = *this;
    t.name = newName;
    t.readsPerSec *= factor;
    t.writesPerSec *= factor;
    return t;
}

void
TrafficPattern::validate() const
{
    if (readsPerSec < 0.0 || writesPerSec < 0.0)
        fatal("traffic '", name, "': negative access rate");
    if (execTime <= 0.0)
        fatal("traffic '", name, "': non-positive execution time");
}

std::vector<TrafficPattern>
genericTrafficGrid(double readLoBps, double readHiBps, double writeLoBps,
                   double writeHiBps, int steps, int wordBits)
{
    if (steps < 2)
        fatal("genericTrafficGrid needs at least 2 steps per axis");
    if (readLoBps <= 0.0 || writeLoBps <= 0.0 || readHiBps < readLoBps ||
        writeHiBps < writeLoBps) {
        fatal("genericTrafficGrid: invalid rate bounds");
    }
    std::vector<TrafficPattern> grid;
    for (int i = 0; i < steps; ++i) {
        double fr = (double)i / (double)(steps - 1);
        double rd = readLoBps * std::pow(readHiBps / readLoBps, fr);
        for (int j = 0; j < steps; ++j) {
            double fw = (double)j / (double)(steps - 1);
            double wr = writeLoBps * std::pow(writeHiBps / writeLoBps, fw);
            grid.push_back(TrafficPattern::fromByteRates(
                "generic-r" + std::to_string(i) + "w" + std::to_string(j),
                rd, wr, wordBits));
        }
    }
    return grid;
}

} // namespace nvmexp
