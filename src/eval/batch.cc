#include "eval/batch.hh"

#include <algorithm>

namespace nvmexp {

BatchEvalContext::BatchEvalContext(
    const std::vector<ArrayResult> &arrays,
    const std::vector<TrafficPattern> &traffics,
    const std::vector<reliability::ReliabilityEvaluator> &evaluators)
    : arrays_(arrays), traffics_(traffics),
      ntraffics_(traffics.size()), nspecs_(evaluators.size()),
      points_(arrays.size() * traffics.size() * evaluators.size())
{
    // The scalar path validates per point; once per pattern reaches
    // the same verdict (validate() depends on the pattern alone).
    for (const auto &traffic : traffics_)
        traffic.validate();

    // Flat pass 1: the spec-independent raw BER, once per array.
    std::vector<double> rawBer(arrays_.size());
    for (std::size_t a = 0; a < arrays_.size(); ++a)
        rawBer[a] = reliability::ReliabilityEvaluator::rawBitErrorRate(
            arrays_[a]);

    // Flat pass 2: the (array x spec) reliability table. Only the
    // ECC/scrub terms are re-evaluated along the innermost spec axis;
    // the FaultModel term comes from pass 1.
    relTable_.resize(arrays_.size() * nspecs_);
    for (std::size_t a = 0; a < arrays_.size(); ++a) {
        for (std::size_t s = 0; s < nspecs_; ++s) {
            relTable_[a * nspecs_ + s] =
                evaluators[s].evaluate(arrays_[a], rawBer[a]);
        }
    }
}

std::size_t
BatchEvalContext::defaultBatchSize(int jobs) const
{
    if (points_ == 0)
        return 1;
    // ~4 batches per worker keeps the tail of the schedule short when
    // per-batch costs vary (arrays differ in string sizes, ranges
    // differ in replayed-slot density)...
    std::size_t workers = jobs > 0 ? (std::size_t)jobs : 1;
    std::size_t fair = (points_ + workers * 4 - 1) / (workers * 4);
    // ...but a batch below one spec-run would recompute the shared
    // (array, traffic) base on both sides of the split, and above one
    // array-block there is nothing further to amortize.
    std::size_t block = std::max<std::size_t>(1, ntraffics_ * nspecs_);
    return std::clamp(fair, std::max<std::size_t>(1, nspecs_), block);
}

void
BatchEvalContext::evaluateRange(
    std::size_t begin, std::size_t end, std::vector<EvalResult> &out,
    const std::vector<char> *todo,
    const std::function<void(std::size_t)> &onSlot) const
{
    // Slots sharing an (array, traffic) pair are contiguous (the spec
    // axis is innermost), so one forward walk sees each pair as one
    // run: the first live slot of a run pays the base evaluation, the
    // rest copy it and swap in their spec's reliability row.
    constexpr std::size_t kNone = (std::size_t)-1;
    std::size_t basePair = kNone;
    std::size_t baseSlot = kNone;
    for (std::size_t idx = begin; idx < end && idx < points_; ++idx) {
        if (todo && !(*todo)[idx])
            continue;
        std::size_t pair = idx / nspecs_;
        std::size_t array = pair / ntraffics_;
        if (pair != basePair) {
            out[idx] = evaluate(arrays_[array],
                                traffics_[pair % ntraffics_]);
            basePair = pair;
            baseSlot = idx;
        } else {
            out[idx] = out[baseSlot];
        }
        out[idx].reliability =
            relTable_[array * nspecs_ + (idx - pair * nspecs_)];
        if (onSlot)
            onSlot(idx);
    }
}

} // namespace nvmexp
