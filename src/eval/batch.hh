/**
 * @file
 * Batched structure-of-arrays evaluation of the sweep inner loop.
 *
 * The expanded sweep is the flat cross product
 * arrays x traffics x reliability specs, spec-innermost. Evaluated
 * one point at a time (eval/engine.hh + reliability/reliability.hh),
 * every point pays the full base evaluation AND the full reliability
 * evaluation, although the base depends only on (array, traffic) and
 * the reliability numbers only on (array, spec) — with a reliability
 * axis the same lgamma-heavy binomial tails are recomputed once per
 * traffic pattern, and the same traffic math once per spec.
 *
 * BatchEvalContext hoists both: construction runs two flat-array
 * passes (raw FaultModel BER per array, then the full
 * (array x spec) reliability table re-evaluating only the ECC/scrub
 * terms along the innermost axis), and evaluateRange() computes each
 * (array, traffic) base exactly once per contiguous run of slots.
 * The per-point work left over is a struct copy.
 *
 * Bitwise identity with the scalar path is a hard requirement (the
 * differential test tier pins it), which is why the hoisted terms are
 * produced by the *same* scalar kernels — evaluate() and
 * ReliabilityEvaluator::evaluate() — on the same inputs, rather than
 * by re-derived vectorized math: re-expressing the arithmetic in
 * separate loops would leave the results at the mercy of per-site
 * floating-point contraction choices. The speedup comes from doing
 * the expensive work once per (pair | array x spec) instead of once
 * per point, not from reordering any individual computation.
 */

#ifndef NVMEXP_EVAL_BATCH_HH
#define NVMEXP_EVAL_BATCH_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "eval/engine.hh"
#include "reliability/reliability.hh"

namespace nvmexp {

/**
 * Precomputed state for evaluating one expanded sweep in batches.
 *
 * Holds references to the caller's arrays/traffics/evaluators (they
 * must outlive the context). Construction validates every traffic
 * pattern once and builds the immutable reliability table, so
 * evaluateRange() is const and safe to call concurrently on disjoint
 * slot ranges from the sweep engine's worker threads.
 */
class BatchEvalContext
{
  public:
    /** @param evaluators one per reliability spec; at least one (the
     *  sweep engine passes the implicit "none" spec when the sweep
     *  has no reliability axis). */
    BatchEvalContext(
        const std::vector<ArrayResult> &arrays,
        const std::vector<TrafficPattern> &traffics,
        const std::vector<reliability::ReliabilityEvaluator>
            &evaluators);

    /** Expanded points: arrays x traffics x specs. */
    std::size_t points() const { return points_; }

    /**
     * Slots per batched work item when the sweep doesn't pin one
     * ("batch_size" <= 0): enough batches to keep `jobs` workers
     * busy, but never splitting below one spec-run so the
     * per-(array, traffic) base amortizes. Scheduling only — any
     * batch size produces identical results.
     */
    std::size_t defaultBatchSize(int jobs) const;

    /**
     * Evaluate slots [begin, end) of the expanded cross product into
     * the same positions of `out` (sized points()). Slots with
     * todo[slot] == 0 are left untouched (checkpoint-replayed rows).
     * `onSlot`, when set, fires after each freshly evaluated slot —
     * the sweep engine journals the result there.
     */
    void evaluateRange(
        std::size_t begin, std::size_t end,
        std::vector<EvalResult> &out,
        const std::vector<char> *todo = nullptr,
        const std::function<void(std::size_t)> &onSlot = {}) const;

  private:
    const std::vector<ArrayResult> &arrays_;
    const std::vector<TrafficPattern> &traffics_;
    /** Reliability numbers for (array a, spec s) at a * nspecs_ + s:
     *  the flat table the innermost axis reads instead of
     *  re-evaluating the FaultModel per point. */
    std::vector<reliability::ReliabilityResult> relTable_;
    std::size_t ntraffics_;
    std::size_t nspecs_;
    std::size_t points_;
};

} // namespace nvmexp

#endif // NVMEXP_EVAL_BATCH_HH
