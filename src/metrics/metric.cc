#include "metrics/metric.hh"

#include <sstream>

#include "util/logging.hh"

namespace nvmexp {
namespace metrics {

const char *
directionName(Direction direction)
{
    return direction == Direction::Minimize ? "minimize" : "maximize";
}

namespace {

/** Builder for the common case: a metric defined on the embedded
 *  ArrayResult, automatically lifted to EvalResult via `.array`. */
Metric
arrayMetric(std::string name, std::string unit, std::string description,
            Direction direction, int cost,
            std::function<double(const ArrayResult &)> accessor)
{
    Metric m;
    m.name = std::move(name);
    m.unit = std::move(unit);
    m.description = std::move(description);
    m.direction = direction;
    m.cost = cost;
    m.array = accessor;
    m.eval = [accessor](const EvalResult &r) { return accessor(r.array); };
    return m;
}

/** Builder for application-level metrics (need traffic). */
Metric
evalMetric(std::string name, std::string unit, std::string description,
           Direction direction, int cost,
           std::function<double(const EvalResult &)> accessor)
{
    Metric m;
    m.name = std::move(name);
    m.unit = std::move(unit);
    m.description = std::move(description);
    m.direction = direction;
    m.cost = cost;
    m.eval = std::move(accessor);
    return m;
}

void
registerBuiltins(MetricRegistry &registry)
{
    using D = Direction;

    // Application-level metrics of the evaluation engine.
    registry.add(evalMetric("total_power", "W",
        "total memory power (dynamic + leakage)", D::Minimize, 0,
        [](const EvalResult &r) { return r.totalPower; }));
    registry.add(evalMetric("dynamic_power", "W",
        "dynamic power from read/write access energy", D::Minimize, 0,
        [](const EvalResult &r) { return r.dynamicPower; }));
    registry.add(evalMetric("leakage_power", "W",
        "leakage power under this workload", D::Minimize, 0,
        [](const EvalResult &r) { return r.leakagePower; }));
    registry.add(evalMetric("latency_load", "1",
        "aggregated access latency per second of execution "
        "(>1 slows the application)", D::Minimize, 0,
        [](const EvalResult &r) { return r.latencyLoad; }));
    registry.add(evalMetric("slowdown", "1",
        "application slowdown factor, max(1, latency_load)",
        D::Minimize, 0,
        [](const EvalResult &r) { return r.slowdown; }));
    registry.add(evalMetric("total_access_latency", "s",
        "aggregated access latency over the execution window",
        D::Minimize, 0,
        [](const EvalResult &r) { return r.totalAccessLatency; }));
    registry.add(evalMetric("lifetime_sec", "s",
        "projected array lifetime under this write rate",
        D::Maximize, 0,
        [](const EvalResult &r) { return r.lifetimeSec; }));
    registry.add(evalMetric("lifetime_years", "yr",
        "projected array lifetime in 365-day years", D::Maximize, 1,
        [](const EvalResult &r) { return r.lifetimeYears(); }));
    registry.add(evalMetric("meets_read_bw", "bool",
        "1 when the array sustains the read demand", D::Maximize, 0,
        [](const EvalResult &r) {
            return r.meetsReadBandwidth ? 1.0 : 0.0;
        }));
    registry.add(evalMetric("meets_write_bw", "bool",
        "1 when the array sustains the write demand", D::Maximize, 0,
        [](const EvalResult &r) {
            return r.meetsWriteBandwidth ? 1.0 : 0.0;
        }));
    registry.add(evalMetric("viable", "bool",
        "1 when the memory serves the workload at full speed",
        D::Maximize, 1,
        [](const EvalResult &r) { return r.viable() ? 1.0 : 0.0; }));

    // Reliability metrics: annotated onto every EvalResult by the
    // sweep engine from its ReliabilitySpec (scheme "none", no
    // scrubbing, for sweeps without a reliability axis), so they are
    // always resolvable in --filter/--pareto/--top and store queries.
    registry.add(evalMetric("raw_ber", "1",
        "raw per-bit error rate of the cell's fault model",
        D::Minimize, 0,
        [](const EvalResult &r) { return r.reliability.rawBer; }));
    registry.add(evalMetric("scrubbed_ber", "1",
        "per-bit error probability at the end of a scrub interval "
        "(raw BER + retention drift)", D::Minimize, 0,
        [](const EvalResult &r) { return r.reliability.scrubbedBer; }));
    registry.add(evalMetric("uncorrectable_word_rate", "1",
        "probability a codeword exceeds the ECC scheme's correction "
        "strength", D::Minimize, 0,
        [](const EvalResult &r) {
            return r.reliability.uncorrectableWordRate;
        }));
    registry.add(evalMetric("uncorrectable_image_rate", "1",
        "probability any codeword of the full array is uncorrectable",
        D::Minimize, 0,
        [](const EvalResult &r) {
            return r.reliability.uncorrectableImageRate;
        }));
    registry.add(evalMetric("ecc_overhead", "1",
        "ECC storage overhead: stored bits / data bits", D::Minimize, 0,
        [](const EvalResult &r) { return r.reliability.eccOverhead; }));
    registry.add(evalMetric("effective_capacity_mib", "MiB",
        "data capacity after ECC code overhead", D::Maximize, 1,
        [](const EvalResult &r) {
            return r.array.capacityBytes / r.reliability.eccOverhead /
                (1024.0 * 1024.0);
        }));
    registry.add(evalMetric("effective_density_mb_per_mm2", "Mb/mm^2",
        "storage density after ECC code overhead", D::Maximize, 1,
        [](const EvalResult &r) {
            return r.array.densityMbPerMm2() /
                r.reliability.eccOverhead;
        }));

    // Array-characterization metrics, lifted through `.array`.
    registry.add(arrayMetric("read_latency", "s",
        "full read access latency", D::Minimize, 0,
        [](const ArrayResult &a) { return a.readLatency; }));
    registry.add(arrayMetric("write_latency", "s",
        "full write access latency", D::Minimize, 0,
        [](const ArrayResult &a) { return a.writeLatency; }));
    registry.add(arrayMetric("read_energy", "J",
        "energy per word read", D::Minimize, 0,
        [](const ArrayResult &a) { return a.readEnergy; }));
    registry.add(arrayMetric("write_energy", "J",
        "energy per word write", D::Minimize, 0,
        [](const ArrayResult &a) { return a.writeEnergy; }));
    registry.add(arrayMetric("leakage", "W",
        "whole-array leakage power", D::Minimize, 0,
        [](const ArrayResult &a) { return a.leakage; }));
    registry.add(arrayMetric("area_m2", "m^2",
        "whole-array silicon area (SI; the constraint adapter's "
        "unit)", D::Minimize, 0,
        [](const ArrayResult &a) { return a.areaM2; }));
    registry.add(arrayMetric("area_mm2", "mm^2",
        "whole-array silicon area", D::Minimize, 1,
        [](const ArrayResult &a) { return a.areaM2 * 1e6; }));
    registry.add(arrayMetric("area_efficiency", "1",
        "cell area / total area", D::Maximize, 0,
        [](const ArrayResult &a) { return a.areaEfficiency; }));
    registry.add(arrayMetric("read_bandwidth", "B/s",
        "peak deliverable read bandwidth", D::Maximize, 0,
        [](const ArrayResult &a) { return a.readBandwidth; }));
    registry.add(arrayMetric("write_bandwidth", "B/s",
        "peak deliverable write bandwidth", D::Maximize, 0,
        [](const ArrayResult &a) { return a.writeBandwidth; }));
    registry.add(arrayMetric("density_mb_per_mm2", "Mb/mm^2",
        "storage density", D::Maximize, 1,
        [](const ArrayResult &a) { return a.densityMbPerMm2(); }));
    registry.add(arrayMetric("read_edp", "J*s",
        "read energy-delay product", D::Minimize, 1,
        [](const ArrayResult &a) {
            return a.metric(OptTarget::ReadEDP);
        }));
    registry.add(arrayMetric("write_edp", "J*s",
        "write energy-delay product", D::Minimize, 1,
        [](const ArrayResult &a) {
            return a.metric(OptTarget::WriteEDP);
        }));
    registry.add(arrayMetric("read_energy_per_bit", "J/bit",
        "read energy per bit", D::Minimize, 1,
        [](const ArrayResult &a) { return a.readEnergyPerBit(); }));
    registry.add(arrayMetric("write_energy_per_bit", "J/bit",
        "write energy per bit", D::Minimize, 1,
        [](const ArrayResult &a) { return a.writeEnergyPerBit(); }));
    registry.add(arrayMetric("capacity_mib", "MiB",
        "array capacity", D::Maximize, 1,
        [](const ArrayResult &a) {
            return a.capacityBytes / (1024.0 * 1024.0);
        }));
}

} // namespace

MetricRegistry &
MetricRegistry::instance()
{
    static MetricRegistry *const registry = [] {
        auto *r = new MetricRegistry();
        registerBuiltins(*r);
        return r;
    }();
    return *registry;
}

void
MetricRegistry::add(Metric metric)
{
    if (metric.name.empty())
        fatal("metric registry: metric with empty name (registration #",
              metrics_.size(), ")");
    if (!metric.eval)
        fatal("metric '", metric.name, "': missing eval accessor");
    auto [it, inserted] =
        metrics_.emplace(metric.name, std::move(metric));
    if (!inserted)
        fatal("metric '", it->first, "' registered twice");
}

const Metric *
MetricRegistry::find(const std::string &name) const
{
    auto it = metrics_.find(name);
    return it == metrics_.end() ? nullptr : &it->second;
}

const Metric &
MetricRegistry::require(const std::string &name,
                        const std::string &context) const
{
    const Metric *m = find(name);
    if (!m) {
        std::ostringstream known;
        for (const auto &entry : names())
            known << " " << entry;
        fatal(context.empty() ? "metric" : context + ": metric", " '",
              name, "' unknown (known metrics:", known.str(), ")");
    }
    return *m;
}

std::vector<std::string>
MetricRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto &[name, m] : metrics_)
        out.push_back(name);
    return out;  // std::map iteration is already sorted
}

const Metric &
metric(const std::string &name)
{
    return MetricRegistry::instance().require(name);
}

} // namespace metrics
} // namespace nvmexp
