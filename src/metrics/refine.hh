/**
 * @file
 * Named-metric refinement algorithms: the dashboard verbs of the
 * paper's "filter and refine" stage (Fig. 2) expressed over registry
 * metric names instead of ad-hoc lambdas, so the same operation is
 * addressable from JSON configs, the CLI, store queries, and study
 * drivers — and serializes losslessly.
 *
 * All verbs fold each metric's minimize/maximize direction ("best"
 * total_power is the smallest, "best" density the largest) and skip
 * NaN-valued rows when ranking.
 */

#ifndef NVMEXP_METRICS_REFINE_HH
#define NVMEXP_METRICS_REFINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "metrics/metric.hh"

namespace nvmexp {
namespace metrics {

/**
 * N-dimensional Pareto front over named metrics (direction-folded, so
 * maximize metrics contribute their negation). Two names hit the
 * sorted 2-D fast path of paretoFrontND and reproduce the legacy 2-D
 * front exactly. Rows with a NaN value in any named metric are
 * dropped before the scan (they can neither dominate nor be
 * dominated, and would poison the sort). Input order is preserved;
 * unknown names are fatal with `context`.
 */
std::vector<EvalResult>
paretoByMetrics(const std::vector<EvalResult> &results,
                const std::vector<std::string> &names,
                const std::string &context = "");

/** Pointer to the best result under a named metric (direction-aware,
 *  NaN rows skipped), or nullptr when empty / all-NaN. */
const EvalResult *bestByMetric(const std::vector<EvalResult> &results,
                               const std::string &name,
                               const std::string &context = "");

/**
 * The k best results under a named metric, best first (stable: rows
 * with equal values keep input order; NaN rows are dropped). k >= the
 * number of rankable rows returns them all.
 */
std::vector<EvalResult>
topByMetric(const std::vector<EvalResult> &results,
            const std::string &name, std::size_t k,
            const std::string &context = "");

/**
 * Parse a "pareto" JSON array of metric names, validating each
 * against the registry (fatal with `context` on unknowns or an empty
 * array). Shared by the config front-end and store queries.
 */
std::vector<std::string>
paretoMetricsFromJson(const JsonValue &doc, const std::string &context);

/** A validated "top_k" specification. */
struct TopSpec
{
    std::string metric;
    std::size_t k = 0;
};

/** Parse a "top_k" JSON object {"metric": <name>, "k": <positive
 *  integer>}; fatal with `context` on unknown metric or bad k. */
TopSpec topSpecFromJson(const JsonValue &doc,
                        const std::string &context);

} // namespace metrics
} // namespace nvmexp

#endif // NVMEXP_METRICS_REFINE_HH
