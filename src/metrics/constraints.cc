#include "metrics/constraints.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmexp {
namespace metrics {

namespace {

struct OpName
{
    const char *text;
    ConstraintOp op;
};

/** Two-character operators first: "<=" must not parse as "<" + "=". */
constexpr OpName kOpNames[] = {
    {"<=", ConstraintOp::LE}, {">=", ConstraintOp::GE},
    {"==", ConstraintOp::EQ}, {"!=", ConstraintOp::NE},
    {"<", ConstraintOp::LT},  {">", ConstraintOp::GT},
};

std::string
trim(const std::string &text)
{
    auto begin = text.find_first_not_of(" \t");
    auto end = text.find_last_not_of(" \t");
    if (begin == std::string::npos)
        return "";
    return text.substr(begin, end - begin + 1);
}

std::string
withContext(const std::string &context)
{
    return context.empty() ? "constraint" : context + ": constraint";
}

} // namespace

const char *
constraintOpName(ConstraintOp op)
{
    switch (op) {
      case ConstraintOp::LT: return "<";
      case ConstraintOp::LE: return "<=";
      case ConstraintOp::GT: return ">";
      case ConstraintOp::GE: return ">=";
      case ConstraintOp::EQ: return "==";
      case ConstraintOp::NE: return "!=";
      default: panic("bad ConstraintOp ", (int)op);
    }
}

ConstraintOp
constraintOpFromName(const std::string &name, const std::string &context)
{
    for (const auto &entry : kOpNames)
        if (name == entry.text)
            return entry.op;
    fatal(withContext(context), ": operator '", name,
          "' unknown (expected <, <=, >, >=, ==, or !=)");
}

bool
ConstraintClause::holds(double value) const
{
    switch (op) {
      case ConstraintOp::LT: return value < bound;
      case ConstraintOp::LE: return value <= bound;
      case ConstraintOp::GT: return value > bound;
      case ConstraintOp::GE: return value >= bound;
      case ConstraintOp::EQ: return value == bound;
      case ConstraintOp::NE: return value != bound;
      default: panic("bad ConstraintOp ", (int)op);
    }
}

std::string
ConstraintClause::text() const
{
    return metric + constraintOpName(op) + JsonValue::formatNumber(bound);
}

ConstraintClause
ConstraintClause::parse(const std::string &input,
                        const std::string &context)
{
    std::string clause = trim(input);
    // Find the first operator character; longest form wins so
    // "lifetime_years>=3" splits at ">=", not ">" + "=3".
    std::size_t split = clause.find_first_of("<>=!");
    if (split == std::string::npos || split == 0) {
        fatal(withContext(context), " '", input,
              "' malformed (expected <metric><op><bound>, e.g. "
              "total_power<0.5)");
    }
    std::size_t opLen =
        (split + 1 < clause.size() && clause[split + 1] == '=') ? 2 : 1;

    ConstraintClause out;
    out.metric = trim(clause.substr(0, split));
    MetricRegistry::instance().require(out.metric, withContext(context));
    out.op = constraintOpFromName(clause.substr(split, opLen), context);

    // JsonValue::parseNumber, not strtod: strtod honors LC_NUMERIC, so
    // under a comma-decimal locale "total_power<0.5" would stop at the
    // '.' and fail while "0,5" would silently parse as 0.5. The shared
    // parse applies the JSON scanner's locale-independent rules.
    std::string boundText = trim(clause.substr(split + opLen));
    if (!JsonValue::parseNumber(boundText, out.bound) ||
        std::isnan(out.bound)) {
        fatal(withContext(context), " '", input, "': bound '",
              boundText, "' is not a number");
    }
    return out;
}

JsonValue
ConstraintClause::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("metric", JsonValue::makeString(metric));
    v.set("op", JsonValue::makeString(constraintOpName(op)));
    v.set("bound", JsonValue::makeNumber(bound));
    return v;
}

ConstraintClause
ConstraintClause::fromJson(const JsonValue &doc,
                           const std::string &context)
{
    if (doc.isString())
        return parse(doc.asString(), context);
    if (!doc.isObject()) {
        fatal(withContext(context),
              " entries must be \"metric<bound\" strings or "
              "{\"metric\", \"op\", \"bound\"} objects");
    }
    ConstraintClause out;
    out.metric = doc.at("metric").asString();
    MetricRegistry::instance().require(out.metric, withContext(context));
    out.op = constraintOpFromName(doc.at("op").asString(), context);
    if (!doc.at("bound").isNumber()) {
        fatal(withContext(context), " on '", out.metric,
              "': \"bound\" must be a number");
    }
    out.bound = doc.at("bound").asNumber();
    if (std::isnan(out.bound)) {
        fatal(withContext(context), " on '", out.metric,
              "': \"bound\" must not be NaN");
    }
    return out;
}

void
ConstraintSet::add(ConstraintClause clause)
{
    const Metric &m = metrics::metric(clause.metric);  // unknown fatal
    clauses_.push_back(std::move(clause));
    evalOrder_.emplace_back(clauses_.size() - 1, &m);
    std::stable_sort(evalOrder_.begin(), evalOrder_.end(),
                     [](const auto &lhs, const auto &rhs) {
                         return lhs.second->cost < rhs.second->cost;
                     });
}

void
ConstraintSet::add(const std::string &text, const std::string &context)
{
    add(ConstraintClause::parse(text, context));
}

bool
ConstraintSet::satisfied(const EvalResult &result) const
{
    for (const auto &[index, metric] : evalOrder_)
        if (!clauses_[index].holds(metric->eval(result)))
            return false;
    return true;
}

std::vector<EvalResult>
ConstraintSet::filter(const std::vector<EvalResult> &results) const
{
    std::vector<EvalResult> out;
    out.reserve(results.size());
    for (const auto &result : results)
        if (satisfied(result))
            out.push_back(result);
    return out;
}

JsonValue
ConstraintSet::toJson() const
{
    JsonValue v = JsonValue::makeArray();
    for (const auto &clause : clauses_)
        v.append(clause.toJson());
    return v;
}

ConstraintSet
ConstraintSet::fromJson(const JsonValue &doc, const std::string &context)
{
    ConstraintSet out;
    for (const auto &entry : doc.asArray())
        out.add(ConstraintClause::fromJson(entry, context));
    return out;
}

ConstraintSet
ConstraintSet::fromLegacy(const Constraints &legacy)
{
    ConstraintSet out;
    if (legacy.maxLatencyLoad > 0.0) {
        out.add({"latency_load", ConstraintOp::LE,
                 legacy.maxLatencyLoad});
    }
    if (legacy.maxPowerWatts > 0.0)
        out.add({"total_power", ConstraintOp::LE, legacy.maxPowerWatts});
    if (legacy.maxAreaM2 > 0.0)
        out.add({"area_m2", ConstraintOp::LE, legacy.maxAreaM2});
    if (legacy.minLifetimeSec > 0.0) {
        out.add({"lifetime_sec", ConstraintOp::GE,
                 legacy.minLifetimeSec});
    }
    if (legacy.maxReadLatency > 0.0)
        out.add({"read_latency", ConstraintOp::LE, legacy.maxReadLatency});
    if (legacy.maxWriteLatency > 0.0) {
        out.add({"write_latency", ConstraintOp::LE,
                 legacy.maxWriteLatency});
    }
    if (legacy.requireBandwidth) {
        out.add({"meets_read_bw", ConstraintOp::GE, 1.0});
        out.add({"meets_write_bw", ConstraintOp::GE, 1.0});
    }
    return out;
}

} // namespace metrics
} // namespace nvmexp
