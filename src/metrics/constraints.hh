/**
 * @file
 * Declarative constraints: the fixed-field Constraints struct
 * generalized to a set of (metric, op, bound) clauses over the metric
 * registry.
 *
 * A clause is expressible in three equivalent forms that convert
 * losslessly into each other:
 *
 *   text    "total_power<0.5"           (the CLI's --filter syntax)
 *   JSON    {"metric": "total_power", "op": "<", "bound": 0.5}
 *   C++     ConstraintClause{"total_power", ConstraintOp::LT, 0.5}
 *
 * so the same filter can live in a JSON config, a CLI flag, a store's
 * query.json, or a study driver. Clause order is preserved for
 * serialization, but evaluation proceeds cheapest-metric-first —
 * clauses are pure ANDed predicates, so reordering never changes
 * which rows pass.
 */

#ifndef NVMEXP_METRICS_CONSTRAINTS_HH
#define NVMEXP_METRICS_CONSTRAINTS_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/sweep.hh"
#include "metrics/metric.hh"
#include "util/json.hh"

namespace nvmexp {
namespace metrics {

/** Comparison operator of one constraint clause. */
enum class ConstraintOp { LT, LE, GT, GE, EQ, NE };

/** @return "<", "<=", ">", ">=", "==", or "!=". */
const char *constraintOpName(ConstraintOp op);

/** Inverse of constraintOpName; fatal (with `context`) on anything
 *  else. */
ConstraintOp constraintOpFromName(const std::string &name,
                                  const std::string &context = "");

/** One (metric, op, bound) clause. */
struct ConstraintClause
{
    std::string metric;  ///< registry key; validated on construction
    ConstraintOp op = ConstraintOp::LE;
    double bound = 0.0;

    /** Apply the comparison to an already-extracted value (extraction
     *  lives in ConstraintSet, which caches the resolved metric so
     *  per-row evaluation never touches the registry). */
    bool holds(double value) const;

    /** Canonical text form, e.g. "total_power<0.5". */
    std::string text() const;

    /**
     * Parse "metric<bound" / "metric>=bound" / ... text. The metric
     * must be registered, the operator one of the six forms, and the
     * bound a finite double — each failure is fatal with `context`
     * (e.g. "--filter") and the offending input in the message.
     */
    static ConstraintClause parse(const std::string &text,
                                  const std::string &context = "");

    JsonValue toJson() const;
    /** Accepts the object form or a text-form JSON string. */
    static ConstraintClause fromJson(const JsonValue &doc,
                                     const std::string &context = "");
};

/**
 * An ANDed set of clauses: the declarative replacement for the
 * legacy Constraints struct (kept as a thin adapter via fromLegacy so
 * satisfies()/filterResults() callers migrate incrementally).
 */
class ConstraintSet
{
  public:
    ConstraintSet() = default;

    /** Append a clause (declared order is preserved for
     *  serialization; evaluation is cheapest-first). */
    void add(ConstraintClause clause);
    /** Parse-and-append a text clause. */
    void add(const std::string &text, const std::string &context = "");

    bool empty() const { return clauses_.empty(); }
    std::size_t size() const { return clauses_.size(); }
    /** Clauses in declared order. */
    const std::vector<ConstraintClause> &clauses() const
    {
        return clauses_;
    }

    /** True iff every clause holds (vacuously true when empty). */
    bool satisfied(const EvalResult &result) const;

    /** Keep only the rows satisfying every clause (order
     *  preserved). */
    std::vector<EvalResult>
    filter(const std::vector<EvalResult> &results) const;

    /** Serialize as a JSON array of clause objects. */
    JsonValue toJson() const;
    /** Parse a JSON array of clause objects / text strings. */
    static ConstraintSet fromJson(const JsonValue &doc,
                                  const std::string &context = "");

    /**
     * Adapter from the legacy fixed-field struct: each enabled field
     * becomes the equivalent clause over the same underlying value
     * (e.g. maxAreaM2 compares "area_m2", not the display-oriented
     * "area_mm2", so the comparison is bit-identical to the old
     * hard-coded filter for every ordered value). One deliberate
     * semantic change: the old reject-style checks let a NaN metric
     * value pass every constraint, while clauses require the
     * comparison to hold, so NaN-valued rows now fail filters — the
     * safe dashboard behavior. Sweep metrics are NaN-free, so study
     * and golden outputs are unaffected.
     */
    static ConstraintSet fromLegacy(const Constraints &legacy);

  private:
    std::vector<ConstraintClause> clauses_;  ///< declared order
    /**
     * Evaluation plan: (clause index, resolved metric) sorted by
     * metric cost (stable), so satisfied() rejects on cheap clauses
     * before computing derived metrics — with no registry lookups on
     * the per-row path. Metric pointers stay valid for the process
     * lifetime (the registry is a never-destroyed singleton whose map
     * nodes are stable).
     */
    std::vector<std::pair<std::size_t, const Metric *>> evalOrder_;
};

} // namespace metrics
} // namespace nvmexp

#endif // NVMEXP_METRICS_CONSTRAINTS_HH
