#include "metrics/refine.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace nvmexp {
namespace metrics {

std::vector<EvalResult>
paretoByMetrics(const std::vector<EvalResult> &results,
                const std::vector<std::string> &names,
                const std::string &context)
{
    if (names.empty()) {
        fatal(context.empty() ? "pareto" : context,
              ": needs at least one metric name");
    }
    std::vector<const Metric *> resolved;
    resolved.reserve(names.size());
    for (const auto &name : names) {
        resolved.push_back(&MetricRegistry::instance().require(
            name, context.empty() ? "pareto" : context));
    }

    // Drop rows with a NaN key: an unordered value can neither
    // dominate nor be dominated, and NaN keys would violate the sort
    // precondition inside paretoFrontND. Rows are only copied when a
    // NaN actually occurs — the common all-ordered case runs on the
    // input vector directly.
    auto ordered = [&](const EvalResult &r) {
        for (const Metric *m : resolved)
            if (std::isnan(m->eval(r)))
                return false;
        return true;
    };
    const std::vector<EvalResult> *input = &results;
    std::vector<EvalResult> rankable;
    if (!std::all_of(results.begin(), results.end(), ordered)) {
        rankable.reserve(results.size());
        for (const auto &r : results)
            if (ordered(r))
                rankable.push_back(r);
        input = &rankable;
    }

    std::vector<std::function<double(const EvalResult &)>> keys;
    keys.reserve(resolved.size());
    for (const Metric *m : resolved) {
        keys.push_back(
            [m](const EvalResult &r) { return m->ascending(r); });
    }
    return paretoFrontND(*input, keys);
}

const EvalResult *
bestByMetric(const std::vector<EvalResult> &results,
             const std::string &name, const std::string &context)
{
    const Metric &m = MetricRegistry::instance().require(
        name, context.empty() ? "best-by" : context);
    return bestBy(results,
                  [&m](const EvalResult &r) { return m.ascending(r); });
}

std::vector<EvalResult>
topByMetric(const std::vector<EvalResult> &results,
            const std::string &name, std::size_t k,
            const std::string &context)
{
    const Metric &m = MetricRegistry::instance().require(
        name, context.empty() ? "top-k" : context);
    if (k == 0) {
        // The JSON/CLI paths reject k=0 at parse time; catch the
        // programmatic path too rather than silently returning {}.
        fatal(context.empty() ? "top-k" : context,
              ": k must be a positive count");
    }

    std::vector<double> keys(results.size());
    std::vector<std::size_t> order;
    order.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        keys[i] = m.ascending(results[i]);
        if (!std::isnan(keys[i]))
            order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t lhs, std::size_t rhs) {
                         return keys[lhs] < keys[rhs];
                     });
    if (order.size() > k)
        order.resize(k);

    std::vector<EvalResult> out;
    out.reserve(order.size());
    for (std::size_t index : order)
        out.push_back(results[index]);
    return out;
}

std::vector<std::string>
paretoMetricsFromJson(const JsonValue &doc, const std::string &context)
{
    std::vector<std::string> names;
    for (const auto &entry : doc.asArray()) {
        if (!entry.isString())
            fatal(context, ": \"pareto\" entries must be metric names");
        MetricRegistry::instance().require(entry.asString(),
                                           context + ": \"pareto\"");
        names.push_back(entry.asString());
    }
    if (names.empty())
        fatal(context, ": \"pareto\" needs at least one metric name");
    return names;
}

TopSpec
topSpecFromJson(const JsonValue &doc, const std::string &context)
{
    if (!doc.isObject()) {
        fatal(context, ": \"top_k\" must be an object "
              "{\"metric\": <name>, \"k\": <count>}");
    }
    TopSpec spec;
    spec.metric = doc.at("metric").asString();
    MetricRegistry::instance().require(spec.metric,
                                       context + ": \"top_k\"");
    if (!doc.at("k").isNumber()) {
        fatal(context, ": \"top_k\" k must be a positive integer");
    }
    double k = doc.at("k").asNumber();
    // Range-check with floor() before any integer cast: converting an
    // out-of-size_t-range double is undefined behavior, so the guard
    // must not perform the conversion it is guarding. 2^53 keeps every
    // accepted k exactly representable.
    if (!(k >= 1.0) || k > 9007199254740992.0 || k != std::floor(k)) {
        fatal(context, ": \"top_k\" k must be a positive integer, "
              "got ", JsonValue::formatNumber(k));
    }
    spec.k = (std::size_t)k;
    return spec;
}

} // namespace metrics
} // namespace nvmexp
