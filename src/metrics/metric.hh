/**
 * @file
 * First-class metric vocabulary: the "filter and refine" stage of the
 * NVMExplorer flow (paper Fig. 2) as a string-keyed registry instead
 * of ad-hoc lambdas.
 *
 * A Metric names one number derivable from an evaluation row — either
 * an application-level quantity of the EvalResult ("total_power",
 * "latency_load") or an array-characterization quantity of the
 * embedded ArrayResult ("read_latency", "area_mm2", "read_edp") — and
 * carries the metadata downstream consumers need: display unit,
 * minimize/maximize direction, and a relative evaluation cost used to
 * order constraint clauses cheapest-first. Registering metrics by name
 * makes every refinement path (sweep filters, store queries, study
 * drivers, the CLI's --filter/--pareto/--top flags, JSON config keys)
 * dispatch through one declarative vocabulary that serializes
 * losslessly — the same move the workload registry made for traffic
 * sources.
 */

#ifndef NVMEXP_METRICS_METRIC_HH
#define NVMEXP_METRICS_METRIC_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "eval/engine.hh"
#include "nvsim/array_model.hh"

namespace nvmexp {
namespace metrics {

/** Which way "better" points for a metric. */
enum class Direction { Minimize, Maximize };

/** @return "minimize" or "maximize". */
const char *directionName(Direction direction);

/** One named, unit-annotated accessor over evaluation results. */
struct Metric
{
    std::string name;         ///< registry key, e.g. "total_power"
    std::string unit;         ///< display unit, e.g. "W" ("1" = unitless)
    std::string description;  ///< one-liner for --list-metrics
    Direction direction = Direction::Minimize;
    /**
     * Relative evaluation cost rank (0 = direct field read, 1 =
     * derived arithmetic). ConstraintSet evaluates clauses
     * cheapest-first; the ordering never changes which rows pass.
     */
    int cost = 0;

    /** Value over a full evaluation row; always set. */
    std::function<double(const EvalResult &)> eval;
    /** Value over a bare array characterization; null for metrics that
     *  need traffic (e.g. "total_power"). */
    std::function<double(const ArrayResult &)> array;

    bool minimize() const { return direction == Direction::Minimize; }
    /** True when the metric is defined on bare ArrayResults too. */
    bool hasArrayAccessor() const { return (bool)array; }

    /**
     * Direction-folded value: the metric negated for Maximize metrics,
     * so every consumer can uniformly minimize. Exact (negation does
     * not round), which keeps registry-dispatched call sites bitwise
     * identical to hand-written `-value` ranking.
     */
    double ascending(const EvalResult &r) const
    {
        return minimize() ? eval(r) : -eval(r);
    }
};

/**
 * Process-wide string-keyed metric registry. Built-in metrics are
 * registered on first access; embedders may add their own at any time.
 */
class MetricRegistry
{
  public:
    /** The singleton, with built-ins registered. */
    static MetricRegistry &instance();

    /** Register a metric; duplicate or empty names and a missing eval
     *  accessor are fatal. */
    void add(Metric metric);

    /** @return the metric or nullptr when unknown. */
    const Metric *find(const std::string &name) const;

    /** @return the metric; fatal with the known-name list when
     *  unknown (`context` prefixes the message, e.g. "--filter"). */
    const Metric &require(const std::string &name,
                          const std::string &context = "") const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    MetricRegistry() = default;

    std::map<std::string, Metric> metrics_;
};

/** Shorthand for MetricRegistry::instance().require(name). */
const Metric &metric(const std::string &name);

} // namespace metrics
} // namespace nvmexp

#endif // NVMEXP_METRICS_METRIC_HH
