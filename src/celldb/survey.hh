/**
 * @file
 * Surveyed-publication database of eNVM cell characteristics.
 *
 * The paper compiles 122 ISSCC/IEDM/VLSI publications (2016-2020) into
 * per-technology parameter ranges (Table I). This module carries a
 * representative corpus of survey entries spanning those ranges; fields
 * a publication did not report are left unset (std::nullopt), exactly
 * the situation the tentpole methodology (tentpole.hh) is designed to
 * handle.
 */

#ifndef NVMEXP_CELLDB_SURVEY_HH
#define NVMEXP_CELLDB_SURVEY_HH

#include <optional>
#include <string>
#include <vector>

#include "celldb/cell.hh"

namespace nvmexp {

/**
 * One published eNVM demonstration. Optional fields model the grey
 * cells of Table I: parameters unavailable in the publication.
 */
struct SurveyEntry
{
    std::string label;     ///< e.g. "ISSCC18-STT-1Mb"
    CellTech tech = CellTech::STT;
    std::string venue;     ///< ISSCC / IEDM / VLSI
    int year = 2018;
    int nodeNm = 22;       ///< process node of the demonstration

    std::optional<double> areaF2;        ///< cell footprint [F^2]
    std::optional<double> writePulseNs;  ///< program pulse width [ns]
    std::optional<double> writeCurrentUa;///< program current [uA]
    std::optional<double> writeVoltage;  ///< program voltage [V]
    std::optional<double> readVoltage;   ///< sensing voltage [V]
    std::optional<double> ronKohm;       ///< low-resistance state [kOhm]
    std::optional<double> roffKohm;      ///< high-resistance state [kOhm]
    std::optional<double> endurance;     ///< cycles
    std::optional<double> retentionSec;  ///< seconds
    bool mlcDemonstrated = false;

    /** Array-level reported results, kept for validation (Fig. 4). */
    std::optional<double> arrayCapacityMb;
    std::optional<double> arrayReadLatencyNs;
    std::optional<double> arrayReadEnergyPjPerBit;

    /** Storage density figure of merit used to pick tentpoles. */
    std::optional<double> densityBitsPerF2() const;
};

/**
 * The full survey corpus plus query helpers.
 */
class SurveyDatabase
{
  public:
    /** Build the built-in corpus (Table I ranges, 2016-2020). */
    SurveyDatabase();

    /** All entries. */
    const std::vector<SurveyEntry> &entries() const { return entries_; }

    /** Entries for one technology class. */
    std::vector<SurveyEntry> entriesFor(CellTech tech) const;

    /** Add a user entry (the database is extensible, Sec. III-A). */
    void addEntry(const SurveyEntry &entry);

    /** Number of distinct publications for a technology. */
    std::size_t countFor(CellTech tech) const;

    /**
     * Min/max of a parameter across one technology's entries;
     * returns nullopt when no entry reports the parameter.
     */
    std::optional<std::pair<double, double>>
    paramRange(CellTech tech,
               std::optional<double> SurveyEntry::*field) const;

  private:
    std::vector<SurveyEntry> entries_;
};

} // namespace nvmexp

#endif // NVMEXP_CELLDB_SURVEY_HH
