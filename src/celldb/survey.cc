#include "celldb/survey.hh"

#include <algorithm>

#include "util/logging.hh"

namespace nvmexp {

std::optional<double>
SurveyEntry::densityBitsPerF2() const
{
    if (!areaF2)
        return std::nullopt;
    double bits = mlcDemonstrated ? 2.0 : 1.0;
    // Density tentpoles are computed on SLC footprints (the paper's
    // case studies fix MLC separately), so use one bit per cell here
    // and keep the MLC flag for capability checks.
    (void)bits;
    return 1.0 / *areaF2;
}

namespace {

/**
 * Representative corpus spanning the Table I ranges. Labels reference
 * the venue/year/topic of the publications the paper surveys; the
 * parameter values are placed to reproduce the per-technology ranges
 * in Table I of the paper (grey cells -> unset optionals).
 */
std::vector<SurveyEntry>
builtinCorpus()
{
    std::vector<SurveyEntry> db;
    auto add = [&](SurveyEntry e) { db.push_back(std::move(e)); };

    // ---------------------------------------------------------- PCM
    add({.label = "IEDM18-PCM-16Mb-auto", .tech = CellTech::PCM,
         .venue = "IEDM", .year = 2018, .nodeNm = 28,
         .areaF2 = 32.0, .writePulseNs = 300.0, .writeCurrentUa = 200.0,
         .writeVoltage = 1.5, .readVoltage = 0.3,
         .ronKohm = 10.0, .roffKohm = 1000.0,
         .endurance = 1e6, .retentionSec = 1e9,
         .arrayCapacityMb = 128.0, .arrayReadLatencyNs = 45.0});
    add({.label = "IEDM16-PCM-128Mb-GaSbGe", .tech = CellTech::PCM,
         .venue = "IEDM", .year = 2016, .nodeNm = 40,
         .areaF2 = 40.0, .writeVoltage = 1.8,
         .retentionSec = 1e10, .mlcDemonstrated = true});
    add({.label = "VLSI16-PCM-intergranular", .tech = CellTech::PCM,
         .venue = "VLSI", .year = 2016, .nodeNm = 40,
         .areaF2 = 36.0, .writePulseNs = 100.0, .writeCurrentUa = 90.0,
         .writeVoltage = 1.2, .endurance = 1e8});
    add({.label = "IEDM18-PCM-40nm-logic", .tech = CellTech::PCM,
         .venue = "IEDM", .year = 2018, .nodeNm = 40,
         .areaF2 = 25.0, .writePulseNs = 100.0, .writeCurrentUa = 100.0,
         .writeVoltage = 1.2, .readVoltage = 0.2,
         .ronKohm = 8.0, .roffKohm = 800.0,
         .endurance = 1e9, .retentionSec = 1e9});
    add({.label = "ISSCC16-PCM-MLC-drift", .tech = CellTech::PCM,
         .venue = "ISSCC", .year = 2016, .nodeNm = 90,
         .areaF2 = 38.0, .writePulseNs = 30000.0, .writeCurrentUa = 300.0,
         .writeVoltage = 2.7, .readVoltage = 1.0,
         .ronKohm = 300.0, .roffKohm = 30000.0,
         .endurance = 1e5, .retentionSec = 1e8,
         .mlcDemonstrated = true});
    add({.label = "VLSI20-PCM-OTS-MLC", .tech = CellTech::PCM,
         .venue = "VLSI", .year = 2020, .nodeNm = 40,
         .areaF2 = 30.0, .writePulseNs = 500.0,
         .endurance = 1e7, .mlcDemonstrated = true});

    // ---------------------------------------------------------- STT
    add({.label = "ISSCC20-STT-32Mb-22nm", .tech = CellTech::STT,
         .venue = "ISSCC", .year = 2020, .nodeNm = 22,
         .areaF2 = 30.0, .writePulseNs = 20.0, .writeCurrentUa = 80.0,
         .writeVoltage = 0.9, .readVoltage = 0.15,
         .ronKohm = 2.5, .roffKohm = 6.0,
         .endurance = 1e6, .retentionSec = 3.2e8,
         .arrayCapacityMb = 32.0, .arrayReadLatencyNs = 10.0});
    add({.label = "ISSCC18-STT-1Mb-2p8ns", .tech = CellTech::STT,
         .venue = "ISSCC", .year = 2018, .nodeNm = 28,
         .areaF2 = 36.0, .writePulseNs = 10.0, .writeCurrentUa = 90.0,
         .writeVoltage = 1.2, .readVoltage = 0.15,
         .ronKohm = 2.5, .roffKohm = 6.0,
         .endurance = 1e8,
         .arrayCapacityMb = 1.0, .arrayReadLatencyNs = 2.8,
         .arrayReadEnergyPjPerBit = 0.06});
    add({.label = "IEDM19-STT-1Gb-28FDSOI", .tech = CellTech::STT,
         .venue = "IEDM", .year = 2019, .nodeNm = 28,
         .areaF2 = 25.0, .writePulseNs = 20.0,
         .endurance = 1e10, .retentionSec = 3.2e8});
    add({.label = "IEDM19-STT-2ns-LLC", .tech = CellTech::STT,
         .venue = "IEDM", .year = 2019, .nodeNm = 28,
         .areaF2 = 40.0, .writePulseNs = 2.0, .writeCurrentUa = 100.0,
         .writeVoltage = 0.8, .endurance = 1e12});
    add({.label = "IEDM16-STT-4Gb-compact", .tech = CellTech::STT,
         .venue = "IEDM", .year = 2016, .nodeNm = 22,
         .areaF2 = 14.0, .retentionSec = 1e8,
         .mlcDemonstrated = true});
    add({.label = "IEDM16-STT-unlimited-end", .tech = CellTech::STT,
         .venue = "IEDM", .year = 2016, .nodeNm = 28,
         .areaF2 = 60.0, .writePulseNs = 10.0, .writeCurrentUa = 50.0,
         .endurance = 1e15});
    add({.label = "VLSI20-STT-secure-slow", .tech = CellTech::STT,
         .venue = "VLSI", .year = 2020, .nodeNm = 90,
         .areaF2 = 75.0, .writePulseNs = 200.0, .writeCurrentUa = 250.0,
         .writeVoltage = 1.5, .readVoltage = 0.1,
         .ronKohm = 6.0, .roffKohm = 8.4,
         .endurance = 1e5});

    // ---------------------------------------------------------- SOT
    add({.label = "VLSI16-SOT-subns", .tech = CellTech::SOT,
         .venue = "VLSI", .year = 2016, .nodeNm = 90,
         .areaF2 = 20.0, .writePulseNs = 0.35, .writeCurrentUa = 100.0,
         .writeVoltage = 0.5, .readVoltage = 0.15,
         .ronKohm = 2.5, .roffKohm = 6.0, .retentionSec = 1e8});
    add({.label = "IEDM19-SOT-canted", .tech = CellTech::SOT,
         .venue = "IEDM", .year = 2019, .nodeNm = 90,
         .areaF2 = 30.0, .writePulseNs = 0.35, .endurance = 1e12});
    add({.label = "VLSI20-SOT-dualport", .tech = CellTech::SOT,
         .venue = "VLSI", .year = 2020, .nodeNm = 55,
         .areaF2 = 25.0, .writePulseNs = 17.0});

    // ---------------------------------------------------------- RRAM
    add({.label = "ISSCC18-RRAM-n40-256kx44", .tech = CellTech::RRAM,
         .venue = "ISSCC", .year = 2018, .nodeNm = 40,
         .areaF2 = 30.0, .writePulseNs = 100.0, .writeCurrentUa = 60.0,
         .writeVoltage = 1.5, .readVoltage = 0.2,
         .ronKohm = 10.0, .roffKohm = 200.0,
         .endurance = 1e6, .retentionSec = 3.2e8,
         .arrayCapacityMb = 11.0, .arrayReadLatencyNs = 10.0});
    add({.label = "ISSCC19-RRAM-22FFL-3p6Mb", .tech = CellTech::RRAM,
         .venue = "ISSCC", .year = 2019, .nodeNm = 22,
         .areaF2 = 25.0, .writePulseNs = 20.0, .readVoltage = 0.7,
         .endurance = 1e6,
         .arrayCapacityMb = 3.6, .arrayReadLatencyNs = 5.0});
    add({.label = "VLSI19-RRAM-22FFL", .tech = CellTech::RRAM,
         .venue = "VLSI", .year = 2019, .nodeNm = 22,
         .areaF2 = 20.0, .endurance = 1e4});
    add({.label = "IEDM17-RRAM-25nm-dense", .tech = CellTech::RRAM,
         .venue = "IEDM", .year = 2017, .nodeNm = 25,
         .areaF2 = 16.0, .retentionSec = 1e8, .mlcDemonstrated = true});
    add({.label = "IEDM16-RRAM-siox-slow", .tech = CellTech::RRAM,
         .venue = "IEDM", .year = 2016, .nodeNm = 130,
         .areaF2 = 53.0, .writePulseNs = 100000.0, .writeCurrentUa = 200.0,
         .writeVoltage = 2.5, .endurance = 1e3, .retentionSec = 1e3});
    add({.label = "ISSCC20-RRAM-2Mb-fast", .tech = CellTech::RRAM,
         .venue = "ISSCC", .year = 2020, .nodeNm = 40,
         .areaF2 = 28.0, .writePulseNs = 5.0, .writeCurrentUa = 40.0,
         .writeVoltage = 1.2, .endurance = 1e8, .mlcDemonstrated = true});

    // ---------------------------------------------------------- CTT
    add({.label = "VLSI19-CTT-14nm-finfet", .tech = CellTech::CTT,
         .venue = "VLSI", .year = 2019, .nodeNm = 14,
         .areaF2 = 36.0, .writePulseNs = 6e7, .writeCurrentUa = 10.0,
         .writeVoltage = 2.0, .readVoltage = 0.9,
         .ronKohm = 50.0, .roffKohm = 500.0,
         .endurance = 1e4, .retentionSec = 1e8,
         .mlcDemonstrated = true});
    add({.label = "DAC18-CTT-16nm-mlc", .tech = CellTech::CTT,
         .venue = "VLSI", .year = 2018, .nodeNm = 16,
         .areaF2 = 60.0, .writePulseNs = 2.6e9, .writeCurrentUa = 20.0,
         .writeVoltage = 2.2, .endurance = 1e4,
         .mlcDemonstrated = true});

    // --------------------------------------------------------- FeRAM
    add({.label = "VLSI20-FeRAM-HZO-1T1C", .tech = CellTech::FeRAM,
         .venue = "VLSI", .year = 2020, .nodeNm = 40,
         .areaF2 = 30.0, .writePulseNs = 14.0, .writeCurrentUa = 5.0,
         .writeVoltage = 2.5, .readVoltage = 1.5,
         .endurance = 1e11, .retentionSec = 1e5});
    add({.label = "IEDM17-FeRAM-Si-doped", .tech = CellTech::FeRAM,
         .venue = "IEDM", .year = 2017, .nodeNm = 40,
         .areaF2 = 60.0, .writePulseNs = 1000.0,
         .endurance = 1e4, .retentionSec = 1e8});

    // --------------------------------------------------------- FeFET
    add({.label = "IEDM17-FeFET-22FDX", .tech = CellTech::FeFET,
         .venue = "IEDM", .year = 2017, .nodeNm = 22,
         .areaF2 = 10.0, .writePulseNs = 100.0, .writeCurrentUa = 0.1,
         .writeVoltage = 3.0, .readVoltage = 1.2,
         .ronKohm = 20.0, .roffKohm = 2000.0,
         .endurance = 1e7, .retentionSec = 3.2e8});
    add({.label = "IEDM16-FeFET-28HKMG", .tech = CellTech::FeFET,
         .venue = "IEDM", .year = 2016, .nodeNm = 28,
         .areaF2 = 20.0, .writePulseNs = 1300.0, .writeCurrentUa = 0.5,
         .writeVoltage = 4.2, .endurance = 1e5 * 100.0,
         .retentionSec = 1e8});
    add({.label = "IEDM19-FeFET-MLC-laminate", .tech = CellTech::FeFET,
         .venue = "IEDM", .year = 2019, .nodeNm = 28,
         .areaF2 = 25.0, .writePulseNs = 500.0,
         .endurance = 1e8, .mlcDemonstrated = true});
    add({.label = "VLSI20-FeFET-MFMFIS", .tech = CellTech::FeFET,
         .venue = "VLSI", .year = 2020, .nodeNm = 28,
         .areaF2 = 4.0, .writeVoltage = 3.0,
         .endurance = 1e10, .mlcDemonstrated = true});
    add({.label = "VLSI20-FeFET-AlON-large", .tech = CellTech::FeFET,
         .venue = "VLSI", .year = 2020, .nodeNm = 45,
         .areaF2 = 103.0, .writePulseNs = 1300.0, .writeCurrentUa = 1.0,
         .writeVoltage = 4.2, .readVoltage = 1.4,
         .endurance = 1e7, .retentionSec = 1e5});
    add({.label = "IEDM18-FeFET-3D-NAND", .tech = CellTech::FeFET,
         .venue = "IEDM", .year = 2018, .nodeNm = 45,
         .areaF2 = 40.0, .writePulseNs = 800.0});

    return db;
}

} // namespace

SurveyDatabase::SurveyDatabase() : entries_(builtinCorpus())
{
}

std::vector<SurveyEntry>
SurveyDatabase::entriesFor(CellTech tech) const
{
    std::vector<SurveyEntry> out;
    for (const auto &e : entries_)
        if (e.tech == tech)
            out.push_back(e);
    return out;
}

void
SurveyDatabase::addEntry(const SurveyEntry &entry)
{
    if (entry.label.empty())
        fatal("survey entries need a label");
    if (entry.areaF2 && *entry.areaF2 <= 0.0)
        fatal("survey entry '", entry.label, "': non-positive area");
    entries_.push_back(entry);
}

std::size_t
SurveyDatabase::countFor(CellTech tech) const
{
    return (std::size_t)std::count_if(
        entries_.begin(), entries_.end(),
        [tech](const SurveyEntry &e) { return e.tech == tech; });
}

std::optional<std::pair<double, double>>
SurveyDatabase::paramRange(CellTech tech,
                           std::optional<double> SurveyEntry::*field) const
{
    std::optional<std::pair<double, double>> range;
    for (const auto &e : entries_) {
        if (e.tech != tech || !(e.*field))
            continue;
        double v = *(e.*field);
        if (!range)
            range = {v, v};
        else
            range = {std::min(range->first, v),
                     std::max(range->second, v)};
    }
    return range;
}

} // namespace nvmexp
