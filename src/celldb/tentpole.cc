#include "celldb/tentpole.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/units.hh"

namespace nvmexp {

namespace {

/**
 * Per-technology fallback parameters used when *no* surveyed
 * publication reports a value (the paper's device-model / expert-
 * consultation path for grey Table I cells).
 */
struct TechDefaults
{
    double readVoltage;
    double writeVoltage;
    double ronKohm;
    double roffKohm;
    double writeCurrentUa;
    double writePulseNs;
    double endurance;
    double retentionSec;
    SenseMode senseMode;
    bool mlcCapable;
    /**
     * Extra per-bit sensing energy from published macro
     * characterizations [J]: gate-sensed cells (FeFET, CTT) burn
     * substantially more per sensed bit than resistive dividers.
     */
    double readEnergyPerBit;
};

const TechDefaults &
defaultsFor(CellTech tech)
{
    static const TechDefaults pcm =
        {0.3, 1.5, 10.0, 1000.0, 150.0, 300.0, 1e7, 1e9,
         SenseMode::Current, true, 1e-15};
    static const TechDefaults stt =
        {0.15, 0.9, 2.5, 6.0, 90.0, 20.0, 1e8, 3.2e8,
         SenseMode::Current, true, 1e-15};
    static const TechDefaults sot =
        {0.15, 0.5, 2.5, 6.0, 80.0, 5.0, 1e12, 1e8,
         SenseMode::Current, true, 1e-15};
    static const TechDefaults rram =
        {0.2, 1.5, 10.0, 200.0, 60.0, 100.0, 1e6, 3.2e8,
         SenseMode::Current, true, 1e-15};
    static const TechDefaults ctt =
        {0.9, 2.0, 50.0, 500.0, 15.0, 1e8, 1e4, 1e8,
         SenseMode::Current, true, 60e-15};
    static const TechDefaults feram =
        {1.5, 2.5, 10.0, 100.0, 5.0, 100.0, 1e8, 1e6,
         SenseMode::Charge, true, 10e-15};
    static const TechDefaults fefet =
        {1.2, 3.5, 20.0, 2000.0, 0.5, 500.0, 1e8, 1e8,
         SenseMode::FetGated, true, 100e-15};

    switch (tech) {
      case CellTech::PCM:   return pcm;
      case CellTech::STT:   return stt;
      case CellTech::SOT:   return sot;
      case CellTech::RRAM:  return rram;
      case CellTech::CTT:   return ctt;
      case CellTech::FeRAM: return feram;
      case CellTech::FeFET: return fefet;
      default:
        panic("no tentpole defaults for ", techName(tech));
    }
}

/** Direction a parameter improves in. */
enum class Better { Lower, Higher };

/**
 * Resolve one parameter: the tentpole base entry's value when present,
 * else the best/worst reported value across the corpus, else the
 * technology default.
 */
double
resolve(const SurveyEntry &base, const std::vector<SurveyEntry> &corpus,
        std::optional<double> SurveyEntry::*field, Better better,
        bool optimist, double fallback)
{
    if (base.*field)
        return *(base.*field);
    bool wantLow = (better == Better::Lower) == optimist;
    std::optional<double> pick;
    for (const auto &e : corpus) {
        if (!(e.*field))
            continue;
        double v = *(e.*field);
        if (!pick || (wantLow ? v < *pick : v > *pick))
            pick = v;
    }
    return pick.value_or(fallback);
}

/** Apply the per-technology SET/RESET asymmetry to a resolved pulse. */
void
applyWriteShape(MemCell &cell, double pulseSec, double currentAmp)
{
    if (cell.tech == CellTech::PCM) {
        // SET (crystallization) is the slow edge; RESET is a short,
        // high-current melt-quench.
        cell.setPulse = pulseSec;
        cell.resetPulse = std::max(0.3 * pulseSec, 1e-9);
        cell.setCurrent = currentAmp;
        cell.resetCurrent = 2.0 * currentAmp;
    } else {
        cell.setPulse = pulseSec;
        cell.resetPulse = pulseSec;
        cell.setCurrent = currentAmp;
        cell.resetCurrent = currentAmp;
    }
}

} // namespace

TentpoleBuilder::TentpoleBuilder(const SurveyDatabase &db) : db_(db)
{
}

MemCell
TentpoleBuilder::build(CellTech tech, bool optimist) const
{
    if (tech == CellTech::SRAM)
        fatal("SRAM has no tentpoles; use CellCatalog::sram16()");

    auto corpus = db_.entriesFor(tech);
    if (corpus.empty())
        fatal("survey database has no entries for ", techName(tech));

    // Pick the density tentpole: most (optimistic) or least
    // (pessimistic) dense publication reporting a cell area.
    const SurveyEntry *base = nullptr;
    for (const auto &e : corpus) {
        auto d = e.densityBitsPerF2();
        if (!d)
            continue;
        if (!base) {
            base = &e;
            continue;
        }
        double bd = *base->densityBitsPerF2();
        if (optimist ? (*d > bd) : (*d < bd))
            base = &e;
    }
    if (!base)
        fatal("no ", techName(tech), " survey entry reports cell area");

    const TechDefaults &dflt = defaultsFor(tech);
    MemCell cell;
    cell.tech = tech;
    cell.flavor =
        optimist ? CellFlavor::Optimistic : CellFlavor::Pessimistic;
    cell.name = techName(tech) + "-" + flavorName(cell.flavor);
    cell.senseMode = dflt.senseMode;
    cell.nonVolatile = true;
    cell.bitsPerCell = 1;
    cell.areaF2 = *base->areaF2;
    cell.aspectRatio = 1.0;

    double pulseNs = resolve(*base, corpus, &SurveyEntry::writePulseNs,
                             Better::Lower, optimist, dflt.writePulseNs);
    double currUa = resolve(*base, corpus, &SurveyEntry::writeCurrentUa,
                            Better::Lower, optimist, dflt.writeCurrentUa);
    applyWriteShape(cell, pulseNs * units::ns, currUa * units::uA);

    cell.writeVoltage = resolve(*base, corpus, &SurveyEntry::writeVoltage,
                                Better::Lower, optimist,
                                dflt.writeVoltage);
    cell.readVoltage = resolve(*base, corpus, &SurveyEntry::readVoltage,
                               Better::Lower, optimist, dflt.readVoltage);
    // Resistance states: a lower on-resistance reads faster; keep the
    // on/off ratio consistent by resolving the ratio from entries that
    // report both states.
    double ronK = resolve(*base, corpus, &SurveyEntry::ronKohm,
                          Better::Lower, optimist, dflt.ronKohm);
    double ratio = dflt.roffKohm / dflt.ronKohm;
    {
        std::optional<double> pickRatio;
        bool baseHasBoth = base->ronKohm && base->roffKohm;
        if (baseHasBoth) {
            pickRatio = *base->roffKohm / *base->ronKohm;
        } else {
            for (const auto &e : corpus) {
                if (!e.ronKohm || !e.roffKohm)
                    continue;
                double r = *e.roffKohm / *e.ronKohm;
                // A larger on/off ratio senses more easily.
                if (!pickRatio ||
                    (optimist ? r > *pickRatio : r < *pickRatio)) {
                    pickRatio = r;
                }
            }
        }
        ratio = pickRatio.value_or(ratio);
    }
    cell.resistanceOn = units::kohm * ronK;
    cell.resistanceOff = units::kohm * ronK * ratio;
    cell.endurance = resolve(*base, corpus, &SurveyEntry::endurance,
                             Better::Higher, optimist, dflt.endurance);
    cell.retention = resolve(*base, corpus, &SurveyEntry::retentionSec,
                             Better::Higher, optimist, dflt.retentionSec);

    int minNode = std::numeric_limits<int>::max();
    bool anyMlc = false;
    for (const auto &e : corpus) {
        minNode = std::min(minNode, e.nodeNm);
        anyMlc = anyMlc || e.mlcDemonstrated;
    }
    cell.minNodeNm = minNode;
    cell.mlcCapable = dflt.mlcCapable && anyMlc;
    cell.cellLeakage = 0.0;
    cell.readEnergyPerBit = dflt.readEnergyPerBit;

    cell.validate();
    return cell;
}

MemCell
TentpoleBuilder::optimistic(CellTech tech) const
{
    return build(tech, true);
}

MemCell
TentpoleBuilder::pessimistic(CellTech tech) const
{
    return build(tech, false);
}

MemCell
TentpoleBuilder::reference(CellTech tech, const std::string &label) const
{
    const SurveyEntry *entry = nullptr;
    for (const auto &e : db_.entries()) {
        if (e.label == label) {
            entry = &e;
            break;
        }
    }
    if (!entry)
        fatal("no survey entry labeled '", label, "'");
    if (entry->tech != tech)
        fatal("survey entry '", label, "' is ", techName(entry->tech),
              ", not ", techName(tech));

    const TechDefaults &dflt = defaultsFor(tech);
    MemCell cell;
    cell.tech = tech;
    cell.flavor = CellFlavor::Reference;
    cell.name = techName(tech) + "-Ref";
    cell.senseMode = dflt.senseMode;
    cell.nonVolatile = true;
    cell.areaF2 = entry->areaF2.value_or(40.0);
    applyWriteShape(
        cell, entry->writePulseNs.value_or(dflt.writePulseNs) * units::ns,
        entry->writeCurrentUa.value_or(dflt.writeCurrentUa) * units::uA);
    cell.writeVoltage = entry->writeVoltage.value_or(dflt.writeVoltage);
    cell.readVoltage = entry->readVoltage.value_or(dflt.readVoltage);
    cell.resistanceOn = units::kohm * entry->ronKohm.value_or(dflt.ronKohm);
    cell.resistanceOff =
        units::kohm * entry->roffKohm.value_or(dflt.roffKohm);
    cell.endurance = entry->endurance.value_or(dflt.endurance);
    cell.retention = entry->retentionSec.value_or(dflt.retentionSec);
    cell.minNodeNm = entry->nodeNm;
    cell.mlcCapable = dflt.mlcCapable;
    cell.readEnergyPerBit = dflt.readEnergyPerBit;
    cell.validate();
    return cell;
}

CellCatalog::CellCatalog() : db_(), builder_(db_)
{
}

MemCell
CellCatalog::sram16()
{
    MemCell cell;
    cell.name = "SRAM";
    cell.tech = CellTech::SRAM;
    cell.flavor = CellFlavor::Reference;
    cell.senseMode = SenseMode::Voltage;
    cell.bitsPerCell = 1;
    cell.areaF2 = 146.0;
    cell.readVoltage = 0.8;
    cell.writeVoltage = 0.8;
    cell.resistanceOn = 40e3;    // read-current-limited pull-down
    cell.resistanceOff = 1e9;
    cell.setPulse = 0.5e-9;      // wordline pulse incl. write margin
    cell.resetPulse = 0.5e-9;
    cell.setCurrent = 5e-6;
    cell.resetCurrent = 5e-6;
    cell.endurance = 1e18;       // effectively unlimited
    cell.retention = 1e12;       // while powered
    cell.nonVolatile = false;
    cell.cellLeakage = 2e-9;     // 2 nW/cell at a 16 nm HP node
    cell.minNodeNm = 7;
    cell.mlcCapable = false;
    cell.validate();
    return cell;
}

MemCell
CellCatalog::backGatedFeFET()
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::FeFET);
    cell.name = "FeFET-BG";
    cell.flavor = CellFlavor::Custom;
    // IEDM'20 back-gated FeFET: 10 ns programming pulse and projected
    // 1e12 endurance, at a slight cost in density and read energy.
    cell.setPulse = 10e-9;
    cell.resetPulse = 10e-9;
    cell.endurance = 1e12;
    cell.areaF2 = cell.areaF2 * 4.0 / 3.0;  // slight density decrease
    cell.readVoltage = cell.readVoltage * 1.1;  // slight read-energy up
    cell.validate();
    return cell;
}

MemCell
CellCatalog::optimistic(CellTech tech) const
{
    return builder_.optimistic(tech);
}

MemCell
CellCatalog::pessimistic(CellTech tech) const
{
    return builder_.pessimistic(tech);
}

MemCell
CellCatalog::rramReference() const
{
    return builder_.reference(CellTech::RRAM, "ISSCC18-RRAM-n40-256kx44");
}

std::vector<MemCell>
CellCatalog::studyCells() const
{
    std::vector<MemCell> cells;
    cells.push_back(sram16());
    auto envms = studyEnvms();
    cells.insert(cells.end(), envms.begin(), envms.end());
    return cells;
}

std::vector<MemCell>
CellCatalog::studyEnvms() const
{
    std::vector<MemCell> cells;
    for (CellTech tech : {CellTech::PCM, CellTech::STT, CellTech::RRAM,
                          CellTech::FeFET, CellTech::CTT}) {
        cells.push_back(optimistic(tech));
        cells.push_back(pessimistic(tech));
    }
    cells.push_back(rramReference());
    return cells;
}

} // namespace nvmexp
