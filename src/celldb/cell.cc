#include "celldb/cell.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

std::string
techName(CellTech tech)
{
    switch (tech) {
      case CellTech::SRAM:  return "SRAM";
      case CellTech::PCM:   return "PCM";
      case CellTech::STT:   return "STT";
      case CellTech::SOT:   return "SOT";
      case CellTech::RRAM:  return "RRAM";
      case CellTech::CTT:   return "CTT";
      case CellTech::FeRAM: return "FeRAM";
      case CellTech::FeFET: return "FeFET";
      default: panic("bad CellTech value ", (int)tech);
    }
}

std::string
flavorName(CellFlavor flavor)
{
    switch (flavor) {
      case CellFlavor::Optimistic:  return "Opt";
      case CellFlavor::Pessimistic: return "Pess";
      case CellFlavor::Reference:   return "Ref";
      case CellFlavor::Custom:      return "Custom";
      default: panic("bad CellFlavor value ", (int)flavor);
    }
}

CellTech
techFromName(const std::string &name)
{
    for (int t = 0; t < (int)CellTech::NumTech; ++t) {
        if (techName((CellTech)t) == name)
            return (CellTech)t;
    }
    fatal("unknown cell technology '", name, "'");
}

double
MemCell::worstWritePulse() const
{
    return std::max(setPulse, resetPulse);
}

double
MemCell::writeEnergyPerBit() const
{
    // Average of SET and RESET programming energies: V * I * t.
    double eSet = writeVoltage * setCurrent * setPulse;
    double eReset = writeVoltage * resetCurrent * resetPulse;
    return 0.5 * (eSet + eReset);
}

double
MemCell::readCurrentOn() const
{
    return readVoltage / resistanceOn;
}

double
MemCell::readCurrentOff() const
{
    return readVoltage / resistanceOff;
}

double
MemCell::densityBitsPerF2() const
{
    return (double)bitsPerCell / areaF2;
}

MemCell
MemCell::makeMlc(int bits, int nVerifyPulses) const
{
    if (!mlcCapable)
        fatal("cell '", name, "' (", techName(tech),
              ") does not support multi-level programming");
    if (bits < 2 || bits > 4)
        fatal("MLC bits per cell must be in [2,4], got ", bits);
    if (nVerifyPulses < 1)
        fatal("MLC needs at least one program pulse");

    MemCell mlc = *this;
    mlc.name = name + "-MLC" + std::to_string(bits);
    mlc.bitsPerCell = bits;
    // Program-and-verify: each written cell takes several narrower
    // pulses to land between tighter resistance levels.
    mlc.setPulse = setPulse * nVerifyPulses;
    mlc.resetPulse = resetPulse * nVerifyPulses;
    // Two-step (or 2^bits-1 reference) sensing slows and burns more
    // sensing energy; modeled in nvsim via the level count, and here as
    // extra per-bit sense energy.
    mlc.readEnergyPerBit = readEnergyPerBit * (double)bits +
        1e-16 * (double)(bits - 1);
    // Narrower level margins cost endurance headroom.
    mlc.endurance = endurance / 10.0;
    return mlc;
}

void
MemCell::validate() const
{
    if (areaF2 <= 0.0)
        fatal("cell '", name, "': non-positive area");
    if (bitsPerCell < 1 || bitsPerCell > 4)
        fatal("cell '", name, "': bitsPerCell out of range");
    if (readVoltage <= 0.0 || writeVoltage <= 0.0)
        fatal("cell '", name, "': non-positive access voltage");
    if (resistanceOn <= 0.0 || resistanceOff < resistanceOn)
        fatal("cell '", name, "': need 0 < Ron <= Roff");
    if (setPulse <= 0.0 || resetPulse <= 0.0)
        fatal("cell '", name, "': non-positive write pulse");
    if (endurance <= 0.0)
        fatal("cell '", name, "': non-positive endurance");
    if (retention <= 0.0)
        fatal("cell '", name, "': non-positive retention");
    if (cellLeakage < 0.0)
        fatal("cell '", name, "': negative leakage");
    if (!nonVolatile && tech != CellTech::SRAM)
        fatal("cell '", name, "': only SRAM may be volatile");
}

} // namespace nvmexp
