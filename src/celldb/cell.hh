/**
 * @file
 * Memory cell technology definitions.
 *
 * A MemCell is the circuits-and-devices layer of the NVMExplorer stack:
 * the complete set of device parameters the array simulator (src/nvsim)
 * needs to characterize a memory array built from that cell. Cells are
 * produced either from the surveyed-publication database (survey.hh) via
 * the tentpole methodology (tentpole.hh) or constructed directly by the
 * user.
 */

#ifndef NVMEXP_CELLDB_CELL_HH
#define NVMEXP_CELLDB_CELL_HH

#include <string>

namespace nvmexp {

/** Technology classes surveyed by the paper (Table I). */
enum class CellTech
{
    SRAM,
    PCM,
    STT,
    SOT,
    RRAM,
    CTT,
    FeRAM,
    FeFET,
    NumTech
};

/** Tentpole classification of a fixed cell definition. */
enum class CellFlavor
{
    Optimistic,   ///< best-case published density + best fill-ins
    Pessimistic,  ///< worst-case published density + worst fill-ins
    Reference,    ///< a specific (industry) published result
    Custom        ///< user-provided definition
};

/** How the cell's stored state is sensed. */
enum class SenseMode
{
    Voltage,   ///< SRAM-style differential voltage sensing
    Current,   ///< resistive sensing (PCM, RRAM, STT, SOT, CTT)
    FetGated,  ///< FET-threshold sensing (FeFET): reads cost a WL swing
    Charge     ///< destructive charge sensing (FeRAM): read == write-back
};

/** @return the canonical short name, e.g. "STT". */
std::string techName(CellTech tech);

/** @return the flavor name, e.g. "Opt". */
std::string flavorName(CellFlavor flavor);

/** Parse a technology name; fatal() on unknown names. */
CellTech techFromName(const std::string &name);

/**
 * Complete device-level description of one memory cell configuration.
 *
 * All quantities are SI. Parameters a publication did not report are
 * filled in by the tentpole constructor before a MemCell is built, so a
 * MemCell is always fully specified.
 */
struct MemCell
{
    std::string name;       ///< e.g. "STT-Opt"
    CellTech tech = CellTech::SRAM;
    CellFlavor flavor = CellFlavor::Custom;
    SenseMode senseMode = SenseMode::Voltage;

    int bitsPerCell = 1;     ///< 1 = SLC, 2 = 2-bit MLC
    double areaF2 = 146.0;   ///< cell footprint in F^2 (per cell)
    double aspectRatio = 1.0;

    double readVoltage = 0.8;   ///< V applied for sensing
    double writeVoltage = 0.8;  ///< V applied while programming

    /**
     * Low/high resistance states [ohm]; sensing current and bitline
     * discharge time derive from these. For SRAM these model the
     * pull-down path.
     */
    double resistanceOn = 3e3;
    double resistanceOff = 6e3;

    double setPulse = 1e-9;      ///< s, SET/program pulse width
    double resetPulse = 1e-9;    ///< s, RESET pulse width
    double setCurrent = 50e-6;   ///< A during SET
    double resetCurrent = 50e-6; ///< A during RESET

    /** Extra per-bit sensing energy beyond bitline/SA switching [J]. */
    double readEnergyPerBit = 0.0;

    double endurance = 1e16;     ///< write cycles before wear-out
    double retention = 10 * 365 * 86400.0;  ///< s

    bool nonVolatile = false;
    double cellLeakage = 0.0;    ///< W per cell (SRAM only)

    int minNodeNm = 22;          ///< smallest demonstrated process node
    bool mlcCapable = true;

    /** Write pulse for the slower of SET/RESET [s]. */
    double worstWritePulse() const;

    /** Energy deposited in the cell per written bit [J]. */
    double writeEnergyPerBit() const;

    /** Sensing read current at readVoltage through the ON state [A]. */
    double readCurrentOn() const;

    /** Sensing read current through the OFF state [A]. */
    double readCurrentOff() const;

    /** Storage density figure of merit, bits per F^2. */
    double densityBitsPerF2() const;

    /**
     * Derive a 2-bit MLC variant: same footprint stores two bits, with
     * program-and-verify write (pulse x nVerify) and two-step sensing.
     * @pre mlcCapable
     */
    MemCell makeMlc(int bits = 2, int nVerifyPulses = 4) const;

    /** Sanity-check all parameters; fatal() with a message if invalid. */
    void validate() const;
};

} // namespace nvmexp

#endif // NVMEXP_CELLDB_CELL_HH
