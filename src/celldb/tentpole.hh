/**
 * @file
 * Tentpole methodology (paper Sec. III-B).
 *
 * For each technology class we compute which surveyed publication has
 * the best-case and worst-case storage density (bits/F^2); those become
 * the foundation of the optimistic and pessimistic cell definitions.
 * Any critical parameter not reported with those publications is filled
 * with the best (resp. worst) value across all other publications of
 * that technology; parameters no publication reports fall back to
 * per-technology defaults derived from device models (the paper's
 * "SPICE simulations and consulting device experts" path).
 */

#ifndef NVMEXP_CELLDB_TENTPOLE_HH
#define NVMEXP_CELLDB_TENTPOLE_HH

#include <vector>

#include "celldb/cell.hh"
#include "celldb/survey.hh"

namespace nvmexp {

/**
 * Builds fixed optimistic/pessimistic/reference MemCells from a survey
 * database.
 */
class TentpoleBuilder
{
  public:
    explicit TentpoleBuilder(const SurveyDatabase &db);

    /** Optimistic tentpole cell for a technology. */
    MemCell optimistic(CellTech tech) const;

    /** Pessimistic tentpole cell for a technology. */
    MemCell pessimistic(CellTech tech) const;

    /**
     * Reference cell built from a specific published result (used for
     * RRAM, from an industry n40 macro, per Sec. III-B1).
     */
    MemCell reference(CellTech tech, const std::string &label) const;

  private:
    MemCell build(CellTech tech, bool optimist) const;

    const SurveyDatabase &db_;
};

/**
 * The fixed cell set the paper's case studies run on: a convenience
 * catalog wrapping TentpoleBuilder plus the hand-built cells (16 nm
 * SRAM baseline, industry-reference RRAM, back-gated FeFET).
 */
class CellCatalog
{
  public:
    CellCatalog();

    /** The 16 nm SRAM comparison cell. */
    static MemCell sram16();

    /** Back-gated FeFET (Sec. V-A, IEDM'20): 10 ns pulse, 1e12 end. */
    static MemCell backGatedFeFET();

    /** Optimistic / pessimistic tentpole per technology. */
    MemCell optimistic(CellTech tech) const;
    MemCell pessimistic(CellTech tech) const;

    /** Industry-reference RRAM cell. */
    MemCell rramReference() const;

    /**
     * The validated study set used throughout Sections IV-V: SRAM plus
     * Opt/Pess {PCM, STT, RRAM, FeFET, CTT} plus reference RRAM. SOT
     * and FeRAM are configurable but excluded for lack of array-level
     * validation data (paper Sec. III-C).
     */
    std::vector<MemCell> studyCells() const;

    /** studyCells() without SRAM (eNVMs only). */
    std::vector<MemCell> studyEnvms() const;

    /** Access to the underlying survey database. */
    const SurveyDatabase &survey() const { return db_; }

  private:
    SurveyDatabase db_;
    TentpoleBuilder builder_;
};

} // namespace nvmexp

#endif // NVMEXP_CELLDB_TENTPOLE_HH
