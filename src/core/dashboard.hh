/**
 * @file
 * Dashboard table schema: the column vocabulary of runExperiment's
 * summary table, single-sourced so the printed headers, the row
 * values, and the metric registry cannot drift apart.
 *
 * Most columns are backed by a registry metric plus a display scale
 * (e.g. ReadLat[ns] = read_latency * 1e9). Identity columns — Cell,
 * Traffic, Viable, ECC — print strings that name the design point
 * rather than a measured number; Scrub[s] is the reliability sweep
 * axis itself. nvmexplorer_lint cross-checks that every metric-backed
 * column references a registered metric.
 */

#ifndef NVMEXP_CORE_DASHBOARD_HH
#define NVMEXP_CORE_DASHBOARD_HH

#include <string>
#include <vector>

namespace nvmexp {

/** One dashboard column: header, backing metric, display scale. */
struct DashboardColumn
{
    std::string header;  ///< printed column header
    std::string metric;  ///< registry key, or "" for identity columns
    double scale = 1.0;  ///< display scale applied to the metric value
    bool reliability = false;  ///< only shown with show_reliability
};

/** The dashboard schema, in column order (reliability columns last). */
const std::vector<DashboardColumn> &dashboardColumns();

} // namespace nvmexp

#endif // NVMEXP_CORE_DASHBOARD_HH
