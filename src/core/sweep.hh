/**
 * @file
 * Design-space sweep driver: the "auto-generated sweep configurations"
 * stage of the NVMExplorer flow (Fig. 2 of the paper).
 *
 * A SweepConfig crosses cells x capacities x optimization targets x
 * traffic patterns; runSweep characterizes each array once and
 * evaluates it against every pattern. Constraint filters and Pareto
 * helpers support the "filter and refine" interaction the paper's
 * dashboard provides.
 */

#ifndef NVMEXP_CORE_SWEEP_HH
#define NVMEXP_CORE_SWEEP_HH

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "celldb/cell.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace nvmexp {

/** Full cross-stack sweep specification. */
struct SweepConfig
{
    std::vector<MemCell> cells;
    std::vector<double> capacitiesBytes = {2.0 * 1024 * 1024};
    std::vector<OptTarget> targets = {OptTarget::ReadEDP};
    std::vector<TrafficPattern> traffics;
    /**
     * Workload specs ({"name": "<registry key>", ...params}) expanded
     * through the WorkloadRegistry at run time; the generated patterns
     * are appended after `traffics` in spec order. Keeping the raw
     * specs here (rather than eagerly expanding in the config loader)
     * lets the sweep engine dispatch every traffic source — built-in
     * or plugged-in — through one registry.
     */
    std::vector<JsonValue> workloads;
    /**
     * Reliability sweep axis (config "reliability"/"ecc" block): each
     * spec crosses the full (array, traffic) product, annotating every
     * result with its ECC scheme's failure rates and overhead. Empty
     * means one implicit {ecc: "none", scrub 0} spec — the result rows
     * are then identical to a sweep with no reliability axis at all.
     */
    std::vector<reliability::ReliabilitySpec> reliability;
    int wordBits = 512;
    int nodeNm = 22;       ///< eNVM implementation node
    int sramNodeNm = 16;   ///< SRAM baseline node
    /** Worker threads for the sweep cross product; <=0 means all
     *  hardware threads. Results are identical for any value. */
    int jobs = 1;
    /**
     * Evaluate the (array x traffic x spec) inner loop through the
     * batched structure-of-arrays path (eval/batch.hh): the base
     * evaluation is computed once per (array, traffic) pair and the
     * reliability terms once per (array, spec), instead of once per
     * expanded point. On by default; `"batch": false` (CLI
     * --no-batch) falls back to the per-point scalar path. Results,
     * artifacts, and the store fingerprint are bit-identical either
     * way — the flag exists as an escape hatch and as the reference
     * for the differential test tier.
     */
    bool batch = true;
    /**
     * Evaluation slots per batched work item ("batch_size" config
     * key); <=0 picks a size that keeps every worker busy. Pure
     * scheduling granularity: results and artifacts are identical
     * for any value.
     */
    int batchSize = 0;
    /**
     * Result-store directory (CLI --out / config "out_dir"): persists
     * results.json/.csv, a content-hashed characterization cache, and
     * an evaluation checkpoint journal there. Empty disables
     * persistence. Neither this nor `resume` affects result values or
     * order — cache hits and replayed checkpoint slots are
     * byte-identical to fresh computation.
     */
    std::string outDir;
    /** Replay outDir's checkpoint journal (CLI --resume) and continue
     *  an interrupted sweep instead of restarting it. */
    bool resume = false;
    /**
     * Characterization-cache directory override; empty keeps the
     * default <outDir>/cache. Campaign shard runs point every shard
     * store at the campaign's one shared cache so an array is
     * characterized by whichever shard reaches it first. Like outDir,
     * never affects result values and is excluded from the sweep
     * fingerprint. Programmatic only (no config key).
     */
    std::string cacheDir;
};

/** Implementation node for a cell: SRAM baselines use the (denser)
 *  SRAM node, eNVMs the eNVM node — the paper's 16 nm SRAM vs 22 nm
 *  eNVM comparison. Single source of truth for every sweep/study. */
inline int
implementationNode(const MemCell &cell, int nodeNm = 22,
                   int sramNodeNm = 16)
{
    return cell.tech == CellTech::SRAM ? sramNodeNm : nodeNm;
}

/** Run the full cross product; arrays that cannot be built are
 *  skipped with a warning rather than aborting the sweep. */
std::vector<EvalResult> runSweep(const SweepConfig &config);

/** Characterize arrays only (no traffic): cells x capacities x
 *  targets. */
std::vector<ArrayResult> characterizeSweep(const SweepConfig &config);

/** System-level constraints for filtering (paper Sec. II-C). */
struct Constraints
{
    double maxLatencyLoad = 1.0;    ///< long-pole load ceiling
    double maxPowerWatts = -1.0;    ///< <0 = unconstrained
    double maxAreaM2 = -1.0;
    double minLifetimeSec = -1.0;
    double maxReadLatency = -1.0;
    double maxWriteLatency = -1.0;
    bool requireBandwidth = true;
};

/** Keep only results satisfying the constraints. */
std::vector<EvalResult> filterResults(const std::vector<EvalResult> &in,
                                      const Constraints &constraints);

/** True iff one result satisfies the constraints. */
bool satisfies(const EvalResult &result, const Constraints &constraints);

/**
 * 2-D Pareto front (minimize both keys) over any result vector.
 *
 * O(n log n): sort by (keyA, keyB) and sweep with the running minimum
 * of keyB over strictly smaller keyA. Within an equal-keyA group only
 * the minimal-keyB items survive; exact (keyA, keyB) duplicates do not
 * dominate each other and are all kept. Output preserves input order.
 */
template <typename T>
std::vector<T>
paretoFront(const std::vector<T> &items,
            const std::function<double(const T &)> &keyA,
            const std::function<double(const T &)> &keyB)
{
    const std::size_t n = items.size();
    std::vector<std::pair<double, double>> keys(n);
    for (std::size_t i = 0; i < n; ++i)
        keys[i] = {keyA(items[i]), keyB(items[i])};

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t lhs, std::size_t rhs) {
                  return keys[lhs] < keys[rhs];
              });

    std::vector<char> keep(n, 0);
    double bestB = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n;) {
        const double a = keys[order[i]].first;
        const double groupMinB = keys[order[i]].second;
        std::size_t j = i;
        while (j < n && keys[order[j]].first == a)
            ++j;
        if (groupMinB < bestB) {
            for (std::size_t k = i;
                 k < j && keys[order[k]].second == groupMinB; ++k) {
                keep[order[k]] = 1;
            }
            bestB = groupMinB;
        }
        i = j;
    }

    std::vector<T> front;
    for (std::size_t i = 0; i < n; ++i)
        if (keep[i])
            front.push_back(items[i]);
    return front;
}

/**
 * N-dimensional Pareto front (minimize every key) over any result
 * vector; the generalization the named-metric layer
 * (metrics::paretoByMetrics) dispatches through.
 *
 * Two keys take the sorted O(n log n) fast path above and reproduce
 * its front exactly. Other dimensionalities run a lexicographic-order
 * dominance scan against the growing front: a dominator always
 * precedes its victims in lexicographic key order, and dominance is
 * transitive, so comparing each candidate against accepted front
 * members alone is sufficient. Exact key-tuple duplicates do not
 * dominate each other and are all kept; output preserves input order.
 */
template <typename T>
std::vector<T>
paretoFrontND(const std::vector<T> &items,
              const std::vector<std::function<double(const T &)>> &keys)
{
    if (keys.empty())
        panic("paretoFrontND needs at least one key");
    if (keys.size() == 2)
        return paretoFront(items, keys[0], keys[1]);

    const std::size_t n = items.size();
    const std::size_t d = keys.size();
    std::vector<std::vector<double>> values(n,
                                            std::vector<double>(d));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t k = 0; k < d; ++k)
            values[i][k] = keys[k](items[i]);

    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t lhs, std::size_t rhs) {
                  return values[lhs] < values[rhs];
              });

    std::vector<char> keep(n, 0);
    std::vector<std::size_t> front;
    for (std::size_t index : order) {
        bool dominated = false;
        for (std::size_t member : front) {
            bool allLe = true;
            bool oneLt = false;
            for (std::size_t k = 0; k < d; ++k) {
                if (values[member][k] > values[index][k]) {
                    allLe = false;
                    break;
                }
                if (values[member][k] < values[index][k])
                    oneLt = true;
            }
            if (allLe && oneLt) {
                dominated = true;
                break;
            }
        }
        if (!dominated) {
            keep[index] = 1;
            front.push_back(index);
        }
    }

    std::vector<T> out;
    for (std::size_t i = 0; i < n; ++i)
        if (keep[i])
            out.push_back(items[i]);
    return out;
}

/** Pointer to the result minimizing key, or nullptr when empty or
 *  every key is NaN. NaN-keyed results are skipped — an unordered key
 *  must never be reported as "best". */
const EvalResult *
bestBy(const std::vector<EvalResult> &results,
       const std::function<double(const EvalResult &)> &key);

} // namespace nvmexp

#endif // NVMEXP_CORE_SWEEP_HH
