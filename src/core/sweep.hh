/**
 * @file
 * Design-space sweep driver: the "auto-generated sweep configurations"
 * stage of the NVMExplorer flow (Fig. 2 of the paper).
 *
 * A SweepConfig crosses cells x capacities x optimization targets x
 * traffic patterns; runSweep characterizes each array once and
 * evaluates it against every pattern. Constraint filters and Pareto
 * helpers support the "filter and refine" interaction the paper's
 * dashboard provides.
 */

#ifndef NVMEXP_CORE_SWEEP_HH
#define NVMEXP_CORE_SWEEP_HH

#include <functional>
#include <vector>

#include "celldb/cell.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"

namespace nvmexp {

/** Full cross-stack sweep specification. */
struct SweepConfig
{
    std::vector<MemCell> cells;
    std::vector<double> capacitiesBytes = {2.0 * 1024 * 1024};
    std::vector<OptTarget> targets = {OptTarget::ReadEDP};
    std::vector<TrafficPattern> traffics;
    int wordBits = 512;
    int nodeNm = 22;       ///< eNVM implementation node
    int sramNodeNm = 16;   ///< SRAM baseline node
};

/** Run the full cross product; arrays that cannot be built are
 *  skipped with a warning rather than aborting the sweep. */
std::vector<EvalResult> runSweep(const SweepConfig &config);

/** Characterize arrays only (no traffic): cells x capacities x
 *  targets. */
std::vector<ArrayResult> characterizeSweep(const SweepConfig &config);

/** System-level constraints for filtering (paper Sec. II-C). */
struct Constraints
{
    double maxLatencyLoad = 1.0;    ///< long-pole load ceiling
    double maxPowerWatts = -1.0;    ///< <0 = unconstrained
    double maxAreaM2 = -1.0;
    double minLifetimeSec = -1.0;
    double maxReadLatency = -1.0;
    double maxWriteLatency = -1.0;
    bool requireBandwidth = true;
};

/** Keep only results satisfying the constraints. */
std::vector<EvalResult> filterResults(const std::vector<EvalResult> &in,
                                      const Constraints &constraints);

/** True iff one result satisfies the constraints. */
bool satisfies(const EvalResult &result, const Constraints &constraints);

/**
 * 2-D Pareto front (minimize both keys) over any result vector.
 */
template <typename T>
std::vector<T>
paretoFront(const std::vector<T> &items,
            const std::function<double(const T &)> &keyA,
            const std::function<double(const T &)> &keyB)
{
    std::vector<T> front;
    for (const auto &candidate : items) {
        bool dominated = false;
        for (const auto &other : items) {
            if (keyA(other) <= keyA(candidate) &&
                keyB(other) <= keyB(candidate) &&
                (keyA(other) < keyA(candidate) ||
                 keyB(other) < keyB(candidate))) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(candidate);
    }
    return front;
}

/** Pointer to the result minimizing key, or nullptr if empty. */
const EvalResult *
bestBy(const std::vector<EvalResult> &results,
       const std::function<double(const EvalResult &)> &key);

} // namespace nvmexp

#endif // NVMEXP_CORE_SWEEP_HH
