#include "core/parallel_sweep.hh"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "eval/batch.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/workload.hh"

namespace nvmexp {

const SweepConfig &
expandSweepWorkloads(const SweepConfig &config, SweepConfig &storage)
{
    if (config.workloads.empty())
        return config;
    storage = config;
    workload::TrafficContext context;
    context.wordBits = config.wordBits;
    auto patterns =
        workload::expandWorkloads(config.workloads, context);
    storage.traffics.insert(storage.traffics.end(), patterns.begin(),
                            patterns.end());
    storage.workloads.clear();
    return storage;
}

namespace {

/**
 * Resolve a sweep's reliability axis: one evaluator per spec, or the
 * single implicit {ecc: "none", scrub 0} default when the sweep has
 * none. Validation (unknown scheme, bad scrub interval) fires here
 * for programmatic SweepConfigs; config files validate at load.
 */
std::vector<reliability::ReliabilityEvaluator>
reliabilityEvaluators(
    const std::vector<reliability::ReliabilitySpec> &specs)
{
    std::vector<reliability::ReliabilityEvaluator> evaluators;
    evaluators.reserve(std::max<std::size_t>(1, specs.size()));
    if (specs.empty())
        evaluators.emplace_back(reliability::ReliabilitySpec{});
    for (const auto &spec : specs)
        evaluators.emplace_back(spec);
    return evaluators;
}

/**
 * Process-wide sweep default knobs, guarded by one mutex so a driver
 * thread can set them while bench fixtures or worker threads read
 * them. (The previous bare globals plus a lazily-initialized
 * $NVMEXP_STORE_DIR probe raced under concurrent first use.)
 */
struct SweepDefaults
{
    std::mutex mutex;
    int jobs = 1;
    std::string storeDir;
    bool storeDirSet = false; // an explicit set beats the environment
    bool envProbed = false;
};

// Deliberately mutable process state; every access takes the mutex.
// Allowlisted by name (AllowNames) in tools/tidy/nvmexp.clang-tidy.
SweepDefaults sweepDefaultsState;

void
warnNoOrganization(const MemCell &cell, double capacity)
{
    warn("cell '", cell.name, "' has no valid organization", " at ",
         capacity / (1024.0 * 1024.0), " MiB; skipping");
}

/**
 * Characterize one (cell, capacity) pair: the best organization per
 * optimization target, or empty when no organization is valid. This is
 * the unit of parallel work for characterize(); keeping it as one item
 * (rather than per target) avoids enumerating the design space
 * targets-times over, matching the serial loop's cost.
 *
 * With a store, each per-target winner lives under its own content-
 * hash key: when every target hits, the (expensive) design-space
 * enumeration is skipped entirely; any miss recomputes the pair once
 * and refreshes all of its entries. Cached winners deserialize
 * bit-identically, so results don't depend on cache state.
 */
std::vector<ArrayResult>
characterizePair(const SweepConfig &config, const MemCell &cell,
                 double capacity, store::ResultStore *resultStore)
{
    ArrayConfig ac;
    ac.capacityBytes = capacity;
    ac.wordBits = config.wordBits;
    ac.nodeNm = implementationNode(cell, config.nodeNm,
                                   config.sramNodeNm);

    std::vector<std::string> keys;
    if (resultStore) {
        keys.reserve(config.targets.size());
        for (OptTarget target : config.targets) {
            keys.push_back(store::ResultStore::characterizationKey(
                cell, ac, target));
        }
        std::vector<ArrayResult> cached(keys.size());
        std::size_t hits = 0, invalid = 0;
        for (std::size_t t = 0; t < keys.size(); ++t) {
            switch (resultStore->lookupArray(keys[t], cached[t])) {
              case store::ResultStore::CacheOutcome::Hit:
                ++hits;
                break;
              case store::ResultStore::CacheOutcome::HitInvalid:
                ++invalid;
                break;
              case store::ResultStore::CacheOutcome::Miss:
                break;
            }
        }
        if (invalid == keys.size() && !keys.empty()) {
            warnNoOrganization(cell, capacity);
            return {};
        }
        if (hits == keys.size())
            return cached;
    }

    ArrayDesigner designer(cell, ac);
    auto candidates = designer.enumerate();
    if (candidates.empty()) {
        warnNoOrganization(cell, capacity);
        if (resultStore) {
            for (const auto &key : keys)
                resultStore->storeInvalid(key);
        }
        return {};
    }
    std::vector<ArrayResult> best;
    best.reserve(config.targets.size());
    for (std::size_t t = 0; t < config.targets.size(); ++t) {
        OptTarget target = config.targets[t];
        const ArrayResult *winner = &candidates.front();
        for (const auto &r : candidates)
            if (r.metric(target) < winner->metric(target))
                winner = &r;
        best.push_back(*winner);
        if (resultStore)
            resultStore->storeArray(keys[t], *winner);
    }
    return best;
}

} // namespace

int
defaultSweepJobs()
{
    std::lock_guard<std::mutex> hold(sweepDefaultsState.mutex);
    return sweepDefaultsState.jobs;
}

void
setDefaultSweepJobs(int jobs)
{
    const int resolved = ThreadPool::resolveJobs(jobs);
    std::lock_guard<std::mutex> hold(sweepDefaultsState.mutex);
    sweepDefaultsState.jobs = resolved;
}

std::string
defaultSweepStoreDir()
{
    // Bench binaries and study drivers have no store flag of their
    // own; NVMEXP_STORE_DIR lets figure regeneration share one
    // characterization cache. Any explicit setDefaultSweepStoreDir()
    // — including an explicit "" to force persistence off — wins
    // over the environment.
    std::lock_guard<std::mutex> hold(sweepDefaultsState.mutex);
    if (!sweepDefaultsState.envProbed) {
        sweepDefaultsState.envProbed = true;
        if (!sweepDefaultsState.storeDirSet) {
            if (const char *env = std::getenv("NVMEXP_STORE_DIR"))
                sweepDefaultsState.storeDir = env;
        }
    }
    return sweepDefaultsState.storeDir;
}

void
setDefaultSweepStoreDir(std::string dir)
{
    std::lock_guard<std::mutex> hold(sweepDefaultsState.mutex);
    sweepDefaultsState.storeDir = std::move(dir);
    sweepDefaultsState.storeDirSet = true;
    sweepDefaultsState.envProbed = true; // the explicit set wins
}

ParallelSweepRunner::ParallelSweepRunner(int jobs)
    : jobs_(ThreadPool::resolveJobs(jobs))
{
}

void
ParallelSweepRunner::shard(
    std::size_t count,
    const std::function<void(std::size_t)> &body) const
{
    if (jobs_ <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    parallelFor(*pool_, count, body);
}

std::vector<ArrayResult>
ParallelSweepRunner::characterizeWithStore(
    const SweepConfig &config, store::ResultStore *resultStore) const
{
    if (config.cells.empty())
        fatal("sweep has no cells configured");

    // One work item per (cell, capacity) pair; slots keep serial order
    // even though items complete in any order.
    std::size_t pairs =
        config.cells.size() * config.capacitiesBytes.size();
    std::vector<std::vector<ArrayResult>> slots(pairs);
    shard(pairs, [&](std::size_t idx) {
        const MemCell &cell =
            config.cells[idx / config.capacitiesBytes.size()];
        double capacity =
            config.capacitiesBytes[idx % config.capacitiesBytes.size()];
        slots[idx] = characterizePair(config, cell, capacity,
                                      resultStore);
    });

    std::vector<ArrayResult> arrays;
    arrays.reserve(pairs * config.targets.size());
    for (const auto &slot : slots)
        arrays.insert(arrays.end(), slot.begin(), slot.end());
    return arrays;
}

std::vector<ArrayResult>
ParallelSweepRunner::characterize(const SweepConfig &config) const
{
    lastStoreStats_ = store::StoreStats{};
    if (config.outDir.empty())
        return characterizeWithStore(config, nullptr);

    store::ResultStore resultStore(config.outDir, config.cacheDir);
    auto arrays = characterizeWithStore(config, &resultStore);
    lastStoreStats_ = resultStore.stats();
    resultStore.writeStats();
    return arrays;
}

std::vector<EvalResult>
ParallelSweepRunner::evaluateAll(
    const std::vector<ArrayResult> &arrays,
    const std::vector<TrafficPattern> &traffics) const
{
    return evaluateAll(arrays, traffics, {});
}

std::vector<EvalResult>
ParallelSweepRunner::evaluateAll(
    const std::vector<ArrayResult> &arrays,
    const std::vector<TrafficPattern> &traffics,
    const std::vector<reliability::ReliabilitySpec> &specs) const
{
    auto evaluators = reliabilityEvaluators(specs);
    BatchEvalContext context(arrays, traffics, evaluators);
    std::vector<EvalResult> results(context.points());
    shardBatches(context, 0, results, nullptr, {});
    return results;
}

std::vector<EvalResult>
ParallelSweepRunner::evaluateAllScalar(
    const std::vector<ArrayResult> &arrays,
    const std::vector<TrafficPattern> &traffics,
    const std::vector<reliability::ReliabilitySpec> &specs) const
{
    auto evaluators = reliabilityEvaluators(specs);
    const std::size_t nspecs = evaluators.size();
    std::vector<EvalResult> results(arrays.size() * traffics.size() *
                                    nspecs);
    shard(results.size(), [&](std::size_t idx) {
        const ArrayResult &array =
            arrays[idx / (traffics.size() * nspecs)];
        const TrafficPattern &traffic =
            traffics[(idx / nspecs) % traffics.size()];
        results[idx] = evaluate(array, traffic);
        results[idx].reliability =
            evaluators[idx % nspecs].evaluate(array);
    });
    return results;
}

void
ParallelSweepRunner::shardBatches(
    const BatchEvalContext &context, int batchSize,
    std::vector<EvalResult> &results, const std::vector<char> *todo,
    const std::function<void(std::size_t)> &onSlot) const
{
    std::size_t slots = context.points();
    if (slots == 0)
        return;
    std::size_t size = batchSize > 0 ? (std::size_t)batchSize
                                     : context.defaultBatchSize(jobs_);
    std::size_t batches = (slots + size - 1) / size;
    shard(batches, [&](std::size_t b) {
        context.evaluateRange(b * size,
                              std::min(slots, (b + 1) * size), results,
                              todo, onSlot);
    });
}

std::vector<EvalResult>
ParallelSweepRunner::run(const SweepConfig &rawConfig) const
{
    // Workload specs become traffic patterns here — the one place the
    // sweep engine touches application behaviour — so every traffic
    // source flows through the registry and the store fingerprints the
    // fully expanded sweep.
    SweepConfig expandedStorage;
    const SweepConfig &config =
        expandSweepWorkloads(rawConfig, expandedStorage);
    if (config.traffics.empty())
        fatal("sweep has no traffic patterns configured");
    lastStoreStats_ = store::StoreStats{};
    if (config.outDir.empty()) {
        auto arrays = characterizeWithStore(config, nullptr);
        if (!config.batch) {
            return evaluateAllScalar(arrays, config.traffics,
                                     config.reliability);
        }
        auto evaluators = reliabilityEvaluators(config.reliability);
        BatchEvalContext context(arrays, config.traffics, evaluators);
        std::vector<EvalResult> results(context.points());
        shardBatches(context, config.batchSize, results, nullptr, {});
        return results;
    }
    return runStoreBacked(config, {});
}

std::vector<EvalResult>
ParallelSweepRunner::runSelected(
    const SweepConfig &rawConfig,
    const std::function<bool(std::size_t)> &owned) const
{
    SweepConfig expandedStorage;
    const SweepConfig &config =
        expandSweepWorkloads(rawConfig, expandedStorage);
    if (config.traffics.empty())
        fatal("sweep has no traffic patterns configured");
    if (config.outDir.empty())
        fatal("runSelected needs a store directory (outDir)");
    lastStoreStats_ = store::StoreStats{};
    return runStoreBacked(config, owned);
}

std::vector<EvalResult>
ParallelSweepRunner::runStoreBacked(
    const SweepConfig &config,
    const std::function<bool(std::size_t)> &owned) const
{
    store::ResultStore resultStore(config.outDir, config.cacheDir);
    auto arrays = characterizeWithStore(config, &resultStore);

    auto evaluators = reliabilityEvaluators(config.reliability);
    const std::size_t nspecs = evaluators.size();
    std::size_t slots = arrays.size() * config.traffics.size() * nspecs;
    // The journal always claims the FULL slot count, even for a shard
    // run that owns a subset: a campaign merge stitches shard journals
    // into one whose header is byte-identical to a single process's.
    auto done = resultStore.openCheckpoint(
        store::sweepFingerprint(config), slots, config.resume);

    // Index-addressed slots: replayed checkpoint entries and freshly
    // evaluated ones land in the same serial-order positions, so the
    // output is byte-identical to an uninterrupted run — batched or
    // not, at any batch size, under any worker count. Slots outside
    // the owned selection are simply never evaluated or journaled.
    std::vector<EvalResult> results(slots);
    std::vector<char> todo(slots, 1);
    if (owned) {
        for (std::size_t idx = 0; idx < slots; ++idx)
            todo[idx] = owned(idx) ? 1 : 0;
    }
    for (const auto &[slot, result] : done) {
        results[slot] = result;
        todo[slot] = 0;
    }
    if (config.batch) {
        BatchEvalContext context(arrays, config.traffics, evaluators);
        shardBatches(context, config.batchSize, results, &todo,
                     [&](std::size_t idx) {
                         resultStore.checkpointSlot(idx, results[idx]);
                     });
    } else {
        shard(slots, [&](std::size_t idx) {
            if (!todo[idx])
                return;
            const ArrayResult &array =
                arrays[idx / (config.traffics.size() * nspecs)];
            const TrafficPattern &traffic =
                config.traffics[(idx / nspecs) %
                                config.traffics.size()];
            results[idx] = evaluate(array, traffic);
            results[idx].reliability =
                evaluators[idx % nspecs].evaluate(array);
            resultStore.checkpointSlot(idx, results[idx]);
        });
    }
    resultStore.closeCheckpoint();
    if (owned) {
        // A shard store's results artifacts carry exactly the owned
        // rows, ascending: the merge step later splices the shard
        // artifacts back together in global slot order.
        std::vector<EvalResult> mine;
        for (std::size_t idx = 0; idx < slots; ++idx)
            if (owned(idx))
                mine.push_back(std::move(results[idx]));
        resultStore.writeResults(mine);
        lastStoreStats_ = resultStore.stats();
        resultStore.writeStats();
        return mine;
    }
    resultStore.writeResults(results);
    lastStoreStats_ = resultStore.stats();
    resultStore.writeStats();
    return results;
}

std::vector<ArrayResult>
ParallelSweepRunner::optimizeAll(const std::vector<MemCell> &cells,
                                 double capacityBytes, int wordBits,
                                 OptTarget target, int nodeNm,
                                 int sramNodeNm) const
{
    std::vector<ArrayResult> arrays(cells.size());
    shard(cells.size(), [&](std::size_t idx) {
        const MemCell &cell = cells[idx];
        ArrayConfig config;
        config.capacityBytes = capacityBytes;
        config.wordBits = wordBits;
        config.nodeNm = implementationNode(cell, nodeNm, sramNodeNm);
        ArrayDesigner designer(cell, config);
        arrays[idx] = designer.optimize(target);
    });
    return arrays;
}

} // namespace nvmexp
