#include "core/parallel_sweep.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace nvmexp {

namespace {

int sweepJobsDefault = 1;

/**
 * Characterize one (cell, capacity) pair: the best organization per
 * optimization target, or empty when no organization is valid. This is
 * the unit of parallel work for characterize(); keeping it as one item
 * (rather than per target) avoids enumerating the design space
 * targets-times over, matching the serial loop's cost.
 */
std::vector<ArrayResult>
characterizePair(const SweepConfig &config, const MemCell &cell,
                 double capacity)
{
    ArrayConfig ac;
    ac.capacityBytes = capacity;
    ac.wordBits = config.wordBits;
    ac.nodeNm = implementationNode(cell, config.nodeNm,
                                   config.sramNodeNm);
    ArrayDesigner designer(cell, ac);
    auto candidates = designer.enumerate();
    if (candidates.empty()) {
        warn("cell '", cell.name, "' has no valid organization", " at ",
             capacity / (1024.0 * 1024.0), " MiB; skipping");
        return {};
    }
    std::vector<ArrayResult> best;
    best.reserve(config.targets.size());
    for (OptTarget target : config.targets) {
        const ArrayResult *winner = &candidates.front();
        for (const auto &r : candidates)
            if (r.metric(target) < winner->metric(target))
                winner = &r;
        best.push_back(*winner);
    }
    return best;
}

} // namespace

int
defaultSweepJobs()
{
    return sweepJobsDefault;
}

void
setDefaultSweepJobs(int jobs)
{
    sweepJobsDefault = ThreadPool::resolveJobs(jobs);
}

ParallelSweepRunner::ParallelSweepRunner(int jobs)
    : jobs_(ThreadPool::resolveJobs(jobs))
{
}

void
ParallelSweepRunner::shard(
    std::size_t count,
    const std::function<void(std::size_t)> &body) const
{
    if (jobs_ <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    if (!pool_)
        pool_ = std::make_unique<ThreadPool>(jobs_);
    parallelFor(*pool_, count, body);
}

std::vector<ArrayResult>
ParallelSweepRunner::characterize(const SweepConfig &config) const
{
    if (config.cells.empty())
        fatal("sweep has no cells configured");

    // One work item per (cell, capacity) pair; slots keep serial order
    // even though items complete in any order.
    std::size_t pairs =
        config.cells.size() * config.capacitiesBytes.size();
    std::vector<std::vector<ArrayResult>> slots(pairs);
    shard(pairs, [&](std::size_t idx) {
        const MemCell &cell =
            config.cells[idx / config.capacitiesBytes.size()];
        double capacity =
            config.capacitiesBytes[idx % config.capacitiesBytes.size()];
        slots[idx] = characterizePair(config, cell, capacity);
    });

    std::vector<ArrayResult> arrays;
    arrays.reserve(pairs * config.targets.size());
    for (const auto &slot : slots)
        arrays.insert(arrays.end(), slot.begin(), slot.end());
    return arrays;
}

std::vector<EvalResult>
ParallelSweepRunner::evaluateAll(
    const std::vector<ArrayResult> &arrays,
    const std::vector<TrafficPattern> &traffics) const
{
    std::vector<EvalResult> results(arrays.size() * traffics.size());
    shard(results.size(), [&](std::size_t idx) {
        const ArrayResult &array = arrays[idx / traffics.size()];
        const TrafficPattern &traffic = traffics[idx % traffics.size()];
        results[idx] = evaluate(array, traffic);
    });
    return results;
}

std::vector<EvalResult>
ParallelSweepRunner::run(const SweepConfig &config) const
{
    if (config.traffics.empty())
        fatal("sweep has no traffic patterns configured");
    return evaluateAll(characterize(config), config.traffics);
}

std::vector<ArrayResult>
ParallelSweepRunner::optimizeAll(const std::vector<MemCell> &cells,
                                 double capacityBytes, int wordBits,
                                 OptTarget target, int nodeNm,
                                 int sramNodeNm) const
{
    std::vector<ArrayResult> arrays(cells.size());
    shard(cells.size(), [&](std::size_t idx) {
        const MemCell &cell = cells[idx];
        ArrayConfig config;
        config.capacityBytes = capacityBytes;
        config.wordBits = wordBits;
        config.nodeNm = implementationNode(cell, nodeNm, sramNodeNm);
        ArrayDesigner designer(cell, config);
        arrays[idx] = designer.optimize(target);
    });
    return arrays;
}

} // namespace nvmexp
