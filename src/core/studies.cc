#include "core/studies.hh"

#include <algorithm>
#include <cmath>

#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "dnn/inference.hh"
#include "dnn/networks.hh"
#include "fault/fault_model.hh"
#include "fault/injector.hh"
#include "metrics/metric.hh"
#include "util/logging.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace studies {

namespace {

/**
 * Bit-error-rate ceiling for "maintains DNN accuracy" filters in the
 * power studies. Calibrated against the real fault-injection MLP
 * experiments (mlcFaultStudy): accuracy stays within 1% of baseline
 * below ~2e-3 and collapses above ~1e-2.
 */
constexpr double kAccuracyBerCeiling = 2e-3;

ArrayResult
optimizeFor(const MemCell &cell, double capacityBytes, int wordBits,
            OptTarget target)
{
    ArrayConfig config;
    config.capacityBytes = capacityBytes;
    config.wordBits = wordBits;
    config.nodeNm = implementationNode(cell);
    ArrayDesigner designer(cell, config);
    return designer.optimize(target);
}

bool
accuracyOk(const MemCell &cell)
{
    return FaultModel(cell).bitErrorRate() < kAccuracyBerCeiling;
}

/** Round a byte footprint up to the next power-of-two MiB capacity. */
double
provisionCapacity(double footprintBytes)
{
    double capacity = kMiB;
    while (capacity < footprintBytes)
        capacity *= 2.0;
    return capacity;
}

/** Registry dispatch for the studies: a JSON workload spec (the same
 *  syntax config files use) expanded at the study's word width. */
std::vector<TrafficPattern>
workloadTraffic(const std::string &specJson, int wordBits)
{
    workload::TrafficContext context;
    context.wordBits = wordBits;
    return workload::trafficFromWorkloadJson(
        JsonValue::parse(specJson), context);
}

/** Single-pattern convenience for scenario-shaped studies. */
TrafficPattern
workloadPattern(const std::string &specJson, int wordBits)
{
    auto patterns = workloadTraffic(specJson, wordBits);
    if (patterns.size() != 1)
        panic("study workload spec produced ", patterns.size(),
              " patterns, expected one: ", specJson);
    return patterns.front();
}

} // namespace

std::vector<ArrayResult>
arrayLandscape(double capacityBytes)
{
    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = catalog.studyCells();
    sweep.capacitiesBytes = {capacityBytes};
    sweep.targets = allOptTargets();
    sweep.jobs = defaultSweepJobs();
    sweep.outDir = defaultSweepStoreDir();
    return characterizeSweep(sweep);
}

std::vector<ValidationRow>
tentpoleValidation()
{
    CellCatalog catalog;
    const SurveyEntry *published = nullptr;
    for (const auto &entry : catalog.survey().entries()) {
        if (entry.label == "ISSCC18-STT-1Mb-2p8ns") {
            published = &entry;
            break;
        }
    }
    if (!published)
        panic("validation reference entry missing from survey");

    double capacity = *published->arrayCapacityMb * kMiB / 8.0;
    ArrayResult opt = optimizeFor(catalog.optimistic(CellTech::STT),
                                  capacity, 512, OptTarget::ReadLatency);
    ArrayResult pess = optimizeFor(catalog.pessimistic(CellTech::STT),
                                   capacity, 512, OptTarget::ReadLatency);

    std::vector<ValidationRow> rows;
    {
        ValidationRow r;
        r.metric = "read latency [ns]";
        r.optimistic = opt.readLatency * 1e9;
        r.pessimistic = pess.readLatency * 1e9;
        r.reference = *published->arrayReadLatencyNs;
        r.covered = r.optimistic <= r.reference &&
            r.reference <= r.pessimistic;
        rows.push_back(r);
    }
    {
        ValidationRow r;
        r.metric = "read energy [pJ/bit]";
        r.optimistic = opt.readEnergyPerBit() * 1e12;
        r.pessimistic = pess.readEnergyPerBit() * 1e12;
        r.reference = *published->arrayReadEnergyPjPerBit;
        r.covered = r.optimistic <= r.reference &&
            r.reference <= r.pessimistic;
        rows.push_back(r);
    }
    return rows;
}

std::vector<ArrayResult>
dnnBufferArrays(double capacityBytes)
{
    CellCatalog catalog;
    return ParallelSweepRunner(defaultSweepJobs())
        .optimizeAll(catalog.studyCells(), capacityBytes, 512,
                     OptTarget::ReadEDP);
}

std::vector<DnnPowerRow>
dnnContinuousPower()
{
    auto arrays = dnnBufferArrays();

    struct ScenarioSpec
    {
        const char *label;
        int tasks;
        const char *storage;
    };
    const ScenarioSpec scenarios[] = {
        {"single/weights", 1, "weights"},
        {"single/w+a", 1, "weights+activations"},
        {"multi/weights", 3, "weights"},
        {"multi/w+a", 3, "weights+activations"},
    };

    ParallelSweepRunner runner(defaultSweepJobs());
    std::vector<DnnPowerRow> rows;
    for (const auto &spec : scenarios) {
        TrafficPattern traffic = workloadPattern(
            std::string("{\"name\": \"dnn\", "
                        "\"network\": \"resnet26\", \"tasks\": ") +
                std::to_string(spec.tasks) + ", \"storage\": \"" +
                spec.storage + "\", \"fps\": 60}",
            512);
        auto evals = runner.evaluateAll(arrays, {traffic});
        // Row metrics come out of the registry — the same accessors
        // the filter/Pareto/CLI vocabulary names, so study output and
        // dashboard queries can never disagree on a definition.
        const metrics::Metric &power = metrics::metric("total_power");
        const metrics::Metric &load = metrics::metric("latency_load");
        const metrics::Metric &density =
            metrics::metric("density_mb_per_mm2");
        const metrics::Metric &viable = metrics::metric("viable");
        for (std::size_t i = 0; i < arrays.size(); ++i) {
            const ArrayResult &array = arrays[i];
            const EvalResult &ev = evals[i];
            DnnPowerRow row;
            row.cell = array.cell.name;
            row.scenario = spec.label;
            row.totalPowerW = power.eval(ev);
            row.latencyLoad = load.eval(ev);
            row.densityMbPerMm2 = density.array(array);
            row.meetsFps = viable.eval(ev) != 0.0;
            row.meetsAccuracy = accuracyOk(array.cell);
            rows.push_back(row);
        }
    }
    return rows;
}

std::vector<IntermittentRow>
dnnIntermittentEnergy(const std::vector<double> &eventsPerDay)
{
    CellCatalog catalog;

    struct TaskSpec
    {
        const char *label;
        NetworkModel net;
        int tasks;
    };
    const TaskSpec tasks[] = {
        {"img-single", resnet26(), 1},
        {"img-multi", resnet26(), 3},
        {"nlp-emb", albertEmbeddings(), 1},
        {"nlp-single", albertBase(), 1},
        {"nlp-multi", albertBase(), 3},
    };

    std::vector<IntermittentRow> rows;
    for (const auto &task : tasks) {
        DnnScenario scenario;
        scenario.network = task.net;
        scenario.tasks = task.tasks;
        scenario.storage = DnnStorage::WeightsOnly;
        DnnAccessProfile profile = extractAccessProfile(scenario);
        double capacity = provisionCapacity(profile.footprintBytes);

        for (const auto &cell : catalog.studyCells()) {
            ArrayResult array = optimizeFor(cell, capacity, 512,
                                            OptTarget::ReadEDP);
            for (double events : eventsPerDay) {
                IntermittentConfig config;
                config.eventsPerDay = events;
                config.readsPerEvent = profile.readWordsPerFrame;
                config.writesPerEvent = profile.writeWordsPerFrame;
                config.computeTimePerEvent =
                    (double)task.net.totalMacs() * task.tasks / 2e12;
                config.restoreBytesOnWake = profile.footprintBytes;
                IntermittentResult ir =
                    evaluateIntermittent(array, config);

                IntermittentRow row;
                row.cell = cell.name;
                row.task = task.label;
                row.eventsPerDay = events;
                row.energyPerEvent = ir.energyPerEvent;
                row.energyPerDay = ir.energyPerDay;
                row.capacityBytes = capacity;
                row.meetsLatency =
                    ir.eventLatency + ir.wakeLatency < 1.0;
                row.meetsAccuracy = accuracyOk(cell);
                rows.push_back(row);
            }
        }
    }
    return rows;
}

namespace {

/** Winner among a flavor pool by a key, folding the metric's
 *  registry direction ("best" power is the smallest value, "best"
 *  density the largest). */
template <typename Row, typename Key, typename Pool>
std::string
winner(const std::vector<Row> &rows, Pool inPool, Key key,
       metrics::Direction direction)
{
    const bool minimize = direction == metrics::Direction::Minimize;
    const Row *best = nullptr;
    for (const auto &row : rows) {
        if (!inPool(row))
            continue;
        double k = key(row);
        if (std::isnan(k))  // an unordered key is never the winner
            continue;
        if (!best || (minimize ? k < key(*best) : k > key(*best)))
            best = &row;
    }
    return best ? best->cell : "none";
}

bool
isOptimisticPool(const std::string &cellName)
{
    return cellName.find("-Opt") != std::string::npos;
}

bool
isAlternativePool(const std::string &cellName)
{
    return cellName.find("-Pess") != std::string::npos ||
        cellName.find("-Ref") != std::string::npos;
}

} // namespace

std::vector<UseCaseRow>
dnnUseCaseSummary()
{
    std::vector<UseCaseRow> table;

    // Continuous rows from the 60 FPS power study.
    auto powerRows = dnnContinuousPower();
    struct ContinuousSpec
    {
        const char *scenario;
        const char *task;
        const char *storage;
    };
    const ContinuousSpec continuous[] = {
        {"single/weights", "Single-Task Img", "Weights Only"},
        {"single/w+a", "Single-Task Img", "Weights+Acts"},
        {"multi/weights", "Multi-Task Img", "Weights Only"},
        {"multi/w+a", "Multi-Task Img", "Weights+Acts"},
    };
    for (const auto &spec : continuous) {
        std::vector<DnnPowerRow> eligible;
        for (const auto &row : powerRows) {
            if (row.scenario == spec.scenario && row.meetsFps &&
                row.meetsAccuracy && row.cell != "SRAM") {
                eligible.push_back(row);
            }
        }
        auto inOpt = [](const DnnPowerRow &r) {
            return isOptimisticPool(r.cell);
        };
        auto inAlt = [](const DnnPowerRow &r) {
            return isAlternativePool(r.cell);
        };
        const auto powerDir = metrics::metric("total_power").direction;
        const auto densityDir =
            metrics::metric("density_mb_per_mm2").direction;
        UseCaseRow lowPower{"Continuous(60IPS)", spec.task, spec.storage,
                            "Low Power", "", ""};
        lowPower.optChoice = winner(eligible, inOpt,
            [](const DnnPowerRow &r) { return r.totalPowerW; },
            powerDir);
        lowPower.altChoice = winner(eligible, inAlt,
            [](const DnnPowerRow &r) { return r.totalPowerW; },
            powerDir);
        table.push_back(lowPower);

        UseCaseRow density{"Continuous(60IPS)", spec.task, spec.storage,
                           "High Density", "", ""};
        density.optChoice = winner(eligible, inOpt,
            [](const DnnPowerRow &r) { return r.densityMbPerMm2; },
            densityDir);
        density.altChoice = winner(eligible, inAlt,
            [](const DnnPowerRow &r) { return r.densityMbPerMm2; },
            densityDir);
        table.push_back(density);
    }

    // Intermittent rows at a fixed 1-inference-per-second wake rate.
    auto irows = dnnIntermittentEnergy({86400.0});
    const char *tasks[] = {"img-single", "img-multi", "nlp-emb",
                           "nlp-single", "nlp-multi"};
    // Density per (cell, task) comes from the provisioned arrays; use
    // the cell-level density figure for ranking.
    CellCatalog catalog;
    auto cellDensity = [&](const std::string &name) {
        for (const auto &cell : catalog.studyCells())
            if (cell.name == name)
                return cell.densityBitsPerF2();
        return 0.0;
    };
    for (const char *task : tasks) {
        std::vector<IntermittentRow> eligible;
        for (const auto &row : irows) {
            if (row.task == task && row.meetsLatency &&
                row.meetsAccuracy && row.cell != "SRAM") {
                eligible.push_back(row);
            }
        }
        auto inOpt = [](const IntermittentRow &r) {
            return isOptimisticPool(r.cell);
        };
        auto inAlt = [](const IntermittentRow &r) {
            return isAlternativePool(r.cell);
        };
        UseCaseRow lowEnergy{"Intermittent(1IPS)", task, "Weights Only",
                             "Low Energy/Inf", "", ""};
        // Daily energy is an IntermittentResult quantity with no
        // EvalResult metric; it is minimized by definition.
        lowEnergy.optChoice = winner(eligible, inOpt,
            [](const IntermittentRow &r) { return r.energyPerDay; },
            metrics::Direction::Minimize);
        lowEnergy.altChoice = winner(eligible, inAlt,
            [](const IntermittentRow &r) { return r.energyPerDay; },
            metrics::Direction::Minimize);
        table.push_back(lowEnergy);

        UseCaseRow density{"Intermittent(1IPS)", task, "Weights Only",
                           "High Density", "", ""};
        const auto densityDir =
            metrics::metric("density_mb_per_mm2").direction;
        density.optChoice = winner(eligible, inOpt,
            [&](const IntermittentRow &r) {
                return cellDensity(r.cell);
            },
            densityDir);
        density.altChoice = winner(eligible, inAlt,
            [&](const IntermittentRow &r) {
                return cellDensity(r.cell);
            },
            densityDir);
        table.push_back(density);
    }
    return table;
}

namespace {

GraphStudyResult
graphStudyWithCells(const std::vector<MemCell> &cells,
                    double capacityBytes)
{
    GraphStudyResult result;
    constexpr int kWordBits = 64;  // 8-byte vertex/edge records

    ParallelSweepRunner runner(defaultSweepJobs());
    auto arrays = runner.optimizeAll(cells, capacityBytes, kWordBits,
                                     OptTarget::ReadEDP);

    // Generic grid spanning the graph-kernel demand range: the paper
    // sweeps 1-10 GB/s reads x 1-100 MB/s writes; we extend the low
    // end so the leakage-dominated regime (below ~1e7 reads/s) is
    // visible in the same sweep.
    auto grid = genericTrafficGrid(0.05e9, 10e9, 1e6, 100e6, 5,
                                   kWordBits);
    result.generic = runner.evaluateAll(arrays, grid);

    // Kernel points: BFS over two social graphs (Sec. IV-B2), via the
    // workload registry.
    TrafficPattern fbTraffic = workloadPattern(
        R"({"name": "graph", "graph": "facebook", "kernel": "bfs"})",
        kWordBits);
    TrafficPattern wikiTraffic = workloadPattern(
        R"({"name": "graph", "graph": "wikipedia", "kernel": "bfs"})",
        kWordBits);
    result.kernels = runner.evaluateAll(arrays, {fbTraffic, wikiTraffic});
    return result;
}

} // namespace

GraphStudyResult
graphStudy(double capacityBytes)
{
    CellCatalog catalog;
    return graphStudyWithCells(catalog.studyCells(), capacityBytes);
}

GraphStudyResult
bgFefetStudy(double capacityBytes)
{
    CellCatalog catalog;
    std::vector<MemCell> cells = {
        CellCatalog::sram16(),
        catalog.optimistic(CellTech::FeFET),
        catalog.pessimistic(CellTech::FeFET),
        CellCatalog::backGatedFeFET(),
        catalog.optimistic(CellTech::STT),
    };
    return graphStudyWithCells(cells, capacityBytes);
}

LlcStudyResult
llcStudy(double capacityBytes)
{
    CellCatalog catalog;
    LlcStudyResult result;
    ParallelSweepRunner runner(defaultSweepJobs());

    // Fig. 10: array characteristics per optimization target.
    SweepConfig sweep;
    sweep.cells = catalog.studyCells();
    sweep.capacitiesBytes = {capacityBytes};
    sweep.targets = allOptTargets();
    sweep.outDir = defaultSweepStoreDir();
    result.arrays = runner.characterize(sweep);

    // Fig. 9: ReadEDP-optimized arrays under SPEC-like traffic.
    auto arrays = runner.optimizeAll(catalog.studyCells(),
                                     capacityBytes, 512,
                                     OptTarget::ReadEDP);

    std::vector<TrafficPattern> traffics = workloadTraffic(
        "{\"name\": \"llc\", \"benchmark\": \"suite\", "
        "\"instructions\": 20e6, \"warmup\": 5e6, \"llc_mib\": " +
            JsonValue::formatNumber(capacityBytes / kMiB) + "}",
        512);
    // Benchmark-major ordering (Fig. 9 groups by benchmark): evaluate
    // each traffic against every array in turn.
    for (const auto &traffic : traffics) {
        auto evals = runner.evaluateAll(arrays, {traffic});
        result.evals.insert(result.evals.end(), evals.begin(),
                            evals.end());
    }
    return result;
}

std::vector<ArrayResult>
areaEfficiencyStudy(double capacityBytes)
{
    CellCatalog catalog;
    std::vector<ArrayResult> all;
    for (const auto &cell : catalog.studyCells()) {
        ArrayConfig config;
        config.capacityBytes = capacityBytes;
        config.wordBits = 512;
        config.nodeNm = implementationNode(cell);
        // Admit low-efficiency organizations: the point of the study
        // is the efficiency/latency correlation across the full space.
        config.minAreaEfficiency = 0.05;
        ArrayDesigner designer(cell, config);
        auto results = designer.enumerate();
        all.insert(all.end(), results.begin(), results.end());
    }
    return all;
}

std::vector<MlcFaultRow>
mlcFaultStudy(int trials)
{
    if (trials < 1)
        fatal("mlcFaultStudy needs at least one trial");
    CellCatalog catalog;

    // The real inference substrate: train once, quantize once.
    SyntheticTask task(32, 10, 3000, 1500, 0xACC, 1.0);
    Mlp mlp({32, 64, 10}, 0x5EED);
    mlp.train(task, 12, 0.02);
    QuantizedMlp quantized = mlp.quantize();
    double baseline = quantized.accuracy(task.testX(), task.testY());

    std::vector<MemCell> cells;
    auto addPair = [&](MemCell slc) {
        cells.push_back(slc);
        if (slc.mlcCapable)
            cells.push_back(slc.makeMlc());
    };
    addPair(catalog.optimistic(CellTech::RRAM));
    addPair(catalog.optimistic(CellTech::FeFET));   // small cell
    addPair(catalog.pessimistic(CellTech::FeFET));  // large cell
    addPair(catalog.optimistic(CellTech::CTT));

    double resnetBytes = resnet18().weightBytes();

    std::vector<MlcFaultRow> rows;
    for (const auto &cell : cells) {
        FaultModel model(cell);
        double accSum = 0.0;
        for (int trial = 0; trial < trials; ++trial) {
            quantized.restore();
            FaultInjector injector(model,
                                   0x1234 + (std::uint64_t)trial);
            injector.inject(quantized.weightImage());
            accSum += quantized.accuracy(task.testX(), task.testY());
        }
        quantized.restore();
        double accuracy = accSum / trials;

        for (double capacity : {8.0 * kMiB, 16.0 * kMiB}) {
            ArrayResult array = optimizeFor(cell, capacity, 512,
                                            OptTarget::ReadEDP);
            MlcFaultRow row;
            row.cell = cell.name;
            row.bitsPerCell = cell.bitsPerCell;
            row.cellAreaF2 = cell.areaF2;
            row.bitErrorRate = model.bitErrorRate();
            row.accuracy = accuracy;
            row.baselineAccuracy = baseline;
            row.densityMbPerMm2 = array.densityMbPerMm2();
            row.capacityBytes = capacity;
            row.fitsWeights = resnetBytes <= capacity;
            row.meetsAccuracy = accuracy >= baseline - 0.01;
            rows.push_back(row);
        }
    }
    return rows;
}

std::vector<WriteBufferRow>
writeBufferStudy()
{
    CellCatalog catalog;
    std::vector<MemCell> cells = {
        CellCatalog::sram16(),
        catalog.optimistic(CellTech::STT),
        catalog.optimistic(CellTech::RRAM),
        catalog.optimistic(CellTech::PCM),
        catalog.optimistic(CellTech::FeFET),
    };

    // Workload 1: BFS on the Facebook-like graph (8 MiB scratchpad).
    TrafficPattern fbTraffic = workloadPattern(
        R"({"name": "graph", "graph": "facebook", "kernel": "bfs"})",
        64);

    // Workload 2: a write-heavy SPEC-like benchmark on a 16 MiB LLC.
    TrafficPattern lbmTraffic = workloadPattern(
        R"({"name": "llc", "benchmark": "lbm",
            "instructions": 10e6, "warmup": 2e6})",
        512);

    struct Workload
    {
        TrafficPattern traffic;
        double capacity;
        int wordBits;
    };
    const Workload workloads[] = {
        {fbTraffic, 8.0 * kMiB, 64},
        {lbmTraffic, 16.0 * kMiB, 512},
    };

    const std::pair<double, double> settings[] = {
        {0.0, 0.0}, {1.0, 0.0}, {1.0, 0.25}, {1.0, 0.5}, {1.0, 0.75},
    };

    std::vector<WriteBufferRow> rows;
    for (const auto &workload : workloads) {
        for (const auto &cell : cells) {
            ArrayResult array = optimizeFor(cell, workload.capacity,
                                            workload.wordBits,
                                            OptTarget::ReadEDP);
            for (auto [mask, reduction] : settings) {
                WriteBufferConfig config;
                config.latencyMaskFraction = mask;
                config.trafficReduction = reduction;
                EvalResult ev = evaluateWithWriteBuffer(
                    array, workload.traffic, config);
                WriteBufferRow row;
                row.cell = cell.name;
                row.workload = workload.traffic.name;
                row.latencyMask = mask;
                row.trafficReduction = reduction;
                row.totalPowerW = ev.totalPower;
                row.latencyLoad = ev.latencyLoad;
                row.viable = ev.viable();
                rows.push_back(row);
            }
        }
    }
    return rows;
}

} // namespace studies
} // namespace nvmexp
