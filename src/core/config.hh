/**
 * @file
 * JSON configuration front-end: the C++ equivalent of the original
 * release's `python run.py config/<study>.json` interface.
 *
 * A config file names the cells, capacities, optimization targets,
 * traffic patterns, and constraints of a design sweep; loadExperiment
 * turns it into a SweepConfig + Constraints and runExperiment produces
 * the combined results table (and optional CSV).
 */

#ifndef NVMEXP_CORE_CONFIG_HH
#define NVMEXP_CORE_CONFIG_HH

#include <string>

#include "core/sweep.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace nvmexp {

/** A fully resolved experiment specification. */
struct ExperimentConfig
{
    std::string name = "experiment";
    SweepConfig sweep;
    Constraints constraints;
    bool applyConstraints = false;
    std::string outputCsv;  ///< empty = don't write
};

/**
 * Resolve a cell reference string to a catalog cell:
 *   "SRAM", "<Tech>-Opt", "<Tech>-Pess", "RRAM-Ref", "FeFET-BG",
 * optionally suffixed with "+MLC2" for the 2-bit variant; or the
 * special name "study-set" handled by loadExperiment. fatal() on
 * unknown references.
 */
MemCell resolveCellReference(const std::string &reference);

/** Build an ExperimentConfig from a parsed JSON document. */
ExperimentConfig loadExperiment(const JsonValue &doc);

/** Convenience: parse + load a config file. */
ExperimentConfig loadExperimentFile(const std::string &path);

/**
 * Run the experiment and collect the standard dashboard columns
 * (cell, traffic, power, latency load, lifetime, viability...).
 * Writes outputCsv when configured.
 */
Table runExperiment(const ExperimentConfig &config);

} // namespace nvmexp

#endif // NVMEXP_CORE_CONFIG_HH
