/**
 * @file
 * JSON configuration front-end: the C++ equivalent of the original
 * release's `python run.py config/<study>.json` interface.
 *
 * A config file names the cells, capacities, optimization targets,
 * traffic patterns, and constraints of a design sweep; loadExperiment
 * turns it into a SweepConfig + Constraints and runExperiment produces
 * the combined results table (and optional CSV).
 */

#ifndef NVMEXP_CORE_CONFIG_HH
#define NVMEXP_CORE_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "metrics/constraints.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace nvmexp {

/** A fully resolved experiment specification. */
struct ExperimentConfig
{
    std::string name = "experiment";
    SweepConfig sweep;
    /**
     * Declarative refine pipeline (the paper's "filter and refine"
     * stage), applied in order after the sweep: constraint clauses,
     * then the Pareto front over `paretoMetrics` (when non-empty),
     * then the `topK` best rows under `topMetric` (when set). The
     * JSON "constraints" key accepts both the declarative clause
     * array and the legacy fixed-field object (adapted via
     * metrics::ConstraintSet::fromLegacy); "pareto" and "top_k" have
     * no legacy form. The CLI's --filter/--pareto/--top flags layer
     * onto the same fields.
     */
    metrics::ConstraintSet constraints;
    bool applyConstraints = false;
    std::vector<std::string> paretoMetrics;
    std::string topMetric;  ///< empty = no top-k stage
    std::size_t topK = 0;
    /** Config had a "reliability"/"ecc" block: the dashboard table
     *  grows ECC/failure-rate columns. Off by default so sweeps
     *  without a reliability axis print exactly as before. */
    bool showReliability = false;
    /** The "campaign" block's shard count; 0 = config doesn't ask for
     *  a distributed campaign. `campaign plan` uses this as the
     *  default when --shards isn't given. */
    std::size_t campaignShards = 0;
    std::string outputCsv;  ///< empty = don't write
};

/**
 * Resolve a cell reference string to a catalog cell:
 *   "SRAM", "<Tech>-Opt", "<Tech>-Pess", "RRAM-Ref", "FeFET-BG",
 * optionally suffixed with "+MLC2" for the 2-bit variant; or the
 * special name "study-set" handled by loadExperiment. fatal() on
 * unknown references.
 */
MemCell resolveCellReference(const std::string &reference);

/** Build an ExperimentConfig from a parsed JSON document. */
ExperimentConfig loadExperiment(const JsonValue &doc);

/** Convenience: parse + load a config file. */
ExperimentConfig loadExperimentFile(const std::string &path);

/**
 * Run the experiment and collect the standard dashboard columns
 * (cell, traffic, power, latency load, lifetime, viability...).
 * Writes outputCsv when configured.
 */
Table runExperiment(const ExperimentConfig &config);

} // namespace nvmexp

#endif // NVMEXP_CORE_CONFIG_HH
