/**
 * @file
 * Multi-core sweep engine.
 *
 * The sweep cross product (cells x capacities x targets x traffic) is
 * embarrassingly parallel: every array characterization and every
 * (array, traffic) evaluation is independent. ParallelSweepRunner
 * shards those items across a ThreadPool while writing each result
 * into its serial-order slot, so the output is identical to the serial
 * runSweep/characterizeSweep regardless of worker count or scheduling.
 */

#ifndef NVMEXP_CORE_PARALLEL_SWEEP_HH
#define NVMEXP_CORE_PARALLEL_SWEEP_HH

#include <memory>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "store/result_store.hh"
#include "util/thread_pool.hh"

namespace nvmexp {

class BatchEvalContext;

/**
 * Process-wide default worker count for sweeps that don't specify one
 * (studies, bench binaries). The CLI's --jobs flag sets this. 1 on
 * startup; <=0 means "all hardware threads".
 */
int defaultSweepJobs();
void setDefaultSweepJobs(int jobs);

/**
 * Process-wide default result-store directory for sweeps that don't
 * specify one: studies and bench binaries route their SweepConfigs
 * through it so repeated figure regeneration hits the
 * characterization cache. Initialized from $NVMEXP_STORE_DIR on first
 * use unless setDefaultSweepStoreDir() ran earlier; empty disables
 * persistence. Returns a copy: the underlying state is mutex-guarded
 * and may be reset by another thread after this returns.
 */
std::string defaultSweepStoreDir();
void setDefaultSweepStoreDir(std::string dir);

/**
 * Resolve a sweep's effective traffic list: explicit patterns first,
 * then every workload spec expanded through the WorkloadRegistry in
 * order. Returns `config` itself when there is nothing to expand (so
 * the common path stays copy-free) and the filled `storage` otherwise.
 * The sweep fingerprint — and therefore every campaign shard plan —
 * is defined over the expanded form this returns.
 */
const SweepConfig &expandSweepWorkloads(const SweepConfig &config,
                                        SweepConfig &storage);

/** Runs sweep cross products on a fixed number of worker threads. */
class ParallelSweepRunner
{
  public:
    /** @param jobs worker threads; <=0 means all hardware threads. */
    explicit ParallelSweepRunner(int jobs = 1);

    /** Resolved worker count (always >= 1). */
    int jobs() const { return jobs_; }

    /** Parallel equivalent of characterizeSweep: cells x capacities x
     *  targets, results in serial sweep order. With config.outDir set,
     *  already-characterized arrays are served from the store's cache
     *  (byte-identical to recomputation) and fresh ones persisted, so
     *  an interrupted characterization resumes where it stopped. */
    std::vector<ArrayResult> characterize(const SweepConfig &config) const;

    /** Parallel equivalent of runSweep: characterize then evaluate
     *  against every traffic pattern, results in serial sweep order.
     *  With config.outDir set, evaluation slots are journaled (and
     *  replayed under config.resume) and results.json/.csv written. */
    std::vector<EvalResult> run(const SweepConfig &config) const;

    /** Store-backed run of the slot subset selected by `owned` (a
     *  campaign shard): non-selected slots are neither evaluated nor
     *  journaled, and the store's results artifacts carry exactly the
     *  owned rows in ascending slot order (also the return value).
     *  The checkpoint journal still claims the full sweep fingerprint
     *  and slot count, so shard journals merge into one canonical
     *  journal. Requires config.outDir; honors config.resume the same
     *  way run() does. A null selector behaves exactly like run(). */
    std::vector<EvalResult>
    runSelected(const SweepConfig &config,
                const std::function<bool(std::size_t)> &owned) const;

    /** Store counters from the last characterize()/run() that used a
     *  result store (zeros otherwise). */
    const store::StoreStats &lastStoreStats() const
    {
        return lastStoreStats_;
    }

    /** Evaluate the full arrays x traffics cross product, array-major
     *  (the order the serial study loops produce), annotated with the
     *  default {ecc: "none"} reliability numbers. */
    std::vector<EvalResult>
    evaluateAll(const std::vector<ArrayResult> &arrays,
                const std::vector<TrafficPattern> &traffics) const;

    /** Evaluate arrays x traffics x reliability specs (spec
     *  innermost), each row annotated with its spec's failure rates
     *  and overhead. An empty spec list means the implicit default
     *  spec, reproducing the two-argument overload exactly. Runs the
     *  batched path (eval/batch.hh); results are bit-identical to
     *  evaluateAllScalar. */
    std::vector<EvalResult>
    evaluateAll(const std::vector<ArrayResult> &arrays,
                const std::vector<TrafficPattern> &traffics,
                const std::vector<reliability::ReliabilitySpec> &specs)
        const;

    /** The per-point reference path: every expanded slot pays its own
     *  base and reliability evaluation. Kept as the second opinion
     *  the differential tier (and `"batch": false` sweeps) compare
     *  the batched path against. */
    std::vector<EvalResult>
    evaluateAllScalar(const std::vector<ArrayResult> &arrays,
                      const std::vector<TrafficPattern> &traffics,
                      const std::vector<reliability::ReliabilitySpec>
                          &specs) const;

    /** Optimize one array per cell at a fixed capacity/word width,
     *  results in cell order. */
    std::vector<ArrayResult>
    optimizeAll(const std::vector<MemCell> &cells, double capacityBytes,
                int wordBits, OptTarget target, int nodeNm = 22,
                int sramNodeNm = 16) const;

  private:
    /** Shard body(i) over the runner's workers (inline when jobs_ is
     *  1). The pool is created on first parallel use and reused for
     *  every subsequent loop of this runner (a study typically issues
     *  one loop per traffic pattern or scenario). */
    void shard(std::size_t count,
               const std::function<void(std::size_t)> &body) const;

    /** characterize() body against an optional store (null = none). */
    std::vector<ArrayResult>
    characterizeWithStore(const SweepConfig &config,
                          store::ResultStore *resultStore) const;

    /** Shared store-backed body of run()/runSelected(); `config` is
     *  already workload-expanded and validated. */
    std::vector<EvalResult>
    runStoreBacked(const SweepConfig &config,
                   const std::function<bool(std::size_t)> &owned) const;

    /** Shard the context's slots over the workers in contiguous
     *  batches of `batchSize` (<= 0 picks the context default). todo
     *  and onSlot pass through to evaluateRange() unchanged. */
    void shardBatches(const BatchEvalContext &context, int batchSize,
                      std::vector<EvalResult> &results,
                      const std::vector<char> *todo,
                      const std::function<void(std::size_t)> &onSlot)
        const;

    int jobs_;
    /** Lazily-created persistent worker pool; runners are not
     *  thread-safe themselves (one sweep driver per runner). */
    mutable std::unique_ptr<ThreadPool> pool_;
    mutable store::StoreStats lastStoreStats_;
};

} // namespace nvmexp

#endif // NVMEXP_CORE_PARALLEL_SWEEP_HH
