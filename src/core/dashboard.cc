#include "core/dashboard.hh"

namespace nvmexp {

const std::vector<DashboardColumn> &
dashboardColumns()
{
    // Scales convert the registry's SI-leaning units to the display
    // units in the headers (s -> ns, W -> mW). Values must match what
    // the table always printed; the golden experiment tests pin this.
    static const std::vector<DashboardColumn> columns = {
        {"Cell", "", 1.0, false},
        {"Capacity[MiB]", "capacity_mib", 1.0, false},
        {"Traffic", "", 1.0, false},
        {"ReadLat[ns]", "read_latency", 1e9, false},
        {"WriteLat[ns]", "write_latency", 1e9, false},
        {"Power[mW]", "total_power", 1e3, false},
        {"LatencyLoad", "latency_load", 1.0, false},
        {"Lifetime[yr]", "lifetime_years", 1.0, false},
        {"Density[Mb/mm2]", "density_mb_per_mm2", 1.0, false},
        {"Viable", "", 1.0, false},
        {"ECC", "", 1.0, true},
        {"Scrub[s]", "", 1.0, true},
        {"RawBER", "raw_ber", 1.0, true},
        {"UncorrWord", "uncorrectable_word_rate", 1.0, true},
        {"EffDens[Mb/mm2]", "effective_density_mb_per_mm2", 1.0, true},
    };
    return columns;
}

} // namespace nvmexp
