/**
 * @file
 * Per-exhibit study drivers: one function per table/figure of the
 * paper's evaluation. Bench binaries print these results; integration
 * tests assert the paper's qualitative claims against them.
 */

#ifndef NVMEXP_CORE_STUDIES_HH
#define NVMEXP_CORE_STUDIES_HH

#include <string>
#include <vector>

#include "core/sweep.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"

namespace nvmexp {
namespace studies {

constexpr double kMiB = 1024.0 * 1024.0;

/** Fig. 3: iso-capacity arrays across cells x optimization targets. */
std::vector<ArrayResult>
arrayLandscape(double capacityBytes = 4.0 * kMiB);

/** Fig. 4: tentpole STT vs the published 1 MB reference array. */
struct ValidationRow
{
    std::string metric;
    double optimistic = 0.0;
    double pessimistic = 0.0;
    double reference = 0.0;
    /** Tentpoles bracket the published value (opt <= ref <= pess). */
    bool covered = false;
};
std::vector<ValidationRow> tentpoleValidation();

/** Fig. 5: 2 MB ReadEDP-optimized arrays (NVDLA buffer). */
std::vector<ArrayResult>
dnnBufferArrays(double capacityBytes = 2.0 * kMiB);

/** Fig. 6 (left): continuous-operation DNN power. */
struct DnnPowerRow
{
    std::string cell;
    std::string scenario;
    double totalPowerW = 0.0;
    double latencyLoad = 0.0;
    double densityMbPerMm2 = 0.0;
    bool meetsFps = false;
    bool meetsAccuracy = false;
};
std::vector<DnnPowerRow> dnnContinuousPower();

/** Fig. 6 (right) + Fig. 7: intermittent energy per inference/day. */
struct IntermittentRow
{
    std::string cell;
    std::string task;       ///< "img-single", "img-multi", "nlp", ...
    double eventsPerDay = 0.0;
    double energyPerEvent = 0.0;
    double energyPerDay = 0.0;
    double capacityBytes = 0.0;
    bool meetsLatency = false;
    bool meetsAccuracy = false;
};
std::vector<IntermittentRow>
dnnIntermittentEnergy(const std::vector<double> &eventsPerDay);

/** Table II: preferred eNVM per use case. */
struct UseCaseRow
{
    std::string useCase;
    std::string task;
    std::string storage;
    std::string priority;
    std::string optChoice;  ///< winner among optimistic cells
    std::string altChoice;  ///< winner among pessimistic + reference
};
std::vector<UseCaseRow> dnnUseCaseSummary();

/** Fig. 8 / Fig. 11: graph scratchpad study. */
struct GraphStudyResult
{
    std::vector<EvalResult> generic;  ///< rate-grid sweep
    std::vector<EvalResult> kernels;  ///< BFS on social graphs
};
GraphStudyResult graphStudy(double capacityBytes = 8.0 * kMiB);

/** Fig. 11: same study with back-gated FeFET added. */
GraphStudyResult bgFefetStudy(double capacityBytes = 8.0 * kMiB);

/** Fig. 9 + Fig. 10: SPEC-like LLC study. */
struct LlcStudyResult
{
    std::vector<ArrayResult> arrays;  ///< per target (Fig. 10)
    std::vector<EvalResult> evals;    ///< per benchmark (Fig. 9)
};
LlcStudyResult llcStudy(double capacityBytes = 16.0 * kMiB);

/** Fig. 12: all enumerated organizations (area-efficiency study). */
std::vector<ArrayResult>
areaEfficiencyStudy(double capacityBytes = 8.0 * kMiB);

/** Fig. 13: SLC vs MLC fault-injection accuracy/density study. */
struct MlcFaultRow
{
    std::string cell;
    int bitsPerCell = 1;
    double cellAreaF2 = 0.0;
    double bitErrorRate = 0.0;
    double accuracy = 0.0;        ///< measured MLP accuracy
    double baselineAccuracy = 0.0;
    double densityMbPerMm2 = 0.0;
    double capacityBytes = 0.0;
    bool fitsWeights = false;     ///< ResNet18 weights fit the array
    bool meetsAccuracy = false;   ///< within 1% of fault-free accuracy
};
std::vector<MlcFaultRow> mlcFaultStudy(int trials = 3);

/** Fig. 14: write-buffer masking / traffic-reduction study. */
struct WriteBufferRow
{
    std::string cell;
    std::string workload;
    double latencyMask = 0.0;
    double trafficReduction = 0.0;
    double totalPowerW = 0.0;
    double latencyLoad = 0.0;
    bool viable = false;
};
std::vector<WriteBufferRow> writeBufferStudy();

} // namespace studies
} // namespace nvmexp

#endif // NVMEXP_CORE_STUDIES_HH
