#include "core/config.hh"

#include "celldb/tentpole.hh"
#include "core/dashboard.hh"
#include "core/parallel_sweep.hh"
#include "metrics/metric.hh"
#include "metrics/refine.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "workload/workload.hh"

namespace nvmexp {

MemCell
resolveCellReference(const std::string &reference)
{
    std::string base = reference;
    bool mlc = false;
    if (auto pos = base.find("+MLC2"); pos != std::string::npos) {
        mlc = true;
        base = base.substr(0, pos);
    }

    CellCatalog catalog;
    MemCell cell;
    if (base == "SRAM") {
        cell = CellCatalog::sram16();
    } else if (base == "FeFET-BG") {
        cell = CellCatalog::backGatedFeFET();
    } else if (base == "RRAM-Ref") {
        cell = catalog.rramReference();
    } else if (auto pos = base.rfind("-Opt");
               pos != std::string::npos && pos + 4 == base.size()) {
        cell = catalog.optimistic(techFromName(base.substr(0, pos)));
    } else if (auto pessPos = base.rfind("-Pess");
               pessPos != std::string::npos &&
               pessPos + 5 == base.size()) {
        cell = catalog.pessimistic(
            techFromName(base.substr(0, pessPos)));
    } else {
        fatal("unknown cell reference '", reference,
              "' (expected SRAM, <Tech>-Opt, <Tech>-Pess, RRAM-Ref, "
              "or FeFET-BG, optionally +MLC2)");
    }
    return mlc ? cell.makeMlc() : cell;
}

namespace {

MemCell
customCellFromJson(const JsonValue &spec)
{
    CellCatalog catalog;
    MemCell cell;
    if (spec.has("base")) {
        cell = resolveCellReference(spec.at("base").asString());
    } else {
        cell = catalog.optimistic(
            techFromName(spec.at("tech").asString()));
    }
    cell.flavor = CellFlavor::Custom;
    cell.name = spec.stringOr("name", cell.name + "-custom");
    cell.areaF2 = spec.numberOr("area_f2", cell.areaF2);
    if (spec.has("write_pulse_ns")) {
        double pulse = spec.at("write_pulse_ns").asNumber() * 1e-9;
        cell.setPulse = pulse;
        cell.resetPulse = pulse;
    }
    if (spec.has("write_current_ua")) {
        double current = spec.at("write_current_ua").asNumber() * 1e-6;
        cell.setCurrent = current;
        cell.resetCurrent = current;
    }
    cell.writeVoltage = spec.numberOr("write_voltage", cell.writeVoltage);
    cell.readVoltage = spec.numberOr("read_voltage", cell.readVoltage);
    cell.endurance = spec.numberOr("endurance", cell.endurance);
    cell.retention = spec.numberOr("retention_sec", cell.retention);
    cell.validate();
    return cell;
}

OptTarget
targetFromName(const std::string &name)
{
    for (OptTarget target : allOptTargets())
        if (optTargetName(target) == name)
            return target;
    fatal("unknown optimization target '", name, "'");
}

TrafficPattern
trafficFromJson(const JsonValue &spec, int wordBits)
{
    std::string name = spec.stringOr("name", "traffic");
    if (spec.has("read_bytes_per_sec") ||
        spec.has("write_bytes_per_sec")) {
        return TrafficPattern::fromByteRates(
            name, spec.numberOr("read_bytes_per_sec", 0.0),
            spec.numberOr("write_bytes_per_sec", 0.0), wordBits,
            spec.numberOr("exec_time", 1.0));
    }
    if (spec.has("reads") || spec.has("writes")) {
        return TrafficPattern::fromCounts(
            name, spec.numberOr("reads", 0.0),
            spec.numberOr("writes", 0.0),
            spec.numberOr("exec_time", 1.0));
    }
    fatal("traffic entry '", name,
          "' needs byte rates or access counts");
}

/**
 * Parse the "reliability"/"ecc" block into the sweep's reliability
 * axis. Accepted forms:
 *
 *   "ecc": "secded-72-64"                       one scheme, no scrub
 *   "reliability": {"ecc": "none", ...}         one spec
 *   "reliability": {"ecc": ["none", "secded-72-64"],
 *                   "scrub_interval_sec": [0, 86400]}
 *
 * Array-valued keys sweep like cells/capacities: the axis is the
 * cross product of schemes x scrub intervals, scheme-major. Scheme
 * names and scrub intervals are validated here, so a typo fails
 * before any simulation runs.
 */
std::vector<reliability::ReliabilitySpec>
reliabilityFromJson(const JsonValue &block, const std::string &context)
{
    std::vector<std::string> schemes;
    std::vector<double> scrubs;

    if (block.isString()) {
        schemes.push_back(block.asString());
    } else if (block.isObject()) {
        for (const auto &key : block.memberNames()) {
            if (key != "ecc" && key != "scrub_interval_sec") {
                fatal(context, ": reliability block has unknown key '",
                      key, "' (expected \"ecc\" and/or "
                      "\"scrub_interval_sec\")");
            }
        }
        if (block.has("ecc")) {
            const JsonValue &ecc = block.at("ecc");
            if (ecc.isArray()) {
                for (const auto &entry : ecc.asArray())
                    schemes.push_back(entry.asString());
                if (schemes.empty())
                    fatal(context, ": reliability \"ecc\" list is "
                          "empty");
            } else {
                schemes.push_back(ecc.asString());
            }
        }
        if (block.has("scrub_interval_sec")) {
            const JsonValue &scrub = block.at("scrub_interval_sec");
            if (scrub.isArray()) {
                for (const auto &entry : scrub.asArray())
                    scrubs.push_back(entry.asNumber());
                if (scrubs.empty())
                    fatal(context, ": reliability "
                          "\"scrub_interval_sec\" list is empty");
            } else {
                scrubs.push_back(scrub.asNumber());
            }
        }
    } else {
        fatal(context, ": \"reliability\"/\"ecc\" must be a scheme "
              "name or an object with \"ecc\"/\"scrub_interval_sec\"");
    }

    if (schemes.empty())
        schemes.push_back("none");
    if (scrubs.empty())
        scrubs.push_back(0.0);

    std::vector<reliability::ReliabilitySpec> specs;
    specs.reserve(schemes.size() * scrubs.size());
    for (const auto &scheme : schemes) {
        for (double scrub : scrubs) {
            reliability::ReliabilitySpec spec;
            spec.ecc = scheme;
            spec.scrubIntervalSec = scrub;
            // Constructing the evaluator validates scheme + interval.
            reliability::ReliabilityEvaluator(spec, context);
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

} // namespace

ExperimentConfig
loadExperiment(const JsonValue &doc)
{
    ExperimentConfig config;
    config.name = doc.stringOr("experiment", "experiment");

    // Cells: names, "study-set", or inline custom definitions.
    CellCatalog catalog;
    for (const auto &entry : doc.at("cells").asArray()) {
        if (entry.isString()) {
            if (entry.asString() == "study-set") {
                auto all = catalog.studyCells();
                config.sweep.cells.insert(config.sweep.cells.end(),
                                          all.begin(), all.end());
            } else {
                config.sweep.cells.push_back(
                    resolveCellReference(entry.asString()));
            }
        } else {
            config.sweep.cells.push_back(customCellFromJson(entry));
        }
    }
    if (config.sweep.cells.empty())
        fatal("config '", config.name, "': no cells");

    // Capacities, word width, nodes.
    config.sweep.capacitiesBytes.clear();
    for (const auto &mib : doc.at("capacities_mib").asArray())
        config.sweep.capacitiesBytes.push_back(mib.asNumber() * 1024.0 *
                                               1024.0);
    config.sweep.wordBits = (int)doc.numberOr("word_bits", 512.0);
    config.sweep.nodeNm = (int)doc.numberOr("node_nm", 22.0);
    config.sweep.sramNodeNm = (int)doc.numberOr("sram_node_nm", 16.0);

    // Worker threads: an explicit "jobs" key wins, else the process
    // default (the CLI's --jobs flag). 0 = all hardware threads.
    // Validate before the int cast: double-to-int conversion is UB
    // outside int's range, and the CLI path enforces the same bounds
    // (both go through ThreadPool::jobsInRange).
    double jobs = doc.numberOr("jobs", (double)defaultSweepJobs());
    if (!ThreadPool::jobsInRange(jobs)) {
        fatal("config '", config.name, "': \"jobs\" must be in [0, ",
              ThreadPool::kMaxThreads, "], got ", jobs);
    }
    config.sweep.jobs = (int)jobs;

    // Result store: only the config's own keys here. The CLI layers
    // its --out/--resume flags (and the $NVMEXP_STORE_DIR fallback)
    // on top of configs that leave these unset, handling one-store-
    // per-experiment isolation there.
    config.sweep.outDir = doc.stringOr("out_dir", "");
    config.sweep.resume = doc.boolOr("resume", false);

    // Batched evaluation: on unless "batch": false (or the CLI's
    // --no-batch) asks for the per-point reference path. Either path
    // produces bit-identical results; "batch_size" only tunes the
    // scheduling granularity, <= 0 meaning "pick a sensible default".
    config.sweep.batch = doc.boolOr("batch", true);
    double batchSize = doc.numberOr("batch_size", 0.0);
    if (batchSize != (double)(int)batchSize || batchSize < 0.0 ||
        batchSize > 1e9) {
        fatal("config '", config.name,
              "': \"batch_size\" must be an integer in [0, 1e9], got ",
              batchSize);
    }
    config.sweep.batchSize = (int)batchSize;

    // Campaign block: how many shards `campaign plan` splits this
    // sweep into when --shards isn't given on the command line. The
    // shard count never affects result bytes (the merge is canonical),
    // so like jobs/batch_size it lives outside the sweep fingerprint.
    if (doc.has("campaign")) {
        const JsonValue &c = doc.at("campaign");
        if (!c.isObject() || !c.has("shards") ||
            !c.at("shards").isNumber()) {
            fatal("config '", config.name, "': \"campaign\" must be "
                  "an object with a \"shards\" count");
        }
        for (const auto &key : c.memberNames()) {
            if (key != "shards") {
                fatal("config '", config.name,
                      "': unknown \"campaign\" key \"", key, "\"");
            }
        }
        double shards = c.at("shards").asNumber();
        if (shards != (double)(int)shards || shards < 1.0 ||
            shards > 4096.0) {
            fatal("config '", config.name, "': \"campaign\" "
                  "\"shards\" must be an integer in [1, 4096], got ",
                  shards);
        }
        config.campaignShards = (std::size_t)shards;
    }

    // Optimization targets (default ReadEDP).
    config.sweep.targets.clear();
    if (doc.has("targets")) {
        for (const auto &t : doc.at("targets").asArray())
            config.sweep.targets.push_back(
                targetFromName(t.asString()));
    } else {
        config.sweep.targets.push_back(OptTarget::ReadEDP);
    }

    // Traffic: explicit patterns and/or a generic grid. Optional when
    // the config names registry workloads instead.
    if (doc.has("traffic")) {
        for (const auto &spec : doc.at("traffic").asArray()) {
            if (spec.isObject() && spec.stringOr("kind", "") ==
                    "generic_grid") {
                auto grid = genericTrafficGrid(
                    spec.at("read_lo").asNumber(),
                    spec.at("read_hi").asNumber(),
                    spec.at("write_lo").asNumber(),
                    spec.at("write_hi").asNumber(),
                    (int)spec.numberOr("steps", 3.0),
                    config.sweep.wordBits);
                config.sweep.traffics.insert(
                    config.sweep.traffics.end(), grid.begin(),
                    grid.end());
            } else {
                config.sweep.traffics.push_back(
                    trafficFromJson(spec, config.sweep.wordBits));
            }
        }
    }

    // Workloads: registry-dispatched traffic sources. Specs are
    // validated here (unknown names and bad parameters fail before
    // any simulation) but expanded by the sweep engine.
    if (doc.has("workloads")) {
        for (const auto &spec : doc.at("workloads").asArray()) {
            workload::validateWorkloadJson(spec);
            config.sweep.workloads.push_back(spec);
        }
    }
    if (doc.has("workload")) {
        const JsonValue &spec = doc.at("workload");
        workload::validateWorkloadJson(spec);
        config.sweep.workloads.push_back(spec);
    }
    if (config.sweep.traffics.empty() && config.sweep.workloads.empty())
        fatal("config '", config.name,
              "': needs \"traffic\" patterns or \"workloads\"");

    // Reliability axis: a "reliability" object or an "ecc" shorthand
    // (one scheme name, or the same object shape). Either promotes
    // reliability columns into the dashboard table.
    if (doc.has("reliability") && doc.has("ecc")) {
        fatal("config '", config.name, "': give either \"reliability\" "
              "or the \"ecc\" shorthand, not both");
    }
    if (doc.has("reliability") || doc.has("ecc")) {
        config.sweep.reliability = reliabilityFromJson(
            doc.at(doc.has("reliability") ? "reliability" : "ecc"),
            "config '" + config.name + "'");
        config.showReliability = true;
    }

    // Constraints: either the declarative clause array
    // (["total_power<0.5", {"metric": ..., "op": ..., "bound": ...}])
    // or the legacy fixed-field object, adapted onto the same
    // declarative layer. Both validate metric names at load time, so
    // bad filters fail before any simulation runs.
    if (doc.has("constraints")) {
        const JsonValue &c = doc.at("constraints");
        config.applyConstraints = true;
        if (c.isArray()) {
            config.constraints = metrics::ConstraintSet::fromJson(
                c, "config '" + config.name + "'");
        } else if (!c.isObject()) {
            fatal("config '", config.name, "': \"constraints\" must "
                  "be an array of clauses or a legacy fixed-field "
                  "object");
        } else {
            Constraints legacy;
            legacy.maxLatencyLoad = c.numberOr("max_latency_load", 1.0);
            legacy.maxPowerWatts = c.numberOr("max_power_w", -1.0);
            legacy.maxAreaM2 =
                c.numberOr("max_area_mm2", -1.0) > 0.0
                    ? c.at("max_area_mm2").asNumber() * 1e-6 : -1.0;
            if (c.has("min_lifetime_years")) {
                legacy.minLifetimeSec =
                    c.at("min_lifetime_years").asNumber() * 365.0 *
                    86400.0;
            }
            legacy.maxReadLatency =
                c.numberOr("max_read_latency_ns", -1.0) > 0.0
                    ? c.at("max_read_latency_ns").asNumber() * 1e-9
                    : -1.0;
            legacy.maxWriteLatency =
                c.numberOr("max_write_latency_ns", -1.0) > 0.0
                    ? c.at("max_write_latency_ns").asNumber() * 1e-9
                    : -1.0;
            legacy.requireBandwidth = c.boolOr("require_bandwidth",
                                               true);
            config.constraints =
                metrics::ConstraintSet::fromLegacy(legacy);
        }
    }

    // Pareto front and top-k refinement over named metrics.
    if (doc.has("pareto")) {
        config.paretoMetrics = metrics::paretoMetricsFromJson(
            doc.at("pareto"), "config '" + config.name + "'");
    }
    if (doc.has("top_k")) {
        metrics::TopSpec top = metrics::topSpecFromJson(
            doc.at("top_k"), "config '" + config.name + "'");
        config.topMetric = top.metric;
        config.topK = top.k;
    }

    config.outputCsv = doc.stringOr("output_csv", "");
    return config;
}

ExperimentConfig
loadExperimentFile(const std::string &path)
{
    return loadExperiment(JsonValue::parseFile(path));
}

Table
runExperiment(const ExperimentConfig &config)
{
    auto results = runSweep(config.sweep);
    if (config.applyConstraints)
        results = config.constraints.filter(results);
    if (!config.paretoMetrics.empty()) {
        results = metrics::paretoByMetrics(
            results, config.paretoMetrics,
            "config '" + config.name + "'");
    }
    if (!config.topMetric.empty()) {
        results = metrics::topByMetric(results, config.topMetric,
                                       config.topK,
                                       "config '" + config.name + "'");
    }

    // The table is driven by the dashboard schema (core/dashboard.hh):
    // metric-backed columns evaluate their registry metric at display
    // scale; identity columns print the strings naming the design
    // point. Reliability columns appear only with show_reliability.
    std::vector<const DashboardColumn *> active;
    std::vector<std::string> headers;
    for (const auto &column : dashboardColumns()) {
        if (column.reliability && !config.showReliability)
            continue;
        active.push_back(&column);
        headers.push_back(column.header);
    }
    Table table(config.name, headers);
    for (const auto &ev : results) {
        table.row();
        for (const DashboardColumn *column : active) {
            if (!column->metric.empty()) {
                const auto &m = metrics::MetricRegistry::instance()
                    .require(column->metric, "dashboard schema");
                table.add(m.eval(ev) * column->scale);
            } else if (column->header == "Cell") {
                table.add(ev.array.cell.name);
            } else if (column->header == "Traffic") {
                table.add(ev.traffic.name);
            } else if (column->header == "Viable") {
                table.add(ev.viable() ? "yes" : "no");
            } else if (column->header == "ECC") {
                table.add(ev.reliability.scheme);
            } else if (column->header == "Scrub[s]") {
                table.add(ev.reliability.scrubIntervalSec);
            } else {
                panic("dashboard schema: identity column '",
                      column->header, "' has no accessor");
            }
        }
    }
    if (!config.outputCsv.empty())
        table.writeCsv(config.outputCsv);
    return table;
}

} // namespace nvmexp
