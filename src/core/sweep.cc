#include "core/sweep.hh"

#include <cmath>
#include <limits>

#include "core/parallel_sweep.hh"
#include "metrics/constraints.hh"

namespace nvmexp {

std::vector<ArrayResult>
characterizeSweep(const SweepConfig &config)
{
    return ParallelSweepRunner(config.jobs).characterize(config);
}

std::vector<EvalResult>
runSweep(const SweepConfig &config)
{
    return ParallelSweepRunner(config.jobs).run(config);
}

bool
satisfies(const EvalResult &result, const Constraints &constraints)
{
    // The legacy fixed-field struct is a thin adapter over the
    // declarative layer: each enabled field becomes the equivalent
    // (metric, op, bound) clause, and every comparison dispatches
    // through the metric registry.
    return metrics::ConstraintSet::fromLegacy(constraints)
        .satisfied(result);
}

std::vector<EvalResult>
filterResults(const std::vector<EvalResult> &in,
              const Constraints &constraints)
{
    return metrics::ConstraintSet::fromLegacy(constraints).filter(in);
}

const EvalResult *
bestBy(const std::vector<EvalResult> &results,
       const std::function<double(const EvalResult &)> &key)
{
    const EvalResult *best = nullptr;
    double bestKey = std::numeric_limits<double>::infinity();
    for (const auto &result : results) {
        double k = key(result);
        if (std::isnan(k))
            continue;
        if (!best || k < bestKey) {
            best = &result;
            bestKey = k;
        }
    }
    return best;
}

} // namespace nvmexp
