#include "core/sweep.hh"

#include <limits>

#include "util/logging.hh"

namespace nvmexp {

std::vector<ArrayResult>
characterizeSweep(const SweepConfig &config)
{
    if (config.cells.empty())
        fatal("sweep has no cells configured");
    std::vector<ArrayResult> arrays;
    for (const auto &cell : config.cells) {
        for (double capacity : config.capacitiesBytes) {
            ArrayConfig ac;
            ac.capacityBytes = capacity;
            ac.wordBits = config.wordBits;
            ac.nodeNm = cell.tech == CellTech::SRAM ? config.sramNodeNm
                                                    : config.nodeNm;
            ArrayDesigner designer(cell, ac);
            auto candidates = designer.enumerate();
            if (candidates.empty()) {
                warn("cell '", cell.name, "' has no valid organization",
                     " at ", capacity / (1024.0 * 1024.0),
                     " MiB; skipping");
                continue;
            }
            for (OptTarget target : config.targets) {
                const ArrayResult *best = &candidates.front();
                for (const auto &r : candidates)
                    if (r.metric(target) < best->metric(target))
                        best = &r;
                arrays.push_back(*best);
            }
        }
    }
    return arrays;
}

std::vector<EvalResult>
runSweep(const SweepConfig &config)
{
    if (config.traffics.empty())
        fatal("sweep has no traffic patterns configured");
    auto arrays = characterizeSweep(config);
    std::vector<EvalResult> results;
    results.reserve(arrays.size() * config.traffics.size());
    for (const auto &array : arrays)
        for (const auto &traffic : config.traffics)
            results.push_back(evaluate(array, traffic));
    return results;
}

bool
satisfies(const EvalResult &result, const Constraints &constraints)
{
    if (constraints.maxLatencyLoad > 0.0 &&
        result.latencyLoad > constraints.maxLatencyLoad) {
        return false;
    }
    if (constraints.maxPowerWatts > 0.0 &&
        result.totalPower > constraints.maxPowerWatts) {
        return false;
    }
    if (constraints.maxAreaM2 > 0.0 &&
        result.array.areaM2 > constraints.maxAreaM2) {
        return false;
    }
    if (constraints.minLifetimeSec > 0.0 &&
        result.lifetimeSec < constraints.minLifetimeSec) {
        return false;
    }
    if (constraints.maxReadLatency > 0.0 &&
        result.array.readLatency > constraints.maxReadLatency) {
        return false;
    }
    if (constraints.maxWriteLatency > 0.0 &&
        result.array.writeLatency > constraints.maxWriteLatency) {
        return false;
    }
    if (constraints.requireBandwidth &&
        (!result.meetsReadBandwidth || !result.meetsWriteBandwidth)) {
        return false;
    }
    return true;
}

std::vector<EvalResult>
filterResults(const std::vector<EvalResult> &in,
              const Constraints &constraints)
{
    std::vector<EvalResult> out;
    for (const auto &result : in)
        if (satisfies(result, constraints))
            out.push_back(result);
    return out;
}

const EvalResult *
bestBy(const std::vector<EvalResult> &results,
       const std::function<double(const EvalResult &)> &key)
{
    const EvalResult *best = nullptr;
    double bestKey = std::numeric_limits<double>::infinity();
    for (const auto &result : results) {
        double k = key(result);
        if (!best || k < bestKey) {
            best = &result;
            bestKey = k;
        }
    }
    return best;
}

} // namespace nvmexp
