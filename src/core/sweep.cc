#include "core/sweep.hh"

#include <limits>

#include "core/parallel_sweep.hh"

namespace nvmexp {

std::vector<ArrayResult>
characterizeSweep(const SweepConfig &config)
{
    return ParallelSweepRunner(config.jobs).characterize(config);
}

std::vector<EvalResult>
runSweep(const SweepConfig &config)
{
    return ParallelSweepRunner(config.jobs).run(config);
}

bool
satisfies(const EvalResult &result, const Constraints &constraints)
{
    if (constraints.maxLatencyLoad > 0.0 &&
        result.latencyLoad > constraints.maxLatencyLoad) {
        return false;
    }
    if (constraints.maxPowerWatts > 0.0 &&
        result.totalPower > constraints.maxPowerWatts) {
        return false;
    }
    if (constraints.maxAreaM2 > 0.0 &&
        result.array.areaM2 > constraints.maxAreaM2) {
        return false;
    }
    if (constraints.minLifetimeSec > 0.0 &&
        result.lifetimeSec < constraints.minLifetimeSec) {
        return false;
    }
    if (constraints.maxReadLatency > 0.0 &&
        result.array.readLatency > constraints.maxReadLatency) {
        return false;
    }
    if (constraints.maxWriteLatency > 0.0 &&
        result.array.writeLatency > constraints.maxWriteLatency) {
        return false;
    }
    if (constraints.requireBandwidth &&
        (!result.meetsReadBandwidth || !result.meetsWriteBandwidth)) {
        return false;
    }
    return true;
}

std::vector<EvalResult>
filterResults(const std::vector<EvalResult> &in,
              const Constraints &constraints)
{
    std::vector<EvalResult> out;
    for (const auto &result : in)
        if (satisfies(result, constraints))
            out.push_back(result);
    return out;
}

const EvalResult *
bestBy(const std::vector<EvalResult> &results,
       const std::function<double(const EvalResult &)> &key)
{
    const EvalResult *best = nullptr;
    double bestKey = std::numeric_limits<double>::infinity();
    for (const auto &result : results) {
        double k = key(result);
        if (!best || k < bestKey) {
            best = &result;
            bestKey = k;
        }
    }
    return best;
}

} // namespace nvmexp
