#include "store/serialize.hh"

#include "util/logging.hh"

namespace nvmexp {
namespace store {

namespace {

const char *
flavorKey(CellFlavor flavor)
{
    switch (flavor) {
      case CellFlavor::Optimistic:  return "Optimistic";
      case CellFlavor::Pessimistic: return "Pessimistic";
      case CellFlavor::Reference:   return "Reference";
      case CellFlavor::Custom:      return "Custom";
    }
    panic("unhandled CellFlavor");
}

CellFlavor
flavorFromKey(const std::string &name)
{
    for (CellFlavor f : {CellFlavor::Optimistic, CellFlavor::Pessimistic,
                         CellFlavor::Reference, CellFlavor::Custom}) {
        if (name == flavorKey(f))
            return f;
    }
    fatal("store: unknown cell flavor '", name, "'");
}

const char *
senseModeKey(SenseMode mode)
{
    switch (mode) {
      case SenseMode::Voltage:  return "Voltage";
      case SenseMode::Current:  return "Current";
      case SenseMode::FetGated: return "FetGated";
      case SenseMode::Charge:   return "Charge";
    }
    panic("unhandled SenseMode");
}

SenseMode
senseModeFromKey(const std::string &name)
{
    for (SenseMode m : {SenseMode::Voltage, SenseMode::Current,
                        SenseMode::FetGated, SenseMode::Charge}) {
        if (name == senseModeKey(m))
            return m;
    }
    fatal("store: unknown sense mode '", name, "'");
}

int
asInt(const JsonValue &doc, const std::string &key)
{
    return (int)doc.at(key).asNumber();
}

} // namespace

JsonValue
toJson(const MemCell &cell)
{
    JsonValue v = JsonValue::makeObject();
    v.set("name", JsonValue::makeString(cell.name));
    v.set("tech", JsonValue::makeString(techName(cell.tech)));
    v.set("flavor", JsonValue::makeString(flavorKey(cell.flavor)));
    v.set("sense_mode",
          JsonValue::makeString(senseModeKey(cell.senseMode)));
    v.set("bits_per_cell", JsonValue::makeNumber(cell.bitsPerCell));
    v.set("area_f2", JsonValue::makeNumber(cell.areaF2));
    v.set("aspect_ratio", JsonValue::makeNumber(cell.aspectRatio));
    v.set("read_voltage", JsonValue::makeNumber(cell.readVoltage));
    v.set("write_voltage", JsonValue::makeNumber(cell.writeVoltage));
    v.set("resistance_on", JsonValue::makeNumber(cell.resistanceOn));
    v.set("resistance_off", JsonValue::makeNumber(cell.resistanceOff));
    v.set("set_pulse", JsonValue::makeNumber(cell.setPulse));
    v.set("reset_pulse", JsonValue::makeNumber(cell.resetPulse));
    v.set("set_current", JsonValue::makeNumber(cell.setCurrent));
    v.set("reset_current", JsonValue::makeNumber(cell.resetCurrent));
    v.set("read_energy_per_bit",
          JsonValue::makeNumber(cell.readEnergyPerBit));
    v.set("endurance", JsonValue::makeNumber(cell.endurance));
    v.set("retention", JsonValue::makeNumber(cell.retention));
    v.set("non_volatile", JsonValue::makeBool(cell.nonVolatile));
    v.set("cell_leakage", JsonValue::makeNumber(cell.cellLeakage));
    v.set("min_node_nm", JsonValue::makeNumber(cell.minNodeNm));
    v.set("mlc_capable", JsonValue::makeBool(cell.mlcCapable));
    return v;
}

MemCell
cellFromJson(const JsonValue &doc)
{
    MemCell cell;
    cell.name = doc.at("name").asString();
    cell.tech = techFromName(doc.at("tech").asString());
    cell.flavor = flavorFromKey(doc.at("flavor").asString());
    cell.senseMode = senseModeFromKey(doc.at("sense_mode").asString());
    cell.bitsPerCell = asInt(doc, "bits_per_cell");
    cell.areaF2 = doc.at("area_f2").asNumber();
    cell.aspectRatio = doc.at("aspect_ratio").asNumber();
    cell.readVoltage = doc.at("read_voltage").asNumber();
    cell.writeVoltage = doc.at("write_voltage").asNumber();
    cell.resistanceOn = doc.at("resistance_on").asNumber();
    cell.resistanceOff = doc.at("resistance_off").asNumber();
    cell.setPulse = doc.at("set_pulse").asNumber();
    cell.resetPulse = doc.at("reset_pulse").asNumber();
    cell.setCurrent = doc.at("set_current").asNumber();
    cell.resetCurrent = doc.at("reset_current").asNumber();
    cell.readEnergyPerBit = doc.at("read_energy_per_bit").asNumber();
    cell.endurance = doc.at("endurance").asNumber();
    cell.retention = doc.at("retention").asNumber();
    cell.nonVolatile = doc.at("non_volatile").asBool();
    cell.cellLeakage = doc.at("cell_leakage").asNumber();
    cell.minNodeNm = asInt(doc, "min_node_nm");
    cell.mlcCapable = doc.at("mlc_capable").asBool();
    return cell;
}

JsonValue
toJson(const TrafficPattern &traffic)
{
    JsonValue v = JsonValue::makeObject();
    v.set("name", JsonValue::makeString(traffic.name));
    v.set("reads_per_sec", JsonValue::makeNumber(traffic.readsPerSec));
    v.set("writes_per_sec",
          JsonValue::makeNumber(traffic.writesPerSec));
    v.set("exec_time", JsonValue::makeNumber(traffic.execTime));
    return v;
}

TrafficPattern
trafficFromJson(const JsonValue &doc)
{
    TrafficPattern traffic;
    traffic.name = doc.at("name").asString();
    traffic.readsPerSec = doc.at("reads_per_sec").asNumber();
    traffic.writesPerSec = doc.at("writes_per_sec").asNumber();
    traffic.execTime = doc.at("exec_time").asNumber();
    return traffic;
}

JsonValue
toJson(const Organization &org)
{
    JsonValue v = JsonValue::makeObject();
    v.set("banks", JsonValue::makeNumber(org.banks));
    v.set("subarrays_per_bank",
          JsonValue::makeNumber(org.subarraysPerBank));
    v.set("rows", JsonValue::makeNumber(org.subarray.rows));
    v.set("cols", JsonValue::makeNumber(org.subarray.cols));
    v.set("sensed_bits", JsonValue::makeNumber(org.subarray.sensedBits));
    return v;
}

Organization
organizationFromJson(const JsonValue &doc)
{
    Organization org;
    org.banks = asInt(doc, "banks");
    org.subarraysPerBank = asInt(doc, "subarrays_per_bank");
    org.subarray.rows = asInt(doc, "rows");
    org.subarray.cols = asInt(doc, "cols");
    org.subarray.sensedBits = asInt(doc, "sensed_bits");
    return org;
}

JsonValue
toJson(const reliability::ReliabilityResult &rel)
{
    JsonValue v = JsonValue::makeObject();
    v.set("scheme", JsonValue::makeString(rel.scheme));
    v.set("scrub_interval_sec",
          JsonValue::makeNumber(rel.scrubIntervalSec));
    v.set("raw_ber", JsonValue::makeNumber(rel.rawBer));
    v.set("scrubbed_ber", JsonValue::makeNumber(rel.scrubbedBer));
    v.set("uncorrectable_word_rate",
          JsonValue::makeNumber(rel.uncorrectableWordRate));
    v.set("uncorrectable_image_rate",
          JsonValue::makeNumber(rel.uncorrectableImageRate));
    v.set("ecc_overhead", JsonValue::makeNumber(rel.eccOverhead));
    return v;
}

reliability::ReliabilityResult
reliabilityResultFromJson(const JsonValue &doc)
{
    reliability::ReliabilityResult rel;
    rel.scheme = doc.at("scheme").asString();
    rel.scrubIntervalSec = doc.at("scrub_interval_sec").asNumber();
    rel.rawBer = doc.at("raw_ber").asNumber();
    rel.scrubbedBer = doc.at("scrubbed_ber").asNumber();
    rel.uncorrectableWordRate =
        doc.at("uncorrectable_word_rate").asNumber();
    rel.uncorrectableImageRate =
        doc.at("uncorrectable_image_rate").asNumber();
    rel.eccOverhead = doc.at("ecc_overhead").asNumber();
    return rel;
}

JsonValue
toJson(const ArrayResult &array)
{
    JsonValue v = JsonValue::makeObject();
    v.set("cell", toJson(array.cell));
    v.set("node_nm", JsonValue::makeNumber(array.nodeNm));
    v.set("capacity_bytes", JsonValue::makeNumber(array.capacityBytes));
    v.set("word_bits", JsonValue::makeNumber(array.wordBits));
    v.set("org", toJson(array.org));
    v.set("read_latency", JsonValue::makeNumber(array.readLatency));
    v.set("write_latency", JsonValue::makeNumber(array.writeLatency));
    v.set("read_energy", JsonValue::makeNumber(array.readEnergy));
    v.set("write_energy", JsonValue::makeNumber(array.writeEnergy));
    v.set("leakage", JsonValue::makeNumber(array.leakage));
    v.set("area_m2", JsonValue::makeNumber(array.areaM2));
    v.set("area_efficiency",
          JsonValue::makeNumber(array.areaEfficiency));
    v.set("read_bandwidth", JsonValue::makeNumber(array.readBandwidth));
    v.set("write_bandwidth",
          JsonValue::makeNumber(array.writeBandwidth));
    return v;
}

ArrayResult
arrayResultFromJson(const JsonValue &doc)
{
    ArrayResult array;
    array.cell = cellFromJson(doc.at("cell"));
    array.nodeNm = asInt(doc, "node_nm");
    array.capacityBytes = doc.at("capacity_bytes").asNumber();
    array.wordBits = asInt(doc, "word_bits");
    array.org = organizationFromJson(doc.at("org"));
    array.readLatency = doc.at("read_latency").asNumber();
    array.writeLatency = doc.at("write_latency").asNumber();
    array.readEnergy = doc.at("read_energy").asNumber();
    array.writeEnergy = doc.at("write_energy").asNumber();
    array.leakage = doc.at("leakage").asNumber();
    array.areaM2 = doc.at("area_m2").asNumber();
    array.areaEfficiency = doc.at("area_efficiency").asNumber();
    array.readBandwidth = doc.at("read_bandwidth").asNumber();
    array.writeBandwidth = doc.at("write_bandwidth").asNumber();
    return array;
}

JsonValue
toJson(const EvalResult &result)
{
    JsonValue v = JsonValue::makeObject();
    v.set("array", toJson(result.array));
    v.set("traffic", toJson(result.traffic));
    v.set("dynamic_power", JsonValue::makeNumber(result.dynamicPower));
    v.set("leakage_power", JsonValue::makeNumber(result.leakagePower));
    v.set("total_power", JsonValue::makeNumber(result.totalPower));
    v.set("latency_load", JsonValue::makeNumber(result.latencyLoad));
    v.set("slowdown", JsonValue::makeNumber(result.slowdown));
    v.set("total_access_latency",
          JsonValue::makeNumber(result.totalAccessLatency));
    v.set("meets_read_bandwidth",
          JsonValue::makeBool(result.meetsReadBandwidth));
    v.set("meets_write_bandwidth",
          JsonValue::makeBool(result.meetsWriteBandwidth));
    v.set("reliability", toJson(result.reliability));
    v.set("lifetime_sec", JsonValue::makeNumber(result.lifetimeSec));
    return v;
}

EvalResult
evalResultFromJson(const JsonValue &doc)
{
    EvalResult result;
    result.array = arrayResultFromJson(doc.at("array"));
    result.traffic = trafficFromJson(doc.at("traffic"));
    result.dynamicPower = doc.at("dynamic_power").asNumber();
    result.leakagePower = doc.at("leakage_power").asNumber();
    result.totalPower = doc.at("total_power").asNumber();
    result.latencyLoad = doc.at("latency_load").asNumber();
    result.slowdown = doc.at("slowdown").asNumber();
    result.totalAccessLatency =
        doc.at("total_access_latency").asNumber();
    result.meetsReadBandwidth =
        doc.at("meets_read_bandwidth").asBool();
    result.meetsWriteBandwidth =
        doc.at("meets_write_bandwidth").asBool();
    result.reliability =
        reliabilityResultFromJson(doc.at("reliability"));
    result.lifetimeSec = doc.at("lifetime_sec").asNumber();
    return result;
}

JsonValue
toJson(const std::vector<EvalResult> &results)
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(kFormatVersion));
    JsonValue array = JsonValue::makeArray();
    for (const auto &result : results)
        array.append(toJson(result));
    v.set("results", std::move(array));
    return v;
}

std::vector<EvalResult>
evalResultsFromJson(const JsonValue &doc)
{
    if ((int)doc.at("format").asNumber() != kFormatVersion) {
        fatal("store: results written with format ",
              doc.at("format").asNumber(), ", this build reads format ",
              kFormatVersion);
    }
    std::vector<EvalResult> results;
    for (const auto &entry : doc.at("results").asArray())
        results.push_back(evalResultFromJson(entry));
    return results;
}

bool
identical(const ArrayResult &a, const ArrayResult &b)
{
    // Serialization covers every field losslessly, so comparing the
    // compact dumps compares the structs bit-for-bit.
    return toJson(a).dump(-1) == toJson(b).dump(-1);
}

bool
identical(const EvalResult &a, const EvalResult &b)
{
    return toJson(a).dump(-1) == toJson(b).dump(-1);
}

} // namespace store
} // namespace nvmexp
