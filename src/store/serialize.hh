/**
 * @file
 * JSON serialization for the result store: lossless, round-trippable
 * encodings of ArrayResult and EvalResult (and the MemCell, traffic,
 * and organization records they embed).
 *
 * Doubles are written in shortest-exact form (util/json), so
 * fromJson(toJson(x)) reproduces every field bit-for-bit — the
 * property the characterization cache, resumable checkpoints, and
 * golden-file regression tier all depend on.
 */

#ifndef NVMEXP_STORE_SERIALIZE_HH
#define NVMEXP_STORE_SERIALIZE_HH

#include "celldb/cell.hh"
#include "eval/engine.hh"
#include "eval/traffic.hh"
#include "nvsim/array_model.hh"
#include "util/json.hh"

namespace nvmexp {
namespace store {

/** Bumped whenever an encoding changes shape; embedded in every
 *  artifact and in cache keys so stale entries never deserialize.
 *  v2: EvalResult grew the "reliability" block (ECC scheme, failure
 *  rates, overhead) and sweep fingerprints the reliability axis. */
constexpr int kFormatVersion = 2;

JsonValue toJson(const MemCell &cell);
MemCell cellFromJson(const JsonValue &doc);

JsonValue toJson(const TrafficPattern &traffic);
TrafficPattern trafficFromJson(const JsonValue &doc);

JsonValue toJson(const Organization &org);
Organization organizationFromJson(const JsonValue &doc);

JsonValue toJson(const reliability::ReliabilityResult &rel);
reliability::ReliabilityResult
reliabilityResultFromJson(const JsonValue &doc);

JsonValue toJson(const ArrayResult &array);
ArrayResult arrayResultFromJson(const JsonValue &doc);

JsonValue toJson(const EvalResult &result);
EvalResult evalResultFromJson(const JsonValue &doc);

/** Whole-sweep encodings: {"format": v, "results": [...]}. */
JsonValue toJson(const std::vector<EvalResult> &results);
std::vector<EvalResult> evalResultsFromJson(const JsonValue &doc);

/** Exact field-by-field equality via the serialized form: doubles
 *  must match bit-for-bit, and (unlike operator== on doubles) two
 *  NaN fields compare equal — serialized state is what's compared. */
bool identical(const ArrayResult &a, const ArrayResult &b);
bool identical(const EvalResult &a, const EvalResult &b);

} // namespace store
} // namespace nvmexp

#endif // NVMEXP_STORE_SERIALIZE_HH
