#include "store/result_store.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <sstream>

#include "metrics/metric.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace nvmexp {
namespace store {

JsonValue
StoreStats::toJson() const
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(kFormatVersion));
    v.set("cache_hits", JsonValue::makeNumber((double)cacheHits));
    v.set("cache_misses", JsonValue::makeNumber((double)cacheMisses));
    v.set("cache_stores", JsonValue::makeNumber((double)cacheStores));
    v.set("checkpoint_loaded",
          JsonValue::makeNumber((double)checkpointLoaded));
    v.set("checkpoint_computed",
          JsonValue::makeNumber((double)checkpointComputed));
    return v;
}

StoreStats
StoreStats::fromJson(const JsonValue &doc)
{
    if ((int)doc.at("format").asNumber() != kFormatVersion) {
        fatal("store: stats written with format ",
              doc.at("format").asNumber(), ", this build reads format ",
              kFormatVersion);
    }
    StoreStats s;
    s.cacheHits = (std::uint64_t)doc.at("cache_hits").asNumber();
    s.cacheMisses = (std::uint64_t)doc.at("cache_misses").asNumber();
    s.cacheStores = (std::uint64_t)doc.at("cache_stores").asNumber();
    s.checkpointLoaded =
        (std::uint64_t)doc.at("checkpoint_loaded").asNumber();
    s.checkpointComputed =
        (std::uint64_t)doc.at("checkpoint_computed").asNumber();
    return s;
}

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

namespace {

std::string
hexHash(const std::string &text)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)fnv1a64(text));
    return buffer;
}

/** Typed member guards for documents that may be corrupt: the
 *  fatal()-based accessors must never run on untrusted shapes. */
bool
hasString(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isString();
}

bool
hasNumber(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isNumber();
}

bool
hasObject(const JsonValue &doc, const std::string &key)
{
    return doc.isObject() && doc.has(key) && doc.at(key).isObject();
}

} // namespace

std::string
sweepFingerprint(const SweepConfig &config)
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(kFormatVersion));
    JsonValue cells = JsonValue::makeArray();
    for (const auto &cell : config.cells)
        cells.append(toJson(cell));
    v.set("cells", std::move(cells));
    JsonValue capacities = JsonValue::makeArray();
    for (double capacity : config.capacitiesBytes)
        capacities.append(JsonValue::makeNumber(capacity));
    v.set("capacities_bytes", std::move(capacities));
    JsonValue targets = JsonValue::makeArray();
    for (OptTarget target : config.targets)
        targets.append(JsonValue::makeString(optTargetName(target)));
    v.set("targets", std::move(targets));
    JsonValue traffics = JsonValue::makeArray();
    for (const auto &traffic : config.traffics)
        traffics.append(toJson(traffic));
    v.set("traffics", std::move(traffics));
    // The reliability axis changes slot count and row annotations, so
    // it guards checkpoint reuse like any other sweep dimension. An
    // empty axis fingerprints as its implicit single default spec —
    // spelling out {ecc: "none"} and omitting the block are the same
    // sweep.
    JsonValue rel = JsonValue::makeArray();
    if (config.reliability.empty()) {
        rel.append(reliability::ReliabilitySpec{}.toJson());
    } else {
        for (const auto &spec : config.reliability)
            rel.append(spec.toJson());
    }
    v.set("reliability", std::move(rel));
    v.set("word_bits", JsonValue::makeNumber(config.wordBits));
    v.set("node_nm", JsonValue::makeNumber(config.nodeNm));
    v.set("sram_node_nm", JsonValue::makeNumber(config.sramNodeNm));
    return hexHash(v.dump(-1));
}

ResultStore::ResultStore(std::string dir, std::string cacheDir)
    : dir_(std::move(dir)),
      cacheDir_(cacheDir.empty() ? dir_ + "/cache" : std::move(cacheDir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (!ec)
        std::filesystem::create_directories(cacheDir_, ec);
    if (ec) {
        fatal("result store: cannot create '", dir_, "' (cache '",
              cacheDir_, "'): ", ec.message());
    }
}

std::string
ResultStore::characterizationKey(const MemCell &cell,
                                 const ArrayConfig &config,
                                 OptTarget target)
{
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(kFormatVersion));
    v.set("cell", toJson(cell));
    v.set("capacity_bytes",
          JsonValue::makeNumber(config.capacityBytes));
    v.set("word_bits", JsonValue::makeNumber(config.wordBits));
    v.set("node_nm", JsonValue::makeNumber(config.nodeNm));
    v.set("min_area_efficiency",
          JsonValue::makeNumber(config.minAreaEfficiency));
    v.set("max_banks", JsonValue::makeNumber(config.maxBanks));
    v.set("target", JsonValue::makeString(optTargetName(target)));
    return v.dump(-1);
}

std::string
ResultStore::cachePath(const std::string &key) const
{
    return cacheDir_ + "/" + hexHash(key) + ".json";
}

ResultStore::CacheOutcome
ResultStore::lookupArray(const std::string &key, ArrayResult &out)
{
    CacheOutcome outcome = CacheOutcome::Miss;
    std::string path = cachePath(key);
    std::ifstream in(path);
    std::ostringstream buffer;
    if (in)
        buffer << in.rdbuf();
    // A truncated or corrupt entry (disk trouble, torn copy) degrades
    // to a miss and gets recomputed and overwritten — the cache is an
    // optimization, never a correctness or availability dependency.
    // The non-fatal parse plus the byte-exact comparison of the full
    // stored key covers every realistic corruption; the fatal()
    // parser never sees untrusted bytes.
    JsonValue doc;
    if (in && JsonValue::tryParse(buffer.str(), doc) &&
        hasString(doc, "key") && doc.at("key").asString() == key) {
        if (doc.has("invalid") && doc.at("invalid").isBool() &&
            doc.at("invalid").asBool()) {
            outcome = CacheOutcome::HitInvalid;
        } else if (hasObject(doc, "array")) {
            out = arrayResultFromJson(doc.at("array"));
            outcome = CacheOutcome::Hit;
        }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (outcome == CacheOutcome::Miss)
        ++stats_.cacheMisses;
    else
        ++stats_.cacheHits;
    return outcome;
}

namespace {

/** Write-then-rename so readers never observe a torn entry. The tmp
 *  name is unique per writer (pid + counter): concurrent writers of
 *  the same key — duplicate cells in one sweep, or two processes
 *  sharing a cache directory — each rename a complete file, and
 *  last-rename-wins leaves a valid entry either way. */
void
writeAtomically(const std::string &path, const JsonValue &doc)
{
    static std::atomic<std::uint64_t> counter{0};
    std::string tmp = path + ".tmp." + std::to_string(::getpid()) +
        "." + std::to_string(counter.fetch_add(1));
    doc.writeFile(tmp, -1);
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        fatal("result store: cannot move '", tmp, "': ", ec.message());
}

} // namespace

void
ResultStore::storeArray(const std::string &key, const ArrayResult &array)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("key", JsonValue::makeString(key));
    doc.set("array", toJson(array));
    writeAtomically(cachePath(key), doc);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cacheStores;
}

void
ResultStore::storeInvalid(const std::string &key)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("key", JsonValue::makeString(key));
    doc.set("invalid", JsonValue::makeBool(true));
    writeAtomically(cachePath(key), doc);
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.cacheStores;
}

namespace {

JsonValue
checkpointHeader(const std::string &fingerprint, std::size_t slots)
{
    JsonValue header = JsonValue::makeObject();
    header.set("format", JsonValue::makeNumber(kFormatVersion));
    header.set("fingerprint", JsonValue::makeString(fingerprint));
    header.set("slots", JsonValue::makeNumber((double)slots));
    return header;
}

} // namespace

std::string
checkpointHeaderLine(const std::string &fingerprint, std::size_t slots)
{
    return checkpointHeader(fingerprint, slots).dump(-1);
}

CheckpointScan
scanCheckpoint(const std::string &dir)
{
    CheckpointScan scan;
    std::ifstream in(dir + "/checkpoint.jsonl");
    std::string line;
    JsonValue header;
    if (in && std::getline(in, line) &&
        JsonValue::tryParse(line, header)) {
        scan.headerParsed = true;
        scan.headerOk = hasNumber(header, "format") &&
            hasString(header, "fingerprint") &&
            hasNumber(header, "slots");
        if (scan.headerOk) {
            scan.format = (int)header.at("format").asNumber();
            scan.fingerprint = header.at("fingerprint").asString();
            scan.slots = (std::size_t)header.at("slots").asNumber();
        }
    }
    if (!scan.headerOk)
        return scan;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        // The last line of an interrupted run may be torn at any
        // byte; only lines that parse and carry the expected members
        // are trusted.
        JsonValue entry;
        if (!JsonValue::tryParse(line, entry) ||
            !hasNumber(entry, "slot") || !hasObject(entry, "result")) {
            warn("result store: skipping torn checkpoint line");
            continue;
        }
        auto slot = (std::size_t)entry.at("slot").asNumber();
        if (slot < scan.slots) {
            scan.entries.push_back(
                CheckpointEntry{slot, line, entry.at("result")});
        }
    }
    return scan;
}

std::map<std::size_t, EvalResult>
ResultStore::openCheckpoint(const std::string &fingerprint,
                            std::size_t slots, bool resume)
{
    std::string path = dir_ + "/checkpoint.jsonl";
    std::map<std::size_t, EvalResult> done;

    if (resume) {
        CheckpointScan scan = scanCheckpoint(dir_);
        bool match = scan.headerOk && scan.format == kFormatVersion &&
            scan.fingerprint == fingerprint && scan.slots == slots;
        if (match) {
            for (const auto &entry : scan.entries)
                done[entry.slot] = evalResultFromJson(entry.result);
        } else if (scan.headerParsed) {
            warn("result store: checkpoint in '", dir_,
                 "' belongs to a different sweep; restarting");
        }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    stats_.checkpointLoaded = done.size();
    if (!done.empty()) {
        // Rewrite the journal from the validated entries before
        // appending: the original file may end in a torn, newline-less
        // partial write that a plain append would merge with the next
        // entry, corrupting it for any later resume.
        std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp, std::ios::trunc);
            out << checkpointHeader(fingerprint, slots).dump(-1) << '\n';
            for (const auto &[slot, result] : done) {
                JsonValue entry = JsonValue::makeObject();
                entry.set("slot", JsonValue::makeNumber((double)slot));
                entry.set("result", toJson(result));
                out << entry.dump(-1) << '\n';
            }
            if (!out.flush())
                fatal("result store: cannot write '", tmp, "'");
        }
        std::error_code ec;
        std::filesystem::rename(tmp, path, ec);
        if (ec) {
            fatal("result store: cannot move '", tmp, "': ",
                  ec.message());
        }
        checkpoint_.open(path, std::ios::app);
    } else {
        checkpoint_.open(path, std::ios::trunc);
        checkpoint_ << checkpointHeader(fingerprint, slots).dump(-1)
                    << '\n';
        checkpoint_.flush();
    }
    if (!checkpoint_)
        fatal("result store: cannot write '", path, "'");
    return done;
}

void
ResultStore::checkpointSlot(std::size_t slot, const EvalResult &result)
{
    JsonValue entry = JsonValue::makeObject();
    entry.set("slot", JsonValue::makeNumber((double)slot));
    entry.set("result", toJson(result));
    std::string line = entry.dump(-1);
    std::lock_guard<std::mutex> lock(mutex_);
    checkpoint_ << line << '\n';
    checkpoint_.flush();
    ++stats_.checkpointComputed;
}

void
ResultStore::closeCheckpoint()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (checkpoint_.is_open())
        checkpoint_.close();
}

const std::vector<CsvColumn> &
resultCsvColumns()
{
    // Identity columns (empty metric) name the design point; every
    // other column evaluates its registry metric, which keeps the
    // header vocabulary, the row values, and --filter/--pareto keys
    // in one system. Headers keep their unit suffixes for external
    // dashboard compatibility.
    static const std::vector<CsvColumn> columns = {
        {"cell", ""},
        {"tech", ""},
        {"traffic", ""},
        {"capacity_bytes", ""},
        {"word_bits", ""},
        {"node_nm", ""},
        {"read_latency_s", "read_latency"},
        {"write_latency_s", "write_latency"},
        {"read_energy_j", "read_energy"},
        {"write_energy_j", "write_energy"},
        {"leakage_w", "leakage"},
        {"area_m2", "area_m2"},
        {"read_bandwidth_bps", "read_bandwidth"},
        {"write_bandwidth_bps", "write_bandwidth"},
        {"dynamic_power_w", "dynamic_power"},
        {"total_power_w", "total_power"},
        {"latency_load", "latency_load"},
        {"lifetime_sec", "lifetime_sec"},
        {"meets_read_bw", "meets_read_bw"},
        {"meets_write_bw", "meets_write_bw"},
        {"viable", "viable"},
        {"ecc_scheme", ""},
        {"scrub_interval_sec", ""},
        {"raw_ber", "raw_ber"},
        {"scrubbed_ber", "scrubbed_ber"},
        {"uncorrectable_word_rate", "uncorrectable_word_rate"},
        {"uncorrectable_image_rate", "uncorrectable_image_rate"},
        {"ecc_overhead", "ecc_overhead"},
    };
    return columns;
}

namespace {

/** Value of one identity (non-metric) CSV column. Unknown headers are
 *  a programming error: the schema and this accessor ship together. */
std::string
identityCsvValue(const std::string &header, const EvalResult &r)
{
    auto num = [](double v) { return JsonValue::formatNumber(v); };
    if (header == "cell")
        return Table::csvEscape(r.array.cell.name);
    if (header == "tech")
        return Table::csvEscape(techName(r.array.cell.tech));
    if (header == "traffic")
        return Table::csvEscape(r.traffic.name);
    if (header == "capacity_bytes")
        return num(r.array.capacityBytes);
    if (header == "word_bits")
        return num(r.array.wordBits);
    if (header == "node_nm")
        return num(r.array.nodeNm);
    if (header == "ecc_scheme")
        return Table::csvEscape(r.reliability.scheme);
    if (header == "scrub_interval_sec")
        return num(r.reliability.scrubIntervalSec);
    panic("results.csv schema: identity column '", header,
          "' has no accessor");
}

} // namespace

std::string
serializeResults(const std::vector<EvalResult> &results)
{
    return toJson(results).dump(2) + "\n";
}

void
ResultStore::writeResults(const std::vector<EvalResult> &results)
{
    // serializeResults, not writeFile: the query server's responses
    // must be byte-identical to this artifact for the same rows, so
    // both go through the one serializer.
    std::string jsonPath = dir_ + "/results.json";
    std::ofstream json(jsonPath);
    if (!json)
        fatal("result store: cannot write '", jsonPath, "'");
    json << serializeResults(results);
    if (!json.flush())
        fatal("result store: failed writing '", jsonPath, "'");

    std::string path = dir_ + "/results.csv";
    std::ofstream csv(path);
    if (!csv)
        fatal("result store: cannot write '", path, "'");

    const auto &columns = resultCsvColumns();
    // Resolve the metric-backed columns once, not per row.
    std::vector<const metrics::Metric *> accessors(columns.size(),
                                                   nullptr);
    for (std::size_t c = 0; c < columns.size(); ++c)
        if (!columns[c].metric.empty())
            accessors[c] = &metrics::MetricRegistry::instance().require(
                columns[c].metric, "results.csv schema");
    for (std::size_t c = 0; c < columns.size(); ++c)
        csv << (c ? "," : "") << columns[c].header;
    csv << '\n';
    for (const auto &r : results) {
        for (std::size_t c = 0; c < columns.size(); ++c) {
            if (c)
                csv << ',';
            if (accessors[c]) {
                csv << JsonValue::formatNumber(accessors[c]->eval(r));
            } else {
                csv << identityCsvValue(columns[c].header, r);
            }
        }
        csv << '\n';
    }
    if (!csv.flush())
        fatal("result store: failed writing '", path, "'");
}

void
ResultStore::writeStats()
{
    writeStats(stats());
}

void
ResultStore::writeStats(const StoreStats &stats)
{
    stats.toJson().writeFile(dir_ + "/stats.json");
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::vector<EvalResult>
loadResults(const std::string &dir)
{
    return evalResultsFromJson(
        JsonValue::parseFile(dir + "/results.json"));
}

StoreStats
loadStats(const std::string &dir)
{
    return StoreStats::fromJson(
        JsonValue::parseFile(dir + "/stats.json"));
}

JsonValue
StoreQuery::toJson() const
{
    if (!predicates.empty()) {
        fatal("store query: programmatic predicates cannot be "
              "serialized; express them as metric constraints");
    }
    JsonValue v = JsonValue::makeObject();
    v.set("format", JsonValue::makeNumber(kFormatVersion));
    if (!constraints.empty())
        v.set("constraints", constraints.toJson());
    if (!paretoMetrics.empty()) {
        JsonValue pareto = JsonValue::makeArray();
        for (const auto &name : paretoMetrics)
            pareto.append(JsonValue::makeString(name));
        v.set("pareto", std::move(pareto));
    }
    if (!topMetric.empty()) {
        JsonValue top = JsonValue::makeObject();
        top.set("metric", JsonValue::makeString(topMetric));
        top.set("k", JsonValue::makeNumber((double)topK));
        v.set("top_k", std::move(top));
    }
    return v;
}

StoreQuery
StoreQuery::fromJson(const JsonValue &doc)
{
    if (!doc.isObject())
        fatal("store query: document must be a JSON object, got ",
              doc.dump(0));
    // Reject unknown keys outright, mirroring the config front-end's
    // top-level vocabulary: a typo'd key ("paretto") would otherwise
    // deserialize as the match-everything query and silently return
    // the entire store.
    static const char *const known[] = {"format", "constraints",
                                        "pareto", "top_k"};
    for (const auto &key : doc.memberNames()) {
        if (std::find_if(std::begin(known), std::end(known),
                         [&](const char *k) { return key == k; }) ==
            std::end(known)) {
            fatal("store query: unknown key '", key,
                  "' (known keys: constraints pareto top_k format)");
        }
    }
    if (doc.has("format")) {
        if (!doc.at("format").isNumber()) {
            fatal("store query: \"format\" must be the numeric store "
                  "format version");
        }
        if ((int)doc.at("format").asNumber() != kFormatVersion) {
            fatal("store query: written with format ",
                  doc.at("format").asNumber(),
                  ", this build reads format ", kFormatVersion);
        }
    }
    StoreQuery query;
    if (doc.has("constraints")) {
        query.constraints = metrics::ConstraintSet::fromJson(
            doc.at("constraints"), "store query");
    }
    if (doc.has("pareto")) {
        query.paretoMetrics = metrics::paretoMetricsFromJson(
            doc.at("pareto"), "store query");
    }
    if (doc.has("top_k")) {
        metrics::TopSpec top = metrics::topSpecFromJson(
            doc.at("top_k"), "store query");
        query.topMetric = top.metric;
        query.topK = top.k;
    }
    return query;
}

std::vector<EvalResult>
applyQuery(const std::vector<EvalResult> &results,
           const StoreQuery &query)
{
    std::vector<EvalResult> out;
    out.reserve(results.size());
    for (const auto &result : results) {
        if (!query.constraints.satisfied(result))
            continue;
        bool keep = true;
        for (const auto &predicate : query.predicates) {
            if (!predicate(result)) {
                keep = false;
                break;
            }
        }
        if (keep)
            out.push_back(result);
    }
    if (!query.paretoMetrics.empty())
        out = metrics::paretoByMetrics(out, query.paretoMetrics,
                                       "store query");
    if (!query.topMetric.empty())
        out = metrics::topByMetric(out, query.topMetric, query.topK,
                                   "store query");
    return out;
}

std::vector<EvalResult>
queryStore(const std::string &dir, const StoreQuery &query)
{
    return applyQuery(loadResults(dir), query);
}

} // namespace store
} // namespace nvmexp
