/**
 * @file
 * Persistent sweep result store: the on-disk artifact behind the
 * paper's "filter and refine" dashboard stage.
 *
 * A store is one directory:
 *
 *   <dir>/cache/<hash>.json   characterization cache, one entry per
 *                             (cell, capacity, target, node) content
 *                             hash; re-running an identical or
 *                             enlarged sweep skips already-
 *                             characterized arrays. A store may be
 *                             pointed at an external cache directory
 *                             instead (campaign shards share one)
 *   <dir>/checkpoint.jsonl    append-only journal of completed
 *                             evaluation slots; an interrupted sweep
 *                             resumed with SweepConfig::resume
 *                             continues where it stopped
 *   <dir>/results.json        full-precision serialized EvalResults
 *   <dir>/results.csv         same results, flat CSV for external
 *                             dashboards
 *   <dir>/stats.json          cache/checkpoint counters of the last
 *                             run (the 100%-cache-hit acceptance
 *                             check reads these)
 *
 * Cache entries and checkpoint slots round-trip doubles exactly
 * (util/json shortest-exact formatting), so a resumed or cache-served
 * sweep produces results byte-identical to a cold serial run. Cache
 * invalidation is purely content-based: any change to the cell
 * definition, capacity, optimization target, node, word width, or
 * store format version changes the key hash, and the stale entry is
 * simply never referenced again. One sweep per directory at a time;
 * the characterization cache may be shared across sweeps.
 */

#ifndef NVMEXP_STORE_RESULT_STORE_HH
#define NVMEXP_STORE_RESULT_STORE_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "metrics/constraints.hh"
#include "metrics/refine.hh"
#include "store/serialize.hh"

namespace nvmexp {
namespace store {

/** Counters from one store-backed sweep (exposed via stats.json). */
struct StoreStats
{
    std::uint64_t cacheHits = 0;      ///< arrays served from cache
    std::uint64_t cacheMisses = 0;    ///< arrays characterized fresh
    std::uint64_t cacheStores = 0;    ///< cache entries written
    std::uint64_t checkpointLoaded = 0;   ///< eval slots resumed
    std::uint64_t checkpointComputed = 0; ///< eval slots computed

    std::uint64_t cacheLookups() const { return cacheHits + cacheMisses; }

    JsonValue toJson() const;
    static StoreStats fromJson(const JsonValue &doc);
};

/** 64-bit FNV-1a content hash (stable across platforms/runs). */
std::uint64_t fnv1a64(const std::string &text);

/** Hash of everything that determines a sweep's results (cells,
 *  capacities, targets, traffics, word width, nodes — not jobs or
 *  store settings). Guards checkpoint reuse across config edits. */
std::string sweepFingerprint(const SweepConfig &config);

/**
 * One result-store directory. Thread-safe: the sweep engine calls
 * lookup/store/checkpoint methods from its worker threads.
 */
class ResultStore
{
  public:
    /** Opens (creating if needed) the store directory. By default the
     *  characterization cache lives at <dir>/cache; passing a
     *  non-empty `cacheDir` points it elsewhere so several stores —
     *  e.g. the shard stores of one campaign — can share entries.
     *  Entry writes are atomic (write-then-rename), so concurrent
     *  processes may share a cache directory safely. */
    explicit ResultStore(std::string dir, std::string cacheDir = "");

    const std::string &dir() const { return dir_; }

    /** Cache lookups distinguish "no entry" from a cached negative
     *  (a design point with no valid organization). */
    enum class CacheOutcome { Miss, Hit, HitInvalid };

    /** Content-hash key for one characterized array. */
    static std::string characterizationKey(const MemCell &cell,
                                           const ArrayConfig &config,
                                           OptTarget target);

    /** @return Hit and fill `out`, HitInvalid for a cached negative,
     *  Miss otherwise. Counts toward stats(). */
    CacheOutcome lookupArray(const std::string &key, ArrayResult &out);

    /** Persist one characterized array under its key. */
    void storeArray(const std::string &key, const ArrayResult &array);

    /** Persist a negative entry: this key has no valid design. */
    void storeInvalid(const std::string &key);

    /**
     * Open the checkpoint journal for a sweep of `slots` evaluation
     * slots. With resume=true a journal whose fingerprint and slot
     * count match is replayed and the completed slots returned;
     * otherwise (or on mismatch) the journal restarts empty. A
     * malformed trailing line — the interrupted write — is skipped.
     */
    std::map<std::size_t, EvalResult>
    openCheckpoint(const std::string &fingerprint, std::size_t slots,
                   bool resume);

    /** Journal one completed slot (thread-safe, flushed). */
    void checkpointSlot(std::size_t slot, const EvalResult &result);

    /** Close the journal (results are about to be finalized). */
    void closeCheckpoint();

    /** Write results.json + results.csv. */
    void writeResults(const std::vector<EvalResult> &results);

    /** Write stats.json with the current counters. */
    void writeStats();

    /** Write stats.json with explicit counters (a campaign merge
     *  writes the sum over its shard stores). */
    void writeStats(const StoreStats &stats);

    StoreStats stats() const;

  private:
    std::string cachePath(const std::string &key) const;

    std::string dir_;
    std::string cacheDir_;
    mutable std::mutex mutex_;
    StoreStats stats_;
    std::ofstream checkpoint_;
};

/** One validated checkpoint journal entry: the slot, the raw journal
 *  line (no trailing newline), and the parsed "result" member. */
struct CheckpointEntry
{
    std::size_t slot = 0;
    std::string line;
    JsonValue result;
};

/**
 * Read-only scan of one store's checkpoint journal, with exactly the
 * torn-write tolerance of the resume path: the header line must parse
 * and carry the expected members before any entries are trusted, and
 * entry lines that fail to parse (the interrupted trailing write) or
 * name an out-of-range slot are skipped. No comparison against an
 * expected fingerprint happens here — callers (resume, campaign merge,
 * campaign status) decide what a mismatch means for them.
 */
struct CheckpointScan
{
    bool headerParsed = false; ///< first line parsed as JSON at all
    bool headerOk = false;     ///< ...and carried format/fingerprint/slots
    int format = 0;
    std::string fingerprint;
    std::size_t slots = 0;
    std::vector<CheckpointEntry> entries; ///< validated, file order
};

CheckpointScan scanCheckpoint(const std::string &dir);

/** The journal header line (no trailing newline) that openCheckpoint
 *  writes; a campaign merge reproduces it byte-for-byte. */
std::string checkpointHeaderLine(const std::string &fingerprint,
                                 std::size_t slots);

/**
 * One results.csv column: the header name plus the registry metric
 * backing it. Identity columns — the strings and sweep-axis keys that
 * name the design point (cell, tech, traffic, capacity_bytes,
 * word_bits, node_nm, ecc_scheme, scrub_interval_sec) — carry an
 * empty metric. Every other column's value is produced by evaluating
 * the named metric, so the CSV schema cannot drift from the registry;
 * nvmexplorer_lint cross-checks exactly this list.
 */
struct CsvColumn
{
    std::string header;  ///< results.csv header cell
    std::string metric;  ///< registry key, or "" for identity columns
};

/** The results.csv schema, in column order. */
const std::vector<CsvColumn> &resultCsvColumns();

/**
 * The byte-exact serialized form of a result set: what results.json
 * holds and what the query server's /query responses carry. Shared so
 * a served response is byte-identical to the offline artifact for the
 * same rows ({"format": v, "results": [...]} pretty-printed, trailing
 * newline).
 */
std::string serializeResults(const std::vector<EvalResult> &results);

/** Load a store's serialized results; fatal() if absent/corrupt. */
std::vector<EvalResult> loadResults(const std::string &dir);

/** Load a store's stats.json. */
StoreStats loadStats(const std::string &dir);

/**
 * Offline "filter and refine": the dashboard interaction (paper
 * Fig. 2) over a persisted store instead of a live sweep.
 *
 * Queries are expressed over the named-metric vocabulary
 * (src/metrics), so everything except the programmatic `predicates`
 * escape hatch serializes losslessly: a query can be written to a
 * store (query.json), read back, and re-applied with identical
 * results. Stages apply in order: constraints -> predicates -> Pareto
 * -> top-k.
 */
struct StoreQuery
{
    /** Declarative (metric, op, bound) clauses, ANDed; applied
     *  first. */
    metrics::ConstraintSet constraints;

    /** Arbitrary programmatic predicates, ANDed (not serialized). */
    std::vector<std::function<bool(const EvalResult &)>> predicates;

    /** When non-empty, reduce to the N-D Pareto front over these
     *  metric names (direction-folded per the registry). */
    std::vector<std::string> paretoMetrics;

    /** When topMetric is non-empty, keep the topK best rows under it
     *  (direction-aware, best first). */
    std::string topMetric;
    std::size_t topK = 0;

    /** Lossless serialization of the declarative parts; fatal if
     *  `predicates` are present (they cannot be serialized). */
    JsonValue toJson() const;
    static StoreQuery fromJson(const JsonValue &doc);
};

/** Apply a query to in-memory results (input order preserved). */
std::vector<EvalResult> applyQuery(const std::vector<EvalResult> &results,
                                   const StoreQuery &query);

/** loadResults + applyQuery over a store directory. */
std::vector<EvalResult> queryStore(const std::string &dir,
                                   const StoreQuery &query);

} // namespace store
} // namespace nvmexp

#endif // NVMEXP_STORE_RESULT_STORE_HH
