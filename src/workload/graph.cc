/**
 * @file
 * "graph" workload: the graph-analytics family as a registry plugin.
 * Runs an instrumented kernel over a generated social graph and
 * converts its scratchpad access counts into sustained traffic via the
 * Graphicionado-style accelerator model (paper Sec. IV-B).
 */

#include "graph/graph.hh"
#include "graph/kernels.hh"
#include "util/logging.hh"
#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

class GraphWorkload final : public Workload
{
  public:
    std::string name() const override { return "graph"; }

    std::string
    description() const override
    {
        return "graph-kernel scratchpad traffic (BFS/PageRank/CC on "
               "social graphs)";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::string("graph", "facebook", "input graph")
                .oneOf({"facebook", "wikipedia"}),
            ParamSpec::string("kernel", "bfs", "kernel to run")
                .oneOf({"bfs", "pagerank", "components"}),
            ParamSpec::number("source", 0.0, "BFS source vertex")
                .min(0.0).max(4294967295.0),  // Graph::Vertex range
            ParamSpec::number("iterations", 20.0,
                              "PageRank iterations")
                .min(1.0).max(1000.0),
            ParamSpec::number("clock_ghz", 1.0,
                              "accelerator pipeline clock [GHz]")
                .min(1e-3).max(100.0),
            ParamSpec::number("accesses_per_cycle", 1.0,
                              "scratchpad accesses per cycle")
                .min(1e-3).max(64.0),
            ParamSpec::string("pattern_name", "",
                              "override for the emitted pattern name"),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        const std::string &which = params.str("graph");
        Graph g = which == "facebook" ? facebookLike()
                                      : wikipediaLike();

        const std::string &kernel = params.str("kernel");
        AccessStats stats;
        if (kernel == "bfs") {
            auto source = (Graph::Vertex)params.number("source");
            if (source >= g.numVertices()) {
                fatal("graph workload: BFS source ", source,
                      " out of range (graph has ", g.numVertices(),
                      " vertices)");
            }
            stats = bfs(g, source).stats;
        } else if (kernel == "pagerank") {
            stats = pageRank(g, (int)params.number("iterations")).stats;
        } else {
            stats = connectedComponents(g).stats;
        }

        GraphAccelModel accel;
        accel.clockHz = params.number("clock_ghz") * 1e9;
        accel.accessesPerCycle = params.number("accesses_per_cycle");
        accel.scratchWordBits = context.wordBits;

        std::string label = params.str("pattern_name");
        if (label.empty()) {
            label = (which == "facebook" ? std::string("Facebook")
                                         : std::string("Wikipedia")) +
                "-" + (kernel == "bfs"        ? "BFS"
                       : kernel == "pagerank" ? "PageRank"
                                              : "CC");
        }
        return {kernelTraffic(label, stats, accel)};
    }
};

} // namespace

void
registerGraphWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<GraphWorkload>());
}

} // namespace workload
} // namespace nvmexp
