/**
 * @file
 * "dnn" workload: the DNN-inference family as a registry plugin. Maps
 * a deployment scenario (network, task count, buffer contents, frame
 * rate) onto the on-chip-buffer TrafficPattern via the same extraction
 * path the paper's Sec. IV-A studies use.
 */

#include "dnn/networks.hh"
#include "util/logging.hh"
#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

NetworkModel
networkByName(const std::string &name)
{
    if (name == "resnet26")
        return resnet26();
    if (name == "resnet18")
        return resnet18();
    if (name == "albert-base")
        return albertBase();
    if (name == "albert-embeddings")
        return albertEmbeddings();
    fatal("dnn workload: unknown network '", name, "'");
}

class DnnWorkload final : public Workload
{
  public:
    std::string name() const override { return "dnn"; }

    std::string
    description() const override
    {
        return "DNN inference buffer traffic (network x tasks x "
               "storage x frame rate)";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::string("network", "resnet26", "network model")
                .oneOf({"resnet26", "resnet18", "albert-base",
                        "albert-embeddings"}),
            ParamSpec::number("tasks", 1.0, "concurrent tasks")
                .min(1.0).max(64.0),
            ParamSpec::string("storage", "weights",
                              "what the buffer stores")
                .oneOf({"weights", "weights+activations"}),
            ParamSpec::number("fps", 60.0, "inference rate [1/s]")
                .min(1e-3).max(1e6),
            ParamSpec::number("weight_bits", 8.0,
                              "stored weight precision")
                .min(1.0).max(32.0),
            ParamSpec::number("activation_bits", 8.0,
                              "stored activation precision")
                .min(1.0).max(32.0),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        DnnScenario scenario;
        scenario.network = networkByName(params.str("network"));
        scenario.tasks = (int)params.number("tasks");
        scenario.storage = params.str("storage") == "weights"
                               ? DnnStorage::WeightsOnly
                               : DnnStorage::WeightsAndActivations;
        scenario.framesPerSec = params.number("fps");
        scenario.weightBits = (int)params.number("weight_bits");
        scenario.activationBits = (int)params.number("activation_bits");
        scenario.wordBits = context.wordBits;
        return {dnnTraffic(scenario)};
    }
};

} // namespace

void
registerDnnWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<DnnWorkload>());
}

} // namespace workload
} // namespace nvmexp
