/**
 * @file
 * "wal" workload: write-ahead-logging / transactional traffic.
 *
 * Commits append records to a sequential log in group-commit batches
 * (one header word per batch); every checkpoint period the log
 * accumulated since the last checkpoint is scanned back and a compact
 * snapshot of the dirty working set is written, concentrated into a
 * short checkpoint window. The workload therefore emits two patterns —
 * the append-only steady state and the read-burst checkpoint — plus an
 * optional crash-recovery replay, so a sweep sees both the
 * endurance-limited and the bandwidth-limited face of a transactional
 * store.
 */

#include <cmath>

#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

class WalWorkload final : public Workload
{
  public:
    std::string name() const override { return "wal"; }

    std::string
    description() const override
    {
        return "write-ahead log: sequential append bursts + "
               "checkpoint scans";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::number("commits_per_sec", 1e4,
                              "transaction commit rate")
                .min(1.0).max(1e9),
            ParamSpec::number("record_bytes", 512.0,
                              "log record size [B]")
                .min(1.0).max(1e6),
            ParamSpec::number("group_commit", 8.0,
                              "records batched per log append")
                .min(1.0).max(1e4),
            ParamSpec::number("checkpoint_period_sec", 60.0,
                              "seconds between checkpoints")
                .min(1e-3).max(1e6),
            ParamSpec::number("checkpoint_window_sec", 1.0,
                              "duration of the checkpoint burst [s]")
                .min(1e-6).max(1e6),
            ParamSpec::number("snapshot_mib", 4.0,
                              "dirty working set written per "
                              "checkpoint [MiB]")
                .min(0.0).max(1e5),
            ParamSpec::boolean("recovery", false,
                               "also emit a crash-recovery replay "
                               "pattern"),
            ParamSpec::string("pattern_name", "wal",
                              "prefix for the emitted pattern names"),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        const double wordBytes = (double)context.wordBits / 8.0;
        const double commits = params.number("commits_per_sec");
        const double recordWords =
            std::ceil(params.number("record_bytes") / wordBytes);
        const double batches =
            commits / params.number("group_commit");
        const double period = params.number("checkpoint_period_sec");
        double window = params.number("checkpoint_window_sec");
        if (window > period)
            window = period;  // a burst cannot outlast its period
        const double snapshotWords =
            std::ceil(params.number("snapshot_mib") * 1024.0 * 1024.0 /
                      wordBytes);
        const std::string &prefix = params.str("pattern_name");

        // Steady state: append-only. One header word per group-commit
        // batch on top of the record payload.
        const double appendWordsPerSec =
            commits * recordWords + batches * 1.0;
        TrafficPattern steady;
        steady.name = prefix + "-steady";
        steady.readsPerSec = 0.0;
        steady.writesPerSec = appendWordsPerSec;
        steady.execTime = period;

        // Checkpoint burst: scan the period's log back and write the
        // snapshot, all inside the checkpoint window.
        const double logWords = appendWordsPerSec * period;
        TrafficPattern checkpoint;
        checkpoint.name = prefix + "-checkpoint";
        checkpoint.readsPerSec = logWords / window;
        checkpoint.writesPerSec = snapshotWords / window;
        checkpoint.execTime = window;

        std::vector<TrafficPattern> patterns = {steady, checkpoint};
        if (params.flag("recovery")) {
            // Crash recovery: read the snapshot plus the whole tail
            // log and re-apply it to the working set.
            TrafficPattern recovery;
            recovery.name = prefix + "-recovery";
            recovery.readsPerSec = (logWords + snapshotWords) / window;
            recovery.writesPerSec = snapshotWords / window;
            recovery.execTime = window;
            patterns.push_back(recovery);
        }
        return patterns;
    }
};

} // namespace

void
registerWalWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<WalWorkload>());
}

} // namespace workload
} // namespace nvmexp
