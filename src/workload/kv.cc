/**
 * @file
 * "kv-store" workload: Zipfian get/put traffic against an eNVM-backed
 * key-value store.
 *
 * The store keeps records (key + value) in the array; a DRAM front
 * cache of configurable size absorbs GETs to the hottest keys. Key
 * popularity follows a Zipf(s) law, so the cache hit rate is the
 * analytical mass of the top-k keys, H_k(s)/H_N(s) — no sampling, the
 * pattern is exactly reproducible. PUTs are written through (index
 * word + record words reach the array); GET misses read the index and
 * the record.
 */

#include <algorithm>
#include <cmath>

#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

/**
 * Generalized harmonic number H_n(s) = sum_{i=1..n} i^-s: exact
 * summation for the head, midpoint-rule integral for the tail, so
 * billion-key stores stay O(1)-ish while small stores are exact.
 */
double
zipfHarmonic(double n, double s)
{
    const double cutoff = std::min(n, 65536.0);
    double sum = 0.0;
    for (double i = 1.0; i <= cutoff; i += 1.0)
        sum += std::pow(i, -s);
    if (n > cutoff) {
        if (s == 1.0) {
            sum += std::log((n + 0.5) / (cutoff + 0.5));
        } else {
            sum += (std::pow(n + 0.5, 1.0 - s) -
                    std::pow(cutoff + 0.5, 1.0 - s)) / (1.0 - s);
        }
    }
    return sum;
}

class KvStoreWorkload final : public Workload
{
  public:
    std::string name() const override { return "kv-store"; }

    std::string
    description() const override
    {
        return "Zipfian key-value get/put mix with a DRAM front cache "
               "(write-through)";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::number("ops_per_sec", 1e6,
                              "total get+put operations per second")
                .min(1.0).max(1e12),
            ParamSpec::number("get_fraction", 0.95,
                              "fraction of ops that are GETs")
                .min(0.0).max(1.0),
            ParamSpec::number("zipf_skew", 0.99,
                              "Zipf popularity exponent s")
                .min(0.0).max(10.0),
            ParamSpec::number("key_count", 1e6, "distinct keys")
                .min(1.0).max(1e12),
            ParamSpec::number("value_bytes", 128.0, "value size [B]")
                .min(1.0).max(1e6),
            ParamSpec::number("key_bytes", 16.0, "key size [B]")
                .min(1.0).max(4096.0),
            ParamSpec::number("cache_mib", 16.0,
                              "DRAM front-cache capacity [MiB]; 0 "
                              "disables the cache")
                .min(0.0).max(1e6),
            ParamSpec::number("exec_time", 1.0,
                              "measurement window [s]")
                .min(1e-9).max(1e9),
            ParamSpec::string("pattern_name", "",
                              "override for the emitted pattern name"),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        const double wordBytes = (double)context.wordBits / 8.0;
        const double recordBytes =
            params.number("key_bytes") + params.number("value_bytes");
        const double recordWords = std::ceil(recordBytes / wordBytes);
        const double indexWords = 1.0;

        const double keys = params.number("key_count");
        const double skew = params.number("zipf_skew");
        const double cachedKeys = std::min(
            keys, std::floor(params.number("cache_mib") * 1024.0 *
                             1024.0 / recordBytes));
        const double hitRate =
            cachedKeys >= 1.0
                ? zipfHarmonic(cachedKeys, skew) /
                      zipfHarmonic(keys, skew)
                : 0.0;

        const double ops = params.number("ops_per_sec");
        const double gets = ops * params.number("get_fraction");
        const double puts = ops - gets;

        TrafficPattern pattern;
        pattern.name = params.str("pattern_name");
        if (pattern.name.empty()) {
            pattern.name = "kv-s" + JsonValue::formatNumber(skew) +
                "-g" +
                JsonValue::formatNumber(params.number("get_fraction"));
        }
        pattern.readsPerSec =
            gets * (1.0 - hitRate) * (indexWords + recordWords);
        pattern.writesPerSec = puts * (indexWords + recordWords);
        pattern.execTime = params.number("exec_time");
        return {pattern};
    }
};

} // namespace

void
registerKvStoreWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<KvStoreWorkload>());
}

} // namespace workload
} // namespace nvmexp
