#include "workload/workload.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"
#include "workload/builtin.hh"

namespace nvmexp {
namespace workload {

const char *
paramKindName(ParamKind kind)
{
    switch (kind) {
      case ParamKind::Number: return "number";
      case ParamKind::String: return "string";
      case ParamKind::Bool: return "bool";
      case ParamKind::Object: return "object";
    }
    return "?";
}

namespace {

bool
kindMatches(ParamKind kind, const JsonValue &value)
{
    switch (kind) {
      case ParamKind::Number: return value.isNumber();
      case ParamKind::String: return value.isString();
      case ParamKind::Bool: return value.isBool();
      case ParamKind::Object: return value.isObject();
    }
    return false;
}

std::string
joined(const std::vector<std::string> &items)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < items.size(); ++i)
        out << (i ? ", " : "") << items[i];
    return out.str();
}

} // namespace

ParamSpec
ParamSpec::number(std::string key, double dflt, std::string description)
{
    ParamSpec spec;
    spec.key = std::move(key);
    spec.kind = ParamKind::Number;
    spec.numberDefault = dflt;
    spec.description = std::move(description);
    return spec;
}

ParamSpec
ParamSpec::string(std::string key, std::string dflt,
                  std::string description)
{
    ParamSpec spec;
    spec.key = std::move(key);
    spec.kind = ParamKind::String;
    spec.stringDefault = std::move(dflt);
    spec.description = std::move(description);
    return spec;
}

ParamSpec
ParamSpec::boolean(std::string key, bool dflt, std::string description)
{
    ParamSpec spec;
    spec.key = std::move(key);
    spec.kind = ParamKind::Bool;
    spec.boolDefault = dflt;
    spec.description = std::move(description);
    return spec;
}

ParamSpec
ParamSpec::object(std::string key, std::string description)
{
    ParamSpec spec;
    spec.key = std::move(key);
    spec.kind = ParamKind::Object;
    spec.description = std::move(description);
    return spec;
}

ParamSpec &
ParamSpec::min(double value)
{
    hasMin = true;
    minValue = value;
    return *this;
}

ParamSpec &
ParamSpec::max(double value)
{
    hasMax = true;
    maxValue = value;
    return *this;
}

ParamSpec &
ParamSpec::oneOf(std::vector<std::string> values)
{
    choices = std::move(values);
    return *this;
}

ParamSpec &
ParamSpec::mandatory()
{
    required = true;
    return *this;
}

Params
Params::fromJson(const std::string &workloadName, const JsonValue &spec,
                 const std::vector<ParamSpec> &schema)
{
    if (!spec.isObject())
        fatal("workload '", workloadName, "': spec must be an object");

    Params params;
    params.workload_ = workloadName;

    // Unknown keys are rejected up front: a typo'd parameter silently
    // falling back to its default is the worst possible sweep bug.
    for (const auto &key : spec.memberNames()) {
        if (key == "name")  // reserved for registry dispatch
            continue;
        bool known = std::any_of(
            schema.begin(), schema.end(),
            [&](const ParamSpec &p) { return p.key == key; });
        if (!known) {
            std::vector<std::string> keys;
            for (const auto &p : schema)
                keys.push_back(p.key);
            fatal("workload '", workloadName, "': unknown parameter '",
                  key, "' (accepted: ", joined(keys), ")");
        }
    }

    for (const auto &p : schema) {
        bool present = spec.has(p.key);
        if (!present && p.required) {
            fatal("workload '", workloadName,
                  "': missing required parameter '", p.key, "'");
        }
        JsonValue value;
        if (present) {
            value = spec.at(p.key);
            if (!kindMatches(p.kind, value)) {
                fatal("workload '", workloadName, "': parameter '",
                      p.key, "' must be a ", paramKindName(p.kind));
            }
        } else {
            switch (p.kind) {
              case ParamKind::Number:
                value = JsonValue::makeNumber(p.numberDefault);
                break;
              case ParamKind::String:
                value = JsonValue::makeString(p.stringDefault);
                break;
              case ParamKind::Bool:
                value = JsonValue::makeBool(p.boolDefault);
                break;
              case ParamKind::Object:
                value = JsonValue::makeObject();
                break;
            }
        }
        if (p.kind == ParamKind::Number) {
            double v = value.asNumber();
            if (v != v) {
                fatal("workload '", workloadName, "': parameter '",
                      p.key, "' is NaN");
            }
            if ((p.hasMin && v < p.minValue) ||
                (p.hasMax && v > p.maxValue)) {
                fatal("workload '", workloadName, "': parameter '",
                      p.key, "' = ", v, " out of range [",
                      p.hasMin ? JsonValue::formatNumber(p.minValue)
                               : std::string("-inf"),
                      ", ",
                      p.hasMax ? JsonValue::formatNumber(p.maxValue)
                               : std::string("+inf"),
                      "]");
            }
        }
        if (p.kind == ParamKind::String && !p.choices.empty()) {
            const std::string &v = value.asString();
            if (std::find(p.choices.begin(), p.choices.end(), v) ==
                p.choices.end()) {
                fatal("workload '", workloadName, "': parameter '",
                      p.key, "' = '", v, "' (expected one of: ",
                      joined(p.choices), ")");
            }
        }
        params.values_[p.key] = std::move(value);
        params.explicit_[p.key] = present;
    }
    return params;
}

const JsonValue &
Params::lookup(const std::string &key) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        panic("workload '", workload_, "': parameter '", key,
              "' read but not declared in the schema");
    }
    return it->second;
}

double
Params::number(const std::string &key) const
{
    return lookup(key).asNumber();
}

const std::string &
Params::str(const std::string &key) const
{
    return lookup(key).asString();
}

bool
Params::flag(const std::string &key) const
{
    return lookup(key).asBool();
}

const JsonValue &
Params::object(const std::string &key) const
{
    return lookup(key);
}

bool
Params::provided(const std::string &key) const
{
    auto it = explicit_.find(key);
    return it != explicit_.end() && it->second;
}

std::vector<TrafficPattern>
Workload::generateFromJson(const JsonValue &spec,
                           const TrafficContext &context) const
{
    Params params = Params::fromJson(name(), spec, schema());
    auto patterns = generateTraffic(params, context);
    for (auto &pattern : patterns)
        pattern.validate();
    return patterns;
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry *const registry = [] {
        auto *r = new WorkloadRegistry;
        registerLlcWorkload(*r);
        registerDnnWorkload(*r);
        registerGraphWorkload(*r);
        registerKvStoreWorkload(*r);
        registerWalWorkload(*r);
        registerIntermittentWorkload(*r);
        return r;
    }();
    return *registry;
}

void
WorkloadRegistry::add(std::unique_ptr<Workload> workload)
{
    std::string key = workload->name();
    if (key.empty())
        fatal("workload registration: empty name (registration #",
              workloads_.size(), ")");
    auto [it, inserted] =
        workloads_.emplace(key, std::move(workload));
    (void)it;
    if (!inserted) {
        fatal("workload '", key,
              "' registered twice (duplicate registration rejected)");
    }
}

const Workload *
WorkloadRegistry::find(const std::string &name) const
{
    auto it = workloads_.find(name);
    return it == workloads_.end() ? nullptr : it->second.get();
}

const Workload &
WorkloadRegistry::require(const std::string &name) const
{
    const Workload *workload = find(name);
    if (!workload) {
        fatal("unknown workload '", name, "' (registered: ",
              joined(names()), ")");
    }
    return *workload;
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : workloads_) {
        (void)value;
        out.push_back(key);
    }
    return out;  // std::map iterates sorted
}

std::vector<TrafficPattern>
trafficFromWorkloadJson(const JsonValue &spec,
                        const TrafficContext &context)
{
    if (!spec.isObject() || !spec.has("name"))
        fatal("workload spec needs a \"name\" key selecting a "
              "registered workload");
    const Workload &workload =
        WorkloadRegistry::instance().require(spec.at("name").asString());
    return workload.generateFromJson(spec, context);
}

void
validateWorkloadJson(const JsonValue &spec)
{
    if (!spec.isObject() || !spec.has("name"))
        fatal("workload spec needs a \"name\" key selecting a "
              "registered workload");
    const Workload &workload =
        WorkloadRegistry::instance().require(spec.at("name").asString());
    auto schema = workload.schema();
    Params params = Params::fromJson(workload.name(), spec, schema);
    // Recurse into nested workload specs (object-kind parameters are
    // inner workloads) so a wrapper's inner errors surface at load
    // time too.
    for (const auto &p : schema) {
        if (p.kind == ParamKind::Object && params.provided(p.key))
            validateWorkloadJson(params.object(p.key));
    }
}

std::vector<TrafficPattern>
expandWorkloads(const std::vector<JsonValue> &specs,
                const TrafficContext &context)
{
    std::vector<TrafficPattern> patterns;
    for (const auto &spec : specs) {
        auto expanded = trafficFromWorkloadJson(spec, context);
        patterns.insert(patterns.end(), expanded.begin(),
                        expanded.end());
    }
    return patterns;
}

} // namespace workload
} // namespace nvmexp
