/**
 * @file
 * Pluggable workload subsystem: the application level of the
 * configuration stack as a uniform abstraction.
 *
 * A Workload converts a validated parameter set into the
 * TrafficPattern(s) the evaluation engine consumes. Implementations
 * register themselves in the process-wide WorkloadRegistry under a
 * string key, which makes every traffic source — the legacy cachesim
 * LLC, DNN inference, and graph-kernel families as well as new
 * scenario generators — addressable from JSON configs
 * ({"workloads": [{"name": ...}]}), the CLI, and the study drivers
 * without per-family glue. Adding a workload is one ~100-line
 * translation unit: implement the interface, register it, done.
 */

#ifndef NVMEXP_WORKLOAD_WORKLOAD_HH
#define NVMEXP_WORKLOAD_WORKLOAD_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/traffic.hh"
#include "util/json.hh"

namespace nvmexp {
namespace workload {

/** Value kinds a workload parameter can take. */
enum class ParamKind { Number, String, Bool, Object };

/** Human-readable kind name ("number", "string", ...). */
const char *paramKindName(ParamKind kind);

/**
 * Declaration of one workload parameter: key, kind, default, and the
 * validation bounds enforced before a workload ever sees the value.
 */
struct ParamSpec
{
    std::string key;
    ParamKind kind = ParamKind::Number;
    std::string description;
    bool required = false;

    /** Defaults (by kind) when the spec omits the key. */
    double numberDefault = 0.0;
    std::string stringDefault;
    bool boolDefault = false;

    /** Inclusive numeric bounds; NaN-free configs only. */
    bool hasMin = false;
    double minValue = 0.0;
    bool hasMax = false;
    double maxValue = 0.0;

    /** Allowed values for String params; empty = free-form. */
    std::vector<std::string> choices;

    /** Fluent builders keep schema definitions compact. */
    static ParamSpec number(std::string key, double dflt,
                            std::string description);
    static ParamSpec string(std::string key, std::string dflt,
                            std::string description);
    static ParamSpec boolean(std::string key, bool dflt,
                             std::string description);
    static ParamSpec object(std::string key, std::string description);
    ParamSpec &min(double value);
    ParamSpec &max(double value);
    ParamSpec &oneOf(std::vector<std::string> values);
    ParamSpec &mandatory();
};

/**
 * A validated parameter set: every key checked against the schema
 * (unknown keys, kind mismatches, out-of-range numbers, and
 * out-of-vocabulary strings are fatal with the workload name and the
 * offending key in the message), defaults filled in.
 */
class Params
{
  public:
    /** Validate `spec` (a JSON object; the "name" key is reserved for
     *  registry dispatch and ignored here) against `schema`. */
    static Params fromJson(const std::string &workloadName,
                           const JsonValue &spec,
                           const std::vector<ParamSpec> &schema);

    double number(const std::string &key) const;
    const std::string &str(const std::string &key) const;
    bool flag(const std::string &key) const;
    /** Object-kind parameter (e.g. a nested workload spec). */
    const JsonValue &object(const std::string &key) const;
    /** True when the spec provided the key explicitly. */
    bool provided(const std::string &key) const;

  private:
    std::string workload_;
    std::map<std::string, JsonValue> values_;
    std::map<std::string, bool> explicit_;

    const JsonValue &lookup(const std::string &key) const;
};

/** Cross-cutting context a generator may need beyond its params. */
struct TrafficContext
{
    int wordBits = 512;  ///< array access width of the target sweep
};

/** One pluggable traffic source. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Registry key ("llc", "dnn", "graph", "kv-store", ...). */
    virtual std::string name() const = 0;
    /** One-line summary for --list-workloads and error messages. */
    virtual std::string description() const = 0;
    /** Parameter schema; validated before generateTraffic runs. */
    virtual std::vector<ParamSpec> schema() const = 0;

    /** Produce the traffic pattern(s) this parameterization implies. */
    virtual std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const = 0;

    /** Validate a raw JSON spec against schema() and generate. */
    std::vector<TrafficPattern>
    generateFromJson(const JsonValue &spec,
                     const TrafficContext &context) const;
};

/**
 * Process-wide string-keyed workload registry. Built-in workloads are
 * registered on first access; additional workloads may be added at any
 * time (tests and downstream embedders plug in their own).
 */
class WorkloadRegistry
{
  public:
    /** The singleton, with built-ins registered. */
    static WorkloadRegistry &instance();

    /** Register a workload; duplicate names are fatal. */
    void add(std::unique_ptr<Workload> workload);

    /** @return the workload or nullptr when unknown. */
    const Workload *find(const std::string &name) const;

    /** @return the workload; fatal with the known-name list when
     *  unknown. */
    const Workload &require(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    WorkloadRegistry() = default;

    std::map<std::string, std::unique_ptr<Workload>> workloads_;
};

/**
 * Expand one JSON workload spec — {"name": "<registry key>", ...params}
 * — into traffic patterns via the registry. The entry point used by
 * the sweep engine, the config front-end, and the study drivers.
 */
std::vector<TrafficPattern>
trafficFromWorkloadJson(const JsonValue &spec,
                        const TrafficContext &context);

/** Expand a list of specs in order, concatenating their patterns. */
std::vector<TrafficPattern>
expandWorkloads(const std::vector<JsonValue> &specs,
                const TrafficContext &context);

/**
 * Validate a spec (name known, parameters well-formed) without
 * generating traffic — the cheap eager check config loading performs
 * so bad studies fail before any simulation runs. Fatal on errors.
 * Nested specs (the intermittent wrapper's "inner") are validated
 * recursively.
 */
void validateWorkloadJson(const JsonValue &spec);

} // namespace workload
} // namespace nvmexp

#endif // NVMEXP_WORKLOAD_WORKLOAD_HH
