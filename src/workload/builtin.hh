/**
 * @file
 * Registration hooks for the built-in workloads. Each workload
 * translation unit defines its register function here; the registry
 * calls them all on first use. (Direct calls rather than static
 * registrar objects: the framework ships as a static library, and a
 * self-registering object in an otherwise-unreferenced object file
 * would be dropped by the linker.)
 */

#ifndef NVMEXP_WORKLOAD_BUILTIN_HH
#define NVMEXP_WORKLOAD_BUILTIN_HH

namespace nvmexp {
namespace workload {

class WorkloadRegistry;

void registerLlcWorkload(WorkloadRegistry &registry);
void registerDnnWorkload(WorkloadRegistry &registry);
void registerGraphWorkload(WorkloadRegistry &registry);
void registerKvStoreWorkload(WorkloadRegistry &registry);
void registerWalWorkload(WorkloadRegistry &registry);
void registerIntermittentWorkload(WorkloadRegistry &registry);

} // namespace workload
} // namespace nvmexp

#endif // NVMEXP_WORKLOAD_BUILTIN_HH
