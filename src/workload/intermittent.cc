/**
 * @file
 * "intermittent" workload: an energy-harvesting duty-cycle wrapper
 * that modulates any inner workload's traffic with power-off
 * intervals (paper Sec. IV-A2's intermittent deployment, generalized
 * to arbitrary traffic sources).
 *
 * The inner workload is a nested registry spec, so any registered
 * workload — including another wrapper — can be duty-cycled. Two
 * modes:
 *  - "catch-up": deadlines are preserved; while powered, the system
 *    runs 1/duty faster so each period's work still completes (the
 *    array sees compressed, burstier rates).
 *  - "throttle": work stretches; the array sees the wall-clock
 *    average, duty x the inner rates.
 * Wake/sleep state transfer (restore reads on power-up, checkpoint
 * writes before power-down) is amortized into the rates.
 */

#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

class IntermittentWorkload final : public Workload
{
  public:
    std::string name() const override { return "intermittent"; }

    std::string
    description() const override
    {
        return "duty-cycle wrapper: modulates an inner workload with "
               "power-off intervals";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::object("inner",
                              "nested workload spec ({\"name\": ...}) "
                              "to modulate")
                .mandatory(),
            ParamSpec::number("duty_cycle", 0.5,
                              "fraction of each period with power")
                .min(1e-6).max(1.0),
            ParamSpec::number("period_sec", 1.0,
                              "power on/off cycle period [s]")
                .min(1e-9).max(1e9),
            ParamSpec::number("restore_mib", 0.0,
                              "state read back on each wake [MiB]")
                .min(0.0).max(1e5),
            ParamSpec::number("checkpoint_mib", 0.0,
                              "state written before each power-down "
                              "[MiB]")
                .min(0.0).max(1e5),
            ParamSpec::string("mode", "catch-up",
                              "rate modulation mode")
                .oneOf({"catch-up", "throttle"}),
            ParamSpec::string("pattern_name", "int",
                              "prefix for the emitted pattern names"),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        auto inner =
            trafficFromWorkloadJson(params.object("inner"), context);

        const double wordBytes = (double)context.wordBits / 8.0;
        const double duty = params.number("duty_cycle");
        const double period = params.number("period_sec");
        const double restoreWords =
            params.number("restore_mib") * 1024.0 * 1024.0 / wordBytes;
        const double checkpointWords = params.number("checkpoint_mib") *
            1024.0 * 1024.0 / wordBytes;
        const bool catchUp = params.str("mode") == "catch-up";
        const std::string prefix = params.str("pattern_name") + "-d" +
            JsonValue::formatNumber(duty) +
            (catchUp ? "" : "-thr") + "/";

        std::vector<TrafficPattern> patterns;
        for (const auto &p : inner) {
            TrafficPattern out;
            out.name = prefix + p.name;
            if (catchUp) {
                // Rates as the array sees them while powered: the full
                // period's work plus one wake/sleep transfer happen
                // inside the on-time duty*period.
                out.readsPerSec = p.readsPerSec / duty +
                    restoreWords / (duty * period);
                out.writesPerSec = p.writesPerSec / duty +
                    checkpointWords / (duty * period);
                out.execTime = p.execTime * duty;
            } else {
                // Wall-clock average: the workload only progresses
                // while powered, transfers amortize over the period.
                out.readsPerSec =
                    p.readsPerSec * duty + restoreWords / period;
                out.writesPerSec =
                    p.writesPerSec * duty + checkpointWords / period;
                out.execTime = p.execTime / duty;
            }
            patterns.push_back(out);
        }
        return patterns;
    }
};

} // namespace

void
registerIntermittentWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<IntermittentWorkload>());
}

} // namespace workload
} // namespace nvmexp
