/**
 * @file
 * "llc" workload: the cachesim family as a registry plugin. Drives the
 * three-level cache hierarchy with a SPEC-like synthetic benchmark (or
 * the whole suite) and emits the LLC traffic the paper's Fig. 9 study
 * feeds into the sweep.
 */

#include "cachesim/streams.hh"
#include "workload/builtin.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace workload {

namespace {

class LlcWorkload final : public Workload
{
  public:
    std::string name() const override { return "llc"; }

    std::string
    description() const override
    {
        return "SPEC-like LLC traffic from the trace-driven cache "
               "hierarchy";
    }

    std::vector<ParamSpec>
    schema() const override
    {
        return {
            ParamSpec::string("benchmark", "suite",
                              "profile name, or \"suite\" for all "
                              "built-in profiles"),
            ParamSpec::number("instructions", 20e6,
                              "instructions to simulate")
                .min(1e3).max(1e10),
            ParamSpec::number("warmup", 5e6,
                              "unrecorded warmup instructions")
                .min(0.0).max(1e10),
            ParamSpec::number("llc_mib", 16.0, "LLC capacity [MiB]")
                .min(0.25).max(65536.0),
        };
    }

    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &context) const override
    {
        (void)context;  // rates come from the simulated hierarchy
        Hierarchy::Config hconfig;
        hconfig.llcBytes = (std::size_t)(params.number("llc_mib") *
                                         1024.0 * 1024.0);
        auto instructions = (std::uint64_t)params.number("instructions");
        auto warmup = (std::uint64_t)params.number("warmup");

        std::vector<const BenchmarkProfile *> profiles;
        if (params.str("benchmark") == "suite") {
            for (const auto &profile : specLikeSuite())
                profiles.push_back(&profile);
        } else {
            profiles.push_back(&profileByName(params.str("benchmark")));
        }

        std::vector<TrafficPattern> patterns;
        for (const BenchmarkProfile *profile : profiles) {
            LlcTraffic traffic = runBenchmark(*profile, instructions,
                                              warmup, hconfig);
            patterns.push_back(llcTrafficPattern(traffic));
        }
        return patterns;
    }
};

} // namespace

void
registerLlcWorkload(WorkloadRegistry &registry)
{
    registry.add(std::make_unique<LlcWorkload>());
}

} // namespace workload
} // namespace nvmexp
