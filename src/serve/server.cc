#include "serve/server.hh"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "util/json.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace serve {

namespace {

/** Set by requestReloadFromSignal (possibly from a SIGHUP handler),
 *  consumed by every accept loop's next tick. Lock-free atomic: the
 *  only state a signal handler may touch. */
std::atomic<bool> reloadRequested{false};

extern "C" void
sighupHandler(int)
{
    QueryServer::requestReloadFromSignal();
}

void
setRecvTimeout(int fd, int millis)
{
    timeval tv{};
    tv.tv_sec = millis / 1000;
    tv.tv_usec = (millis % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

std::string
errorBody(const std::string &message)
{
    JsonValue v = JsonValue::makeObject();
    v.set("error", JsonValue::makeString(message));
    return v.dump(2) + "\n";
}

} // namespace

void
QueryServer::requestReloadFromSignal()
{
    reloadRequested.store(true, std::memory_order_relaxed);
}

void
QueryServer::installSighupHandler()
{
    std::signal(SIGHUP, sighupHandler);
}

QueryServer::QueryServer(ServeOptions options)
    : options_(std::move(options))
{
}

QueryServer::~QueryServer()
{
    stop();
    pool_.reset();  // drain in-flight connections before closing
    if (listenFd_ >= 0)
        ::close(listenFd_);
}

bool
QueryServer::start(std::string &error)
{
    auto index = StoreIndex::load(options_.storeDir, error);
    if (!index)
        return false;
    {
        std::lock_guard<std::mutex> lock(indexMutex_);
        index_ = std::move(index);
    }

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        error = "socket: " + std::string(std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons((uint16_t)options_.port);
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    if (::bind(listenFd_, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        error = "bind port " + std::to_string(options_.port) + ": " +
                std::strerror(errno);
        return false;
    }
    if (::listen(listenFd_, 64) != 0) {
        error = "listen: " + std::string(std::strerror(errno));
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, (sockaddr *)&addr, &len) == 0)
        port_ = (int)ntohs(addr.sin_port);

    // A short accept timeout turns the blocking loop into a poll of
    // the stop/reload flags.
    setRecvTimeout(listenFd_, 200);

    pool_ = std::make_unique<ThreadPool>(
        std::max(1, std::min(options_.jobs, ThreadPool::kMaxThreads)));
    return true;
}

void
QueryServer::run()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        if (reloadRequested.exchange(false, std::memory_order_relaxed)) {
            std::string error;
            if (reload(error))
                inform("serve: store re-indexed on signal");
            else
                warn("serve: reload failed: ", error);
        }

        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK ||
                errno == EINTR) {
                continue;
            }
            warn("serve: accept: ", std::strerror(errno));
            continue;
        }
        bool queued = pool_->submit([this, fd] {
            handleConnection(fd);
            ::close(fd);
        });
        if (!queued)
            ::close(fd);
    }
}

void
QueryServer::stop()
{
    stop_.store(true, std::memory_order_relaxed);
}

bool
QueryServer::reload(std::string &error)
{
    auto fresh = StoreIndex::load(options_.storeDir, error);
    if (!fresh) {
        reloadFailures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    {
        std::lock_guard<std::mutex> lock(indexMutex_);
        index_ = std::move(fresh);
    }
    reloads_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::shared_ptr<const StoreIndex>
QueryServer::index() const
{
    std::lock_guard<std::mutex> lock(indexMutex_);
    return index_;
}

ServeCounters
QueryServer::counters() const
{
    ServeCounters out;
    out.queries = queries_.load(std::memory_order_relaxed);
    out.badRequests = badRequests_.load(std::memory_order_relaxed);
    out.reloads = reloads_.load(std::memory_order_relaxed);
    out.reloadFailures =
        reloadFailures_.load(std::memory_order_relaxed);
    out.dropped = dropped_.load(std::memory_order_relaxed);
    out.queryMicros = queryMicros_.load(std::memory_order_relaxed);
    return out;
}

HttpResponse
QueryServer::handleQuery(const HttpRequest &request)
{
    auto begin = std::chrono::steady_clock::now();
    auto snapshot = index();

    HttpResponse response;
    try {
        // Query parsing and metric resolution fatal() on user errors
        // (malformed JSON, unknown keys, unknown metrics); the guard
        // turns each into a structured 400 instead of process exit.
        ScopedFatalThrows guard;
        store::StoreQuery query =
            store::StoreQuery::fromJson(JsonValue::parse(request.body));
        response.body = store::serializeResults(snapshot->query(query));
    } catch (const FatalError &e) {
        badRequests_.fetch_add(1, std::memory_order_relaxed);
        return {400, "application/json", errorBody(e.what())};
    }

    queries_.fetch_add(1, std::memory_order_relaxed);
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - begin);
    queryMicros_.fetch_add((std::uint64_t)micros.count(),
                           std::memory_order_relaxed);
    return response;
}

HttpResponse
QueryServer::handleReload()
{
    std::string error;
    if (!reload(error))
        return {409, "application/json", errorBody(error)};
    auto snapshot = index();
    JsonValue v = JsonValue::makeObject();
    v.set("status", JsonValue::makeString("reloaded"));
    v.set("fingerprint", JsonValue::makeString(snapshot->fingerprint()));
    v.set("rows", JsonValue::makeNumber((double)snapshot->rows()));
    return {200, "application/json", v.dump(2) + "\n"};
}

HttpResponse
QueryServer::dispatch(const HttpRequest &request)
{
    const std::string path = request.path();

    if (path == "/query") {
        if (request.method != "POST") {
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            return {405, "application/json",
                    errorBody("/query takes POST")};
        }
        return handleQuery(request);
    }

    if (path == "/reload") {
        if (request.method != "POST") {
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            return {405, "application/json",
                    errorBody("/reload takes POST")};
        }
        return handleReload();
    }

    if (path == "/healthz") {
        if (request.method != "GET") {
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            return {405, "application/json",
                    errorBody("/healthz takes GET")};
        }
        auto snapshot = index();
        JsonValue v = JsonValue::makeObject();
        v.set("status", JsonValue::makeString("ok"));
        v.set("fingerprint",
              JsonValue::makeString(snapshot->fingerprint()));
        v.set("rows", JsonValue::makeNumber((double)snapshot->rows()));
        v.set("format",
              JsonValue::makeNumber((double)store::kFormatVersion));
        return {200, "application/json", v.dump(2) + "\n"};
    }

    if (path == "/statz") {
        if (request.method != "GET") {
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            return {405, "application/json",
                    errorBody("/statz takes GET")};
        }
        ServeCounters c = counters();
        JsonValue v = JsonValue::makeObject();
        v.set("queries", JsonValue::makeNumber((double)c.queries));
        v.set("bad_requests",
              JsonValue::makeNumber((double)c.badRequests));
        v.set("reloads", JsonValue::makeNumber((double)c.reloads));
        v.set("reload_failures",
              JsonValue::makeNumber((double)c.reloadFailures));
        v.set("dropped_connections",
              JsonValue::makeNumber((double)c.dropped));
        v.set("query_micros",
              JsonValue::makeNumber((double)c.queryMicros));
        return {200, "application/json", v.dump(2) + "\n"};
    }

    badRequests_.fetch_add(1, std::memory_order_relaxed);
    return {404, "application/json",
            errorBody("no such endpoint '" + path + "'")};
}

void
QueryServer::handleConnection(int fd)
{
    // The same quiet receive window bounds a peer mid-request and an
    // idle keep-alive connection, so a worker is pinned for at most
    // one window past the last byte either way.
    setRecvTimeout(fd, options_.keepAliveTimeoutMillis);

    std::string carry;  // pipelined bytes past the previous request
    for (int served = 0; served < options_.maxRequestsPerConnection;
         ++served) {
        HttpRequestParser parser(options_.maxBodyBytes);
        bool midRequest = false;
        if (!carry.empty()) {
            parser.consume(carry.data(), carry.size());
            midRequest = true;
            carry.clear();
        }
        char chunk[8192];
        while (parser.state() == ParseState::NeedMore) {
            ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                // Only a hangup (or timeout) after a request started
                // counts as dropped; a keep-alive peer going away
                // between requests is the protocol working.
                if (midRequest)
                    dropped_.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            midRequest = true;
            parser.consume(chunk, (std::size_t)n);
        }

        HttpResponse response;
        bool keepAlive = false;
        switch (parser.state()) {
          case ParseState::Done: {
            response = dispatch(parser.request());
            // HTTP/1.1 persists unless the client says close; earlier
            // versions must ask. A parse failure always closes (the
            // connection byte stream is unsynchronized).
            const HttpRequest &request = parser.request();
            std::string token;
            auto it = request.headers.find("connection");
            if (it != request.headers.end()) {
                token = it->second;
                for (char &c : token)
                    c = (char)std::tolower((unsigned char)c);
            }
            keepAlive = request.version == "HTTP/1.1"
                ? token != "close"
                : token == "keep-alive";
            if (served + 1 >= options_.maxRequestsPerConnection)
                keepAlive = false;
            break;
          }
          case ParseState::TooLarge:
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            response = {413, "application/json",
                        errorBody(parser.error())};
            break;
          default:
            badRequests_.fetch_add(1, std::memory_order_relaxed);
            response = {400, "application/json",
                        errorBody(parser.error())};
            break;
        }
        if (!sendAll(fd, serializeResponse(response, keepAlive))) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (!keepAlive)
            return;
        carry = parser.remainder();
    }
}

} // namespace serve
} // namespace nvmexp
