/**
 * @file
 * Sweep-as-a-service: a long-lived HTTP query server over one result
 * store (the `nvmexplorer_cli serve` subcommand).
 *
 * Endpoints (all responses JSON; connections persist per HTTP/1.1
 * keep-alive semantics, bounded by keepAliveTimeoutMillis and
 * maxRequestsPerConnection):
 *
 *   POST /query    body = the StoreQuery wire format (query.json);
 *                  200 with the byte-exact store::serializeResults
 *                  form of the matching rows, or a structured 400
 *                  {"error": ...} for malformed JSON, unknown query
 *                  keys, or unknown metrics. 413 for oversized bodies.
 *   GET  /healthz  {"status", "fingerprint", "rows", "format"}
 *   GET  /statz    serving counters (queries, bad requests, reloads,
 *                  dropped connections, total query microseconds)
 *   POST /reload   re-index the store directory; 200 on success, 409
 *                  (old index kept) when the store is missing, corrupt,
 *                  or mid-rewrite. SIGHUP triggers the same refresh.
 *
 * Concurrency: a blocking accept loop hands connections to a
 * ThreadPool; the index is an immutable shared_ptr swapped under a
 * mutex on reload, so in-flight queries drain on the snapshot they
 * started with. The accept socket carries a short receive timeout so
 * the loop polls the stop and SIGHUP-reload flags without signals
 * interrupting syscalls mid-request.
 */

#ifndef NVMEXP_SERVE_SERVER_HH
#define NVMEXP_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "serve/http.hh"
#include "serve/index.hh"
#include "util/thread_pool.hh"

namespace nvmexp {
namespace serve {

/** Configuration for one QueryServer. */
struct ServeOptions
{
    std::string storeDir;
    int port = 0;       ///< 0 = kernel-assigned (see QueryServer::port)
    int jobs = 4;       ///< connection worker threads
    std::size_t maxBodyBytes = 1 << 20;  ///< /query body cap (413 above)
    /** How long a keep-alive connection may sit idle (also the
     *  mid-request receive window) before the worker gives up on it. */
    int keepAliveTimeoutMillis = 5000;
    /** Requests served per connection before the server answers
     *  "Connection: close" and recycles the worker (bounds how long
     *  one chatty client can pin a pool thread). */
    int maxRequestsPerConnection = 100;
};

/** Snapshot of the serving counters (/statz). */
struct ServeCounters
{
    std::uint64_t queries = 0;         ///< /query requests served (200)
    std::uint64_t badRequests = 0;     ///< 4xx responses
    std::uint64_t reloads = 0;         ///< successful re-indexes
    std::uint64_t reloadFailures = 0;  ///< rejected re-indexes
    std::uint64_t dropped = 0;   ///< connections lost mid-request (an
                                 ///< idle keep-alive close is clean)
    std::uint64_t queryMicros = 0;     ///< summed /query handling time
};

class QueryServer
{
  public:
    explicit QueryServer(ServeOptions options);
    ~QueryServer();

    QueryServer(const QueryServer &) = delete;
    QueryServer &operator=(const QueryServer &) = delete;

    /** Load + index the store and bind/listen. @return false with
     *  `error` set on a bad store or unbindable port. */
    bool start(std::string &error);

    /** Accept-and-serve until stop(); call from a dedicated thread
     *  (or the main thread for the CLI). Requires start(). */
    void run();

    /** Ask run() to return; safe from any thread. Pending connections
     *  finish (the pool drains in the destructor). */
    void stop();

    /** The bound port (resolves port=0 to the kernel's choice);
     *  valid after start(). */
    int port() const { return port_; }

    /** Re-index the store now; on failure the old index stays live.
     *  Safe from any thread. */
    bool reload(std::string &error);

    /** The live index snapshot. */
    std::shared_ptr<const StoreIndex> index() const;

    ServeCounters counters() const;

    /** Handle one already-parsed request (exposed for direct unit
     *  testing of the endpoint logic without sockets). */
    HttpResponse dispatch(const HttpRequest &request);

    /**
     * Mark that every running server should re-index at its next
     * accept-loop tick. Only touches a lock-free atomic flag, so it is
     * safe to call from a SIGHUP handler.
     */
    static void requestReloadFromSignal();

    /** Install a SIGHUP handler calling requestReloadFromSignal(). */
    static void installSighupHandler();

  private:
    void handleConnection(int fd);
    HttpResponse handleQuery(const HttpRequest &request);
    HttpResponse handleReload();

    ServeOptions options_;
    int listenFd_ = -1;
    int port_ = 0;
    std::unique_ptr<ThreadPool> pool_;

    mutable std::mutex indexMutex_;
    std::shared_ptr<const StoreIndex> index_;

    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> queries_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> reloads_{0};
    std::atomic<std::uint64_t> reloadFailures_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> queryMicros_{0};
};

} // namespace serve
} // namespace nvmexp

#endif // NVMEXP_SERVE_SERVER_HH
