#include "serve/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <vector>

#include "util/json.hh"

namespace nvmexp {
namespace serve {

namespace {

std::string
lowered(std::string text)
{
    for (char &c : text)
        c = (char)std::tolower((unsigned char)c);
    return text;
}

std::string
trimmed(const std::string &text)
{
    std::size_t begin = text.find_first_not_of(" \t\r");
    std::size_t end = text.find_last_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    return text.substr(begin, end - begin + 1);
}

/** Split one header block line-by-line; lines may end in LF or CRLF
 *  (the trailing CR is trimmed with the surrounding whitespace). */
std::vector<std::string>
splitLines(const std::string &block)
{
    std::vector<std::string> lines;
    std::size_t at = 0;
    while (at <= block.size()) {
        std::size_t eol = block.find('\n', at);
        if (eol == std::string::npos) {
            lines.push_back(block.substr(at));
            break;
        }
        lines.push_back(block.substr(at, eol - at));
        at = eol + 1;
    }
    return lines;
}

} // namespace

std::string
HttpRequest::path() const
{
    std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

HttpRequestParser::HttpRequestParser(std::size_t maxBodyBytes)
    : maxBody_(maxBodyBytes)
{
}

ParseState
HttpRequestParser::fail(ParseState state, const std::string &what)
{
    state_ = state;
    error_ = what;
    return state_;
}

ParseState
HttpRequestParser::finishHeaders(std::size_t headerEnd)
{
    auto lines = splitLines(buffer_.substr(0, headerEnd));
    if (lines.empty() || trimmed(lines[0]).empty())
        return fail(ParseState::Bad, "empty request line");

    // Request line: METHOD SP TARGET SP VERSION.
    std::string requestLine = trimmed(lines[0]);
    std::size_t sp1 = requestLine.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : requestLine.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        requestLine.find(' ', sp2 + 1) != std::string::npos) {
        return fail(ParseState::Bad,
                    "malformed request line '" + requestLine + "'");
    }
    request_.method = requestLine.substr(0, sp1);
    request_.target = requestLine.substr(sp1 + 1, sp2 - sp1 - 1);
    request_.version = requestLine.substr(sp2 + 1);
    if (request_.version.rfind("HTTP/", 0) != 0) {
        return fail(ParseState::Bad,
                    "unsupported protocol '" + request_.version + "'");
    }

    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string line = trimmed(lines[i]);
        if (line.empty())
            continue;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0)
            return fail(ParseState::Bad, "malformed header '" + line + "'");
        request_.headers[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }

    auto cl = request_.headers.find("content-length");
    if (cl != request_.headers.end()) {
        double declared = 0.0;
        if (!JsonValue::parseNumber(cl->second, declared) ||
            declared < 0.0 || declared != (double)(std::size_t)declared) {
            return fail(ParseState::Bad,
                        "bad Content-Length '" + cl->second + "'");
        }
        contentLength_ = (std::size_t)declared;
        if (contentLength_ > maxBody_)
            return fail(ParseState::TooLarge, "request body too large");
    }
    headersDone_ = true;
    return ParseState::NeedMore;
}

ParseState
HttpRequestParser::consume(const char *data, std::size_t size)
{
    if (state_ != ParseState::NeedMore)
        return state_;
    buffer_.append(data, size);

    if (!headersDone_) {
        // Find the blank line ending the header block; accept CRLFCRLF
        // or bare LFLF.
        std::size_t end = buffer_.find("\r\n\r\n");
        std::size_t bodyAt;
        if (end != std::string::npos) {
            bodyAt = end + 4;
        } else {
            end = buffer_.find("\n\n");
            if (end != std::string::npos)
                bodyAt = end + 2;
            else if (buffer_.size() > maxBody_ + 8192)
                return fail(ParseState::TooLarge, "request too large");
            else
                return ParseState::NeedMore;
        }
        bodyStart_ = bodyAt;
        if (finishHeaders(end) != ParseState::NeedMore)
            return state_;
    }

    if (buffer_.size() - bodyStart_ >= contentLength_) {
        request_.body = buffer_.substr(bodyStart_, contentLength_);
        state_ = ParseState::Done;
    }
    return state_;
}

const char *
reasonPhrase(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 409: return "Conflict";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      default: return "Unknown";
    }
}

std::string
serializeResponse(const HttpResponse &response, bool keepAlive)
{
    std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                      reasonPhrase(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n";
    out += keepAlive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
    out += response.body;
    return out;
}

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        sent += (std::size_t)n;
    }
    return true;
}

namespace {

/** Locate the blank line ending a response head (CRLFCRLF or bare
 *  LFLF); @return false while it has not arrived yet. */
bool
findHeaderEnd(const std::string &text, std::size_t &headerEnd,
              std::size_t &bodyAt)
{
    headerEnd = text.find("\r\n\r\n");
    if (headerEnd != std::string::npos) {
        bodyAt = headerEnd + 4;
        return true;
    }
    headerEnd = text.find("\n\n");
    if (headerEnd != std::string::npos) {
        bodyAt = headerEnd + 2;
        return true;
    }
    return false;
}

/** Parse "HTTP/x.y NNN reason" + headers out of one head block. */
bool
parseResponseHead(const std::string &head, HttpClientResult &out,
                  std::string &error)
{
    auto lines = splitLines(head);
    if (lines.empty()) {
        error = "malformed response (empty status line)";
        return false;
    }
    std::string status = trimmed(lines[0]);
    std::size_t sp = status.find(' ');
    if (sp == std::string::npos || status.rfind("HTTP/", 0) != 0) {
        error = "malformed status line '" + status + "'";
        return false;
    }
    double code = 0.0;
    std::string codeText = status.substr(sp + 1, 3);
    if (!JsonValue::parseNumber(codeText, code)) {
        error = "malformed status code '" + codeText + "'";
        return false;
    }
    out.status = (int)code;
    out.headers.clear();
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::string line = trimmed(lines[i]);
        std::size_t colon = line.find(':');
        if (line.empty() || colon == std::string::npos)
            continue;
        out.headers[lowered(trimmed(line.substr(0, colon)))] =
            trimmed(line.substr(colon + 1));
    }
    return true;
}

} // namespace

bool
httpExchange(int port, const std::string &method,
             const std::string &target, const std::string &body,
             HttpClientResult &out, std::string &error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = "socket: " + std::string(std::strerror(errno));
        return false;
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons((uint16_t)port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        error = "connect: " + std::string(std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: 127.0.0.1\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "Connection: close\r\n\r\n";
    request += body;
    if (!sendAll(fd, request)) {
        error = "send: " + std::string(std::strerror(errno));
        ::close(fd);
        return false;
    }

    std::string response;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = "recv: " + std::string(std::strerror(errno));
            ::close(fd);
            return false;
        }
        if (n == 0)
            break;
        response.append(chunk, (std::size_t)n);
    }
    ::close(fd);

    // Parse status line + headers + body (body runs to EOF; this
    // client asked for Connection: close, and Content-Length is
    // advisory here).
    std::size_t headerEnd = 0;
    std::size_t bodyAt = 0;
    if (!findHeaderEnd(response, headerEnd, bodyAt)) {
        error = "malformed response (no header terminator)";
        return false;
    }
    if (!parseResponseHead(response.substr(0, headerEnd), out, error))
        return false;
    out.body = response.substr(bodyAt);
    return true;
}

bool
HttpClient::connectOnce(std::string &error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = "socket: " + std::string(std::strerror(errno));
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons((uint16_t)port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, (const sockaddr *)&addr, sizeof(addr)) != 0) {
        error = "connect: " + std::string(std::strerror(errno));
        ::close(fd);
        return false;
    }
    fd_ = fd;
    carry_.clear();
    return true;
}

void
HttpClient::disconnect()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    carry_.clear();
}

bool
HttpClient::exchange(const std::string &method,
                     const std::string &target, const std::string &body,
                     HttpClientResult &out, std::string &error)
{
    for (int attempt = 0;; ++attempt) {
        bool fresh = fd_ < 0;
        if (fresh && !connectOnce(error))
            return false;

        std::string request = method + " " + target + " HTTP/1.1\r\n";
        request += "Host: 127.0.0.1\r\n";
        request +=
            "Content-Length: " + std::to_string(body.size()) + "\r\n";
        request += "Connection: keep-alive\r\n\r\n";
        request += body;
        bool dead = !sendAll(fd_, request);

        std::string response = std::move(carry_);
        carry_.clear();
        std::size_t headerEnd = 0;
        std::size_t bodyAt = 0;
        bool headFound =
            !dead && findHeaderEnd(response, headerEnd, bodyAt);
        char chunk[4096];
        while (!dead && !headFound) {
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                dead = true;
                break;
            }
            response.append(chunk, (std::size_t)n);
            headFound = findHeaderEnd(response, headerEnd, bodyAt);
        }
        if (dead) {
            disconnect();
            // A reused connection the server quietly closed between
            // exchanges (idle timeout or request cap): retry once on
            // a fresh one. A dead fresh connection is a real error.
            if (!fresh && attempt == 0 && response.empty())
                continue;
            error = "connection closed mid-response";
            return false;
        }
        if (!parseResponseHead(response.substr(0, headerEnd), out,
                               error)) {
            disconnect();
            return false;
        }
        auto cl = out.headers.find("content-length");
        double length = 0.0;
        if (cl == out.headers.end() ||
            !JsonValue::parseNumber(cl->second, length) ||
            length < 0.0) {
            disconnect();
            error = "response carries no usable Content-Length";
            return false;
        }
        std::size_t want = bodyAt + (std::size_t)length;
        while (response.size() < want) {
            ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n < 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                disconnect();
                error = "connection closed mid-response";
                return false;
            }
            response.append(chunk, (std::size_t)n);
        }
        out.body = response.substr(bodyAt, (std::size_t)length);
        carry_ = response.substr(want);
        auto conn = out.headers.find("connection");
        if (conn != out.headers.end() &&
            lowered(conn->second) == "close")
            disconnect();
        return true;
    }
}

} // namespace serve
} // namespace nvmexp
