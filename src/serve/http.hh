/**
 * @file
 * Minimal HTTP/1.1 plumbing for the query server: an incremental
 * request parser, response serialization, and a tiny blocking client
 * the tests and the load bench drive the server with.
 *
 * Deliberately small: blocking sockets, no chunked transfer encoding,
 * no TLS. Connections persist per HTTP/1.1 semantics (the server
 * bounds idle time and requests per connection; see serve/server.hh),
 * and HttpClient keeps one connection open across exchanges. The
 * request body size is capped by the caller so an oversized upload is
 * rejected with 413 instead of buffered.
 */

#ifndef NVMEXP_SERVE_HTTP_HH
#define NVMEXP_SERVE_HTTP_HH

#include <cstddef>
#include <map>
#include <string>

namespace nvmexp {
namespace serve {

/** One parsed request. Header names are lowercased (HTTP headers are
 *  case-insensitive); the target keeps its raw spelling. */
struct HttpRequest
{
    std::string method;   ///< "GET", "POST", ...
    std::string target;   ///< "/query", "/healthz?verbose", ...
    std::string version;  ///< "HTTP/1.1"
    std::map<std::string, std::string> headers;
    std::string body;

    /** The target with any "?query" suffix stripped. */
    std::string path() const;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
};

/** State of an HttpRequestParser after consuming bytes. */
enum class ParseState
{
    NeedMore,  ///< request incomplete; feed more bytes
    Done,      ///< request() is a complete request
    Bad,       ///< malformed request line/headers (400)
    TooLarge,  ///< declared or buffered size over the cap (413)
};

/**
 * Incremental HTTP/1.1 request parser. Feed it whatever recv()
 * returned; it buffers until the header block and the Content-Length
 * body are complete. Both CRLF and bare-LF line endings are accepted.
 */
class HttpRequestParser
{
  public:
    /** @param maxBodyBytes reject bodies declared or buffered beyond
     *  this many bytes. */
    explicit HttpRequestParser(std::size_t maxBodyBytes);

    /** Consume one chunk; once a terminal state (anything but
     *  NeedMore) is reached, further calls return it unchanged. */
    ParseState consume(const char *data, std::size_t size);

    ParseState state() const { return state_; }

    /** The parsed request; meaningful once state() == Done. */
    const HttpRequest &request() const { return request_; }

    /** What went wrong; meaningful for Bad / TooLarge. */
    const std::string &error() const { return error_; }

    /** Bytes consumed beyond the parsed request (the start of a
     *  pipelined follow-up on a keep-alive connection); meaningful
     *  once state() == Done. */
    std::string remainder() const
    {
        return buffer_.substr(bodyStart_ + contentLength_);
    }

  private:
    ParseState finishHeaders(std::size_t headerEnd);
    ParseState fail(ParseState state, const std::string &what);

    std::string buffer_;
    std::size_t maxBody_;
    std::size_t bodyStart_ = 0;
    std::size_t contentLength_ = 0;
    bool headersDone_ = false;
    ParseState state_ = ParseState::NeedMore;
    HttpRequest request_;
    std::string error_;
};

/** The standard reason phrase for the status codes the server emits
 *  (unknown codes get "Unknown"). */
const char *reasonPhrase(int status);

/** Serialize status line + Content-Type/Content-Length/Connection
 *  headers + body. `keepAlive` picks the Connection token; the
 *  default matches the historical close-per-request behavior. */
std::string serializeResponse(const HttpResponse &response,
                              bool keepAlive = false);

/** send() the whole buffer (MSG_NOSIGNAL; a dropped peer is reported
 *  as false, never as SIGPIPE). */
bool sendAll(int fd, const std::string &bytes);

/** What the blocking client got back. */
struct HttpClientResult
{
    int status = 0;
    std::map<std::string, std::string> headers;  ///< lowercased names
    std::string body;
};

/**
 * One blocking request against 127.0.0.1:`port`: connect, send, read
 * to EOF, parse. @return false (with `error` set) on connect/send/
 * malformed-response trouble. Used by the tests, the load bench, and
 * anything else that wants to talk to a local server without curl.
 */
bool httpExchange(int port, const std::string &method,
                  const std::string &target, const std::string &body,
                  HttpClientResult &out, std::string &error);

/**
 * A blocking client that keeps one connection to 127.0.0.1:`port`
 * open across exchanges ("Connection: keep-alive"), reading each
 * response by its Content-Length instead of to EOF. When the server
 * closed the connection between exchanges (idle timeout or
 * per-connection request cap), the next exchange transparently
 * reconnects once. The load bench and the keep-alive tests drive the
 * server through this.
 */
class HttpClient
{
  public:
    explicit HttpClient(int port) : port_(port) {}
    ~HttpClient() { disconnect(); }

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /** One request/response on the persistent connection. @return
     *  false with `error` set on connect/send/malformed-response
     *  trouble. */
    bool exchange(const std::string &method, const std::string &target,
                  const std::string &body, HttpClientResult &out,
                  std::string &error);

    /** Whether a connection is currently open (false before the first
     *  exchange and after the server signalled Connection: close). */
    bool connected() const { return fd_ >= 0; }

    void disconnect();

  private:
    bool connectOnce(std::string &error);

    int port_;
    int fd_ = -1;
    std::string carry_;  ///< bytes read past the previous response
};

} // namespace serve
} // namespace nvmexp

#endif // NVMEXP_SERVE_HTTP_HH
