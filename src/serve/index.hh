/**
 * @file
 * Read-optimized columnar index over one result store.
 *
 * Built once at load time: every registry metric is evaluated for
 * every row into a per-metric contiguous array (rank = position in the
 * registry's sorted name list), so constraint filtering, Pareto
 * reduction, and top-k ranking run over flat double columns instead of
 * re-evaluating metrics per request. Query results are guaranteed
 * byte-identical to the offline path — queries run over row indices
 * through the same paretoFront/paretoFrontND templates and the same
 * sort rules applyQuery uses, and the surviving rows serialize through
 * store::serializeResults.
 *
 * An index is immutable after construction; the server refreshes a
 * store by loading a brand-new index and swapping a shared_ptr, so
 * in-flight readers drain on the old one.
 */

#ifndef NVMEXP_SERVE_INDEX_HH
#define NVMEXP_SERVE_INDEX_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/result_store.hh"

namespace nvmexp {
namespace serve {

class StoreIndex
{
  public:
    /**
     * Load and index `dir`. The store's sweep fingerprint (the
     * checkpoint.jsonl header) is read before and after results.json,
     * and a mismatch — a sweep rewriting the store mid-load — rejects
     * the load, as does a missing or corrupt store. @return the index,
     * or nullptr with `error` describing the rejection.
     */
    static std::shared_ptr<const StoreIndex>
    load(const std::string &dir, std::string &error);

    /** Index in-memory rows directly (tests, benches). */
    static std::shared_ptr<const StoreIndex>
    fromResults(std::vector<EvalResult> results, std::string fingerprint);

    /**
     * Apply a query over the columns. Same stage order, same keep
     * sets, and same output order as store::applyQuery — the
     * differential tests assert serialized byte-identity. Unknown
     * metric names and k=0 are fatal with the same "store query"
     * context as the offline path (the server converts fatals to
     * structured 400s).
     */
    std::vector<EvalResult> query(const store::StoreQuery &query) const;

    /** The sweep fingerprint of the indexed store ("" for
     *  fromResults). */
    const std::string &fingerprint() const { return fingerprint_; }

    std::size_t rows() const { return results_.size(); }

    /** The indexed metric column for `name` (registry-validated;
     *  fatal with `context` when unknown). */
    const std::vector<double> &column(const std::string &name,
                                      const std::string &context) const;

  private:
    StoreIndex() = default;

    void buildColumns();

    std::vector<EvalResult> results_;   ///< row storage, store order
    std::string fingerprint_;
    std::vector<std::string> metricNames_;     ///< registry order
    std::map<std::string, std::size_t> rankOf_;
    std::vector<std::vector<double>> columns_;  ///< [rank][row]
};

/**
 * Read the sweep fingerprint from a store's checkpoint.jsonl header
 * line. @return false when the store has no readable header.
 */
bool readStoreFingerprint(const std::string &dir, std::string &out);

} // namespace serve
} // namespace nvmexp

#endif // NVMEXP_SERVE_INDEX_HH
