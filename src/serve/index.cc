#include "serve/index.hh"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "metrics/metric.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace serve {

bool
readStoreFingerprint(const std::string &dir, std::string &out)
{
    std::ifstream in(dir + "/checkpoint.jsonl");
    std::string line;
    if (!in || !std::getline(in, line))
        return false;
    JsonValue header;
    if (!JsonValue::tryParse(line, header) || !header.isObject() ||
        !header.has("fingerprint") ||
        !header.at("fingerprint").isString()) {
        return false;
    }
    out = header.at("fingerprint").asString();
    return true;
}

std::shared_ptr<const StoreIndex>
StoreIndex::load(const std::string &dir, std::string &error)
{
    std::string before;
    if (!readStoreFingerprint(dir, before)) {
        error = "store '" + dir +
                "' has no readable checkpoint.jsonl header";
        return nullptr;
    }

    std::vector<EvalResult> results;
    try {
        // loadResults is fatal on a missing/corrupt results.json;
        // convert that into a rejected load so a serving process
        // survives a broken refresh target.
        ScopedFatalThrows guard;
        results = store::loadResults(dir);
    } catch (const FatalError &e) {
        error = e.what();
        return nullptr;
    }

    // A sweep rewriting the store concurrently may have replaced
    // checkpoint.jsonl while results.json was read; only a stable
    // fingerprint proves the rows form one coherent store.
    std::string after;
    if (!readStoreFingerprint(dir, after) || after != before) {
        error = "store '" + dir +
                "' changed while loading (fingerprint moved); "
                "refusing a torn snapshot";
        return nullptr;
    }

    return fromResults(std::move(results), before);
}

std::shared_ptr<const StoreIndex>
StoreIndex::fromResults(std::vector<EvalResult> results,
                        std::string fingerprint)
{
    auto index = std::shared_ptr<StoreIndex>(new StoreIndex);
    index->results_ = std::move(results);
    index->fingerprint_ = std::move(fingerprint);
    index->buildColumns();
    return index;
}

void
StoreIndex::buildColumns()
{
    const auto &registry = metrics::MetricRegistry::instance();
    metricNames_ = registry.names();
    columns_.resize(metricNames_.size());
    for (std::size_t rank = 0; rank < metricNames_.size(); ++rank) {
        const metrics::Metric &m = registry.require(metricNames_[rank]);
        rankOf_[metricNames_[rank]] = rank;
        auto &column = columns_[rank];
        column.reserve(results_.size());
        for (const auto &r : results_)
            column.push_back(m.eval(r));
    }
}

const std::vector<double> &
StoreIndex::column(const std::string &name,
                   const std::string &context) const
{
    metrics::MetricRegistry::instance().require(name, context);
    auto it = rankOf_.find(name);
    if (it == rankOf_.end()) {
        fatal(context, ": metric '", name,
              "' was registered after the index was built; reload the "
              "store to index it");
    }
    return columns_[it->second];
}

std::vector<EvalResult>
StoreIndex::query(const store::StoreQuery &query) const
{
    const auto &registry = metrics::MetricRegistry::instance();

    // Stage 1+2: constraints, then programmatic predicates, in row
    // order — same pass set as ConstraintSet::satisfied over full
    // rows, read from the columns.
    std::vector<const std::vector<double> *> clauseColumns;
    clauseColumns.reserve(query.constraints.size());
    for (const auto &clause : query.constraints.clauses())
        clauseColumns.push_back(&column(clause.metric, "store query"));

    std::vector<std::size_t> kept;
    kept.reserve(results_.size());
    for (std::size_t row = 0; row < results_.size(); ++row) {
        bool pass = true;
        for (std::size_t c = 0; pass && c < clauseColumns.size(); ++c) {
            pass = query.constraints.clauses()[c].holds(
                (*clauseColumns[c])[row]);
        }
        for (std::size_t p = 0; pass && p < query.predicates.size();
             ++p) {
            pass = query.predicates[p](results_[row]);
        }
        if (pass)
            kept.push_back(row);
    }

    // Stage 3: Pareto. Row indices run through the very template
    // applyQuery's metrics::paretoByMetrics dispatches to, with keys
    // reading the columns (direction-folded exactly like
    // Metric::ascending), so the keep set and order are identical.
    if (!query.paretoMetrics.empty()) {
        std::vector<const std::vector<double> *> cols;
        std::vector<bool> minimize;
        for (const auto &name : query.paretoMetrics) {
            cols.push_back(&column(name, "store query"));
            minimize.push_back(registry.require(name).minimize());
        }

        // paretoByMetrics drops rows with any NaN key first.
        std::vector<std::size_t> rankable;
        rankable.reserve(kept.size());
        for (std::size_t row : kept) {
            bool ordered = true;
            for (const auto *col : cols) {
                if (std::isnan((*col)[row])) {
                    ordered = false;
                    break;
                }
            }
            if (ordered)
                rankable.push_back(row);
        }

        std::vector<std::function<double(const std::size_t &)>> keys;
        keys.reserve(cols.size());
        for (std::size_t k = 0; k < cols.size(); ++k) {
            const std::vector<double> *col = cols[k];
            bool asc = minimize[k];
            keys.push_back([col, asc](const std::size_t &row) {
                return asc ? (*col)[row] : -(*col)[row];
            });
        }
        kept = paretoFrontND(rankable, keys);
    }

    // Stage 4: top-k, mirroring metrics::topByMetric (NaN keys
    // dropped, stable sort on the direction-folded key, best first).
    if (!query.topMetric.empty()) {
        const auto &col = column(query.topMetric, "store query");
        bool asc = registry.require(query.topMetric).minimize();
        if (query.topK == 0)
            fatal("store query: k must be a positive count for "
                  "top-k metric '",
                  query.topMetric, "'");

        std::vector<double> keys(kept.size());
        std::vector<std::size_t> order;
        order.reserve(kept.size());
        for (std::size_t i = 0; i < kept.size(); ++i) {
            keys[i] = asc ? col[kept[i]] : -col[kept[i]];
            if (!std::isnan(keys[i]))
                order.push_back(i);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t lhs, std::size_t rhs) {
                             return keys[lhs] < keys[rhs];
                         });
        if (order.size() > query.topK)
            order.resize(query.topK);
        std::vector<std::size_t> top;
        top.reserve(order.size());
        for (std::size_t i : order)
            top.push_back(kept[i]);
        kept = std::move(top);
    }

    std::vector<EvalResult> out;
    out.reserve(kept.size());
    for (std::size_t row : kept)
        out.push_back(results_[row]);
    return out;
}

} // namespace serve
} // namespace nvmexp
