#include "cachesim/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace nvmexp {

Cache::Cache(std::string name, std::size_t capacityBytes, int ways,
             int lineBytes)
    : name_(std::move(name)), ways_(ways), lineBytes_(lineBytes)
{
    if (ways < 1)
        fatal("cache '", name_, "': needs at least 1 way");
    if (lineBytes < 8 || !std::has_single_bit((unsigned)lineBytes))
        fatal("cache '", name_, "': line size must be a power of two");
    std::size_t lines = capacityBytes / (std::size_t)lineBytes;
    if (lines == 0 || lines % (std::size_t)ways != 0)
        fatal("cache '", name_, "': capacity/line/ways mismatch");
    std::size_t numSets = lines / (std::size_t)ways;
    if (!std::has_single_bit(numSets))
        fatal("cache '", name_, "': set count must be a power of two");
    sets_.assign(numSets, std::vector<Line>((std::size_t)ways));
    lineShift_ = std::countr_zero((unsigned)lineBytes);
}

std::uint64_t
Cache::lineAddr(std::uint64_t address) const
{
    return address >> lineShift_ << lineShift_;
}

std::size_t
Cache::setIndex(std::uint64_t lineAddress) const
{
    return (std::size_t)((lineAddress >> lineShift_) &
                         (sets_.size() - 1));
}

Cache::AccessResult
Cache::access(std::uint64_t address, MemOp op)
{
    ++clock_;
    ++stats_.accesses;
    std::uint64_t line = lineAddr(address);
    auto &set = sets_[setIndex(line)];
    std::uint64_t tag = line >> lineShift_;

    AccessResult result;
    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            way.lru = clock_;
            way.dirty = way.dirty || op == MemOp::Write;
            ++stats_.hits;
            result.hit = true;
            return result;
        }
    }

    // Miss: allocate into the LRU way.
    ++stats_.misses;
    Line *victim = &set[0];
    for (auto &way : set) {
        if (!way.valid) {
            victim = &way;
            break;
        }
        if (way.lru < victim->lru)
            victim = &way;
    }
    if (victim->valid) {
        result.evictedLine = victim->tag << lineShift_;
        if (victim->dirty) {
            result.evictedDirty = true;
            ++stats_.writebacks;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->dirty = op == MemOp::Write;
    victim->lru = clock_;
    return result;
}

bool
Cache::invalidate(std::uint64_t lineAddress)
{
    std::uint64_t line = lineAddr(lineAddress);
    auto &set = sets_[setIndex(line)];
    std::uint64_t tag = line >> lineShift_;
    for (auto &way : set) {
        if (way.valid && way.tag == tag) {
            way.valid = false;
            way.dirty = false;
            return true;
        }
    }
    return false;
}

bool
Cache::contains(std::uint64_t lineAddress) const
{
    std::uint64_t line = lineAddr(lineAddress);
    const auto &set = sets_[setIndex(line)];
    std::uint64_t tag = line >> lineShift_;
    for (const auto &way : set)
        if (way.valid && way.tag == tag)
            return true;
    return false;
}

Hierarchy::Hierarchy(const Config &config)
    : config_(config),
      l1_("L1D", config.l1Bytes, config.l1Ways, config.lineBytes),
      l2_("L2", config.l2Bytes, config.l2Ways, config.lineBytes),
      llc_("LLC", config.llcBytes, config.llcWays, config.lineBytes)
{
}

void
Hierarchy::access(std::uint64_t address, MemOp op)
{
    auto l1r = l1_.access(address, op);
    if (l1r.evictedDirty) {
        // L1 dirty victim lands in L2 (hit by inclusion).
        l2_.access(l1r.evictedLine, MemOp::Write);
    }
    if (l1r.hit)
        return;

    stallCycles_ += config_.l2HitCycles;
    auto l2r = l2_.access(address, op == MemOp::Write ? MemOp::Read : op);
    if (l2r.evictedDirty) {
        ++llcWrites_;
        llc_.access(l2r.evictedLine, MemOp::Write);
    }
    if (l2r.hit)
        return;

    stallCycles_ += config_.llcHitCycles;
    ++llcReads_;
    auto llcr = llc_.access(address, MemOp::Read);
    if (llcr.evictedDirty) {
        ++dramWrites_;
    }
    if (!llcr.hit) {
        stallCycles_ += config_.dramCycles;
        ++dramReads_;
        // The fill writes the new line into the LLC data array.
        ++llcWrites_;
    }
    if (llcr.evictedLine != 0 || llcr.evictedDirty) {
        // Inclusive LLC: back-invalidate upper levels on eviction.
        l1_.invalidate(llcr.evictedLine);
        l2_.invalidate(llcr.evictedLine);
    }
}

void
Hierarchy::retireInstructions(std::uint64_t count)
{
    instructions_ += count;
}

LlcTraffic
Hierarchy::summarize(const std::string &benchmark) const
{
    LlcTraffic t;
    t.benchmark = benchmark;
    t.llcReads = llcReads_;
    t.llcWrites = llcWrites_;
    t.dramReads = dramReads_;
    t.dramWrites = dramWrites_;
    t.instructions = instructions_;
    double cycles = (double)instructions_ * config_.cyclesPerInstr +
        stallCycles_;
    t.execTime = cycles / config_.clockHz;
    return t;
}

} // namespace nvmexp
