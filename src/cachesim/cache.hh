/**
 * @file
 * Set-associative cache hierarchy simulator.
 *
 * Plays the role Sniper + SPEC CPU2017 play in the paper (Sec. IV-C):
 * producing LLC read/write access counts and execution times per
 * benchmark. The hierarchy is L1D -> L2 -> LLC, write-back /
 * write-allocate, LRU, with an inclusive LLC.
 */

#ifndef NVMEXP_CACHESIM_CACHE_HH
#define NVMEXP_CACHESIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvmexp {

/** Access type at any level. */
enum class MemOp { Read, Write };

/** Per-cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;  ///< dirty evictions sent downstream

    double missRate() const
    {
        return accesses ? (double)misses / (double)accesses : 0.0;
    }
};

/**
 * One set-associative, write-back, write-allocate cache with LRU
 * replacement.
 */
class Cache
{
  public:
    /**
     * @param name for reporting
     * @param capacityBytes total capacity
     * @param ways associativity
     * @param lineBytes line size (power of two)
     */
    Cache(std::string name, std::size_t capacityBytes, int ways,
          int lineBytes);

    /** Result of a lookup at this level. */
    struct AccessResult
    {
        bool hit = false;
        bool evictedDirty = false;
        std::uint64_t evictedLine = 0;  ///< line address (byte, aligned)
    };

    /**
     * Access a byte address; on a miss the line is allocated (caller
     * handles the downstream fill) and the returned eviction info
     * propagates dirty victims.
     */
    AccessResult access(std::uint64_t address, MemOp op);

    /** Invalidate a line if present (for inclusive-LLC back-inval). */
    bool invalidate(std::uint64_t lineAddress);

    /** Is the line currently resident? */
    bool contains(std::uint64_t lineAddress) const;

    const CacheStats &stats() const { return stats_; }
    const std::string &name() const { return name_; }
    int lineBytes() const { return lineBytes_; }
    std::size_t numSets() const { return sets_.size(); }
    int ways() const { return ways_; }

  private:
    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0;  ///< larger = more recently used
    };

    std::uint64_t lineAddr(std::uint64_t address) const;
    std::size_t setIndex(std::uint64_t lineAddress) const;

    std::string name_;
    int ways_;
    int lineBytes_;
    int lineShift_;
    std::vector<std::vector<Line>> sets_;
    std::uint64_t clock_ = 0;
    CacheStats stats_;
};

/** LLC-level traffic summary produced by the hierarchy. */
struct LlcTraffic
{
    std::string benchmark;
    std::uint64_t llcReads = 0;      ///< lookups from L2 misses
    std::uint64_t llcWrites = 0;     ///< L2 writebacks + LLC fills
    std::uint64_t dramReads = 0;     ///< LLC miss fills
    std::uint64_t dramWrites = 0;    ///< LLC dirty writebacks
    double execTime = 0.0;           ///< modeled seconds of execution
    std::uint64_t instructions = 0;
};

/**
 * Three-level hierarchy: private L1D and L2 feeding a shared LLC.
 * Timing: a simple in-order model where each instruction costs one
 * cycle plus miss penalties (used only to produce execution-time
 * denominators for traffic rates, as in the paper).
 */
class Hierarchy
{
  public:
    struct Config
    {
        std::size_t l1Bytes = 32 * 1024;
        int l1Ways = 8;
        std::size_t l2Bytes = 512 * 1024;
        int l2Ways = 8;
        std::size_t llcBytes = 16 * 1024 * 1024;
        int llcWays = 16;
        int lineBytes = 64;
        double clockHz = 3e9;
        double cyclesPerInstr = 0.75;   ///< base CPI without misses
        double l2HitCycles = 12.0;
        double llcHitCycles = 40.0;
        double dramCycles = 200.0;
    };

    explicit Hierarchy(const Config &config);

    /** Issue one memory access (byte address). */
    void access(std::uint64_t address, MemOp op);

    /** Account non-memory instructions for the timing model. */
    void retireInstructions(std::uint64_t count);

    /** Summarize LLC traffic for rate extraction. */
    LlcTraffic summarize(const std::string &benchmark) const;

    const Cache &l1() const { return l1_; }
    const Cache &l2() const { return l2_; }
    const Cache &llc() const { return llc_; }

  private:
    Config config_;
    Cache l1_;
    Cache l2_;
    Cache llc_;
    std::uint64_t instructions_ = 0;
    std::uint64_t llcReads_ = 0;
    std::uint64_t llcWrites_ = 0;
    std::uint64_t dramReads_ = 0;
    std::uint64_t dramWrites_ = 0;
    double stallCycles_ = 0.0;
};

} // namespace nvmexp

#endif // NVMEXP_CACHESIM_CACHE_HH
