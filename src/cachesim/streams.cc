#include "cachesim/streams.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace nvmexp {

const std::vector<BenchmarkProfile> &
specLikeSuite()
{
    using MB = double;
    constexpr MB Mi = 1024.0 * 1024.0;
    static const std::vector<BenchmarkProfile> suite = {
        // Cache-friendly integer codes: tiny LLC traffic.
        {"perlbench", 0.4 * Mi, 0.35, 0.75, 0.02, 0.90, 96e3, 101},
        {"x264", 1.2 * Mi, 0.30, 0.70, 0.25, 0.72, 256e3, 102},
        {"deepsjeng", 3.0 * Mi, 0.28, 0.72, 0.10, 0.65, 512e3, 103},
        // Mid working sets.
        {"gcc", 12.0 * Mi, 0.32, 0.70, 0.15, 0.50, 512e3, 104},
        {"xz", 32.0 * Mi, 0.30, 0.60, 0.35, 0.40, 1e6, 105},
        {"omnetpp", 40.0 * Mi, 0.34, 0.72, 0.05, 0.30, 1e6, 106},
        // LLC-thrashing pointer chasing.
        {"mcf", 96.0 * Mi, 0.36, 0.74, 0.05, 0.15, 2e6, 107},
        // Streaming floating-point with heavy write-back volume.
        {"lbm", 160.0 * Mi, 0.38, 0.52, 0.90, 0.05, 1e6, 108},
        {"fotonik3d", 128.0 * Mi, 0.34, 0.65, 0.85, 0.08, 1e6, 109},
        {"cactuBSSN", 64.0 * Mi, 0.33, 0.62, 0.60, 0.20, 1e6, 110},
    };
    return suite;
}

const BenchmarkProfile &
profileByName(const std::string &name)
{
    for (const auto &profile : specLikeSuite())
        if (profile.name == name)
            return profile;
    fatal("unknown benchmark profile '", name, "'");
}

namespace {

/** Stateful address generator for one profile. */
class StreamGen
{
  public:
    explicit StreamGen(const BenchmarkProfile &profile)
        : profile_(profile), rng_(profile.seed)
    {
        workingLines_ = (std::uint64_t)(profile.workingSetBytes / 64.0);
        hotLines_ = (std::uint64_t)(profile.hotSetBytes / 64.0);
        workingLines_ = std::max<std::uint64_t>(workingLines_, 16);
        hotLines_ = std::max<std::uint64_t>(
            std::min(hotLines_, workingLines_ / 2), 4);
    }

    /** Next (address, op). */
    std::pair<std::uint64_t, MemOp> next()
    {
        double u = rng_.uniform();
        std::uint64_t line;
        if (u < profile_.hotFraction) {
            line = rng_.range(hotLines_);
        } else if (u < profile_.hotFraction + profile_.streamFraction) {
            line = hotLines_ + (streamCursor_++ %
                                (workingLines_ - hotLines_));
        } else {
            line = hotLines_ +
                rng_.range(workingLines_ - hotLines_);
        }
        MemOp op = rng_.uniform() < profile_.readFraction
            ? MemOp::Read : MemOp::Write;
        return {line * 64ull, op};
    }

  private:
    BenchmarkProfile profile_;
    Rng rng_;
    std::uint64_t workingLines_;
    std::uint64_t hotLines_;
    std::uint64_t streamCursor_ = 0;
};

void
drive(Hierarchy &hierarchy, StreamGen &gen,
      const BenchmarkProfile &profile, std::uint64_t instructions,
      Rng &issueRng)
{
    std::uint64_t remaining = instructions;
    while (remaining > 0) {
        // Retire a small non-memory burst, then one memory access.
        double gap = 1.0 / std::max(profile.memOpsPerInstr, 1e-3);
        auto burst = (std::uint64_t)gap;
        if (issueRng.uniform() < gap - (double)burst)
            ++burst;
        burst = std::min(burst, remaining);
        hierarchy.retireInstructions(burst);
        remaining -= burst;
        auto [addr, op] = gen.next();
        hierarchy.access(addr, op);
    }
}

} // namespace

LlcTraffic
runBenchmark(const BenchmarkProfile &profile, std::uint64_t instructions,
             std::uint64_t warmupInstructions,
             const Hierarchy::Config &config)
{
    if (instructions == 0)
        fatal("runBenchmark: need a positive instruction budget");

    Hierarchy hierarchy(config);
    StreamGen gen(profile);
    Rng issueRng(profile.seed ^ 0xF00Dull);

    if (warmupInstructions > 0)
        drive(hierarchy, gen, profile, warmupInstructions, issueRng);
    LlcTraffic before = hierarchy.summarize(profile.name);

    drive(hierarchy, gen, profile, instructions, issueRng);
    LlcTraffic after = hierarchy.summarize(profile.name);

    LlcTraffic t;
    t.benchmark = profile.name;
    t.llcReads = after.llcReads - before.llcReads;
    t.llcWrites = after.llcWrites - before.llcWrites;
    t.dramReads = after.dramReads - before.dramReads;
    t.dramWrites = after.dramWrites - before.dramWrites;
    t.instructions = after.instructions - before.instructions;
    t.execTime = after.execTime - before.execTime;
    return t;
}

TrafficPattern
llcTrafficPattern(const LlcTraffic &traffic)
{
    if (traffic.execTime <= 0.0)
        fatal("LLC traffic for '", traffic.benchmark,
              "' has no execution time");
    return TrafficPattern::fromCounts(traffic.benchmark,
                                      (double)traffic.llcReads,
                                      (double)traffic.llcWrites,
                                      traffic.execTime);
}

} // namespace nvmexp
