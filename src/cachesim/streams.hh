/**
 * @file
 * Synthetic SPEC-like address-stream generators.
 *
 * Each profile parameterizes a benchmark-shaped memory behaviour
 * (working-set size, read/write mix, streaming vs. random vs. hot-set
 * locality) chosen to reproduce the qualitative LLC-traffic spread of
 * SPECrate CPU2017: cache-resident benchmarks with little LLC traffic
 * through streaming floating-point codes with heavy write-back
 * volume. This substitutes for the Sniper+SPEC traces the paper uses;
 * only LLC reads/writes/time feed the downstream study.
 */

#ifndef NVMEXP_CACHESIM_STREAMS_HH
#define NVMEXP_CACHESIM_STREAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "eval/traffic.hh"

namespace nvmexp {

/** One benchmark-shaped synthetic stream. */
struct BenchmarkProfile
{
    std::string name;
    double workingSetBytes = 8.0 * 1024 * 1024;
    double memOpsPerInstr = 0.3;    ///< fraction of instrs touching mem
    double readFraction = 0.7;      ///< loads / (loads + stores)
    double streamFraction = 0.3;    ///< sequential-scan accesses
    double hotFraction = 0.5;       ///< accesses to a small hot set
    double hotSetBytes = 64.0 * 1024;
    std::uint64_t seed = 42;
};

/** The built-in SPEC CPU2017-like suite (10 profiles). */
const std::vector<BenchmarkProfile> &specLikeSuite();

/** Look up a profile by name; fatal() if unknown. */
const BenchmarkProfile &profileByName(const std::string &name);

/**
 * Drive a Hierarchy with `instructions` synthetic instructions of the
 * profile (after `warmupInstructions` of unrecorded warmup) and return
 * the LLC traffic summary.
 */
LlcTraffic runBenchmark(const BenchmarkProfile &profile,
                        std::uint64_t instructions,
                        std::uint64_t warmupInstructions,
                        const Hierarchy::Config &config);

/** Convert an LLC traffic summary into a TrafficPattern. */
TrafficPattern llcTrafficPattern(const LlcTraffic &traffic);

} // namespace nvmexp

#endif // NVMEXP_CACHESIM_STREAMS_HH
