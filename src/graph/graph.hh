/**
 * @file
 * CSR graph container and R-MAT social-network generator.
 *
 * Stands in for the SNAP graphs the paper uses (ego-Facebook,
 * Wikipedia): R-MAT with the usual skew parameters reproduces the
 * power-law degree distribution that determines graph-kernel memory
 * traffic.
 */

#ifndef NVMEXP_GRAPH_GRAPH_HH
#define NVMEXP_GRAPH_GRAPH_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace nvmexp {

/** Immutable CSR (compressed sparse row) directed graph. */
class Graph
{
  public:
    using Vertex = std::uint32_t;

    /** Build from an edge list; duplicates and self-loops dropped. */
    static Graph fromEdges(Vertex numVertices,
                           std::vector<std::pair<Vertex, Vertex>> edges,
                           bool makeUndirected = true);

    std::size_t numVertices() const { return offsets_.size() - 1; }
    std::size_t numEdges() const { return targets_.size(); }

    /** Out-degree of v. */
    std::size_t degree(Vertex v) const;

    /** Neighbor range of v as [begin, end) indices into targets(). */
    std::pair<std::size_t, std::size_t> neighborRange(Vertex v) const;

    const std::vector<std::size_t> &offsets() const { return offsets_; }
    const std::vector<Vertex> &targets() const { return targets_; }

    /** Bytes of CSR storage (offsets + targets). */
    double storageBytes() const;

  private:
    std::vector<std::size_t> offsets_;
    std::vector<Vertex> targets_;
};

/** Parameters for the R-MAT recursive-matrix generator. */
struct RmatParams
{
    std::size_t numVertices = 1 << 14;
    std::size_t numEdges = 1 << 17;
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;  ///< d = 1 - a - b - c
    std::uint64_t seed = 1;
};

/** Generate an R-MAT graph (undirected, deduplicated). */
Graph generateRmat(const RmatParams &params);

/** Small Facebook-like social graph (~4k vertices, ~81k edges). */
Graph facebookLike(std::uint64_t seed = 7);

/** Larger Wikipedia-like graph (~64k vertices, ~1M edges). */
Graph wikipediaLike(std::uint64_t seed = 13);

} // namespace nvmexp

#endif // NVMEXP_GRAPH_GRAPH_HH
