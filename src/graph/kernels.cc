#include "graph/kernels.hh"

#include <cmath>
#include <deque>

#include "util/logging.hh"

namespace nvmexp {

BfsResult
bfs(const Graph &g, Graph::Vertex source)
{
    if ((std::size_t)source >= g.numVertices())
        fatal("BFS source out of range");

    BfsResult r;
    r.level.assign(g.numVertices(), -1);
    std::deque<Graph::Vertex> frontier;
    r.level[source] = 0;
    frontier.push_back(source);
    r.reached = 1;
    r.stats.writes += 1;  // level[source]

    while (!frontier.empty()) {
        Graph::Vertex v = frontier.front();
        frontier.pop_front();
        r.stats.reads += 1;  // frontier pop
        auto [begin, end] = g.neighborRange(v);
        r.stats.reads += 1;  // offsets[v], offsets[v+1] share a word
        for (std::size_t i = begin; i < end; ++i) {
            Graph::Vertex n = g.targets()[i];
            r.stats.reads += 1;  // edge target
            r.stats.reads += 1;  // level[n] check
            if (r.level[n] < 0) {
                r.level[n] = r.level[v] + 1;
                r.stats.writes += 1;  // level update
                r.stats.writes += 1;  // frontier push
                frontier.push_back(n);
                ++r.reached;
            }
        }
    }
    return r;
}

PageRankResult
pageRank(const Graph &g, int iterations, double damping)
{
    if (iterations < 1)
        fatal("PageRank needs at least one iteration");
    if (damping <= 0.0 || damping >= 1.0)
        fatal("PageRank damping must lie in (0, 1)");

    PageRankResult r;
    std::size_t n = g.numVertices();
    r.rank.assign(n, 1.0 / (double)n);
    std::vector<double> next(n, 0.0);

    for (int iter = 0; iter < iterations; ++iter) {
        // Dangling vertices spread their rank uniformly.
        double dangling = 0.0;
        for (std::size_t v = 0; v < n; ++v)
            if (g.degree((Graph::Vertex)v) == 0)
                dangling += r.rank[v];
        double base = (1.0 - damping) / (double)n +
            damping * dangling / (double)n;
        std::fill(next.begin(), next.end(), base);
        r.stats.writes += (double)n;  // initialize next[]
        for (std::size_t v = 0; v < n; ++v) {
            auto [begin, end] = g.neighborRange((Graph::Vertex)v);
            std::size_t deg = end - begin;
            r.stats.reads += 2;  // rank[v], offsets[v..v+1]
            if (deg == 0)
                continue;
            double share = damping * r.rank[v] / (double)deg;
            for (std::size_t i = begin; i < end; ++i) {
                Graph::Vertex t = g.targets()[i];
                next[t] += share;
                r.stats.reads += 2;   // edge target, next[t]
                r.stats.writes += 1;  // next[t] update
            }
        }
        r.rank.swap(next);
    }
    return r;
}

ComponentsResult
connectedComponents(const Graph &g)
{
    ComponentsResult r;
    std::size_t n = g.numVertices();
    r.label.resize(n);
    for (std::size_t v = 0; v < n; ++v)
        r.label[v] = (Graph::Vertex)v;
    r.stats.writes += (double)n;

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t v = 0; v < n; ++v) {
            auto [begin, end] = g.neighborRange((Graph::Vertex)v);
            r.stats.reads += 2;  // label[v], offsets
            Graph::Vertex best = r.label[v];
            for (std::size_t i = begin; i < end; ++i) {
                Graph::Vertex t = g.targets()[i];
                r.stats.reads += 2;  // edge target, label[t]
                best = std::min(best, r.label[t]);
            }
            if (best != r.label[v]) {
                r.label[v] = best;
                r.stats.writes += 1;
                changed = true;
            }
        }
    }
    std::size_t roots = 0;
    for (std::size_t v = 0; v < n; ++v)
        if (r.label[v] == (Graph::Vertex)v)
            ++roots;
    r.numComponents = roots;
    return r;
}

TrafficPattern
kernelTraffic(const std::string &name, const AccessStats &stats,
              const GraphAccelModel &accel)
{
    if (accel.clockHz <= 0.0 || accel.accessesPerCycle <= 0.0)
        fatal("graph accelerator model: invalid pipeline parameters");
    double execTime = stats.total() /
        (accel.clockHz * accel.accessesPerCycle);
    if (execTime <= 0.0)
        fatal("kernel '", name, "' produced no accesses");
    return TrafficPattern::fromCounts(name, stats.reads, stats.writes,
                                      execTime);
}

} // namespace nvmexp
