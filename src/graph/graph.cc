#include "graph/graph.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"

namespace nvmexp {

Graph
Graph::fromEdges(Vertex numVertices,
                 std::vector<std::pair<Vertex, Vertex>> edges,
                 bool makeUndirected)
{
    if (numVertices == 0)
        fatal("graph needs at least one vertex");
    if (makeUndirected) {
        std::size_t original = edges.size();
        edges.reserve(original * 2);
        for (std::size_t i = 0; i < original; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    // Drop self loops and out-of-range endpoints.
    std::erase_if(edges, [numVertices](const auto &e) {
        return e.first == e.second || e.first >= numVertices ||
            e.second >= numVertices;
    });

    Graph g;
    g.offsets_.assign((std::size_t)numVertices + 1, 0);
    for (const auto &e : edges)
        ++g.offsets_[e.first + 1];
    for (std::size_t v = 1; v <= numVertices; ++v)
        g.offsets_[v] += g.offsets_[v - 1];
    g.targets_.resize(edges.size());
    std::vector<std::size_t> cursor(g.offsets_.begin(),
                                    g.offsets_.end() - 1);
    for (const auto &e : edges)
        g.targets_[cursor[e.first]++] = e.second;
    return g;
}

std::size_t
Graph::degree(Vertex v) const
{
    auto [begin, end] = neighborRange(v);
    return end - begin;
}

std::pair<std::size_t, std::size_t>
Graph::neighborRange(Vertex v) const
{
    if ((std::size_t)v + 1 >= offsets_.size())
        fatal("vertex ", v, " out of range");
    return {offsets_[v], offsets_[v + 1]};
}

double
Graph::storageBytes() const
{
    return (double)offsets_.size() * sizeof(std::size_t) +
        (double)targets_.size() * sizeof(Vertex);
}

Graph
generateRmat(const RmatParams &params)
{
    if (params.a + params.b + params.c >= 1.0)
        fatal("R-MAT probabilities must sum below 1");
    if (params.numVertices < 2)
        fatal("R-MAT needs at least 2 vertices");

    // Round the vertex count up to a power of two for recursion, then
    // fold back into range.
    std::size_t scale = 1;
    while (((std::size_t)1 << scale) < params.numVertices)
        ++scale;

    Rng rng(params.seed);
    std::vector<std::pair<Graph::Vertex, Graph::Vertex>> edges;
    edges.reserve(params.numEdges);
    for (std::size_t e = 0; e < params.numEdges; ++e) {
        std::size_t src = 0, dst = 0;
        for (std::size_t level = 0; level < scale; ++level) {
            double u = rng.uniform();
            src <<= 1;
            dst <<= 1;
            if (u < params.a) {
                // top-left quadrant
            } else if (u < params.a + params.b) {
                dst |= 1;
            } else if (u < params.a + params.b + params.c) {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        src %= params.numVertices;
        dst %= params.numVertices;
        edges.emplace_back((Graph::Vertex)src, (Graph::Vertex)dst);
    }
    return Graph::fromEdges((Graph::Vertex)params.numVertices,
                            std::move(edges));
}

Graph
facebookLike(std::uint64_t seed)
{
    RmatParams p;
    p.numVertices = 4096;
    p.numEdges = 81920;
    p.seed = seed;
    return generateRmat(p);
}

Graph
wikipediaLike(std::uint64_t seed)
{
    RmatParams p;
    p.numVertices = 1 << 16;
    p.numEdges = 1 << 20;
    p.seed = seed;
    return generateRmat(p);
}

} // namespace nvmexp
