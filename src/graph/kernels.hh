/**
 * @file
 * Instrumented graph kernels (BFS, PageRank, connected components).
 *
 * Each kernel counts its accesses to the accelerator scratchpad that
 * holds vertex state and CSR structure — the quantity the paper's
 * graph case study (Sec. IV-B) feeds into NVMExplorer. An accelerator
 * model (Graphicionado-style: one scratchpad access per pipeline
 * cycle) converts counts into sustained TrafficPatterns.
 */

#ifndef NVMEXP_GRAPH_KERNELS_HH
#define NVMEXP_GRAPH_KERNELS_HH

#include <string>
#include <vector>

#include "eval/traffic.hh"
#include "graph/graph.hh"

namespace nvmexp {

/** Scratchpad access counts accumulated by a kernel run. */
struct AccessStats
{
    double reads = 0.0;   ///< scratchpad word reads
    double writes = 0.0;  ///< scratchpad word writes

    double total() const { return reads + writes; }
};

/** BFS result: levels (-1 = unreached) plus access statistics. */
struct BfsResult
{
    std::vector<int> level;
    std::size_t reached = 0;
    AccessStats stats;
};

/** Breadth-first search from `source`. */
BfsResult bfs(const Graph &g, Graph::Vertex source);

/** PageRank result after `iterations` synchronous iterations. */
struct PageRankResult
{
    std::vector<double> rank;
    AccessStats stats;
};

PageRankResult pageRank(const Graph &g, int iterations,
                        double damping = 0.85);

/** Connected components via label propagation. */
struct ComponentsResult
{
    std::vector<Graph::Vertex> label;
    std::size_t numComponents = 0;
    AccessStats stats;
};

ComponentsResult connectedComponents(const Graph &g);

/**
 * Graphicionado-style accelerator model: a pipelined engine issuing
 * one scratchpad access per cycle.
 */
struct GraphAccelModel
{
    double clockHz = 1e9;       ///< pipeline clock
    double accessesPerCycle = 1.0;
    int scratchWordBits = 64;   ///< 8-byte vertex/edge records
};

/**
 * Convert kernel access statistics into the sustained TrafficPattern
 * the scratchpad array sees while the kernel runs.
 */
TrafficPattern kernelTraffic(const std::string &name,
                             const AccessStats &stats,
                             const GraphAccelModel &accel);

} // namespace nvmexp

#endif // NVMEXP_GRAPH_KERNELS_HH
