#include "util/thread_pool.hh"

#include <atomic>
#include <utility>

#include "util/logging.hh"

namespace nvmexp {

namespace {

/** Set by workerLoop on entry: which pool this thread drains for.
 *  Lets submit() distinguish follow-up work spawned by a running task
 *  (safe during shutdown) from an outside thread racing the
 *  destructor, without touching the joinable std::thread objects. */
thread_local const ThreadPool *tlsWorkerPool = nullptr;

} // namespace

int
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : (int)n;
}

int
ThreadPool::resolveJobs(int jobs)
{
    if (jobs <= 0)
        jobs = hardwareThreads();
    return jobs < kMaxThreads ? jobs : kMaxThreads;
}

ThreadPool::ThreadPool(int threads)
{
    int n = resolveJobs(threads);
    workers_.reserve((std::size_t)n);
    try {
        for (int i = 0; i < n; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    } catch (...) {
        // Thread creation can fail (EAGAIN under OS thread limits).
        // Without this join the member destructor would run on
        // joinable threads and std::terminate; instead shut down the
        // workers that did start and surface the original error.
        joinWorkers();
        throw;
    }
}

ThreadPool::~ThreadPool()
{
    joinWorkers();
}

void
ThreadPool::joinWorkers()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

bool
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        // Once shutdown has begun, only tasks submitted from a worker
        // (follow-up work spawned by a task the drain is executing)
        // are guaranteed a live worker to run them: the submitting
        // worker cannot exit before its current task returns. An
        // outside thread racing the destructor gets its task refused
        // instead of silently parked on a queue no worker will ever
        // drain again.
        if (stopping_ && !onWorkerThread()) {
            warn("thread pool: task submitted during shutdown from a "
                 "non-worker thread; refused");
            return false;
        }
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
    return true;
}

bool
ThreadPool::onWorkerThread() const
{
    return tlsWorkerPool == this;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    tlsWorkerPool = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

void
parallelFor(ThreadPool &pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (pool.size() <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    std::size_t drainers = (std::size_t)pool.size() < count
                               ? (std::size_t)pool.size() : count;
    std::atomic<std::size_t> next{0};
    for (std::size_t w = 0; w < drainers; ++w) {
        pool.submit([&] {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1)) {
                body(i);
            }
        });
    }
    pool.wait();
}

void
parallelFor(std::size_t count, int jobs,
            const std::function<void(std::size_t)> &body)
{
    int workers = ThreadPool::resolveJobs(jobs);
    if (workers <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    if ((std::size_t)workers > count)
        workers = (int)count;

    ThreadPool pool(workers);
    parallelFor(pool, count, body);
}

} // namespace nvmexp
