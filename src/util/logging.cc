#include "util/logging.hh"

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace nvmexp {

namespace {

/** Atomic: the CLI sets quiet once up front, but sweep workers and
 *  the serve accept loop read it concurrently ever after. */
std::atomic<bool> quietFlag{false};

/** Thread-local so a lint thread's guard never changes how a
 *  concurrent sweep worker's fatal() behaves. */
thread_local bool fatalThrowsFlag = false;

/**
 * Serialize fatal() exits: sweep workers run on a thread pool, so a
 * fatal can fire on a worker while siblings are still executing.
 * Concurrent std::exit is undefined behavior, and even a single
 * std::exit would run static destructors while other workers still
 * read function-local statics (opt-target tables, ECC tables). The
 * first fatal thread flushes stdio and _Exits — skipping static
 * destruction entirely, which is safe because nothing here owns
 * external state beyond FILE buffers; any other thread that also hits
 * fatal after printing its message parks forever (the process is
 * already going down).
 */
[[noreturn]] void
exitOnce(int code)
{
    static std::once_flag flag;
    bool winner = false;
    std::call_once(flag, [&] { winner = true; });
    if (winner) {
        std::fflush(nullptr);
        std::_Exit(code);
    }
    std::mutex m;
    std::condition_variable cv;
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [] { return false; });
    __builtin_unreachable();
}

} // namespace

ScopedFatalThrows::ScopedFatalThrows() : previous_(fatalThrowsFlag)
{
    fatalThrowsFlag = true;
}

ScopedFatalThrows::~ScopedFatalThrows()
{
    fatalThrowsFlag = previous_;
}

bool
fatalThrows()
{
    return fatalThrowsFlag;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    switch (level) {
      case LogLevel::Inform:
        if (!quietFlag)
            std::fprintf(stderr, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        if (!quietFlag)
            std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        if (fatalThrowsFlag)
            throw FatalError(msg);
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        exitOnce(1);
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        std::abort();
    }
}

} // namespace nvmexp
