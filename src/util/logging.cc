#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace nvmexp {

namespace {
bool quietFlag = false;
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
isQuiet()
{
    return quietFlag;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    switch (level) {
      case LogLevel::Inform:
        if (!quietFlag)
            std::fprintf(stderr, "info: %s\n", msg.c_str());
        break;
      case LogLevel::Warn:
        if (!quietFlag)
            std::fprintf(stderr, "warn: %s\n", msg.c_str());
        break;
      case LogLevel::Fatal:
        std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        std::exit(1);
      case LogLevel::Panic:
        std::fprintf(stderr, "panic: %s\n", msg.c_str());
        std::abort();
    }
}

} // namespace nvmexp
