/**
 * @file
 * Lightweight statistics accumulators used by simulators and benches.
 */

#ifndef NVMEXP_UTIL_STATS_HH
#define NVMEXP_UTIL_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace nvmexp {

/**
 * Streaming accumulator for min/max/mean/variance (Welford's method).
 */
class RunningStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width histogram over [lo, hi); out-of-range samples clamp into
 * the first/last bucket so totals stay consistent.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t buckets() const { return counts_.size(); }
    std::size_t bucketCount(std::size_t i) const { return counts_.at(i); }
    std::size_t total() const { return total_; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /** Approximate quantile (linear within the containing bucket). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/** Geometric mean of a vector; zero/negative entries are fatal. */
double geomean(const std::vector<double> &xs);

/** Pearson correlation of two equally sized series. */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

} // namespace nvmexp

#endif // NVMEXP_UTIL_STATS_HH
