/**
 * @file
 * Terminal scatter/line plots standing in for the paper's Tableau
 * dashboard. Benches print the figure's data series both as a Table and
 * as an AsciiPlot so shapes (crossovers, tiers, trends) are visible in
 * plain text output.
 */

#ifndef NVMEXP_UTIL_ASCII_PLOT_HH
#define NVMEXP_UTIL_ASCII_PLOT_HH

#include <ostream>
#include <string>
#include <vector>

namespace nvmexp {

/** Axis scaling for an AsciiPlot dimension. */
enum class AxisScale { Linear, Log10 };

/**
 * Multi-series 2D scatter plot rendered into a character grid.
 *
 * Each series gets a distinct glyph; collisions print '#'. Axis ranges
 * are auto-fit unless fixed via setXRange/setYRange.
 */
class AsciiPlot
{
  public:
    AsciiPlot(std::string title, std::string xLabel, std::string yLabel,
              std::size_t width = 72, std::size_t height = 24);

    /** Choose linear or log scaling per axis (log ignores x<=0 points). */
    void setXScale(AxisScale scale) { xScale_ = scale; }
    void setYScale(AxisScale scale) { yScale_ = scale; }

    /** Fix an axis range instead of auto-fitting. */
    void setXRange(double lo, double hi);
    void setYRange(double lo, double hi);

    /** Add a named series; glyph defaults to a rotating symbol set. */
    void addSeries(const std::string &name, char glyph = '\0');

    /** Append one point to a series created by addSeries. */
    void addPoint(const std::string &series, double x, double y);

    /** Render grid, axes, and the series legend. */
    void print(std::ostream &os) const;

  private:
    struct Series
    {
        std::string name;
        char glyph;
        std::vector<double> xs;
        std::vector<double> ys;
    };

    double mapX(double x) const;
    double mapY(double y) const;

    std::string title_;
    std::string xLabel_;
    std::string yLabel_;
    std::size_t width_;
    std::size_t height_;
    AxisScale xScale_ = AxisScale::Linear;
    AxisScale yScale_ = AxisScale::Linear;
    bool xFixed_ = false;
    bool yFixed_ = false;
    double xLo_ = 0.0, xHi_ = 1.0, yLo_ = 0.0, yHi_ = 1.0;
    std::vector<Series> series_;
};

} // namespace nvmexp

#endif // NVMEXP_UTIL_ASCII_PLOT_HH
