/**
 * @file
 * Status-message helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- the run cannot continue due to a user error (bad
 *             configuration, invalid arguments); exits with code 1.
 * panic()  -- something happened that should never happen regardless of
 *             user input (an internal bug); aborts.
 * warn()   -- functionality works but deserves user attention.
 * inform() -- normal operating status.
 */

#ifndef NVMEXP_UTIL_LOGGING_HH
#define NVMEXP_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace nvmexp {

/** Severity of a log message. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Emit a message at the given level; Fatal exits(1), Panic aborts.
 * Exposed so tests can exercise the formatting path via Inform/Warn.
 */
void logMessage(LogLevel level, const std::string &msg);

/** Globally silence Inform/Warn output (benches use this). */
void setQuiet(bool quiet);

/** @return true when Inform/Warn output is suppressed. */
bool isQuiet();

/**
 * What fatal() raises while a ScopedFatalThrows guard is active on the
 * calling thread. Carries the formatted message; nothing is printed.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * RAII guard: while alive, fatal() on this thread throws FatalError
 * instead of printing and exiting. Batch validators (nvmexplorer_lint)
 * use this to turn per-file fatals into collected diagnostics; the
 * thread-local scope keeps sweep workers' fail-fast behavior intact.
 */
class ScopedFatalThrows
{
  public:
    ScopedFatalThrows();
    ~ScopedFatalThrows();

    ScopedFatalThrows(const ScopedFatalThrows &) = delete;
    ScopedFatalThrows &operator=(const ScopedFatalThrows &) = delete;

  private:
    bool previous_;
};

/** @return true when fatal() throws on this thread (guard active). */
bool fatalThrows();

namespace detail {

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Args>
void
formatInto(std::ostringstream &os, const T &first, const Args &...rest)
{
    os << first;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Print an informational message. */
template <typename... Args>
void
inform(const Args &...args)
{
    logMessage(LogLevel::Inform, detail::formatAll(args...));
}

/** Print a warning. */
template <typename... Args>
void
warn(const Args &...args)
{
    logMessage(LogLevel::Warn, detail::formatAll(args...));
}

/** User error: print and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    logMessage(LogLevel::Fatal, detail::formatAll(args...));
    __builtin_unreachable();
}

/** Internal bug: print and abort(). */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    logMessage(LogLevel::Panic, detail::formatAll(args...));
    __builtin_unreachable();
}

} // namespace nvmexp

#endif // NVMEXP_UTIL_LOGGING_HH
