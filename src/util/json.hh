/**
 * @file
 * Minimal JSON parser for the configuration front-end.
 *
 * Supports the full JSON value grammar (objects, arrays, strings with
 * the common escapes, numbers, booleans, null) plus `//` line
 * comments, which configuration files are allowed to use. Errors are
 * reported with line/column context via fatal().
 */

#ifndef NVMEXP_UTIL_JSON_HH
#define NVMEXP_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nvmexp {

/** A parsed JSON value (immutable after parse). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object access. */
    bool has(const std::string &key) const;
    /** Required member; fatal() when missing. */
    const JsonValue &at(const std::string &key) const;
    /** Optional member with defaults. */
    double numberOr(const std::string &key, double dflt) const;
    bool boolOr(const std::string &key, bool dflt) const;
    std::string stringOr(const std::string &key,
                         const std::string &dflt) const;
    const std::vector<std::string> &memberNames() const;

    /** Parse a JSON document; fatal() with position on bad input. */
    static JsonValue parse(const std::string &text);

    /** Parse the contents of a file. */
    static JsonValue parseFile(const std::string &path);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
    std::vector<std::string> memberOrder_;
};

} // namespace nvmexp

#endif // NVMEXP_UTIL_JSON_HH
