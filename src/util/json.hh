/**
 * @file
 * Minimal JSON parser and writer for the configuration front-end and
 * the result store.
 *
 * Supports the full JSON value grammar (objects, arrays, strings with
 * the common escapes, numbers, booleans, null) plus `//` line
 * comments, which configuration files are allowed to use, and the
 * JSON5-style literals `Infinity`, `-Infinity`, and `NaN` so
 * serialized metrics (e.g. unlimited lifetimes) survive a round trip.
 * Errors are reported with line/column context via fatal().
 *
 * Writing: values built with the make*()/set()/append() builders dump
 * with exact double round-trip (shortest decimal form that parses
 * back bit-identically), so serialize -> parse -> serialize is
 * byte-stable — the property the result store's resume and golden-file
 * tiers rely on.
 */

#ifndef NVMEXP_UTIL_JSON_HH
#define NVMEXP_UTIL_JSON_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace nvmexp {

/** A JSON value: parsed from text or built with the make* helpers. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    /** Builders for writing (a default-constructed value is null). */
    static JsonValue makeBool(bool value);
    static JsonValue makeNumber(double value);
    static JsonValue makeString(std::string value);
    static JsonValue makeArray();
    static JsonValue makeObject();

    /** Append to an array value; fatal() on non-arrays. */
    JsonValue &append(JsonValue element);

    /** Insert/overwrite an object member; fatal() on non-objects.
     *  First-insertion order is preserved when dumping. */
    JsonValue &set(const std::string &key, JsonValue member);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object access. */
    bool has(const std::string &key) const;
    /** Required member; fatal() when missing. */
    const JsonValue &at(const std::string &key) const;
    /** Optional member with defaults. */
    double numberOr(const std::string &key, double dflt) const;
    bool boolOr(const std::string &key, bool dflt) const;
    std::string stringOr(const std::string &key,
                         const std::string &dflt) const;
    const std::vector<std::string> &memberNames() const;

    /** Parse a JSON document; fatal() with position on bad input. */
    static JsonValue parse(const std::string &text);

    /** Non-fatal parse for artifacts that may be corrupt (cache
     *  entries, checkpoint journals): @return true and fill `out` on
     *  success, false on any syntax error. */
    static bool tryParse(const std::string &text, JsonValue &out);

    /** Parse the contents of a file. */
    static JsonValue parseFile(const std::string &path);

    /**
     * Serialize. indent >= 0 pretty-prints with that many spaces per
     * level; indent < 0 emits the compact single-line form (used for
     * checkpoint journal lines).
     */
    std::string dump(int indent = 2) const;

    /** Write dump() + trailing newline to a file; fatal() on failure. */
    void writeFile(const std::string &path, int indent = 2) const;

    /**
     * Format a double as the shortest decimal string that strtod()
     * parses back to the exact same bits ("inf"-style values dump as
     * Infinity/NaN literals). Shared by dump() and the store's
     * content-hash keys.
     */
    static std::string formatNumber(double value);

    /**
     * Parse `text` as one complete number under the same rules the
     * JSON scanner applies: optional leading sign, decimal/scientific
     * digits via from_chars, and the Infinity/-Infinity/NaN literals
     * formatNumber() emits. Locale-independent by construction —
     * "0.5" parses as 0.5 under every LC_NUMERIC, and "0,5" is never
     * accepted (unlike strtod, which honors the locale's decimal
     * point). The strtod spellings outside the JSON grammar ("inf",
     * "nan", hex floats) are rejected too.
     *
     * @return true and fill `out` iff the entire string is a number.
     */
    static bool parseNumber(const std::string &text, double &out);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
    std::vector<std::string> memberOrder_;
};

} // namespace nvmexp

#endif // NVMEXP_UTIL_JSON_HH
