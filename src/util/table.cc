#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.hh"

namespace nvmexp {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table '", title_, "' needs at least one column");
}

Table &
Table::row()
{
    if (!rows_.empty() && rows_.back().size() != headers_.size()) {
        fatal("Table '", title_, "': previous row has ",
              rows_.back().size(), " cells, expected ", headers_.size());
    }
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &value)
{
    if (rows_.empty())
        fatal("Table '", title_, "': add() before row()");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::add(const char *value)
{
    return add(std::string(value));
}

Table &
Table::add(double value)
{
    return add(formatNumber(value));
}

Table &
Table::add(long long value)
{
    return add(std::to_string(value));
}

Table &
Table::addEng(double value, const std::string &unit)
{
    return add(formatEng(value) + unit);
}

const std::string &
Table::cell(std::size_t r, std::size_t c) const
{
    return rows_.at(r).at(c);
}

std::string
Table::formatNumber(double value)
{
    char buf[64];
    if (value == 0.0) {
        return "0";
    } else if (std::isnan(value)) {
        return "nan";
    } else if (std::isinf(value)) {
        return value > 0 ? "inf" : "-inf";
    }
    double mag = std::fabs(value);
    if (mag >= 1e5 || mag < 1e-3)
        std::snprintf(buf, sizeof(buf), "%.3e", value);
    else
        std::snprintf(buf, sizeof(buf), "%.5g", value);
    return buf;
}

std::string
Table::formatEng(double value)
{
    static const struct { double scale; const char *suffix; } bands[] = {
        { 1e12, "T" }, { 1e9, "G" }, { 1e6, "M" }, { 1e3, "k" },
        { 1.0, "" }, { 1e-3, "m" }, { 1e-6, "u" }, { 1e-9, "n" },
        { 1e-12, "p" }, { 1e-15, "f" }, { 1e-18, "a" },
    };
    if (value == 0.0)
        return "0";
    double mag = std::fabs(value);
    for (const auto &band : bands) {
        if (mag >= band.scale) {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.3g%s", value / band.scale,
                          band.suffix);
            return buf;
        }
    }
    return formatNumber(value);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c];
            if (c + 1 < cells.size())
                os << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emitRow(headers_);
    std::size_t lineLen = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        lineLen += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(lineLen, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(row);
}

std::string
Table::csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << csvEscape(headers_[c]);
        os << (c + 1 < headers_.size() ? "," : "\n");
    }
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << csvEscape(row[c]);
            os << (c + 1 < row.size() ? "," : "\n");
        }
    }
}

void
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    printCsv(out);
}

} // namespace nvmexp
