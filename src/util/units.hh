/**
 * @file
 * Unit constants and helpers for physical quantities.
 *
 * All NVMExplorer-CPP internal quantities are kept in SI base units:
 * seconds, joules, watts, meters, bytes (capacity), bits-per-second
 * only where explicitly named. The constants below make configuration
 * code read like the paper ("write pulse of 100 ns" -> 100 * ns).
 */

#ifndef NVMEXP_UTIL_UNITS_HH
#define NVMEXP_UTIL_UNITS_HH

namespace nvmexp {
namespace units {

// Time [s]
constexpr double sec = 1.0;
constexpr double ms = 1e-3;
constexpr double us = 1e-6;
constexpr double ns = 1e-9;
constexpr double ps = 1e-12;

// Energy [J]
constexpr double joule = 1.0;
constexpr double mJ = 1e-3;
constexpr double uJ = 1e-6;
constexpr double nJ = 1e-9;
constexpr double pJ = 1e-12;
constexpr double fJ = 1e-15;

// Power [W]
constexpr double watt = 1.0;
constexpr double mW = 1e-3;
constexpr double uW = 1e-6;
constexpr double nW = 1e-9;

// Length [m]
constexpr double meter = 1.0;
constexpr double mm = 1e-3;
constexpr double um = 1e-6;
constexpr double nm = 1e-9;

// Area [m^2]
constexpr double mm2 = 1e-6;
constexpr double um2 = 1e-12;

// Capacity [bytes] / [bits]
constexpr double byte = 1.0;
constexpr double KiB = 1024.0;
constexpr double MiB = 1024.0 * 1024.0;
constexpr double GiB = 1024.0 * 1024.0 * 1024.0;
constexpr double MB = MiB;  // the paper uses MB loosely for MiB

// Bandwidth [bytes/s]
constexpr double Bps = 1.0;
constexpr double KBps = 1e3;
constexpr double MBps = 1e6;
constexpr double GBps = 1e9;

// Electrical
constexpr double volt = 1.0;
constexpr double amp = 1.0;
constexpr double uA = 1e-6;
constexpr double farad = 1.0;
constexpr double fF = 1e-15;
constexpr double aF = 1e-18;
constexpr double ohm = 1.0;
constexpr double kohm = 1e3;

} // namespace units
} // namespace nvmexp

#endif // NVMEXP_UTIL_UNITS_HH
