#include "util/ascii_plot.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/table.hh"

namespace nvmexp {

namespace {
const char kGlyphs[] = "*o+x^sdv%@&";
}

AsciiPlot::AsciiPlot(std::string title, std::string xLabel,
                     std::string yLabel, std::size_t width,
                     std::size_t height)
    : title_(std::move(title)), xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel)), width_(std::max<std::size_t>(width, 16)),
      height_(std::max<std::size_t>(height, 6))
{
}

void
AsciiPlot::setXRange(double lo, double hi)
{
    if (!(hi > lo))
        fatal("AsciiPlot x range must have hi > lo");
    xFixed_ = true;
    xLo_ = lo;
    xHi_ = hi;
}

void
AsciiPlot::setYRange(double lo, double hi)
{
    if (!(hi > lo))
        fatal("AsciiPlot y range must have hi > lo");
    yFixed_ = true;
    yLo_ = lo;
    yHi_ = hi;
}

void
AsciiPlot::addSeries(const std::string &name, char glyph)
{
    if (glyph == '\0')
        glyph = kGlyphs[series_.size() % (sizeof(kGlyphs) - 1)];
    series_.push_back({name, glyph, {}, {}});
}

void
AsciiPlot::addPoint(const std::string &series, double x, double y)
{
    for (auto &s : series_) {
        if (s.name == series) {
            s.xs.push_back(x);
            s.ys.push_back(y);
            return;
        }
    }
    fatal("AsciiPlot: unknown series '", series, "'");
}

double
AsciiPlot::mapX(double x) const
{
    return xScale_ == AxisScale::Log10 ? std::log10(x) : x;
}

double
AsciiPlot::mapY(double y) const
{
    return yScale_ == AxisScale::Log10 ? std::log10(y) : y;
}

void
AsciiPlot::print(std::ostream &os) const
{
    // Establish plotting ranges in mapped space.
    double xlo = xFixed_ ? mapX(xLo_) : 0.0;
    double xhi = xFixed_ ? mapX(xHi_) : 1.0;
    double ylo = yFixed_ ? mapY(yLo_) : 0.0;
    double yhi = yFixed_ ? mapY(yHi_) : 1.0;
    bool sawX = xFixed_, sawY = yFixed_;
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            if (xScale_ == AxisScale::Log10 && s.xs[i] <= 0)
                continue;
            if (yScale_ == AxisScale::Log10 && s.ys[i] <= 0)
                continue;
            double mx = mapX(s.xs[i]);
            double my = mapY(s.ys[i]);
            if (!xFixed_) {
                if (!sawX) {
                    xlo = xhi = mx;
                    sawX = true;
                } else {
                    xlo = std::min(xlo, mx);
                    xhi = std::max(xhi, mx);
                }
            }
            if (!yFixed_) {
                if (!sawY) {
                    ylo = yhi = my;
                    sawY = true;
                } else {
                    ylo = std::min(ylo, my);
                    yhi = std::max(yhi, my);
                }
            }
        }
    }
    if (xhi <= xlo)
        xhi = xlo + 1.0;
    if (yhi <= ylo)
        yhi = ylo + 1.0;

    std::vector<std::string> grid(height_, std::string(width_, ' '));
    for (const auto &s : series_) {
        for (std::size_t i = 0; i < s.xs.size(); ++i) {
            if (xScale_ == AxisScale::Log10 && s.xs[i] <= 0)
                continue;
            if (yScale_ == AxisScale::Log10 && s.ys[i] <= 0)
                continue;
            double fx = (mapX(s.xs[i]) - xlo) / (xhi - xlo);
            double fy = (mapY(s.ys[i]) - ylo) / (yhi - ylo);
            auto cx = (std::size_t)std::clamp(
                fx * (double)(width_ - 1), 0.0, (double)(width_ - 1));
            auto cy = (std::size_t)std::clamp(
                fy * (double)(height_ - 1), 0.0, (double)(height_ - 1));
            // Row 0 is the top of the grid.
            char &cellRef = grid[height_ - 1 - cy][cx];
            cellRef = (cellRef == ' ' || cellRef == s.glyph) ? s.glyph : '#';
        }
    }

    os << "-- " << title_ << " --\n";
    auto fmtBound = [&](double v, AxisScale scale) {
        double raw = scale == AxisScale::Log10 ? std::pow(10.0, v) : v;
        return Table::formatNumber(raw);
    };
    for (std::size_t r = 0; r < height_; ++r) {
        if (r == 0) {
            os << fmtBound(yhi, yScale_);
        } else if (r == height_ - 1) {
            os << fmtBound(ylo, yScale_);
        }
        os << '\t' << '|' << grid[r] << '\n';
    }
    os << '\t' << '+' << std::string(width_, '-') << '\n';
    os << '\t' << fmtBound(xlo, xScale_)
       << std::string(width_ > 24 ? width_ - 24 : 1, ' ')
       << fmtBound(xhi, xScale_) << '\n';
    os << '\t' << "x: " << xLabel_
       << (xScale_ == AxisScale::Log10 ? " [log]" : "") << "   y: "
       << yLabel_ << (yScale_ == AxisScale::Log10 ? " [log]" : "") << '\n';
    os << '\t' << "legend:";
    for (const auto &s : series_)
        os << "  " << s.glyph << '=' << s.name;
    os << '\n';
}

} // namespace nvmexp
