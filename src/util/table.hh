/**
 * @file
 * Tabular result container with aligned-text and CSV emitters.
 *
 * Every bench binary regenerating a paper table/figure collects its rows
 * into a Table and prints it; the same object can be dumped as CSV for
 * external plotting (the paper's Tableau dashboard role).
 */

#ifndef NVMEXP_UTIL_TABLE_HH
#define NVMEXP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace nvmexp {

/** A simple column-schema table of string/numeric cells. */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent add() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(const std::string &value);
    Table &add(const char *value);

    /** Append a numeric cell (formatted to 4 significant digits). */
    Table &add(double value);

    /** Append an integer cell. */
    Table &add(long long value);
    Table &add(int value) { return add((long long)value); }
    Table &add(std::size_t value) { return add((long long)value); }

    /** Append a numeric cell in engineering notation with a unit. */
    Table &addEng(double value, const std::string &unit);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numCols() const { return headers_.size(); }
    const std::string &title() const { return title_; }
    const std::vector<std::string> &headers() const { return headers_; }

    /** Cell accessor (row-major). */
    const std::string &cell(std::size_t r, std::size_t c) const;

    /** Render with aligned columns and a title banner. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

    /** Write CSV to a file path; fatal() on failure. */
    void writeCsv(const std::string &path) const;

    /** Format a double with 4 significant digits (shared helper). */
    static std::string formatNumber(double value);

    /** RFC-4180 CSV escaping: quotes (doubling embedded quotes) any
     *  cell containing a comma, quote, or line break. Shared by every
     *  CSV emitter (tables, the result store). */
    static std::string csvEscape(const std::string &cell);

    /** Engineering-notation formatter, e.g. 1.32e-10 s -> "132p". */
    static std::string formatEng(double value);

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace nvmexp

#endif // NVMEXP_UTIL_TABLE_HH
