#include "util/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>

#include "util/logging.hh"

namespace nvmexp {

JsonValue
JsonValue::makeBool(bool value)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = value;
    return v;
}

JsonValue
JsonValue::makeNumber(double value)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = value;
    return v;
}

JsonValue
JsonValue::makeString(std::string value)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(value);
    return v;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

JsonValue &
JsonValue::append(JsonValue element)
{
    if (!isArray())
        fatal("JSON: append on non-array");
    array_.push_back(std::move(element));
    return *this;
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue member)
{
    if (!isObject())
        fatal("JSON: set on non-object");
    auto it = object_.find(key);
    if (it == object_.end()) {
        memberOrder_.push_back(key);
        object_.emplace(key, std::move(member));
    } else {
        it->second = std::move(member);
    }
    return *this;
}

bool
JsonValue::asBool() const
{
    if (!isBool())
        fatal("JSON: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        fatal("JSON: expected a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        fatal("JSON: expected a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (!isArray())
        fatal("JSON: expected an array");
    return array_;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && object_.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (!isObject())
        fatal("JSON: expected an object holding '", key, "'");
    auto it = object_.find(key);
    if (it == object_.end())
        fatal("JSON: missing required member '", key, "'");
    return it->second;
}

double
JsonValue::numberOr(const std::string &key, double dflt) const
{
    return has(key) ? at(key).asNumber() : dflt;
}

bool
JsonValue::boolOr(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
JsonValue::stringOr(const std::string &key, const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

const std::vector<std::string> &
JsonValue::memberNames() const
{
    if (!isObject())
        fatal("JSON: memberNames on non-object");
    return memberOrder_;
}

std::string
JsonValue::formatNumber(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0.0 ? "Infinity" : "-Infinity";
    // std::to_chars emits the shortest decimal form that parses back
    // to the exact same bits, independent of the C locale (snprintf
    // would print a ',' decimal point under e.g. de_DE and corrupt
    // every store artifact).
    char buffer[40];
    auto r = std::to_chars(buffer, buffer + sizeof(buffer), value);
    return std::string(buffer, r.ptr);
}

bool
JsonValue::parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    bool negative = text[0] == '-';
    std::size_t first = (negative || text[0] == '+') ? 1 : 0;
    if (text.compare(first, std::string::npos, "Infinity") == 0) {
        out = negative ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
        return true;
    }
    if (!negative && text.compare(first, std::string::npos, "NaN") == 0) {
        out = std::numeric_limits<double>::quiet_NaN();
        return true;
    }
    // Mirror the scanner's character set before handing the text to
    // from_chars: at least one digit, nothing but digit/./e/E/sign
    // characters. This rejects the spellings from_chars itself would
    // accept beyond the JSON grammar ("inf", "nan", "0x1p4").
    bool sawDigit = false;
    for (std::size_t i = first; i < text.size(); ++i) {
        char c = text[i];
        if (std::isdigit((unsigned char)c)) {
            sawDigit = true;
        } else if (c != '.' && c != 'e' && c != 'E' && c != '+' &&
                   c != '-') {
            return false;
        }
    }
    if (!sawDigit)
        return false;
    // from_chars rejects a leading '+' (allowed here, as in the
    // scanner) but consumes '-' itself.
    std::size_t begin = text[0] == '+' ? 1 : 0;
    double value = 0.0;
    auto r = std::from_chars(text.data() + begin,
                             text.data() + text.size(), value);
    if (r.ec != std::errc() || r.ptr != text.data() + text.size())
        return false;
    out = value;
    return true;
}

namespace {

void
dumpString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':  os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          case '\b': os << "\\b"; break;
          case '\f': os << "\\f"; break;
          default:   os << c; break;
        }
    }
    os << '"';
}

void
dumpValue(std::ostringstream &os, const JsonValue &v, int indent,
          int depth)
{
    auto newline = [&](int d) {
        if (indent >= 0) {
            os << '\n';
            for (int i = 0; i < indent * d; ++i)
                os << ' ';
        }
    };
    switch (v.kind()) {
      case JsonValue::Kind::Null:
        os << "null";
        break;
      case JsonValue::Kind::Bool:
        os << (v.asBool() ? "true" : "false");
        break;
      case JsonValue::Kind::Number:
        os << JsonValue::formatNumber(v.asNumber());
        break;
      case JsonValue::Kind::String:
        dumpString(os, v.asString());
        break;
      case JsonValue::Kind::Array: {
        const auto &elements = v.asArray();
        if (elements.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < elements.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            dumpValue(os, elements[i], indent, depth + 1);
        }
        newline(depth);
        os << ']';
        break;
      }
      case JsonValue::Kind::Object: {
        const auto &names = v.memberNames();
        if (names.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (i)
                os << ',';
            newline(depth + 1);
            dumpString(os, names[i]);
            os << (indent >= 0 ? ": " : ":");
            dumpValue(os, v.at(names[i]), indent, depth + 1);
        }
        newline(depth);
        os << '}';
        break;
      }
    }
}

} // namespace

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream os;
    dumpValue(os, *this, indent, 0);
    return os.str();
}

void
JsonValue::writeFile(const std::string &path, int indent) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write JSON file '", path, "'");
    out << dump(indent) << '\n';
    if (!out.flush())
        fatal("failed writing JSON file '", path, "'");
}

namespace {

/** Thrown instead of fatal() when parsing leniently (tryParse). */
struct JsonParseAbort
{
};

} // namespace

/** Recursive-descent parser with line/column tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text, bool lenient = false)
        : text_(text), lenient_(lenient)
    {
    }

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing content after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        if (lenient_)
            throw JsonParseAbort{};
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("JSON parse error at line ", line, " column ", col, ": ",
              what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          case 'I':
          case 'N': return parseNonFinite(false);
          default:  return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        if (consumeIf('}'))
            return v;
        while (true) {
            if (peek() != '"')
                fail("expected a member name");
            JsonValue key = parseString();
            expect(':');
            JsonValue member = parseValue();
            if (v.object_.count(key.string_))
                fail("duplicate member '" + key.string_ + "'");
            v.memberOrder_.push_back(key.string_);
            v.object_.emplace(key.string_, std::move(member));
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        if (consumeIf(']'))
            return v;
        while (true) {
            v.array_.push_back(parseValue());
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':  v.string_ += '"'; break;
                  case '\\': v.string_ += '\\'; break;
                  case '/':  v.string_ += '/'; break;
                  case 'n':  v.string_ += '\n'; break;
                  case 't':  v.string_ += '\t'; break;
                  case 'r':  v.string_ += '\r'; break;
                  case 'b':  v.string_ += '\b'; break;
                  case 'f':  v.string_ += '\f'; break;
                  default:   fail("unsupported escape sequence");
                }
            } else {
                v.string_ += c;
            }
        }
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.bool_ = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.bool_ = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonValue();
    }

    /** JSON5-style non-finite literals (written by the serializer). */
    JsonValue
    parseNonFinite(bool negative)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        if (text_.compare(pos_, 8, "Infinity") == 0) {
            pos_ += 8;
            v.number_ = negative
                ? -std::numeric_limits<double>::infinity()
                : std::numeric_limits<double>::infinity();
        } else if (!negative && text_.compare(pos_, 3, "NaN") == 0) {
            pos_ += 3;
            v.number_ = std::numeric_limits<double>::quiet_NaN();
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
            if (pos_ < text_.size() && text_[pos_] == 'I')
                return parseNonFinite(text_[start] == '-');
        }
        bool sawDigit = false;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            sawDigit = sawDigit ||
                std::isdigit((unsigned char)text_[pos_]);
            ++pos_;
        }
        if (!sawDigit) {
            pos_ = start;
            fail("expected a value");
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        // Locale-independent counterpart of formatNumber (strtod
        // would expect a ',' decimal point under some locales).
        // from_chars rejects a leading '+', which the scanner allows.
        std::size_t first = start;
        if (text_[first] == '+')
            ++first;
        auto r = std::from_chars(text_.data() + first,
                                 text_.data() + pos_, v.number_);
        if (r.ec != std::errc()) {
            pos_ = start;
            fail("bad number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool lenient_ = false;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    JsonParser parser(text);
    return parser.parseDocument();
}

bool
JsonValue::tryParse(const std::string &text, JsonValue &out)
{
    JsonParser parser(text, /*lenient=*/true);
    try {
        out = parser.parseDocument();
        return true;
    } catch (const JsonParseAbort &) {
        return false;
    }
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace nvmexp
