#include "util/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace nvmexp {

bool
JsonValue::asBool() const
{
    if (!isBool())
        fatal("JSON: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (!isNumber())
        fatal("JSON: expected a number");
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (!isString())
        fatal("JSON: expected a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (!isArray())
        fatal("JSON: expected an array");
    return array_;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && object_.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (!isObject())
        fatal("JSON: expected an object holding '", key, "'");
    auto it = object_.find(key);
    if (it == object_.end())
        fatal("JSON: missing required member '", key, "'");
    return it->second;
}

double
JsonValue::numberOr(const std::string &key, double dflt) const
{
    return has(key) ? at(key).asNumber() : dflt;
}

bool
JsonValue::boolOr(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
JsonValue::stringOr(const std::string &key, const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

const std::vector<std::string> &
JsonValue::memberNames() const
{
    if (!isObject())
        fatal("JSON: memberNames on non-object");
    return memberOrder_;
}

/** Recursive-descent parser with line/column tracking. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ < text_.size())
            fail("trailing content after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        std::size_t line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("JSON parse error at line ", line, " column ", col, ": ",
              what);
    }

    void
    skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    char
    peek()
    {
        skipWhitespace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        char c = peek();
        switch (c) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': return parseString();
          case 't':
          case 'f': return parseBool();
          case 'n': return parseNull();
          default:  return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        if (consumeIf('}'))
            return v;
        while (true) {
            if (peek() != '"')
                fail("expected a member name");
            JsonValue key = parseString();
            expect(':');
            JsonValue member = parseValue();
            if (v.object_.count(key.string_))
                fail("duplicate member '" + key.string_ + "'");
            v.memberOrder_.push_back(key.string_);
            v.object_.emplace(key.string_, std::move(member));
            if (consumeIf('}'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        if (consumeIf(']'))
            return v;
        while (true) {
            v.array_.push_back(parseValue());
            if (consumeIf(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    fail("dangling escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':  v.string_ += '"'; break;
                  case '\\': v.string_ += '\\'; break;
                  case '/':  v.string_ += '/'; break;
                  case 'n':  v.string_ += '\n'; break;
                  case 't':  v.string_ += '\t'; break;
                  case 'r':  v.string_ += '\r'; break;
                  case 'b':  v.string_ += '\b'; break;
                  case 'f':  v.string_ += '\f'; break;
                  default:   fail("unsupported escape sequence");
                }
            } else {
                v.string_ += c;
            }
        }
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            v.bool_ = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            v.bool_ = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (text_.compare(pos_, 4, "null") != 0)
            fail("bad literal");
        pos_ += 4;
        return JsonValue();
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool sawDigit = false;
        while (pos_ < text_.size() &&
               (std::isdigit((unsigned char)text_[pos_]) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            sawDigit = sawDigit ||
                std::isdigit((unsigned char)text_[pos_]);
            ++pos_;
        }
        if (!sawDigit) {
            pos_ = start;
            fail("expected a value");
        }
        JsonValue v;
        v.kind_ = JsonValue::Kind::Number;
        v.number_ = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    JsonParser parser(text);
    return parser.parseDocument();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse(buffer.str());
}

} // namespace nvmexp
