/**
 * @file
 * Deterministic fast PRNG (xoshiro256**) used across the framework.
 *
 * A project-local generator keeps fault-injection trials, synthetic
 * address streams, and graph generation reproducible across platforms
 * and standard-library versions (std::mt19937 streams are portable but
 * distributions are not).
 */

#ifndef NVMEXP_UTIL_RANDOM_HH
#define NVMEXP_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace nvmexp {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator, but prefer the member helpers
 * (uniform / range / gaussian / bernoulli) which are platform-stable.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 so that small consecutive seeds diverge. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit word. */
    std::uint64_t
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        // The shifted value fits in 53 bits, so the cast is exact.
        return (double)(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t
    range(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is fine here;
        // bias is < 2^-64 * bound which is negligible for our uses.
        __uint128_t m = (__uint128_t)operator()() * (__uint128_t)bound;
        return (std::uint64_t)(m >> 64);
    }

    /** Standard normal deviate via Box-Muller (one value per call). */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        double u2 = uniform();
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 6.283185307179586 * u2;
        spare_ = r * std::sin(theta);
        haveSpare_ = true;
        return r * std::cos(theta);
    }

    /** Bernoulli trial with probability p. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace nvmexp

#endif // NVMEXP_UTIL_RANDOM_HH
