#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / (double)n_;
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::size_t total = n_ + other.n_;
    m2_ += other.m2_ +
        delta * delta * (double)n_ * (double)other.n_ / (double)total;
    mean_ += delta * (double)other.n_ / (double)total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ = total;
}

double
RunningStats::variance() const
{
    return n_ ? m2_ / (double)n_ : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    if (!(hi > lo) || buckets == 0)
        fatal("Histogram requires hi > lo and at least one bucket");
}

void
Histogram::add(double x)
{
    double f = (x - lo_) / (hi_ - lo_);
    auto idx = (std::ptrdiff_t)(f * (double)counts_.size());
    idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                     (std::ptrdiff_t)counts_.size() - 1);
    ++counts_[(std::size_t)idx];
    ++total_;
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * (double)i / (double)counts_.size();
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * (double)(i + 1) / (double)counts_.size();
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    q = std::clamp(q, 0.0, 1.0);
    double target = q * (double)total_;
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        double next = seen + (double)counts_[i];
        if (next >= target && counts_[i] > 0) {
            double within = (target - seen) / (double)counts_[i];
            return bucketLow(i) + within * (bucketHigh(i) - bucketLow(i));
        }
        seen = next;
    }
    return hi_;
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("geomean of empty vector");
    double acc = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geomean requires positive inputs, got ", x);
        acc += std::log(x);
    }
    return std::exp(acc / (double)xs.size());
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.empty())
        fatal("pearson requires two equal-length non-empty series");
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= (double)xs.size();
    my /= (double)ys.size();
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx;
        double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace nvmexp
