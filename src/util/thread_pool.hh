/**
 * @file
 * Minimal fixed-size worker pool plus a parallelFor helper.
 *
 * The sweep engine's work items (array characterization, traffic
 * evaluation) are coarse and independent, so a plain mutex-protected
 * task queue is plenty; results stay deterministic because callers
 * write into preallocated, index-addressed output slots rather than
 * appending in completion order.
 */

#ifndef NVMEXP_UTIL_THREAD_POOL_HH
#define NVMEXP_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvmexp {

/** Fixed set of worker threads draining a shared task queue. */
class ThreadPool
{
  public:
    /** @param threads worker count; <=0 means hardwareThreads(). */
    explicit ThreadPool(int threads = 0);

    /** Drains remaining tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task; runs on some worker at some point.
     *
     * During shutdown the queue keeps draining, and tasks submitted
     * from a worker thread (follow-up work spawned by a running task)
     * are still accepted and guaranteed to execute before the
     * destructor returns. A submit from any other thread once
     * shutdown has begun is refused (returns false): no worker is
     * guaranteed to still be around to run it.
     *
     * @return true when the task was enqueued.
     */
    bool submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Number of worker threads. */
    int size() const { return (int)workers_.size(); }

    /** std::thread::hardware_concurrency with a floor of 1. */
    static int hardwareThreads();

    /** Hard ceiling on workers per pool: far beyond any useful sweep
     *  parallelism, and low enough that thread creation cannot hit OS
     *  limits and abort. */
    static constexpr int kMaxThreads = 256;

    /** Map a user-facing jobs count to a worker count: <=0 => all
     *  hardware threads, large values clamp to kMaxThreads. */
    static int resolveJobs(int jobs);

    /** A user-supplied jobs value is acceptable iff it lies in
     *  [0, kMaxThreads]. Single source of truth for the CLI --jobs
     *  flag and the config front-end's "jobs" key. */
    static bool jobsInRange(double jobs)
    {
        return jobs >= 0.0 && jobs <= (double)kMaxThreads;
    }

  private:
    void workerLoop();

    /** Stop accepting outside work, drain the queue, join. Shared by
     *  the destructor and the constructor's failure path (a partially
     *  constructed pool must still join the threads it started). */
    void joinWorkers();

    /** @return true when called from one of this pool's workers. */
    bool onWorkerThread() const;

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

/**
 * Run body(i) for i in [0, count) on up to `jobs` threads (<=0 => all
 * hardware threads). Iterations are claimed dynamically, so uneven
 * item costs still balance; with jobs<=1 the loop runs inline.
 */
void parallelFor(std::size_t count, int jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Same, but on an existing pool — callers issuing many parallel loops
 * (e.g. one per traffic pattern) reuse their workers instead of
 * paying thread creation/teardown per loop. Runs inline when the pool
 * has one worker or there is at most one iteration. The pool must be
 * otherwise idle (wait() would join unrelated work).
 */
void parallelFor(ThreadPool &pool, std::size_t count,
                 const std::function<void(std::size_t)> &body);

} // namespace nvmexp

#endif // NVMEXP_UTIL_THREAD_POOL_HH
