#include "nvsim/subarray.hh"

#include <algorithm>
#include <cmath>

#include "nvsim/circuits.hh"
#include "util/logging.hh"

namespace nvmexp {

namespace {

/** Per-cell wordline load: wire segment plus access-gate cap. */
double
wordlineCapPerCell(const MemCell &cell, const TechNode &node,
                   double cellWidthM)
{
    double wire = node.wireCapPerUm * cellWidthM * 1e6;
    // Access transistor gate: ~2F wide for compact cells, wider for
    // current-hungry cells sized by their write current.
    // setCurrent [A] / onCurrentPerUm [A/um] is already a width in um.
    double accessWidthUm = std::max(
        2.0 * node.featureNm * 1e-3,
        cell.setCurrent / node.onCurrentPerUm * 0.5);
    double gate = node.gateCapPerUm * accessWidthUm;
    return wire + gate;
}

/** Per-cell bitline load: wire segment plus junction cap. */
double
bitlineCapPerCell(const MemCell &cell, const TechNode &node,
                  double cellHeightM)
{
    double wire = node.wireCapPerUm * cellHeightM * 1e6;
    double accessWidthUm = std::max(
        2.0 * node.featureNm * 1e-3,
        cell.setCurrent / node.onCurrentPerUm * 0.5);
    double junction = node.drainCapPerUm * accessWidthUm;
    return wire + junction;
}

} // namespace

SubarrayMetrics
characterizeSubarray(const MemCell &cell, const TechNode &node,
                     const SubarrayDesign &design)
{
    if (design.rows < 2 || design.cols < 2)
        fatal("subarray needs at least a 2x2 cell matrix");
    if (design.sensedBits < 1 || design.cols % design.sensedBits != 0)
        fatal("sensedBits (", design.sensedBits,
              ") must divide cols (", design.cols, ")");

    SubarrayMetrics m;
    double f = node.featureM();
    double cellWidth = std::sqrt(cell.areaF2 / cell.aspectRatio) * f;
    double cellHeight = std::sqrt(cell.areaF2 * cell.aspectRatio) * f;

    // ---- Wires ----------------------------------------------------
    double wlLength = design.cols * cellWidth;
    double blLength = design.rows * cellHeight;
    double wlCap = design.cols * wordlineCapPerCell(cell, node, cellWidth);
    double blCap = design.rows * bitlineCapPerCell(cell, node, cellHeight);
    double wlRes = node.wireResPerUm * wlLength * 1e6;
    double blRes = node.wireResPerUm * blLength * 1e6;

    // Wordline read/write drive voltages. FeFET sensing applies the
    // read bias on the gate (the wordline); resistive cells boost the
    // wordline with the programming voltage during writes.
    double vWlRead = cell.senseMode == SenseMode::FetGated
        ? std::max(cell.readVoltage, node.vdd) : node.vdd;
    double vWlWrite = cell.nonVolatile
        ? std::max(cell.writeVoltage, node.vdd) : node.vdd;

    // ---- Peripheral blocks ----------------------------------------
    CircuitMetrics dec = decoderModel(node, design.rows, wlCap,
                                      std::max(vWlRead, vWlWrite),
                                      cellHeight);
    CircuitMetrics mux = columnMuxModel(node, design.muxDegree(),
                                        design.sensedBits, blCap);
    CircuitMetrics sa = senseAmpModel(node, design.sensedBits, cellWidth);
    CircuitMetrics wd = writeDriverModel(
        node, design.sensedBits, std::max(cell.setCurrent,
                                          cell.resetCurrent),
        cell.writeVoltage, cellWidth);

    // ---- Bitline sensing ------------------------------------------
    // Time to develop the required sense margin on the bitline.
    // Differential SRAM sensing needs one margin; single-ended
    // resistive sensing needs roughly twice that to overcome SA
    // offset and reference mismatch.
    double tWordline = 0.38 * wlRes * wlCap + node.fo4Delay;
    double senseCurrent = 0.0;
    double vBitline = 0.0;      // precharge level
    double senseMargin = node.senseVoltage;
    double senseNodeCap = node.senseAmpCap;
    switch (cell.senseMode) {
      case SenseMode::Voltage:
        // SRAM pull-down discharges the bitline from Vdd; a
        // differential latch resolves a small margin.
        senseCurrent = node.vdd / cell.resistanceOn;
        vBitline = node.vdd;
        break;
      case SenseMode::Current:
      case SenseMode::FetGated:
      case SenseMode::Charge:
        // Single-ended resistive/charge sensing: the cell's current
        // differential must develop a robust margin (~0.25 V) on the
        // offset-cancelled sense node (~60 fF including reference and
        // compensation capacitance) before the latch can fire. This is
        // what makes published eNVM macro reads land in the ns range
        // even for fast cells.
        senseCurrent = cell.senseMode == SenseMode::Charge
            ? cell.readCurrentOn()
            : cell.readCurrentOn() - cell.readCurrentOff();
        vBitline = cell.readVoltage;
        senseMargin = 0.25;
        senseNodeCap = 60e-15;
        break;
    }
    if (senseCurrent <= 0.0)
        fatal("cell '", cell.name, "': no sensing margin (Ron ~ Roff)");
    double tBitline =
        (0.5 * blCap + senseNodeCap) * senseMargin / senseCurrent +
        0.38 * blRes * blCap;

    // MLC sensing resolves one bit per step (binary-search reference).
    int senseSteps = cell.bitsPerCell;

    // ---- Read latency ----------------------------------------------
    // Control/latch overhead at the subarray boundary.
    double tControl = 4.0 * node.fo4Delay;
    m.readLatency = tControl + dec.delay + tWordline +
        (double)senseSteps * (tBitline + sa.delay) + mux.delay;

    // ---- Write latency ---------------------------------------------
    // Bitline charge to the programming voltage, then the cell pulse.
    double tBlWrite = 0.69 * blRes * blCap +
        blCap * cell.writeVoltage /
            std::max(cell.setCurrent, cell.resetCurrent);
    if (!cell.nonVolatile) {
        // SRAM: full-swing bitline write through a pitch-constrained
        // driver (~8F wide).
        double driverCurrent =
            node.onCurrentPerUm * 8.0 * node.featureNm * 1e-3;
        tBlWrite = 0.69 * blRes * blCap +
            blCap * node.vdd / driverCurrent;
    }
    m.writeLatency = tControl + dec.delay + tWordline + wd.delay +
        tBlWrite + cell.worstWritePulse();

    // ---- Read energy -----------------------------------------------
    double eWordline = wlCap * vWlRead * vWlRead;
    double eBitline = 0.0;
    int bitsSensed = design.sensedBits;
    switch (cell.senseMode) {
      case SenseMode::Voltage: {
        // Both bitlines of the differential pair swing by the sense
        // margin on the sensed columns; the remaining columns on the
        // activated row half-swing too (no isolation).
        double perBit = 2.0 * blCap * 2.0 * node.senseVoltage * vBitline;
        eBitline = perBit * (double)bitsSensed +
            0.5 * perBit * (double)(design.cols - bitsSensed);
        break;
      }
      case SenseMode::Current:
      case SenseMode::FetGated: {
        // Activating the row biases every bitline in the subarray at
        // the read voltage (the access devices of unselected columns
        // conduct too); the sensing current (cell + reference) burns
        // only on the sensed columns. Slow sensing additionally pays
        // the SA's static bias current for the whole develop window,
        // which is what makes low-margin cells expensive to read.
        constexpr double kSaStaticCurrent = 12e-6;
        double biasPerBit = blCap * vBitline * vBitline;
        double sensePerBit = 2.0 * cell.readCurrentOn() * vBitline *
                (tBitline + sa.delay) +
            kSaStaticCurrent * node.vdd * (tBitline + sa.delay);
        eBitline = biasPerBit * (double)design.cols +
            sensePerBit * (double)bitsSensed * (double)senseSteps;
        break;
      }
      case SenseMode::Charge: {
        double perBit = blCap * vBitline * vBitline;
        // Destructive read: add the restore (write-back) energy.
        perBit += cell.writeEnergyPerBit() /
            chargePumpEfficiency(node, cell.writeVoltage);
        eBitline = perBit * (double)bitsSensed;
        break;
      }
    }
    m.readEnergy = dec.energy + eWordline + eBitline +
        (double)senseSteps * sa.energy + mux.energy +
        cell.readEnergyPerBit * (double)bitsSensed;

    // ---- Write energy ----------------------------------------------
    double pump = chargePumpEfficiency(node, cell.writeVoltage);
    double eWlWrite = wlCap * vWlWrite * vWlWrite;
    double eBlWrite = (double)bitsSensed * blCap *
        cell.writeVoltage * cell.writeVoltage;
    if (!cell.nonVolatile)
        eBlWrite = (double)bitsSensed * blCap * node.vdd * node.vdd;
    double eCells =
        (double)bitsSensed * cell.writeEnergyPerBit() / pump;
    m.writeEnergy = dec.energy + eWlWrite + eBlWrite + eCells +
        wd.energy;

    // ---- Leakage ----------------------------------------------------
    m.leakage = dec.leakage + mux.leakage + sa.leakage + wd.leakage +
        (double)design.rows * (double)design.cols * cell.cellLeakage;

    // ---- Area --------------------------------------------------------
    m.cellAreaM2 = (double)design.rows * (double)design.cols *
        cell.areaF2 * f * f;
    double matrixH = (double)design.rows * cellHeight;
    double matrixW = (double)design.cols * cellWidth;
    // Peripheral blocks plus a fixed per-subarray control overhead
    // (timing, address latches, redundancy).
    double controlArea = 6.0e4 * f * f;
    double periphArea = dec.areaM2 + mux.areaM2 + sa.areaM2 +
        wd.areaM2 + controlArea;
    m.areaM2 = matrixH * matrixW + periphArea;
    m.widthM = matrixW + 60.0 * f;
    m.heightM = m.areaM2 / m.widthM;
    return m;
}

} // namespace nvmexp
