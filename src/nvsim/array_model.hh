/**
 * @file
 * Full-array characterization: tiles subarrays into banks with global
 * H-tree interconnect, searches the organization design space, and
 * returns the best design per optimization target.
 *
 * This is the "extended NVSim" role in the NVMExplorer flow: the
 * evaluation engine consumes ArrayResult objects and combines them
 * with application traffic.
 */

#ifndef NVMEXP_NVSIM_ARRAY_MODEL_HH
#define NVMEXP_NVSIM_ARRAY_MODEL_HH

#include <string>
#include <vector>

#include "celldb/cell.hh"
#include "nvsim/subarray.hh"
#include "nvsim/technology.hh"

namespace nvmexp {

/** What the organization search minimizes (paper Fig. 3: "various
 *  optimization targets"). */
enum class OptTarget
{
    ReadLatency,
    WriteLatency,
    ReadEDP,
    WriteEDP,
    ReadEnergy,
    WriteEnergy,
    Area,
    Leakage
};

/** @return e.g. "ReadEDP". */
std::string optTargetName(OptTarget target);

/** All targets, for sweeps. */
const std::vector<OptTarget> &allOptTargets();

/** Array structural parameters chosen by the search. */
struct Organization
{
    int banks = 1;             ///< independently accessible banks
    int subarraysPerBank = 1;  ///< tiled subarrays within a bank
    SubarrayDesign subarray;   ///< inner geometry
};

/** Complete characterization of one array design point. */
struct ArrayResult
{
    MemCell cell;
    int nodeNm = 22;
    double capacityBytes = 0.0;
    int wordBits = 512;
    Organization org;

    double readLatency = 0.0;    ///< s, full access
    double writeLatency = 0.0;   ///< s, full access
    double readEnergy = 0.0;     ///< J per word access
    double writeEnergy = 0.0;    ///< J per word access
    double leakage = 0.0;        ///< W, whole array
    double areaM2 = 0.0;         ///< m^2, whole array
    double areaEfficiency = 0.0; ///< cell area / total area

    /** Peak deliverable read bandwidth, bytes/s (bank-parallel). */
    double readBandwidth = 0.0;
    /** Peak deliverable write bandwidth, bytes/s. */
    double writeBandwidth = 0.0;

    double readEnergyPerBit() const
    {
        return wordBits ? readEnergy / (double)wordBits : 0.0;
    }
    double writeEnergyPerBit() const
    {
        return wordBits ? writeEnergy / (double)wordBits : 0.0;
    }
    /** Number of wordBits-wide words the array stores (the unit the
     *  eval engine's lifetime/wear math is expressed in). */
    double words() const
    {
        return capacityBytes * 8.0 / (double)wordBits;
    }

    /** Storage density, Mbit per mm^2. */
    double densityMbPerMm2() const;

    /** Metric value used for ranking under a target. */
    double metric(OptTarget target) const;
};

/** User-visible array design constraints. */
struct ArrayConfig
{
    double capacityBytes = 2.0 * 1024 * 1024;
    int wordBits = 512;          ///< access width (e.g., 64B line)
    int nodeNm = 22;             ///< implementation node
    double minAreaEfficiency = 0.35;
    int maxBanks = 16;
};

/**
 * Enumerates and optimizes array organizations for one cell.
 */
class ArrayDesigner
{
  public:
    ArrayDesigner(const MemCell &cell, const ArrayConfig &config);

    /** All valid design points (used by the Fig. 12 study). */
    std::vector<ArrayResult> enumerate() const;

    /** The best design under a target; fatal() if no valid design. */
    ArrayResult optimize(OptTarget target) const;

    /** Characterize one explicit organization. */
    ArrayResult characterize(const Organization &org) const;

  private:
    MemCell cell_;
    ArrayConfig config_;
    const TechNode &node_;
};

/**
 * Convenience: optimize an iso-capacity array for each cell in a set.
 */
std::vector<ArrayResult>
characterizeAll(const std::vector<MemCell> &cells,
                const ArrayConfig &config, OptTarget target);

} // namespace nvmexp

#endif // NVMEXP_NVSIM_ARRAY_MODEL_HH
