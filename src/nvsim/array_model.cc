#include "nvsim/array_model.hh"

#include <algorithm>
#include <cmath>

#include "nvsim/circuits.hh"
#include "util/logging.hh"

namespace nvmexp {

std::string
optTargetName(OptTarget target)
{
    switch (target) {
      case OptTarget::ReadLatency:  return "ReadLatency";
      case OptTarget::WriteLatency: return "WriteLatency";
      case OptTarget::ReadEDP:      return "ReadEDP";
      case OptTarget::WriteEDP:     return "WriteEDP";
      case OptTarget::ReadEnergy:   return "ReadEnergy";
      case OptTarget::WriteEnergy:  return "WriteEnergy";
      case OptTarget::Area:         return "Area";
      case OptTarget::Leakage:      return "Leakage";
      default: panic("bad OptTarget ", (int)target);
    }
}

const std::vector<OptTarget> &
allOptTargets()
{
    static const std::vector<OptTarget> targets = {
        OptTarget::ReadLatency, OptTarget::WriteLatency,
        OptTarget::ReadEDP, OptTarget::WriteEDP, OptTarget::ReadEnergy,
        OptTarget::WriteEnergy, OptTarget::Area, OptTarget::Leakage,
    };
    return targets;
}

double
ArrayResult::densityMbPerMm2() const
{
    if (areaM2 <= 0.0)
        return 0.0;
    double mbits = capacityBytes * 8.0 / 1e6;
    return mbits / (areaM2 / 1e-6);
}

double
ArrayResult::metric(OptTarget target) const
{
    switch (target) {
      case OptTarget::ReadLatency:  return readLatency;
      case OptTarget::WriteLatency: return writeLatency;
      case OptTarget::ReadEDP:      return readLatency * readEnergy;
      case OptTarget::WriteEDP:     return writeLatency * writeEnergy;
      case OptTarget::ReadEnergy:   return readEnergy;
      case OptTarget::WriteEnergy:  return writeEnergy;
      case OptTarget::Area:         return areaM2;
      case OptTarget::Leakage:      return leakage;
      default: panic("bad OptTarget ", (int)target);
    }
}

ArrayDesigner::ArrayDesigner(const MemCell &cell, const ArrayConfig &config)
    : cell_(cell), config_(config), node_(techNodeFor(config.nodeNm))
{
    cell_.validate();
    if (config_.capacityBytes < 1024.0)
        fatal("array capacity below 1 KiB is not supported");
    if (config_.wordBits < 8 || config_.wordBits > 4096)
        fatal("wordBits must be in [8, 4096]");
    if (config_.nodeNm < cell_.minNodeNm) {
        warn("cell '", cell_.name, "' has not been demonstrated below ",
             cell_.minNodeNm, " nm; projecting to ", config_.nodeNm,
             " nm");
    }
}

ArrayResult
ArrayDesigner::characterize(const Organization &org) const
{
    SubarrayMetrics sub = characterizeSubarray(cell_, node_,
                                               org.subarray);

    ArrayResult r;
    r.cell = cell_;
    r.nodeNm = config_.nodeNm;
    r.capacityBytes = config_.capacityBytes;
    r.wordBits = config_.wordBits;
    r.org = org;

    int totalSubarrays = org.banks * org.subarraysPerBank;

    // Bank floorplan: square-ish tiling of subarrays, H-tree routed.
    double bankArea = (double)org.subarraysPerBank * sub.areaM2;
    int htreeLevels = std::max(
        0, (int)std::ceil(std::log2((double)org.subarraysPerBank)));
    double wiringOverhead = 1.0 + 0.08 * (double)htreeLevels;
    bankArea *= wiringOverhead;
    double totalArea = bankArea * (double)org.banks * 1.02;

    // Global route: from the bank edge to the farthest subarray, about
    // half the bank perimeter, plus the spine across banks.
    double bankDist = std::sqrt(bankArea);
    double spineDist = 0.5 * std::sqrt(totalArea);
    double routeLen = bankDist + spineDist;
    // Address in plus data out: the global route is paid twice per
    // access.
    double tRoute = 2.0 * repeatedWireDelay(node_, routeLen);
    double eRoute = repeatedWireEnergyPerBit(node_, routeLen) *
        (double)config_.wordBits;
    // Address distribution to the target subarray.
    double eAddr = repeatedWireEnergyPerBit(node_, routeLen) * 32.0;

    r.readLatency = sub.readLatency + tRoute;
    r.writeLatency = sub.writeLatency + tRoute;
    r.readEnergy = sub.readEnergy + eRoute + eAddr;
    r.writeEnergy = sub.writeEnergy + eRoute + eAddr;
    // Subarray periphery plus global repeaters/control logic; the
    // latter scale with the routed die area (~2.5 mW/mm^2 at these
    // nodes), which is what makes denser technologies leak less at
    // iso-capacity.
    r.leakage = sub.leakage * (double)totalSubarrays +
        totalArea * 2.5e3;
    r.areaM2 = totalArea;
    r.areaEfficiency =
        sub.cellAreaM2 * (double)totalSubarrays / totalArea;

    double wordBytes = (double)config_.wordBits / 8.0;
    r.readBandwidth = (double)org.banks * wordBytes / r.readLatency;
    r.writeBandwidth = (double)org.banks * wordBytes / r.writeLatency;
    return r;
}

std::vector<ArrayResult>
ArrayDesigner::enumerate() const
{
    std::vector<ArrayResult> results;
    double capacityBits = config_.capacityBytes * 8.0;
    double cells = capacityBits / (double)cell_.bitsPerCell;

    for (int banks = 1; banks <= config_.maxBanks; banks *= 2) {
        for (int rows = 128; rows <= 4096; rows *= 2) {
            for (int cols = 128; cols <= 4096; cols *= 2) {
                if (cols < config_.wordBits / cell_.bitsPerCell)
                    continue;
                double perSub = (double)rows * (double)cols;
                double subsPerBank = cells / ((double)banks * perSub);
                if (subsPerBank < 1.0 ||
                    subsPerBank > 4096.0 ||
                    std::floor(subsPerBank) != subsPerBank) {
                    continue;
                }
                Organization org;
                org.banks = banks;
                org.subarraysPerBank = (int)subsPerBank;
                org.subarray.rows = rows;
                org.subarray.cols = cols;
                // The word is sensed from one subarray; each sensed
                // cell provides bitsPerCell bits.
                org.subarray.sensedBits =
                    config_.wordBits / cell_.bitsPerCell;
                if (org.subarray.sensedBits < 1 ||
                    cols % org.subarray.sensedBits != 0) {
                    continue;
                }
                ArrayResult r = characterize(org);
                if (r.areaEfficiency < config_.minAreaEfficiency)
                    continue;
                results.push_back(std::move(r));
            }
        }
    }
    return results;
}

ArrayResult
ArrayDesigner::optimize(OptTarget target) const
{
    auto candidates = enumerate();
    if (candidates.empty())
        fatal("no valid array organization for cell '", cell_.name,
              "' at capacity ", config_.capacityBytes, " B");
    const ArrayResult *best = &candidates.front();
    for (const auto &r : candidates)
        if (r.metric(target) < best->metric(target))
            best = &r;
    return *best;
}

std::vector<ArrayResult>
characterizeAll(const std::vector<MemCell> &cells,
                const ArrayConfig &config, OptTarget target)
{
    std::vector<ArrayResult> out;
    out.reserve(cells.size());
    for (const auto &cell : cells) {
        ArrayDesigner designer(cell, config);
        out.push_back(designer.optimize(target));
    }
    return out;
}

} // namespace nvmexp
