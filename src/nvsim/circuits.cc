#include "nvsim/circuits.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

namespace {

/** Buffer-chain stages to drive loadCap from a min-size gate (FO4). */
int
bufferStages(const TechNode &node, double loadCap)
{
    double ratio = std::max(loadCap / node.minGateCap(), 1.0);
    return std::max(1, (int)std::ceil(std::log(ratio) / std::log(4.0)));
}

} // namespace

CircuitMetrics
decoderModel(const TechNode &node, int rows, double wordlineCap,
             double wordlineVoltage, double rowPitchM)
{
    if (rows < 2)
        fatal("decoderModel: need at least 2 rows");
    CircuitMetrics m;
    int addressBits = (int)std::ceil(std::log2((double)rows));

    // Predecode + final NAND stage: ~1.4 FO4 per two address bits,
    // then a fanout-of-4 buffer chain up to the wordline driver.
    int logicStages = std::max(1, (addressBits + 1) / 2);
    int driveStages = bufferStages(node, wordlineCap);
    m.delay = (1.4 * logicStages + (double)driveStages) * node.fo4Delay;

    // Switched capacitance: the active predecode path plus the final
    // driver chain (geometric series ~ 1/3 of the load).
    double decodeCap = 20.0 * node.minGateCap() * addressBits;
    double chainCap = wordlineCap / 3.0;
    m.energy = (decodeCap + chainCap) * node.vdd * node.vdd;
    // The wordline itself is charged to wordlineVoltage and accounted
    // for by the caller; the driver output stage swings with it.
    m.energy += 0.1 * wordlineCap * wordlineVoltage * wordlineVoltage;

    // One driver + decode slice per row: the slice is pitch-matched
    // when the row pitch allows, but never smaller than its ~1500 F^2
    // of logic (small-pitch cells get folded decoder slices).
    double f = node.featureM();
    double sliceArea = std::max(rowPitchM * 25.0 * f, 1500.0 * f * f);
    m.areaM2 = (double)rows * sliceArea;

    // Leakage: per-row driver stack of ~10F effective width.
    double widthUm = (double)rows * 10.0 * node.featureNm * 1e-3;
    m.leakage = node.leakagePower(widthUm, DeviceRole::HighPerformance);
    return m;
}

CircuitMetrics
columnMuxModel(const TechNode &node, int muxDegree, int sensedBits,
               double bitlineCap)
{
    CircuitMetrics m;
    if (muxDegree <= 1)
        return m;
    // Pass-gate mux: one extra RC stage.
    double passRes = node.driveResistance(4.0 * node.featureNm * 1e-3);
    m.delay = 0.69 * passRes * (bitlineCap / 4.0) +
        node.fo4Delay * std::log2((double)muxDegree) * 0.3;
    double selCap =
        (double)(sensedBits * muxDegree) * 4.0 * node.minGateCap();
    m.energy = selCap / (double)muxDegree * node.vdd * node.vdd;
    double passWidthUm =
        (double)(sensedBits * muxDegree) * 4.0 * node.featureNm * 1e-3;
    m.leakage =
        node.leakagePower(passWidthUm, DeviceRole::LowStandbyPower);
    m.areaM2 = passWidthUm * 1e-6 * 8.0 * node.featureM();
    return m;
}

CircuitMetrics
senseAmpModel(const TechNode &node, int sensedBits, double colPitchM)
{
    CircuitMetrics m;
    // Latch-type SA resolves in ~6 FO4 once the input margin exists.
    m.delay = 6.0 * node.fo4Delay;
    m.energy = (double)sensedBits * node.senseAmpCap * node.vdd * node.vdd;
    // A latch-type SA occupies ~2000 F^2 regardless of the column
    // pitch (narrow NVM columns force folded/multiplexed SA layouts).
    double f = node.featureM();
    m.areaM2 = (double)sensedBits *
        std::max(colPitchM * 60.0 * f, 2000.0 * f * f);
    double widthUm = (double)sensedBits * 8.0 * node.featureNm * 1e-3;
    m.leakage = node.leakagePower(widthUm, DeviceRole::LowStandbyPower);
    return m;
}

CircuitMetrics
writeDriverModel(const TechNode &node, int writtenBits,
                 double writeCurrent, double writeVoltage,
                 double colPitchM)
{
    CircuitMetrics m;
    // Driver sized to source writeCurrent: width = I / Ion-per-um
    // (A divided by A/um yields um directly).
    double widthUm =
        std::max(writeCurrent / node.onCurrentPerUm, 0.1);
    m.delay = 2.0 * node.fo4Delay +
        node.fo4Delay * std::log2(1.0 + widthUm);
    double driverCap = node.gateCapPerUm * widthUm;
    m.energy = (double)writtenBits * driverCap * writeVoltage *
        writeVoltage;
    double f = node.featureM();
    double perDriver = std::max({colPitchM * 40.0 * f,
                                 widthUm * 1e-6 * 8.0 * f,
                                 500.0 * f * f});
    m.areaM2 = (double)writtenBits * perDriver;
    m.leakage = node.leakagePower((double)writtenBits * widthUm * 0.2,
                                  DeviceRole::LowStandbyPower);
    return m;
}

double
chargePumpEfficiency(const TechNode &node, double writeVoltage)
{
    return writeVoltage > node.vdd ? 0.4 : 1.0;
}

double
repeatedWireDelay(const TechNode &node, double lengthM)
{
    if (lengthM <= 0.0)
        return 0.0;
    // Optimally repeated wire plus pipeline-latch overhead lands near
    // ~3*sqrt(0.38 * r * c * FO4) seconds per meter (~120 ps/mm at
    // 22 nm), consistent with CACTI-class global interconnect.
    double rPerM = node.wireResPerUm * 1e6;
    double cPerM = node.wireCapPerUm * 1e6;
    double perMeter = 3.0 * std::sqrt(0.38 * rPerM * cPerM *
                                      node.fo4Delay);
    return perMeter * lengthM;
}

double
repeatedWireEnergyPerBit(const TechNode &node, double lengthM)
{
    if (lengthM <= 0.0)
        return 0.0;
    double cPerM = node.wireCapPerUm * 1e6;
    // Wire cap plus ~50% repeater overhead, half activity factor.
    return 0.5 * 1.5 * cPerM * lengthM * node.vdd * node.vdd;
}

} // namespace nvmexp
