/**
 * @file
 * Process-technology parameters for the array model.
 *
 * Mirrors NVSim's technology layer: per-node transistor and wire
 * characteristics that peripheral circuit models (decoders, sense
 * amplifiers, drivers) and interconnect models (wordlines, bitlines,
 * H-tree) are built from. Values follow public ITRS/PTM trends; the
 * framework's outputs are used for *relative* cross-technology
 * comparisons, per the paper's methodology.
 */

#ifndef NVMEXP_NVSIM_TECHNOLOGY_HH
#define NVMEXP_NVSIM_TECHNOLOGY_HH

namespace nvmexp {

/** Transistor flavor for periphery sizing/leakage. */
enum class DeviceRole { HighPerformance, LowStandbyPower };

/**
 * One process node's device and wire parameters.
 */
struct TechNode
{
    int featureNm = 22;        ///< feature size F [nm]
    double vdd = 0.9;          ///< nominal supply [V]
    double fo4Delay = 8e-12;   ///< fanout-of-4 inverter delay [s]
    double gateCapPerUm = 1e-15;     ///< gate cap [F/um width]
    double drainCapPerUm = 0.8e-15;  ///< junction cap [F/um width]
    double onCurrentPerUm = 0.9e-3;  ///< NMOS Ion [A/um]
    double offCurrentPerUm = 30e-9;  ///< HP Ioff [A/um]
    double offCurrentLstpPerUm = 0.3e-9;  ///< LSTP Ioff [A/um]
    double wireResPerUm = 3.0;       ///< mid-level metal R [ohm/um]
    double wireCapPerUm = 0.2e-15;   ///< mid-level metal C [F/um]
    double senseAmpCap = 5e-15;      ///< latch-type SA input cap [F]
    double senseVoltage = 0.05;      ///< required sense margin [V]

    double featureM() const { return featureNm * 1e-9; }

    /** Minimum-size inverter input capacitance [F]. */
    double minGateCap() const;

    /** Drive resistance of a transistor of the given width [ohm]. */
    double driveResistance(double widthUm) const;

    /** Leakage power of a transistor stack of given width [W]. */
    double leakagePower(double widthUm, DeviceRole role) const;
};

/**
 * Look up the TechNode for a feature size; the table covers
 * 7/10/14/16/22/28/32/40/45/65/90/130 nm. Unknown nodes are
 * interpolated from the nearest entries (fatal outside the range).
 */
const TechNode &techNodeFor(int featureNm);

} // namespace nvmexp

#endif // NVMEXP_NVSIM_TECHNOLOGY_HH
