/**
 * @file
 * Peripheral circuit models: row decoder, sense amplifier, write
 * driver, charge pump, and repeated global wires (H-tree).
 *
 * All delays use logical-effort-style estimates in units of the node's
 * FO4 delay plus Elmore terms for distributed RC loads; energies are
 * CV^2 of the switched capacitance. This mirrors the modeling level of
 * NVSim/CACTI rather than transistor-accurate simulation.
 */

#ifndef NVMEXP_NVSIM_CIRCUITS_HH
#define NVMEXP_NVSIM_CIRCUITS_HH

#include "nvsim/technology.hh"

namespace nvmexp {

/** Delay/energy/area/leakage summary of one peripheral block. */
struct CircuitMetrics
{
    double delay = 0.0;    ///< s
    double energy = 0.0;   ///< J per activation
    double areaM2 = 0.0;   ///< m^2
    double leakage = 0.0;  ///< W
};

/**
 * Row decoder + wordline driver chain for `rows` wordlines, each
 * presenting `wordlineCap` of load, driven to `wordlineVoltage`.
 */
CircuitMetrics decoderModel(const TechNode &node, int rows,
                            double wordlineCap, double wordlineVoltage,
                            double rowPitchM);

/**
 * Column multiplexer of the given degree in front of the sense amps.
 */
CircuitMetrics columnMuxModel(const TechNode &node, int muxDegree,
                              int sensedBits, double bitlineCap);

/**
 * Bank of latch-type sense amplifiers (one per sensed bit).
 */
CircuitMetrics senseAmpModel(const TechNode &node, int sensedBits,
                             double colPitchM);

/**
 * Write drivers supplying `writeCurrent` per written bit at
 * `writeVoltage`.
 */
CircuitMetrics writeDriverModel(const TechNode &node, int writtenBits,
                                double writeCurrent, double writeVoltage,
                                double colPitchM);

/**
 * Efficiency of delivering programming power at `writeVoltage` from
 * the `node` supply: 1.0 when no boosting is required, pump efficiency
 * (~0.4) otherwise. Divide cell programming energy by this factor.
 */
double chargePumpEfficiency(const TechNode &node, double writeVoltage);

/**
 * Repeater-optimized global wire: delay [s] and switching energy per
 * bit [J] for a run of `lengthM` meters.
 */
double repeatedWireDelay(const TechNode &node, double lengthM);
double repeatedWireEnergyPerBit(const TechNode &node, double lengthM);

} // namespace nvmexp

#endif // NVMEXP_NVSIM_CIRCUITS_HH
