/**
 * @file
 * Subarray-level characterization: one grid of cells with its local
 * decoder, column mux, sense amplifiers, and write drivers.
 *
 * This is the innermost level of the NVSim-style hierarchy; the bank /
 * array organization (array_model.hh) tiles subarrays and adds global
 * interconnect.
 */

#ifndef NVMEXP_NVSIM_SUBARRAY_HH
#define NVMEXP_NVSIM_SUBARRAY_HH

#include "celldb/cell.hh"
#include "nvsim/technology.hh"

namespace nvmexp {

/** Geometric/electrical design of one subarray. */
struct SubarrayDesign
{
    int rows = 512;        ///< wordlines
    int cols = 512;        ///< bitlines (cells per row)
    int sensedBits = 512;  ///< bits sensed per access (cols/muxDegree)

    int muxDegree() const { return cols / sensedBits; }
};

/** Characterization results for one subarray. */
struct SubarrayMetrics
{
    double readLatency = 0.0;     ///< s
    double writeLatency = 0.0;    ///< s
    double readEnergy = 0.0;      ///< J per access (sensedBits wide)
    double writeEnergy = 0.0;     ///< J per access
    double leakage = 0.0;         ///< W
    double areaM2 = 0.0;          ///< m^2 including local periphery
    double cellAreaM2 = 0.0;      ///< m^2 of the raw cell matrix
    double heightM = 0.0;         ///< subarray physical height
    double widthM = 0.0;          ///< subarray physical width

    double areaEfficiency() const
    {
        return areaM2 > 0.0 ? cellAreaM2 / areaM2 : 0.0;
    }
};

/**
 * Characterize a subarray of `cell` devices implemented at `node`.
 *
 * @param cell fully-specified cell definition (cell.validate()'d)
 * @param node process node the periphery is built in
 * @param design subarray geometry
 * @return metrics; fatal() on inconsistent designs
 */
SubarrayMetrics characterizeSubarray(const MemCell &cell,
                                     const TechNode &node,
                                     const SubarrayDesign &design);

} // namespace nvmexp

#endif // NVMEXP_NVSIM_SUBARRAY_HH
