#include "nvsim/technology.hh"

#include <array>

#include "util/logging.hh"

namespace nvmexp {

double
TechNode::minGateCap() const
{
    // Minimum device width is roughly 2F.
    double minWidthUm = 2.0 * featureNm * 1e-3;
    return gateCapPerUm * minWidthUm;
}

double
TechNode::driveResistance(double widthUm) const
{
    if (widthUm <= 0.0)
        fatal("driveResistance: non-positive width");
    // Reff ~ Vdd / (2 * Ion): the usual saturation-averaged estimate.
    return vdd / (2.0 * onCurrentPerUm * widthUm);
}

double
TechNode::leakagePower(double widthUm, DeviceRole role) const
{
    double ioff = role == DeviceRole::HighPerformance
        ? offCurrentPerUm : offCurrentLstpPerUm;
    return ioff * widthUm * vdd;
}

namespace {

/**
 * Node table. fo4Delay tracks ~0.35 ps/nm; wire resistance grows as
 * geometries shrink; supply voltage saturates below 22 nm.
 */
const std::array<TechNode, 12> kNodes = {{
    {7,   0.75, 2.6e-12, 1.1e-15, 0.9e-15, 1.2e-3, 60e-9, 0.6e-9,
     12.0, 0.18e-15, 4e-15, 0.04},
    {10,  0.75, 3.6e-12, 1.1e-15, 0.9e-15, 1.1e-3, 50e-9, 0.5e-9,
     9.0, 0.19e-15, 4e-15, 0.04},
    {14,  0.80, 5.0e-12, 1.0e-15, 0.85e-15, 1.0e-3, 40e-9, 0.4e-9,
     7.0, 0.19e-15, 4.5e-15, 0.05},
    {16,  0.80, 5.6e-12, 1.0e-15, 0.85e-15, 1.0e-3, 40e-9, 0.4e-9,
     6.0, 0.20e-15, 4.5e-15, 0.05},
    {22,  0.90, 7.7e-12, 1.0e-15, 0.80e-15, 0.9e-3, 30e-9, 0.3e-9,
     4.0, 0.20e-15, 5e-15, 0.05},
    {28,  1.00, 9.8e-12, 1.0e-15, 0.80e-15, 0.85e-3, 25e-9, 0.25e-9,
     3.2, 0.20e-15, 5e-15, 0.05},
    {32,  1.00, 11.2e-12, 1.0e-15, 0.80e-15, 0.8e-3, 20e-9, 0.2e-9,
     2.8, 0.21e-15, 5.5e-15, 0.05},
    {40,  1.10, 14.0e-12, 0.95e-15, 0.78e-15, 0.75e-3, 15e-9, 0.15e-9,
     2.2, 0.21e-15, 6e-15, 0.06},
    {45,  1.10, 15.8e-12, 0.95e-15, 0.78e-15, 0.7e-3, 12e-9, 0.12e-9,
     2.0, 0.22e-15, 6e-15, 0.06},
    {65,  1.20, 22.8e-12, 0.9e-15, 0.75e-15, 0.65e-3, 8e-9, 0.08e-9,
     1.4, 0.22e-15, 7e-15, 0.07},
    {90,  1.20, 31.5e-12, 0.9e-15, 0.75e-15, 0.6e-3, 5e-9, 0.05e-9,
     1.0, 0.23e-15, 8e-15, 0.08},
    {130, 1.30, 45.5e-12, 0.85e-15, 0.7e-15, 0.55e-3, 3e-9, 0.03e-9,
     0.7, 0.24e-15, 9e-15, 0.10},
}};

} // namespace

const TechNode &
techNodeFor(int featureNm)
{
    for (const auto &node : kNodes)
        if (node.featureNm == featureNm)
            return node;
    // Snap to the nearest tabulated node within the covered range.
    if (featureNm < kNodes.front().featureNm ||
        featureNm > kNodes.back().featureNm) {
        fatal("technology node ", featureNm,
              " nm outside supported range [7, 130]");
    }
    const TechNode *best = &kNodes.front();
    int bestDist = 1 << 30;
    for (const auto &node : kNodes) {
        int dist = featureNm > node.featureNm
            ? featureNm - node.featureNm : node.featureNm - featureNm;
        if (dist < bestDist) {
            bestDist = dist;
            best = &node;
        }
    }
    return *best;
}

} // namespace nvmexp
