/**
 * @file
 * Technology-specific fault models (paper Sec. II-B2 and V-C).
 *
 * Per-cell bit-error rates derive from a Gaussian level-spacing model:
 * a cell storing one of 2^bits resistance/threshold levels is misread
 * when device variation pushes it past the midpoint to an adjacent
 * level. MLC programming divides the same window among more levels;
 * FeFET variation additionally grows as cells shrink (device-to-device
 * variation dominates small ferroelectric grains, per the ISLPED'21
 * modeling effort the paper builds on).
 */

#ifndef NVMEXP_FAULT_FAULT_MODEL_HH
#define NVMEXP_FAULT_FAULT_MODEL_HH

#include "celldb/cell.hh"

namespace nvmexp {

/**
 * Parametric fault model for one cell configuration.
 */
class FaultModel
{
  public:
    /**
     * Build the model for a cell. The per-technology variation
     * parameters are calibrated so SLC error rates sit near published
     * raw-BER figures (1e-9..1e-6) and 2-bit MLC rates near 1e-4..1e-2
     * depending on technology and cell size.
     */
    explicit FaultModel(const MemCell &cell);

    /** Probability a stored level is read as an adjacent level. */
    double adjacentLevelErrorRate() const { return adjacentRate_; }

    /** Per-bit error rate assuming Gray-coded levels (one bit flips
     *  per adjacent-level error). */
    double bitErrorRate() const;

    /** Number of stored levels (2^bitsPerCell). */
    int levels() const { return levels_; }

    /** Normalized sigma/margin ratio (exposed for studies/tests). */
    double sigmaOverMargin() const { return sigmaOverMargin_; }

    /** Gaussian tail probability Q(x) = P(N(0,1) > x). */
    static double qFunction(double x);

  private:
    int levels_;
    int bitsPerCell_;
    double sigmaOverMargin_;
    double adjacentRate_;
};

} // namespace nvmexp

#endif // NVMEXP_FAULT_FAULT_MODEL_HH
