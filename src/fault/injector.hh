/**
 * @file
 * Application-level fault injection (paper Sec. II-B2).
 *
 * Injects storage faults into bit-packed application data (quantized
 * DNN weights in the Fig. 13 study) according to a FaultModel. SLC
 * data flips independent bits; MLC data packs adjacent bit pairs into
 * one cell and applies the adjacent-level (Gray-coded) error model.
 */

#ifndef NVMEXP_FAULT_INJECTOR_HH
#define NVMEXP_FAULT_INJECTOR_HH

#include <cstdint>
#include <span>

#include "fault/fault_model.hh"
#include "util/random.hh"

namespace nvmexp {

/**
 * Stateful fault injector; deterministic under a fixed seed.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultModel &model, std::uint64_t seed);

    /**
     * Inject faults into 8-bit data words as stored in the modeled
     * cells (SLC: 8 cells/byte; 2-bit MLC: 4 cells/byte).
     * @return number of flipped bits
     */
    std::size_t inject(std::span<std::int8_t> data);

    /**
     * Inject a user-specified uniform per-bit error rate (the paper's
     * "expected error rate" interface).
     * @return number of flipped bits
     */
    std::size_t injectUniform(std::span<std::int8_t> data, double ber);

  private:
    /** Visit each Bernoulli(p) success index in [0, n) sparsely. */
    template <typename Visit>
    std::size_t sparseTrials(std::size_t n, double p, Visit visit);

    FaultModel model_;
    Rng rng_;
};

} // namespace nvmexp

#endif // NVMEXP_FAULT_INJECTOR_HH
