/**
 * @file
 * SEC-DED error correction for eNVM storage (extension).
 *
 * The paper's reliability study (Sec. V-C) builds on MaxNVM-style
 * error mitigation; this module provides the standard Hamming(72,64)
 * single-error-correct / double-error-detect code so studies can ask
 * "does ECC rescue an otherwise too-faulty MLC configuration?" —
 * both analytically (word failure rates under a raw BER) and
 * concretely (encode / corrupt / decode of real data).
 */

#ifndef NVMEXP_FAULT_ECC_HH
#define NVMEXP_FAULT_ECC_HH

#include <cstdint>
#include <span>
#include <vector>

namespace nvmexp {

/**
 * Hamming(72,64) SEC-DED codec over 64-bit data words.
 */
class SecDedCodec
{
  public:
    /** Bits per codeword (64 data + 7 Hamming + overall parity). */
    static constexpr int kDataBits = 64;
    static constexpr int kCodeBits = 72;

    /** Encode one 64-bit word into a 72-bit codeword. */
    static std::pair<std::uint64_t, std::uint8_t>
    encodeWord(std::uint64_t data);

    /** Decode outcome of one codeword. */
    enum class Outcome
    {
        Clean,          ///< no error observed
        Corrected,      ///< single-bit error fixed
        Uncorrectable   ///< double-bit error detected
    };

    struct DecodeResult
    {
        std::uint64_t data = 0;
        Outcome outcome = Outcome::Clean;
    };

    /** Decode (and correct) one received codeword. */
    static DecodeResult decodeWord(std::uint64_t payload,
                                   std::uint8_t check);

    /**
     * Encode a byte buffer (padded to 8-byte words) into payload and
     * check-byte arrays sized for storage.
     */
    struct EncodedImage
    {
        std::vector<std::uint64_t> payload;
        std::vector<std::uint8_t> check;
        /** Bytes of original data (encode() pads the trailing word
         *  with zeros; decode() needs the real size to report
         *  overhead honestly). */
        std::size_t dataBytes = 0;

        /** Storage overhead ratio: stored bits / data bits, from the
         *  actual stored and data bit counts — a non-multiple-of-8
         *  buffer pays for its padded trailing word. */
        double overhead() const
        {
            if (payload.empty() || dataBytes == 0)
                return 1.0;
            return (double)(payload.size() * (std::size_t)kCodeBits) /
                (double)(dataBytes * 8);
        }
    };

    static EncodedImage encode(std::span<const std::int8_t> data);

    /** Decode statistics over a whole image. */
    struct ImageStats
    {
        std::size_t words = 0;
        std::size_t corrected = 0;
        std::size_t uncorrectable = 0;
    };

    /**
     * Decode an image back into `out` (sized like the original data);
     * uncorrectable words are passed through as-is.
     */
    static ImageStats decode(const EncodedImage &image,
                             std::span<std::int8_t> out);
};

/**
 * P(Binomial(n, p) >= k): probability at least k of n independent
 * bits are in error at per-bit rate p — the analytical core of every
 * block-code failure model. Summed from the k-th term upward (first
 * term in log space), so tiny tails (1e-30 and below) come out exact
 * instead of vanishing in a 1-sum cancellation.
 */
double binomialTailAtLeast(int n, int k, double p);

/**
 * Analytical SEC-DED effectiveness: probability a 72-bit codeword has
 * 2+ raw bit errors (and thus cannot be corrected).
 */
double secDedWordFailureRate(double rawBer);

/**
 * Effective post-correction bit error rate seen by the application:
 * failed words contribute ~2 flipped bits out of 64.
 */
double secDedEffectiveBer(double rawBer);

} // namespace nvmexp

#endif // NVMEXP_FAULT_ECC_HH
