#include "fault/ecc.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "util/logging.hh"

// glibc's lgamma() writes the process-global `signgam` — a data race
// when sweep workers evaluate reliability concurrently. lgamma_r is
// the reentrant form (same computation, sign via out-param); strict
// -std=c++20 hides its <math.h> declaration, so declare it directly.
extern "C" double lgamma_r(double x, int *sign);

namespace nvmexp {

namespace {

/** Thread-safe log-gamma with lgamma()'s values (our arguments are
 *  all >= 1, so the discarded sign is always positive). */
double
logGammaThreadSafe(double x)
{
    int sign = 0;
    return ::lgamma_r(x, &sign);
}

/**
 * Codeword layout: positions 1..71 in standard Hamming order with
 * parity bits at the power-of-two positions (1,2,4,8,16,32,64) and
 * data bits filling the rest; position 0 holds the overall parity.
 * dataPosition(i) maps data bit i (0..63) to its codeword position.
 */
constexpr bool
isPowerOfTwo(int x)
{
    return x > 0 && (x & (x - 1)) == 0;
}

int
dataPosition(int dataBit)
{
    int pos = 0;
    int seen = -1;
    while (seen < dataBit) {
        ++pos;
        if (!isPowerOfTwo(pos))
            ++seen;
    }
    return pos;
}

/** Precomputed position table for the 64 data bits. */
const std::array<int, 64> &
positionTable()
{
    static const std::array<int, 64> table = [] {
        std::array<int, 64> t{};
        for (int i = 0; i < 64; ++i)
            t[(std::size_t)i] = dataPosition(i);
        return t;
    }();
    return table;
}

/** Spread a 64-bit data word into the 72-bit codeword bit array. */
std::array<bool, 72>
layout(std::uint64_t data)
{
    std::array<bool, 72> bits{};
    const auto &table = positionTable();
    for (int i = 0; i < 64; ++i)
        bits[(std::size_t)table[(std::size_t)i]] =
            (data >> i) & 1ull;
    return bits;
}

std::uint64_t
collect(const std::array<bool, 72> &bits)
{
    std::uint64_t data = 0;
    const auto &table = positionTable();
    for (int i = 0; i < 64; ++i)
        if (bits[(std::size_t)table[(std::size_t)i]])
            data |= 1ull << i;
    return data;
}

int
computeSyndrome(const std::array<bool, 72> &bits)
{
    int syndrome = 0;
    for (int pos = 1; pos < 72; ++pos)
        if (bits[(std::size_t)pos])
            syndrome ^= pos;
    return syndrome;
}

bool
overallParity(const std::array<bool, 72> &bits)
{
    bool parity = false;
    for (bool b : bits)
        parity ^= b;
    return parity;
}

/** Pack the 72 bits into (payload, check) for storage. */
std::pair<std::uint64_t, std::uint8_t>
pack(const std::array<bool, 72> &bits)
{
    std::uint64_t payload = 0;
    std::uint8_t check = 0;
    for (int i = 0; i < 64; ++i)
        if (bits[(std::size_t)i])
            payload |= 1ull << i;
    for (int i = 0; i < 8; ++i)
        if (bits[(std::size_t)(64 + i)])
            check |= (std::uint8_t)(1 << i);
    return {payload, check};
}

std::array<bool, 72>
unpack(std::uint64_t payload, std::uint8_t check)
{
    std::array<bool, 72> bits{};
    for (int i = 0; i < 64; ++i)
        bits[(std::size_t)i] = (payload >> i) & 1ull;
    for (int i = 0; i < 8; ++i)
        bits[(std::size_t)(64 + i)] = (check >> i) & 1;
    return bits;
}

} // namespace

std::pair<std::uint64_t, std::uint8_t>
SecDedCodec::encodeWord(std::uint64_t data)
{
    auto bits = layout(data);
    // Set the Hamming parity bits so the syndrome is zero.
    int syndrome = computeSyndrome(bits);
    for (int p = 1; p < 72; p <<= 1)
        bits[(std::size_t)p] = (syndrome & p) != 0;
    // Overall parity covers every stored bit.
    bits[0] = false;
    bits[0] = overallParity(bits);
    return pack(bits);
}

SecDedCodec::DecodeResult
SecDedCodec::decodeWord(std::uint64_t payload, std::uint8_t check)
{
    auto bits = unpack(payload, check);
    int syndrome = computeSyndrome(bits);
    bool parityError = overallParity(bits);

    DecodeResult result;
    if (syndrome == 0 && !parityError) {
        result.outcome = Outcome::Clean;
    } else if (parityError) {
        // Odd number of errors: assume one and correct it. A zero
        // syndrome with bad parity means the overall-parity bit
        // itself flipped.
        if (syndrome != 0 && syndrome < 72)
            bits[(std::size_t)syndrome] =
                !bits[(std::size_t)syndrome];
        result.outcome = Outcome::Corrected;
    } else {
        // Even error count with nonzero syndrome: double error.
        result.outcome = Outcome::Uncorrectable;
    }
    result.data = collect(bits);
    return result;
}

SecDedCodec::EncodedImage
SecDedCodec::encode(std::span<const std::int8_t> data)
{
    EncodedImage image;
    image.dataBytes = data.size();
    std::size_t words = (data.size() + 7) / 8;
    image.payload.reserve(words);
    image.check.reserve(words);
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t word = 0;
        std::size_t base = w * 8;
        std::size_t take = std::min<std::size_t>(8, data.size() - base);
        std::memcpy(&word, data.data() + base, take);
        auto [payload, check] = encodeWord(word);
        image.payload.push_back(payload);
        image.check.push_back(check);
    }
    return image;
}

SecDedCodec::ImageStats
SecDedCodec::decode(const EncodedImage &image, std::span<std::int8_t> out)
{
    if (image.payload.size() != image.check.size())
        fatal("ECC image payload/check size mismatch");
    if (out.size() > image.payload.size() * 8)
        fatal("ECC decode output larger than the encoded image");
    ImageStats stats;
    stats.words = image.payload.size();
    for (std::size_t w = 0; w < image.payload.size(); ++w) {
        DecodeResult r = decodeWord(image.payload[w], image.check[w]);
        if (r.outcome == Outcome::Corrected)
            ++stats.corrected;
        else if (r.outcome == Outcome::Uncorrectable)
            ++stats.uncorrectable;
        std::size_t base = w * 8;
        if (base >= out.size())
            continue;
        std::size_t put = std::min<std::size_t>(8, out.size() - base);
        std::memcpy(out.data() + base, &r.data, put);
    }
    return stats;
}

double
binomialTailAtLeast(int n, int k, double p)
{
    if (n < 0)
        fatal("binomial tail: n must be non-negative, got ", n);
    if (p < 0.0 || p > 1.0)
        fatal("binomial tail: p must lie in [0, 1], got ", p);
    if (k <= 0)
        return 1.0;
    if (k > n || p == 0.0)
        return 0.0;
    if (p == 1.0)
        return 1.0;
    // First tail term P(X == k) in log space (p^k underflows a plain
    // product long before the tail itself does), then the exact term
    // recurrence up to n. n is a codeword size (<~100), so the sum is
    // short and forward-stable.
    double q = 1.0 - p;
    double logTerm = logGammaThreadSafe((double)n + 1.0) -
        logGammaThreadSafe((double)k + 1.0) -
        logGammaThreadSafe((double)(n - k) + 1.0) +
        (double)k * std::log(p) + (double)(n - k) * std::log1p(-p);
    double term = std::exp(logTerm);
    double sum = term;
    for (int j = k; j < n; ++j) {
        term *= (double)(n - j) / (double)(j + 1) * (p / q);
        sum += term;
    }
    return std::min(1.0, sum);
}

double
secDedWordFailureRate(double rawBer)
{
    if (rawBer < 0.0 || rawBer > 1.0)
        fatal("raw BER must lie in [0, 1]");
    return binomialTailAtLeast(72, 2, rawBer);
}

double
secDedEffectiveBer(double rawBer)
{
    // A failed word typically carries 2 wrong bits out of its 64
    // data bits (detected but uncorrected).
    return secDedWordFailureRate(rawBer) * 2.0 / 64.0;
}

} // namespace nvmexp
