#include "fault/fault_model.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

namespace {

/**
 * Baseline sigma/window variation per technology (SLC, at the
 * technology's reference cell size). Calibrated so SLC raw BER lands
 * in the published 1e-9..1e-5 band and 2-bit MLC in 1e-4..1e-2.
 */
double
baseSigma(const MemCell &cell)
{
    switch (cell.tech) {
      case CellTech::SRAM:  return 0.0;     // parametric faults ~ 0
      case CellTech::PCM:   return 0.12;    // resistance drift
      case CellTech::STT:   return 0.105;   // thermal switching noise
      case CellTech::SOT:   return 0.08;
      case CellTech::RRAM:  return 0.055;   // filament variation
      case CellTech::CTT:   return 0.05;    // trapped-charge spread
      case CellTech::FeRAM: return 0.08;
      case CellTech::FeFET: return 0.045;   // at the 16 F^2 reference
      default: panic("bad CellTech in baseSigma");
    }
}

/**
 * FeFET device-to-device variation grows as the ferroelectric area
 * shrinks (fewer grains average out): sigma ~ 1/sqrt(area).
 */
double
areaScaledSigma(const MemCell &cell)
{
    double sigma = baseSigma(cell);
    if (cell.tech == CellTech::FeFET) {
        constexpr double refAreaF2 = 16.0;
        sigma *= std::sqrt(refAreaF2 / cell.areaF2);
    }
    return sigma;
}

} // namespace

FaultModel::FaultModel(const MemCell &cell)
    : levels_(1 << cell.bitsPerCell), bitsPerCell_(cell.bitsPerCell)
{
    double sigma = areaScaledSigma(cell);
    // Normalized storage window [0,1] divided into `levels_` levels;
    // a read error occurs when variation crosses half the spacing.
    double spacing = 1.0 / (double)(levels_ - 1);
    double margin = spacing / 2.0;
    sigmaOverMargin_ = sigma > 0.0 ? sigma / margin : 0.0;
    if (sigma <= 0.0) {
        adjacentRate_ = 0.0;
    } else {
        // Interior levels can err in two directions, edge levels in
        // one; the average direction count is (2L-2)/L.
        double directions = (2.0 * levels_ - 2.0) / (double)levels_;
        adjacentRate_ = directions * qFunction(margin / sigma);
    }
}

double
FaultModel::bitErrorRate() const
{
    // Gray-coded levels: an adjacent-level error flips exactly one of
    // the cell's bits.
    return adjacentRate_ / (double)bitsPerCell_;
}

double
FaultModel::qFunction(double x)
{
    return 0.5 * std::erfc(x / std::sqrt(2.0));
}

} // namespace nvmexp
