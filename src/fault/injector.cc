#include "fault/injector.hh"

#include <cmath>

#include "util/logging.hh"

namespace nvmexp {

FaultInjector::FaultInjector(const FaultModel &model, std::uint64_t seed)
    : model_(model), rng_(seed)
{
}

template <typename Visit>
std::size_t
FaultInjector::sparseTrials(std::size_t n, double p, Visit visit)
{
    if (p <= 0.0 || n == 0)
        return 0;
    if (p >= 1.0) {
        for (std::size_t i = 0; i < n; ++i)
            visit(i);
        return n;
    }
    // Geometric skip sampling: distance to the next success. The
    // running index is a std::size_t — a double accumulator loses
    // exactness past 2^53 bits — and each per-draw skip is bounded
    // against the remaining range before it is added, so the loop
    // terminates without ever overflowing.
    std::size_t hits = 0;
    double logq = std::log1p(-p);
    std::size_t pos = 0;
    while (true) {
        double u = rng_.uniform();
        while (u <= 0.0)
            u = rng_.uniform();
        double skip = std::floor(std::log(u) / logq);
        // Bounded before adding (draw-for-draw identical to the old
        // float accumulator, including the final draw after a hit on
        // the last index, where n - pos == 0).
        if (skip >= (double)(n - pos))
            break;
        pos += (std::size_t)skip;
        if (pos >= n)  // double-rounding guard for n near/past 2^53
            break;
        visit(pos);
        ++hits;
        ++pos;
    }
    return hits;
}

std::size_t
FaultInjector::inject(std::span<std::int8_t> data)
{
    double rate = model_.adjacentLevelErrorRate();
    if (rate <= 0.0 || data.empty())
        return 0;

    if (model_.levels() != 2 && model_.levels() != 4) {
        fatal("FaultInjector supports SLC (2-level) and 2-bit MLC "
              "(4-level) storage; cell has ", model_.levels(),
              " levels");
    }
    int bitsPerCell = model_.levels() == 2 ? 1 : 2;

    std::size_t flipped = 0;
    if (bitsPerCell == 1) {
        // SLC: each stored bit is one cell.
        std::size_t nbits = data.size() * 8;
        flipped = sparseTrials(nbits, rate, [&](std::size_t bit) {
            data[bit / 8] ^= (std::int8_t)(1 << (bit % 8));
        });
    } else {
        // 2-bit MLC: adjacent bit pairs share a cell; a Gray-coded
        // adjacent-level error flips exactly one bit of the pair.
        std::size_t ncells = data.size() * 4;
        flipped = sparseTrials(ncells, rate, [&](std::size_t cellIdx) {
            std::size_t byte = cellIdx / 4;
            int pair = (int)(cellIdx % 4);
            int whichBit = (int)(rng_() & 1);
            data[byte] ^= (std::int8_t)(1 << (pair * 2 + whichBit));
        });
    }
    return flipped;
}

std::size_t
FaultInjector::injectUniform(std::span<std::int8_t> data, double ber)
{
    if (ber < 0.0 || ber > 1.0)
        fatal("bit error rate must lie in [0, 1]");
    std::size_t nbits = data.size() * 8;
    return sparseTrials(nbits, ber, [&](std::size_t bit) {
        data[bit / 8] ^= (std::int8_t)(1 << (bit % 8));
    });
}

} // namespace nvmexp
