/**
 * @file
 * Minimal quantized inference substrate for fault-injection studies.
 *
 * The paper measures application accuracy after storing DNN weights in
 * fault-prone eNVM by injecting faults into PyTorch models. This
 * module provides the C++ equivalent: a small MLP trained (from
 * scratch, via SGD) on a synthetic classification task, quantized to
 * 8-bit weights, whose stored weight image can be corrupted by
 * src/fault and re-evaluated. Accuracy-vs-BER curves produced this way
 * have the same monotone shape and cliff behaviour as the paper's
 * ResNet18 experiments.
 */

#ifndef NVMEXP_DNN_INFERENCE_HH
#define NVMEXP_DNN_INFERENCE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "util/random.hh"

namespace nvmexp {

/**
 * Synthetic K-class Gaussian-cluster classification task with a fixed
 * train/test split; deterministic under a seed.
 */
class SyntheticTask
{
  public:
    SyntheticTask(int dims, int classes, int trainSamples,
                  int testSamples, std::uint64_t seed,
                  double clusterSpread = 0.55);

    int dims() const { return dims_; }
    int classes() const { return classes_; }

    const std::vector<std::vector<float>> &trainX() const
    {
        return trainX_;
    }
    const std::vector<int> &trainY() const { return trainY_; }
    const std::vector<std::vector<float>> &testX() const { return testX_; }
    const std::vector<int> &testY() const { return testY_; }

  private:
    void sample(int count, std::vector<std::vector<float>> &xs,
                std::vector<int> &ys, Rng &rng);

    int dims_;
    int classes_;
    double spread_;
    std::vector<std::vector<float>> centers_;
    std::vector<std::vector<float>> trainX_;
    std::vector<int> trainY_;
    std::vector<std::vector<float>> testX_;
    std::vector<int> testY_;
};

class QuantizedMlp;

/**
 * Float MLP with ReLU hidden layers and softmax/cross-entropy
 * training.
 */
class Mlp
{
  public:
    /** dims = {in, hidden..., out}. */
    Mlp(std::vector<int> dims, std::uint64_t seed);

    /** Train with plain SGD; returns final training accuracy. */
    double train(const SyntheticTask &task, int epochs,
                 double learningRate);

    /** Classify one sample. */
    int predict(std::span<const float> x) const;

    /** Accuracy on a labeled set. */
    double accuracy(const std::vector<std::vector<float>> &xs,
                    const std::vector<int> &ys) const;

    /** Per-tensor symmetric int8 quantization of all weights. */
    QuantizedMlp quantize() const;

    const std::vector<int> &dims() const { return dims_; }

  private:
    friend class QuantizedMlp;

    std::vector<int> dims_;
    /** weights_[l] is a (dims[l+1] x dims[l]) row-major matrix. */
    std::vector<std::vector<float>> weights_;
    std::vector<std::vector<float>> biases_;
};

/**
 * Int8-weight MLP; the weight image is exposed as a mutable span so a
 * FaultInjector can corrupt it in place (biases stay protected, as in
 * the paper's weight-storage studies).
 */
class QuantizedMlp
{
  public:
    int predict(std::span<const float> x) const;
    double accuracy(const std::vector<std::vector<float>> &xs,
                    const std::vector<int> &ys) const;

    /** Mutable view of the full stored weight image. */
    std::span<std::int8_t> weightImage();

    /** Restore the weight image to its post-quantization state. */
    void restore();

    /** Total stored weight bytes. */
    std::size_t weightBytes() const { return image_.size(); }

  private:
    friend class Mlp;

    std::vector<int> dims_;
    std::vector<std::int8_t> image_;    ///< all layers, concatenated
    std::vector<std::int8_t> pristine_; ///< clean copy for restore()
    std::vector<std::size_t> layerOffsets_;
    std::vector<float> scales_;         ///< per-layer dequant scale
    std::vector<std::vector<float>> biases_;
};

} // namespace nvmexp

#endif // NVMEXP_DNN_INFERENCE_HH
