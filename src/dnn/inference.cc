#include "dnn/inference.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace nvmexp {

SyntheticTask::SyntheticTask(int dims, int classes, int trainSamples,
                             int testSamples, std::uint64_t seed,
                             double clusterSpread)
    : dims_(dims), classes_(classes), spread_(clusterSpread)
{
    if (dims < 2 || classes < 2)
        fatal("SyntheticTask needs >= 2 dims and >= 2 classes");
    if (trainSamples < classes || testSamples < classes)
        fatal("SyntheticTask needs at least one sample per class");

    Rng rng(seed);
    centers_.resize(classes_);
    for (auto &center : centers_) {
        center.resize(dims_);
        for (auto &coordinate : center)
            coordinate = (float)rng.gaussian();
    }
    sample(trainSamples, trainX_, trainY_, rng);
    sample(testSamples, testX_, testY_, rng);
}

void
SyntheticTask::sample(int count, std::vector<std::vector<float>> &xs,
                      std::vector<int> &ys, Rng &rng)
{
    xs.resize(count);
    ys.resize(count);
    for (int i = 0; i < count; ++i) {
        int label = (int)rng.range((std::uint64_t)classes_);
        ys[i] = label;
        xs[i].resize(dims_);
        for (int d = 0; d < dims_; ++d) {
            xs[i][d] = centers_[label][d] +
                (float)(spread_ * rng.gaussian());
        }
    }
}

Mlp::Mlp(std::vector<int> dims, std::uint64_t seed) : dims_(std::move(dims))
{
    if (dims_.size() < 2)
        fatal("Mlp needs at least input and output dims");
    for (int d : dims_)
        if (d < 1)
            fatal("Mlp: non-positive layer width");

    Rng rng(seed);
    for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
        int fanIn = dims_[l];
        int fanOut = dims_[l + 1];
        double scale = std::sqrt(2.0 / fanIn);  // He initialization
        std::vector<float> w((std::size_t)fanIn * fanOut);
        for (auto &value : w)
            value = (float)(scale * rng.gaussian());
        weights_.push_back(std::move(w));
        biases_.emplace_back((std::size_t)fanOut, 0.0f);
    }
}

namespace {

/** y = W x + b, W is (out x in) row-major. */
void
denseForward(const std::vector<float> &w, const std::vector<float> &b,
             std::span<const float> x, std::vector<float> &y)
{
    std::size_t out = b.size();
    std::size_t in = x.size();
    y.resize(out);
    for (std::size_t o = 0; o < out; ++o) {
        float acc = b[o];
        const float *row = &w[o * in];
        for (std::size_t i = 0; i < in; ++i)
            acc += row[i] * x[i];
        y[o] = acc;
    }
}

void
softmaxInPlace(std::vector<float> &v)
{
    float mx = *std::max_element(v.begin(), v.end());
    float sum = 0.0f;
    for (auto &value : v) {
        value = std::exp(value - mx);
        sum += value;
    }
    for (auto &value : v)
        value /= sum;
}

} // namespace

double
Mlp::train(const SyntheticTask &task, int epochs, double learningRate)
{
    if ((int)task.trainX()[0].size() != dims_.front())
        fatal("Mlp/train: input dim mismatch");
    if (task.classes() != dims_.back())
        fatal("Mlp/train: output dim mismatch");

    const auto &xs = task.trainX();
    const auto &ys = task.trainY();
    std::vector<std::size_t> order(xs.size());
    std::iota(order.begin(), order.end(), 0);
    Rng shuffleRng(0xBEEF);

    std::size_t nLayers = weights_.size();
    std::vector<std::vector<float>> acts(nLayers + 1);
    std::vector<std::vector<float>> deltas(nLayers);

    for (int epoch = 0; epoch < epochs; ++epoch) {
        // Fisher-Yates shuffle with the project Rng.
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[shuffleRng.range(i)]);

        for (std::size_t sampleIdx : order) {
            // Forward with ReLU on hidden layers.
            acts[0].assign(xs[sampleIdx].begin(), xs[sampleIdx].end());
            for (std::size_t l = 0; l < nLayers; ++l) {
                denseForward(weights_[l], biases_[l], acts[l],
                             acts[l + 1]);
                if (l + 1 < nLayers) {
                    for (auto &value : acts[l + 1])
                        value = std::max(value, 0.0f);
                }
            }
            softmaxInPlace(acts[nLayers]);

            // Backward: softmax + cross entropy.
            deltas[nLayers - 1] = acts[nLayers];
            deltas[nLayers - 1][(std::size_t)ys[sampleIdx]] -= 1.0f;
            for (std::size_t l = nLayers - 1; l > 0; --l) {
                std::size_t in = acts[l].size();
                std::size_t out = deltas[l].size();
                deltas[l - 1].assign(in, 0.0f);
                for (std::size_t o = 0; o < out; ++o) {
                    const float *row = &weights_[l][o * in];
                    float d = deltas[l][o];
                    for (std::size_t i = 0; i < in; ++i)
                        deltas[l - 1][i] += row[i] * d;
                }
                for (std::size_t i = 0; i < in; ++i)
                    if (acts[l][i] <= 0.0f)
                        deltas[l - 1][i] = 0.0f;
            }
            // SGD update.
            for (std::size_t l = 0; l < nLayers; ++l) {
                std::size_t in = acts[l].size();
                std::size_t out = deltas[l].size();
                for (std::size_t o = 0; o < out; ++o) {
                    float d = (float)learningRate * deltas[l][o];
                    float *row = &weights_[l][o * in];
                    for (std::size_t i = 0; i < in; ++i)
                        row[i] -= d * acts[l][i];
                    biases_[l][o] -= d;
                }
            }
        }
    }
    return accuracy(task.trainX(), task.trainY());
}

int
Mlp::predict(std::span<const float> x) const
{
    std::vector<float> cur(x.begin(), x.end());
    std::vector<float> next;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        denseForward(weights_[l], biases_[l], cur, next);
        if (l + 1 < weights_.size()) {
            for (auto &value : next)
                value = std::max(value, 0.0f);
        }
        cur.swap(next);
    }
    return (int)(std::max_element(cur.begin(), cur.end()) - cur.begin());
}

double
Mlp::accuracy(const std::vector<std::vector<float>> &xs,
              const std::vector<int> &ys) const
{
    if (xs.size() != ys.size() || xs.empty())
        fatal("accuracy: bad labeled set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        if (predict(xs[i]) == ys[i])
            ++correct;
    return (double)correct / (double)xs.size();
}

QuantizedMlp
Mlp::quantize() const
{
    QuantizedMlp q;
    q.dims_ = dims_;
    q.biases_ = biases_;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
        float mx = 0.0f;
        for (float value : weights_[l])
            mx = std::max(mx, std::fabs(value));
        float scale = mx > 0.0f ? mx / 127.0f : 1.0f;
        q.scales_.push_back(scale);
        q.layerOffsets_.push_back(q.image_.size());
        for (float value : weights_[l]) {
            int qv = (int)std::lround(value / scale);
            qv = std::clamp(qv, -127, 127);
            q.image_.push_back((std::int8_t)qv);
        }
    }
    q.layerOffsets_.push_back(q.image_.size());
    q.pristine_ = q.image_;
    return q;
}

int
QuantizedMlp::predict(std::span<const float> x) const
{
    std::vector<float> cur(x.begin(), x.end());
    std::vector<float> next;
    std::size_t nLayers = scales_.size();
    for (std::size_t l = 0; l < nLayers; ++l) {
        std::size_t in = (std::size_t)dims_[l];
        std::size_t out = (std::size_t)dims_[l + 1];
        next.resize(out);
        const std::int8_t *w = &image_[layerOffsets_[l]];
        for (std::size_t o = 0; o < out; ++o) {
            float acc = biases_[l][o];
            const std::int8_t *row = &w[o * in];
            for (std::size_t i = 0; i < in; ++i)
                acc += scales_[l] * (float)row[i] * cur[i];
            next[o] = l + 1 < nLayers ? std::max(acc, 0.0f) : acc;
        }
        cur.swap(next);
    }
    return (int)(std::max_element(cur.begin(), cur.end()) - cur.begin());
}

double
QuantizedMlp::accuracy(const std::vector<std::vector<float>> &xs,
                       const std::vector<int> &ys) const
{
    if (xs.size() != ys.size() || xs.empty())
        fatal("accuracy: bad labeled set");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < xs.size(); ++i)
        if (predict(xs[i]) == ys[i])
            ++correct;
    return (double)correct / (double)xs.size();
}

std::span<std::int8_t>
QuantizedMlp::weightImage()
{
    return {image_.data(), image_.size()};
}

void
QuantizedMlp::restore()
{
    image_ = pristine_;
}

} // namespace nvmexp
