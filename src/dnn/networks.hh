/**
 * @file
 * Network catalog and DNN buffer-traffic extraction (the paper's
 * NVDLA-performance-model role, Sec. IV-A).
 *
 * The catalog provides the workloads of the paper's DNN case studies:
 * ResNet26 (edge image tasks on NVDLA), ResNet18 (the Fig. 13 fault
 * study), and ALBERT (NLP). Traffic extraction converts a deployment
 * scenario (single vs. multi-task, weights-only vs. weights +
 * activations, frame rate) into a TrafficPattern against the on-chip
 * buffer.
 */

#ifndef NVMEXP_DNN_NETWORKS_HH
#define NVMEXP_DNN_NETWORKS_HH

#include "dnn/layers.hh"
#include "eval/traffic.hh"

namespace nvmexp {

/** CIFAR-style 26-layer residual network (~1.7M parameters). */
NetworkModel resnet26();

/** ImageNet-style 18-layer residual network (~11.7M parameters). */
NetworkModel resnet18();

/** ALBERT-base: factorized embeddings + one shared transformer block
 *  executed 12 times (~12M parameters, high weight re-reads). */
NetworkModel albertBase();

/** ALBERT embeddings only (the Table II "Embeddings Only" row). */
NetworkModel albertEmbeddings();

/** What the on-chip buffer stores. */
enum class DnnStorage { WeightsOnly, WeightsAndActivations };

/** Deployment scenario for traffic extraction. */
struct DnnScenario
{
    NetworkModel network;
    int tasks = 1;              ///< concurrent tasks (multi-task = 3)
    DnnStorage storage = DnnStorage::WeightsOnly;
    double framesPerSec = 60.0; ///< inference rate
    int weightBits = 8;
    int activationBits = 8;
    int wordBits = 512;         ///< buffer access width
};

/** Per-frame access counts against the on-chip buffer. */
struct DnnAccessProfile
{
    double readWordsPerFrame = 0.0;
    double writeWordsPerFrame = 0.0;
    double footprintBytes = 0.0;  ///< weights (+peak activations)
};

/** Extract per-frame buffer accesses for a scenario. */
DnnAccessProfile extractAccessProfile(const DnnScenario &scenario);

/** Extract the sustained TrafficPattern for a scenario. */
TrafficPattern dnnTraffic(const DnnScenario &scenario);

} // namespace nvmexp

#endif // NVMEXP_DNN_NETWORKS_HH
