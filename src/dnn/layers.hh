/**
 * @file
 * DNN layer-shape models.
 *
 * The paper extracts on-chip buffer traffic for DNN workloads from the
 * NVDLA performance model; this module provides the equivalent
 * substrate: layer shapes with weight/activation/MAC counts that the
 * traffic extractor (networks.hh) turns into per-frame access counts.
 */

#ifndef NVMEXP_DNN_LAYERS_HH
#define NVMEXP_DNN_LAYERS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvmexp {

/** Supported layer families. */
enum class LayerKind { Conv, FullyConnected, Embedding };

/**
 * One layer's shape. Convolutions are square-kernel, same-channel
 * groups=1; FullyConnected is (inC -> outC); Embedding is a lookup
 * table of inC entries x outC dims read sparsely.
 */
struct LayerSpec
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    int inC = 1;      ///< input channels / FC inputs / vocab size
    int outC = 1;     ///< output channels / FC outputs / embed dims
    int kernel = 1;   ///< conv kernel edge
    int outH = 1;     ///< output feature-map height
    int outW = 1;     ///< output feature-map width
    /** Embedding: average lookups per inference (tokens). */
    int lookupsPerInference = 0;

    /** Parameter count (weights + per-output bias for conv/FC). */
    std::int64_t weightCount() const;

    /** Activations produced per inference. */
    std::int64_t outputCount() const;

    /** Multiply-accumulates per inference. */
    std::int64_t macs() const;

    /** Sanity checks; fatal() on invalid shapes. */
    void validate() const;

    /** Shorthand constructors. */
    static LayerSpec conv(const std::string &name, int inC, int outC,
                          int kernel, int outH, int outW);
    static LayerSpec fc(const std::string &name, int inC, int outC);
    static LayerSpec embedding(const std::string &name, int vocab,
                               int dims, int lookups);
};

/**
 * A whole network: an ordered list of layers plus repetition counts
 * for weight-shared blocks (ALBERT reuses one transformer block's
 * weights across all its layers).
 */
struct NetworkModel
{
    std::string name;
    std::vector<LayerSpec> layers;
    /**
     * Per-layer execution multiplicity: layer i runs timesExecuted[i]
     * times per inference while its weights are stored once.
     * Empty = all ones.
     */
    std::vector<int> timesExecuted;

    /** Unique parameters stored on chip. */
    std::int64_t totalWeights() const;
    /** Bytes of weight storage at the given precision. */
    double weightBytes(int bitsPerWeight = 8) const;

    /** Activations produced per inference (all executions). */
    std::int64_t totalActivations() const;
    /** Bytes of activation traffic per inference. */
    double activationBytes(int bitsPerAct = 8) const;

    /** Weight values *read* per inference (shared weights re-read). */
    std::int64_t weightReadsPerInference() const;

    /** MACs per inference. */
    std::int64_t totalMacs() const;

    void validate() const;
};

} // namespace nvmexp

#endif // NVMEXP_DNN_LAYERS_HH
