#include "dnn/networks.hh"

#include "util/logging.hh"

namespace nvmexp {

NetworkModel
resnet26()
{
    // CIFAR-style ResNet-26: stem + 3 stages x 4 basic blocks x 2
    // convs + classifier = 26 weight layers, ~1.6M parameters.
    NetworkModel net;
    net.name = "ResNet26";
    net.layers.push_back(LayerSpec::conv("stem", 3, 32, 3, 32, 32));
    auto stage = [&](const std::string &prefix, int inC, int outC,
                     int hw) {
        for (int b = 0; b < 4; ++b) {
            int cin = b == 0 ? inC : outC;
            net.layers.push_back(LayerSpec::conv(
                prefix + ".b" + std::to_string(b) + ".conv1", cin, outC,
                3, hw, hw));
            net.layers.push_back(LayerSpec::conv(
                prefix + ".b" + std::to_string(b) + ".conv2", outC, outC,
                3, hw, hw));
        }
    };
    stage("stage1", 32, 32, 32);
    stage("stage2", 32, 64, 16);
    stage("stage3", 64, 128, 8);
    net.layers.push_back(LayerSpec::fc("fc", 128, 1000));
    net.validate();
    return net;
}

NetworkModel
resnet18()
{
    // ImageNet-style ResNet-18 (~11.7M parameters).
    NetworkModel net;
    net.name = "ResNet18";
    net.layers.push_back(LayerSpec::conv("stem", 3, 64, 7, 112, 112));
    struct StageSpec { int inC, outC, hw; };
    const StageSpec stages[] = {
        {64, 64, 56}, {64, 128, 28}, {128, 256, 14}, {256, 512, 7},
    };
    int idx = 0;
    for (const auto &s : stages) {
        for (int b = 0; b < 2; ++b) {
            int cin = b == 0 ? s.inC : s.outC;
            std::string prefix = "layer" + std::to_string(idx) + ".b" +
                std::to_string(b);
            net.layers.push_back(LayerSpec::conv(prefix + ".conv1", cin,
                                                 s.outC, 3, s.hw, s.hw));
            net.layers.push_back(LayerSpec::conv(prefix + ".conv2",
                                                 s.outC, s.outC, 3, s.hw,
                                                 s.hw));
            if (b == 0 && s.inC != s.outC) {
                net.layers.push_back(LayerSpec::conv(
                    prefix + ".down", s.inC, s.outC, 1, s.hw, s.hw));
            }
        }
        ++idx;
    }
    net.layers.push_back(LayerSpec::fc("fc", 512, 1000));
    net.validate();
    return net;
}

NetworkModel
albertBase()
{
    // ALBERT-base: factorized embedding (30k x 128 -> 768) plus ONE
    // transformer block whose weights are shared across 12 layer
    // executions; 128-token sequences.
    constexpr int kSeqLen = 128;
    constexpr int kHidden = 768;
    NetworkModel net;
    net.name = "ALBERT";
    net.layers.push_back(
        LayerSpec::embedding("embeddings", 30000, 128, kSeqLen));
    net.layers.push_back(LayerSpec::fc("embed_proj", 128, kHidden));
    // Shared block: Q,K,V,O projections + 2 FFN matrices. Modeled as
    // FC layers applied per token (outputs scaled via timesExecuted).
    net.layers.push_back(LayerSpec::fc("attn_qkv", kHidden, 3 * kHidden));
    net.layers.push_back(LayerSpec::fc("attn_out", kHidden, kHidden));
    net.layers.push_back(LayerSpec::fc("ffn_up", kHidden, 4 * kHidden));
    net.layers.push_back(LayerSpec::fc("ffn_down", 4 * kHidden, kHidden));
    net.layers.push_back(LayerSpec::fc("classifier", kHidden, kHidden));
    // Execution multiplicity: the shared block runs 12 times, and each
    // FC applies per token.
    net.timesExecuted = {
        1,                  // embeddings
        kSeqLen,            // projection per token
        12 * kSeqLen,       // attn_qkv
        12 * kSeqLen,       // attn_out
        12 * kSeqLen,       // ffn_up
        12 * kSeqLen,       // ffn_down
        1,                  // classifier (CLS token)
    };
    net.validate();
    return net;
}

NetworkModel
albertEmbeddings()
{
    constexpr int kSeqLen = 128;
    NetworkModel net;
    net.name = "ALBERT-Emb";
    net.layers.push_back(
        LayerSpec::embedding("embeddings", 30000, 128, kSeqLen));
    net.layers.push_back(LayerSpec::fc("embed_proj", 128, 768));
    net.timesExecuted = {1, kSeqLen};
    net.validate();
    return net;
}

DnnAccessProfile
extractAccessProfile(const DnnScenario &scenario)
{
    scenario.network.validate();
    if (scenario.tasks < 1)
        fatal("DNN scenario needs at least one task");
    if (scenario.wordBits < 8)
        fatal("DNN scenario: invalid buffer word size");

    double wordBytes = (double)scenario.wordBits / 8.0;
    const NetworkModel &net = scenario.network;

    // Weight traffic: every executed layer streams its (possibly
    // shared) weights from the buffer once per inference. Weight reads
    // exceed stored weights when blocks are weight-shared (ALBERT).
    double weightReadBytes = (double)net.weightReadsPerInference() *
        scenario.weightBits / 8.0;
    double reads = weightReadBytes / wordBytes;
    double writes = 0.0;
    double footprint = net.weightBytes(scenario.weightBits);

    if (scenario.storage == DnnStorage::WeightsAndActivations) {
        double actBytes = net.activationBytes(scenario.activationBits);
        // Each activation is produced (written) once and consumed
        // (read) once by the next layer.
        writes += actBytes / wordBytes;
        reads += actBytes / wordBytes;
        // Peak live activations ~ the largest layer output; a coarse
        // 10% of total activation traffic bounds double-buffering.
        footprint += 0.1 * actBytes;
    }

    DnnAccessProfile profile;
    profile.readWordsPerFrame = reads * scenario.tasks;
    profile.writeWordsPerFrame = writes * scenario.tasks;
    profile.footprintBytes = footprint * scenario.tasks;
    return profile;
}

TrafficPattern
dnnTraffic(const DnnScenario &scenario)
{
    DnnAccessProfile profile = extractAccessProfile(scenario);
    std::string label = scenario.network.name +
        (scenario.tasks > 1 ? "-multi" : "-single") +
        (scenario.storage == DnnStorage::WeightsAndActivations
             ? "-w+a" : "-w");
    TrafficPattern t;
    t.name = label;
    t.execTime = 1.0 / scenario.framesPerSec;
    t.readsPerSec = profile.readWordsPerFrame * scenario.framesPerSec;
    t.writesPerSec = profile.writeWordsPerFrame * scenario.framesPerSec;
    t.validate();
    return t;
}

} // namespace nvmexp
