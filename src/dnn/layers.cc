#include "dnn/layers.hh"

#include "util/logging.hh"

namespace nvmexp {

std::int64_t
LayerSpec::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return (std::int64_t)inC * outC * kernel * kernel + outC;
      case LayerKind::FullyConnected:
        return (std::int64_t)inC * outC + outC;
      case LayerKind::Embedding:
        return (std::int64_t)inC * outC;
      default: panic("bad LayerKind");
    }
}

std::int64_t
LayerSpec::outputCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return (std::int64_t)outC * outH * outW;
      case LayerKind::FullyConnected:
        return outC;
      case LayerKind::Embedding:
        return (std::int64_t)lookupsPerInference * outC;
      default: panic("bad LayerKind");
    }
}

std::int64_t
LayerSpec::macs() const
{
    switch (kind) {
      case LayerKind::Conv:
        return (std::int64_t)outC * outH * outW * inC * kernel * kernel;
      case LayerKind::FullyConnected:
        return (std::int64_t)inC * outC;
      case LayerKind::Embedding:
        return 0;  // table lookups, no arithmetic
      default: panic("bad LayerKind");
    }
}

void
LayerSpec::validate() const
{
    if (inC < 1 || outC < 1)
        fatal("layer '", name, "': non-positive channel counts");
    if (kind == LayerKind::Conv && (kernel < 1 || outH < 1 || outW < 1))
        fatal("layer '", name, "': invalid conv geometry");
    if (kind == LayerKind::Embedding && lookupsPerInference < 1)
        fatal("layer '", name, "': embedding needs lookups/inference");
}

LayerSpec
LayerSpec::conv(const std::string &name, int inC, int outC, int kernel,
                int outH, int outW)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.inC = inC;
    l.outC = outC;
    l.kernel = kernel;
    l.outH = outH;
    l.outW = outW;
    l.validate();
    return l;
}

LayerSpec
LayerSpec::fc(const std::string &name, int inC, int outC)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.inC = inC;
    l.outC = outC;
    l.validate();
    return l;
}

LayerSpec
LayerSpec::embedding(const std::string &name, int vocab, int dims,
                     int lookups)
{
    LayerSpec l;
    l.name = name;
    l.kind = LayerKind::Embedding;
    l.inC = vocab;
    l.outC = dims;
    l.lookupsPerInference = lookups;
    l.validate();
    return l;
}

std::int64_t
NetworkModel::totalWeights() const
{
    std::int64_t total = 0;
    for (const auto &layer : layers)
        total += layer.weightCount();
    return total;
}

double
NetworkModel::weightBytes(int bitsPerWeight) const
{
    return (double)totalWeights() * bitsPerWeight / 8.0;
}

std::int64_t
NetworkModel::totalActivations() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        int times = timesExecuted.empty() ? 1 : timesExecuted[i];
        total += layers[i].outputCount() * times;
    }
    return total;
}

double
NetworkModel::activationBytes(int bitsPerAct) const
{
    return (double)totalActivations() * bitsPerAct / 8.0;
}

std::int64_t
NetworkModel::weightReadsPerInference() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        int times = timesExecuted.empty() ? 1 : timesExecuted[i];
        if (layers[i].kind == LayerKind::Embedding) {
            // Sparse lookups: only the selected rows are read.
            total += (std::int64_t)layers[i].lookupsPerInference *
                layers[i].outC * times;
        } else {
            total += layers[i].weightCount() * times;
        }
    }
    return total;
}

std::int64_t
NetworkModel::totalMacs() const
{
    std::int64_t total = 0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        int times = timesExecuted.empty() ? 1 : timesExecuted[i];
        total += layers[i].macs() * times;
    }
    return total;
}

void
NetworkModel::validate() const
{
    if (layers.empty())
        fatal("network '", name, "' has no layers");
    if (!timesExecuted.empty() && timesExecuted.size() != layers.size())
        fatal("network '", name, "': timesExecuted size mismatch");
    for (const auto &layer : layers)
        layer.validate();
    for (int times : timesExecuted)
        if (times < 1)
            fatal("network '", name, "': non-positive execution count");
}

} // namespace nvmexp
