/**
 * @file
 * Regenerates Fig. 6: (left) continuous-operation total memory power
 * per DNN deployment scenario at 60 FPS; (right) intermittent
 * energy-per-inference. Candidates failing the 60 FPS long-pole or
 * accuracy targets are excluded, as in the paper.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);

    Table left("Fig 6 (left): continuous operating power @60FPS",
               {"Cell", "Scenario", "Power[mW]", "LatencyLoad",
                "Included"});
    for (const auto &row : studies::dnnContinuousPower()) {
        bool included = row.meetsFps && row.meetsAccuracy;
        left.row()
            .add(row.cell)
            .add(row.scenario)
            .add(row.totalPowerW * 1e3)
            .add(row.latencyLoad)
            .add(included ? "yes" : "excluded");
    }
    left.print(std::cout);
    left.writeCsv("fig6_left_power.csv");

    Table right("Fig 6 (right): intermittent energy per inference "
                "(1 inference/sec)",
                {"Cell", "Task", "E/inference[uJ]", "E/day[J]",
                 "Included"});
    for (const auto &row : studies::dnnIntermittentEnergy({86400.0})) {
        if (row.task != "img-single" && row.task != "img-multi")
            continue;
        bool included = row.meetsLatency && row.meetsAccuracy;
        right.row()
            .add(row.cell)
            .add(row.task)
            .add(row.energyPerEvent * 1e6)
            .add(row.energyPerDay)
            .add(included ? "yes" : "excluded");
    }
    right.print(std::cout);
    right.writeCsv("fig6_right_intermittent.csv");
    return 0;
}
