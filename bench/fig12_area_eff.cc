/**
 * @file
 * Regenerates Fig. 12: trading area efficiency for performance. Array
 * organizations with lower area efficiency (less periphery
 * amortization) tend to deliver lower access latency; the bench
 * reports the correlation per technology across the full enumerated
 * design space at 8 MB.
 */

#include <iostream>
#include <map>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto arrays = studies::areaEfficiencyStudy();

    AsciiPlot plot("Fig 12: read latency vs area efficiency (8MB)",
                   "area efficiency", "read latency [s]");
    plot.setYScale(AxisScale::Log10);

    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> perCell;
    std::string lastSeries;
    for (const auto &array : arrays) {
        if (array.cell.name != lastSeries) {
            plot.addSeries(array.cell.name);
            lastSeries = array.cell.name;
        }
        plot.addPoint(array.cell.name, array.areaEfficiency,
                      array.readLatency);
        auto &series = perCell[array.cell.name];
        series.first.push_back(array.areaEfficiency);
        series.second.push_back(array.readLatency);
    }
    plot.print(std::cout);

    Table table("Fig 12: area-efficiency vs latency correlation",
                {"Cell", "DesignPoints", "Corr(aeff, readLat)",
                 "MinAeff", "MaxAeff"});
    for (const auto &[name, series] : perCell) {
        RunningStats aeff;
        for (double a : series.first)
            aeff.add(a);
        double corr = series.first.size() > 2
            ? pearson(series.first, series.second) : 0.0;
        table.row()
            .add(name)
            .add((long long)series.first.size())
            .add(corr)
            .add(aeff.min())
            .add(aeff.max());
    }
    table.print(std::cout);
    table.writeCsv("fig12_area_eff.csv");
    return 0;
}
