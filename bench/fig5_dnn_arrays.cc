/**
 * @file
 * Regenerates Fig. 5: read characteristics and storage density of
 * 2 MB arrays provisioned to replace the NVDLA on-chip SRAM buffer.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto arrays = studies::dnnBufferArrays();

    Table table("Fig 5: 2MB NVDLA buffer arrays (ReadEDP-optimized)",
                {"Cell", "ReadLat[ns]", "ReadE[pJ/acc]",
                 "Density[Mb/mm2]", "Area[mm2]", "Leak[mW]"});
    AsciiPlot plot("Fig 5: read energy vs read latency (2MB)",
                   "read latency [s]", "read energy [J]");
    plot.setXScale(AxisScale::Log10);
    plot.setYScale(AxisScale::Log10);
    AsciiPlot density("Fig 5: storage density per cell",
                      "cell index", "density [Mb/mm2]");
    density.setYScale(AxisScale::Log10);
    density.addSeries("density");

    double sramDensity = 0.0;
    for (std::size_t i = 0; i < arrays.size(); ++i) {
        const auto &array = arrays[i];
        table.row()
            .add(array.cell.name)
            .add(array.readLatency * 1e9)
            .add(array.readEnergy * 1e12)
            .add(array.densityMbPerMm2())
            .add(array.areaM2 * 1e6)
            .add(array.leakage * 1e3);
        plot.addSeries(array.cell.name);
        plot.addPoint(array.cell.name, array.readLatency,
                      array.readEnergy);
        density.addPoint("density", (double)i, array.densityMbPerMm2());
        if (array.cell.tech == CellTech::SRAM)
            sramDensity = array.densityMbPerMm2();
        else if (array.cell.name == "STT-Opt" && sramDensity > 0.0) {
            std::cout << "STT-Opt density advantage over SRAM: "
                      << array.densityMbPerMm2() / sramDensity << "x\n";
        }
    }
    table.print(std::cout);
    table.writeCsv("fig5_dnn_arrays.csv");
    plot.print(std::cout);
    density.print(std::cout);
    return 0;
}
