/**
 * @file
 * Regenerates Fig. 8: graph-processing scratchpad study. Total memory
 * power vs read traffic, total memory latency vs write traffic, and
 * projected lifetime vs write traffic over generic 1-10 GB/s x
 * 1-100 MB/s patterns, plus BFS points for two social graphs.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

namespace {

void
addPlots(const std::vector<EvalResult> &results, const char *tag)
{
    AsciiPlot power(std::string("Fig 8a power vs reads/s (") + tag + ")",
                    "reads per second", "total power [W]");
    AsciiPlot latency(std::string("Fig 8b latency load vs writes/s (") +
                          tag + ")",
                      "writes per second", "latency load [s/s]");
    AsciiPlot lifetime(std::string("Fig 8c lifetime vs writes/s (") +
                           tag + ")",
                       "writes per second", "lifetime [yr]");
    for (auto *plot : {&power, &latency, &lifetime}) {
        plot->setXScale(AxisScale::Log10);
        plot->setYScale(AxisScale::Log10);
    }
    std::string lastSeries;
    for (const auto &ev : results) {
        if (ev.array.cell.name != lastSeries) {
            power.addSeries(ev.array.cell.name);
            latency.addSeries(ev.array.cell.name);
            lifetime.addSeries(ev.array.cell.name);
            lastSeries = ev.array.cell.name;
        }
        power.addPoint(ev.array.cell.name, ev.traffic.readsPerSec,
                       ev.totalPower);
        latency.addPoint(ev.array.cell.name, ev.traffic.writesPerSec,
                         ev.latencyLoad);
        if (std::isfinite(ev.lifetimeYears())) {
            lifetime.addPoint(ev.array.cell.name,
                              ev.traffic.writesPerSec,
                              ev.lifetimeYears());
        }
    }
    power.print(std::cout);
    latency.print(std::cout);
    lifetime.print(std::cout);
}

} // namespace

int
main()
{
    setQuiet(true);
    auto study = studies::graphStudy();

    Table generic("Fig 8: generic graph traffic sweep (8MB, 8B words)",
                  {"Cell", "Reads/s", "Writes/s", "Power[mW]",
                   "LatencyLoad", "Lifetime[yr]", "Viable"});
    for (const auto &ev : study.generic) {
        generic.row()
            .add(ev.array.cell.name)
            .add(ev.traffic.readsPerSec)
            .add(ev.traffic.writesPerSec)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.lifetimeYears())
            .add(ev.viable() ? "yes" : "no");
    }
    generic.print(std::cout);
    generic.writeCsv("fig8_generic.csv");
    addPlots(study.generic, "generic");

    Table kernels("Fig 8: BFS kernel points (pink markers)",
                  {"Cell", "Kernel", "Power[mW]", "LatencyLoad",
                   "Lifetime[yr]", "Viable"});
    for (const auto &ev : study.kernels) {
        kernels.row()
            .add(ev.array.cell.name)
            .add(ev.traffic.name)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.lifetimeYears())
            .add(ev.viable() ? "yes" : "no");
    }
    kernels.print(std::cout);
    kernels.writeCsv("fig8_kernels.csv");
    return 0;
}
