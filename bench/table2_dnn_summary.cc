/**
 * @file
 * Regenerates Table II: the preferred eNVM per DNN use case, task,
 * storage strategy, and optimization priority, under optimistic
 * ("Opt. eNVM") and pessimistic/reference ("Alt. eNVM") assumptions.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    Table table("Table II: preferred eNVM per DNN use case",
                {"Use Case", "Task", "Storage", "Priority", "Opt eNVM",
                 "Alt eNVM"});
    for (const auto &row : studies::dnnUseCaseSummary()) {
        table.row()
            .add(row.useCase)
            .add(row.task)
            .add(row.storage)
            .add(row.priority)
            .add(row.optChoice)
            .add(row.altChoice);
    }
    table.print(std::cout);
    table.writeCsv("table2_summary.csv");
    return 0;
}
