/**
 * @file
 * Regenerates Fig. 13: SLC vs 2-bit MLC storage of DNN weights with
 * real fault injection. MLC RRAM (and CTT) keep inference accuracy;
 * MLC FeFET is only acceptable at large cell sizes because
 * device-to-device variation grows as the cell shrinks.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "fault/ecc.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto rows = studies::mlcFaultStudy();

    Table table("Fig 13: SLC vs MLC fault-injected accuracy + density",
                {"Cell", "BPC", "CellArea[F2]", "BER", "Accuracy",
                 "Baseline", "Density[Mb/mm2]", "Capacity[MiB]",
                 "FitsResNet18", "AccuracyOK"});
    for (const auto &row : rows) {
        table.row()
            .add(row.cell)
            .add(row.bitsPerCell)
            .add(row.cellAreaF2)
            .add(row.bitErrorRate)
            .add(row.accuracy)
            .add(row.baselineAccuracy)
            .add(row.densityMbPerMm2)
            .add(row.capacityBytes / (1024.0 * 1024.0))
            .add(row.fitsWeights ? "yes" : "no")
            .add(row.meetsAccuracy ? "yes" : "EXCLUDED");
    }
    table.print(std::cout);
    table.writeCsv("fig13_mlc_faults.csv");

    // Extension: would Hamming(72,64) SEC-DED rescue the excluded
    // configurations? (MaxNVM-style error mitigation; 12.5% storage
    // overhead.)
    Table ecc("Extension: SEC-DED rescue analysis (per unique cell)",
              {"Cell", "RawBER", "PostEccBER", "EccRescues"});
    std::string lastCell;
    for (const auto &row : rows) {
        if (row.cell == lastCell)
            continue;  // one row per cell, not per capacity
        lastCell = row.cell;
        double post = secDedEffectiveBer(row.bitErrorRate);
        // The ~2e-3 tolerance calibrated by the injection study.
        bool rescued = !row.meetsAccuracy && post < 2e-3;
        ecc.row()
            .add(row.cell)
            .add(row.bitErrorRate)
            .add(post)
            .add(row.meetsAccuracy ? "not needed"
                                   : (rescued ? "YES" : "no"));
    }
    ecc.print(std::cout);
    ecc.writeCsv("fig13_ecc_extension.csv");
    return 0;
}
