/**
 * @file
 * google-benchmark coverage of the sweep inner loop: the batched
 * structure-of-arrays evaluation path (eval/batch.hh) against the
 * per-point reference path, across worker counts, with and without a
 * reliability axis, and the full store-backed run() cold vs warm.
 *
 * CI runs this with --benchmark_out=BENCH_sweep.json and diffs the
 * result against the committed snapshot (tools/bench_gate.py). The
 * gate compares ratios *within* one file — every benchmark normalized
 * by BM_SweepEvalScalar/1 — so the committed numbers stay meaningful
 * across machines; it also asserts the batched path's headline >= 2x
 * speedup over scalar on the wide sweep.
 */

#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "support/bench_fixtures.hh"

using namespace nvmexp;

namespace {

/** The wide sweep's 16 characterized arrays, computed once: the
 *  benchmarks isolate the evaluation stage, not characterization. */
const std::vector<ArrayResult> &
benchArrays()
{
    static const std::vector<ArrayResult> arrays = [] {
        ParallelSweepRunner runner(0);
        return runner.characterize(benchsupport::wideSweep(false));
    }();
    return arrays;
}

/** One runner per worker count, reused across iterations so the
 *  persistent pool's creation cost isn't measured. */
ParallelSweepRunner &
runnerFor(int jobs)
{
    static ParallelSweepRunner runners[] = {
        ParallelSweepRunner(1), ParallelSweepRunner(4),
        ParallelSweepRunner(8)};
    return runners[jobs == 1 ? 0 : jobs == 4 ? 1 : 2];
}

/** Scalar reference path, reliability axis on (384 slots). The
 *  regression gate's normalization reference at Arg(1). */
void
BM_SweepEvalScalar(benchmark::State &state)
{
    const auto &arrays = benchArrays();
    SweepConfig config = benchsupport::wideSweep(true);
    ParallelSweepRunner &runner = runnerFor((int)state.range(0));
    for (auto _ : state) {
        auto results = runner.evaluateAllScalar(arrays, config.traffics,
                                                config.reliability);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        (std::int64_t)state.iterations() *
        (std::int64_t)(arrays.size() * config.traffics.size() *
                       config.reliability.size()));
}
BENCHMARK(BM_SweepEvalScalar)->Arg(1)->Arg(4)->Arg(8);

/** Batched path over the same 384 slots: base evaluation hoisted per
 *  (array, traffic) run, reliability per (array, spec) entry. */
void
BM_SweepEvalBatched(benchmark::State &state)
{
    const auto &arrays = benchArrays();
    SweepConfig config = benchsupport::wideSweep(true);
    ParallelSweepRunner &runner = runnerFor((int)state.range(0));
    for (auto _ : state) {
        auto results = runner.evaluateAll(arrays, config.traffics,
                                          config.reliability);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        (std::int64_t)state.iterations() *
        (std::int64_t)(arrays.size() * config.traffics.size() *
                       config.reliability.size()));
}
BENCHMARK(BM_SweepEvalBatched)->Arg(1)->Arg(4)->Arg(8);

/** No reliability axis (96 slots, implicit default spec): the hoist
 *  only amortizes the per-point FaultModel, so the gap between these
 *  two is the floor of the batched win. */
void
BM_SweepEvalScalarNoRel(benchmark::State &state)
{
    const auto &arrays = benchArrays();
    SweepConfig config = benchsupport::wideSweep(false);
    ParallelSweepRunner &runner = runnerFor((int)state.range(0));
    for (auto _ : state) {
        auto results = runner.evaluateAllScalar(arrays, config.traffics,
                                                config.reliability);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        (std::int64_t)state.iterations() *
        (std::int64_t)(arrays.size() * config.traffics.size()));
}
BENCHMARK(BM_SweepEvalScalarNoRel)->Arg(1);

void
BM_SweepEvalBatchedNoRel(benchmark::State &state)
{
    const auto &arrays = benchArrays();
    SweepConfig config = benchsupport::wideSweep(false);
    ParallelSweepRunner &runner = runnerFor((int)state.range(0));
    for (auto _ : state) {
        auto results = runner.evaluateAll(arrays, config.traffics,
                                          config.reliability);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(
        (std::int64_t)state.iterations() *
        (std::int64_t)(arrays.size() * config.traffics.size()));
}
BENCHMARK(BM_SweepEvalBatchedNoRel)->Arg(1);

/** Full store-backed run() from an empty store: design-space
 *  enumeration + batched evaluation + artifact writes. */
void
BM_SweepRunColdStore(benchmark::State &state)
{
    SweepConfig config = benchsupport::wideSweep(true);
    config.jobs = 4;
    std::string dir = (std::filesystem::temp_directory_path() /
                       "nvmexp_perf_sweep_cold").string();
    config.outDir = dir;
    ParallelSweepRunner &runner = runnerFor(config.jobs);
    for (auto _ : state) {
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        auto results = runner.run(config);
        benchmark::DoNotOptimize(results);
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SweepRunColdStore);

/** The same run() against a fully warm characterization cache: what a
 *  re-run or figure regeneration pays. */
void
BM_SweepRunWarmStore(benchmark::State &state)
{
    SweepConfig config = benchsupport::wideSweep(true);
    config.jobs = 4;
    std::string dir = (std::filesystem::temp_directory_path() /
                       "nvmexp_perf_sweep_warm").string();
    std::filesystem::remove_all(dir);
    config.outDir = dir;
    ParallelSweepRunner &runner = runnerFor(config.jobs);
    auto warmup = runner.run(config);
    benchmark::DoNotOptimize(warmup);
    for (auto _ : state) {
        auto results = runner.run(config);
        benchmark::DoNotOptimize(results);
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SweepRunWarmStore);

} // namespace

int
main(int argc, char **argv)
{
    return benchsupport::benchMain(argc, argv);
}
