/**
 * @file
 * Regenerates Table I: per-technology ranges of surveyed cell
 * characteristics, plus the derived tentpole cell definitions.
 */

#include <iostream>

#include "celldb/survey.hh"
#include "celldb/tentpole.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    CellCatalog catalog;
    const SurveyDatabase &db = catalog.survey();

    Table ranges("Table I: surveyed technology ranges",
                 {"Tech", "#Pubs", "Area[F2]", "WritePulse[ns]",
                  "WriteI[uA]", "Endurance", "Retention[s]", "MLC"});
    for (int t = (int)CellTech::PCM; t < (int)CellTech::NumTech; ++t) {
        auto tech = (CellTech)t;
        auto fmtRange = [&](std::optional<double> SurveyEntry::*field) {
            auto range = db.paramRange(tech, field);
            if (!range)
                return std::string("-");
            if (range->first == range->second)
                return Table::formatNumber(range->first);
            return Table::formatNumber(range->first) + "-" +
                Table::formatNumber(range->second);
        };
        bool mlc = false;
        for (const auto &entry : db.entriesFor(tech))
            mlc = mlc || entry.mlcDemonstrated;
        ranges.row()
            .add(techName(tech))
            .add((long long)db.countFor(tech))
            .add(fmtRange(&SurveyEntry::areaF2))
            .add(fmtRange(&SurveyEntry::writePulseNs))
            .add(fmtRange(&SurveyEntry::writeCurrentUa))
            .add(fmtRange(&SurveyEntry::endurance))
            .add(fmtRange(&SurveyEntry::retentionSec))
            .add(mlc ? "yes" : "no");
    }
    ranges.print(std::cout);
    ranges.writeCsv("table1_ranges.csv");

    Table cells("Tentpole cell definitions",
                {"Cell", "Area[F2]", "Pulse[ns]", "I[uA]", "Vw[V]",
                 "Vr[V]", "Endurance", "Retention[s]"});
    auto emit = [&](const MemCell &cell) {
        cells.row()
            .add(cell.name)
            .add(cell.areaF2)
            .add(cell.worstWritePulse() * 1e9)
            .add(cell.setCurrent * 1e6)
            .add(cell.writeVoltage)
            .add(cell.readVoltage)
            .add(cell.endurance)
            .add(cell.retention);
    };
    emit(CellCatalog::sram16());
    for (const auto &cell : catalog.studyEnvms())
        emit(cell);
    emit(CellCatalog::backGatedFeFET());
    cells.print(std::cout);
    cells.writeCsv("table1_tentpoles.csv");
    return 0;
}
