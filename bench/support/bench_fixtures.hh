/**
 * @file
 * Shared fixtures for the perf_* google-benchmark binaries: the
 * synthetic refine population, the wide sweep configuration the
 * batched-evaluation benchmarks run, and the common main() body.
 *
 * Everything here is deterministic (fixed Rng seeds, fixed catalog
 * cells), so BENCH_*.json numbers are comparable run to run and the
 * CI regression gate can diff them meaningfully.
 */

#ifndef NVMEXP_BENCH_SUPPORT_BENCH_FIXTURES_HH
#define NVMEXP_BENCH_SUPPORT_BENCH_FIXTURES_HH

#include <benchmark/benchmark.h>

#include <limits>
#include <string>
#include <vector>

#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "eval/engine.hh"
#include "reliability/reliability.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace nvmexp {
namespace benchsupport {

/**
 * A deterministic population of evaluation rows spanning the value
 * ranges real sweeps produce, built without running the (much slower)
 * characterization pipeline so refine benchmarks isolate refine costs.
 */
inline std::vector<EvalResult>
syntheticResults(std::size_t count)
{
    Rng rng(0xBE9C);
    std::vector<EvalResult> results;
    results.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        EvalResult r;
        r.array.capacityBytes = 2.0 * 1024 * 1024;
        r.array.readLatency = 1e-9 * (1.0 + rng.uniform() * 99.0);
        r.array.writeLatency = r.array.readLatency *
            (1.0 + rng.uniform() * 9.0);
        r.array.readEnergy = 1e-12 * (1.0 + rng.uniform() * 999.0);
        r.array.writeEnergy = r.array.readEnergy *
            (1.0 + rng.uniform() * 9.0);
        r.array.leakage = 1e-3 * rng.uniform();
        r.array.areaM2 = 1e-7 * (1.0 + rng.uniform() * 9.0);
        r.array.readBandwidth = 1e9 * (1.0 + rng.uniform() * 99.0);
        r.array.writeBandwidth = r.array.readBandwidth / 4.0;
        r.dynamicPower = 1e-3 * (1.0 + rng.uniform() * 499.0);
        r.leakagePower = r.array.leakage;
        r.totalPower = r.dynamicPower + r.leakagePower;
        r.latencyLoad = rng.uniform() * 2.0;
        r.slowdown = r.latencyLoad > 1.0 ? r.latencyLoad : 1.0;
        r.meetsReadBandwidth = rng.uniform() < 0.9;
        r.meetsWriteBandwidth = rng.uniform() < 0.9;
        r.lifetimeSec = rng.uniform() < 0.2
            ? std::numeric_limits<double>::infinity()
            : 86400.0 * (1.0 + rng.uniform() * 3650.0);
        results.push_back(r);
    }
    return results;
}

/**
 * The wide-sweep configuration the batched-vs-scalar benchmarks run:
 * 4 cells x 2 capacities x 2 targets (16 arrays) against 6 traffic
 * patterns, optionally crossed with a 4-spec reliability axis
 * (16 x 6 x 4 = 384 evaluation slots).
 */
inline SweepConfig
wideSweep(bool reliabilityAxis)
{
    CellCatalog catalog;
    SweepConfig config;
    config.cells = {catalog.optimistic(CellTech::STT),
                    catalog.pessimistic(CellTech::STT),
                    catalog.optimistic(CellTech::RRAM),
                    CellCatalog::sram16()};
    config.capacitiesBytes = {2.0 * 1024 * 1024, 8.0 * 1024 * 1024};
    config.targets = {OptTarget::ReadEDP, OptTarget::Leakage};
    for (int i = 0; i < 6; ++i) {
        std::string name = "traffic";
        name += std::to_string(i);
        config.traffics.push_back(TrafficPattern::fromByteRates(
            name, 1e9 * (double)(1 + i), 1e7 * (double)(1 + i), 512));
    }
    if (reliabilityAxis) {
        reliability::ReliabilitySpec none;
        reliability::ReliabilitySpec secded;
        secded.ecc = "secded-72-64";
        reliability::ReliabilitySpec scrubbed = secded;
        scrubbed.scrubIntervalSec = 3600.0;
        reliability::ReliabilitySpec dec;
        dec.ecc = "dec-78-64";
        config.reliability = {none, secded, scrubbed, dec};
    }
    return config;
}

/**
 * The campaign-sized sweep: the wide sweep's 16 arrays x 6 traffics
 * crossed with a 16-spec reliability axis (4 ECC schemes x 4 scrub
 * intervals) = 1536 evaluation slots. Big enough that the store-backed
 * per-slot cost (journal + artifact serialization, ~75us/slot)
 * dominates the campaign's fixed costs (fork, characterization,
 * merge), which is the regime multi-process sharding is for.
 */
inline SweepConfig
campaignSweep()
{
    SweepConfig config = wideSweep(false);
    config.reliability.clear();
    for (const char *ecc :
         {"none", "secded-72-64", "dec-78-64", "tec-85-64"}) {
        for (double scrub : {0.0, 600.0, 3600.0, 86400.0}) {
            reliability::ReliabilitySpec spec;
            spec.ecc = ecc;
            spec.scrubIntervalSec = scrub;
            config.reliability.push_back(spec);
        }
    }
    return config;
}

/** The common perf_* main body: quiet logging (characterization
 *  warnings would drown the benchmark table), then the stock
 *  google-benchmark driver. */
inline int
benchMain(int argc, char **argv)
{
    setQuiet(true);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

} // namespace benchsupport
} // namespace nvmexp

#endif // NVMEXP_BENCH_SUPPORT_BENCH_FIXTURES_HH
