/**
 * @file
 * google-benchmark coverage of distributed sweep campaigns: the full
 * plan -> fork-N-workers -> merge lifecycle at 1, 2, and 4 shards
 * over the campaign-sized sweep (1536 store-backed slots), plus the
 * merge step in isolation.
 *
 * BM_CampaignRun/1 is the single-process baseline; /2 and /4 are the
 * same sweep fanned out to forked worker processes. The shard work is
 * CPU-bound (evaluation + artifact serialization), so the multi-shard
 * wall-clock win tracks the machine's core count: tools/bench_gate.py
 * enforces the >= 1.8x 4-shard speedup only on runners with at least
 * 4 CPUs (the gate's --speedup flag carries the CPU floor), the same
 * reasoning it applies to multi-worker thread ratios.
 *
 * CI appends this binary's JSON to perf_sweep's and diffs the merged
 * file against the committed BENCH_sweep.json snapshot.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "campaign/campaign.hh"
#include "core/parallel_sweep.hh"
#include "support/bench_fixtures.hh"

using namespace nvmexp;

namespace {

std::string
campaignDir(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("nvmexp_perf_campaign_" + name)).string();
}

/** The in-process worker launchCampaign forks: one single-threaded
 *  runner per worker process, exactly what the CLI launcher execs. */
campaign::ShardWorker
forkedWorker(const std::string &dir, const SweepConfig &config)
{
    return [&dir, &config](std::size_t shard) -> int {
        ParallelSweepRunner runner(1);
        campaign::runShard(dir, config, shard, runner);
        return 0;
    };
}

/** Full campaign lifecycle at Arg(0) shards: plan, fork one worker
 *  process per shard, wait, merge. Fresh directory every iteration —
 *  this measures cold end-to-end wall clock, merge included. */
void
BM_CampaignRun(benchmark::State &state)
{
    std::size_t shards = (std::size_t)state.range(0);
    SweepConfig config = benchsupport::campaignSweep();
    std::string dir =
        campaignDir("run" + std::to_string(shards));
    campaign::LaunchOptions options;
    options.workers = shards;
    for (auto _ : state) {
        state.PauseTiming();
        std::filesystem::remove_all(dir);
        state.ResumeTiming();
        campaign::planCampaign(dir, config, shards);
        if (!campaign::launchCampaign(dir, options,
                                      forkedWorker(dir, config))) {
            state.SkipWithError("campaign launch failed");
            break;
        }
        auto summary = campaign::mergeCampaign(dir);
        benchmark::DoNotOptimize(summary);
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CampaignRun)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/** The merge step alone over a completed 4-shard campaign: the serial
 *  tail every campaign pays, kept cheap by stitching raw artifact
 *  bytes instead of re-serializing results. */
void
BM_CampaignMerge(benchmark::State &state)
{
    SweepConfig config = benchsupport::campaignSweep();
    std::string dir = campaignDir("merge");
    std::filesystem::remove_all(dir);
    campaign::planCampaign(dir, config, 4);
    campaign::LaunchOptions options;
    options.workers = 4;
    if (!campaign::launchCampaign(dir, options,
                                  forkedWorker(dir, config))) {
        state.SkipWithError("campaign launch failed");
        return;
    }
    for (auto _ : state) {
        auto summary = campaign::mergeCampaign(dir);
        benchmark::DoNotOptimize(summary);
    }
    std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CampaignMerge)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

} // namespace

int
main(int argc, char **argv)
{
    return benchsupport::benchMain(argc, argv);
}
