/**
 * @file
 * Ablation / sensitivity study over the framework's own modeling
 * choices (the DESIGN.md ablation targets):
 *
 *   (a) process-node scaling — how the cross-technology orderings
 *       hold from 45 nm down to 7 nm projections;
 *   (b) access word width — 8 B scratchpad records vs 64 B lines;
 *   (c) the area-efficiency floor — how constraining the organization
 *       search trades latency for density;
 *   (d) bank count ceiling — sensitivity of the long-pole model.
 *
 * The paper's conclusions should be robust to all four; this bench
 * quantifies by how much.
 */

#include <cmath>
#include <iostream>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"
#include "nvsim/array_model.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

namespace {

ArrayResult
build(const MemCell &cell, ArrayConfig config)
{
    config.nodeNm = cell.tech == CellTech::SRAM
        ? std::max(7, config.nodeNm - 6) : config.nodeNm;
    ArrayDesigner designer(cell, config);
    return designer.optimize(OptTarget::ReadEDP);
}

} // namespace

int
main()
{
    setQuiet(true);
    CellCatalog catalog;
    MemCell sram = CellCatalog::sram16();
    MemCell stt = catalog.optimistic(CellTech::STT);
    MemCell fefet = catalog.optimistic(CellTech::FeFET);

    // (a) Node scaling: iso-capacity 4 MiB arrays.
    Table nodes("Ablation (a): process-node scaling, 4MiB ReadEDP",
                {"Node[nm]", "Cell", "ReadLat[ns]", "ReadE[pJ]",
                 "Density[Mb/mm2]", "Leak[mW]"});
    for (int node : {45, 28, 22, 16, 7}) {
        for (const MemCell &cell : {stt, fefet}) {
            ArrayConfig config;
            config.capacityBytes = 4.0 * 1024 * 1024;
            config.nodeNm = node;
            ArrayResult r = build(cell, config);
            nodes.row()
                .add((long long)node)
                .add(cell.name)
                .add(r.readLatency * 1e9)
                .add(r.readEnergy * 1e12)
                .add(r.densityMbPerMm2())
                .add(r.leakage * 1e3);
        }
    }
    nodes.print(std::cout);
    nodes.writeCsv("ablation_nodes.csv");

    // (b) Word width: same array serving 8 B records vs 64 B lines.
    Table words("Ablation (b): access word width, 8MiB STT-Opt",
                {"WordBits", "ReadLat[ns]", "ReadE[pJ]",
                 "E/byte[pJ]", "ReadBW[GB/s]"});
    for (int wordBits : {64, 128, 256, 512, 1024}) {
        ArrayConfig config;
        config.capacityBytes = 8.0 * 1024 * 1024;
        config.wordBits = wordBits;
        ArrayResult r = build(stt, config);
        words.row()
            .add((long long)wordBits)
            .add(r.readLatency * 1e9)
            .add(r.readEnergy * 1e12)
            .add(r.readEnergy * 1e12 / (wordBits / 8.0))
            .add(r.readBandwidth / 1e9);
    }
    words.print(std::cout);
    words.writeCsv("ablation_words.csv");

    // (c) Area-efficiency floor: the Fig. 12 trade-off as a knob.
    Table floors("Ablation (c): area-efficiency floor, 8MiB STT-Opt",
                 {"MinAeff", "ChosenAeff", "ReadLat[ns]",
                  "Density[Mb/mm2]"});
    for (double floor : {0.05, 0.2, 0.35, 0.5, 0.65}) {
        ArrayConfig config;
        config.capacityBytes = 8.0 * 1024 * 1024;
        config.minAreaEfficiency = floor;
        ArrayResult r = build(stt, config);
        floors.row()
            .add(floor)
            .add(r.areaEfficiency)
            .add(r.readLatency * 1e9)
            .add(r.densityMbPerMm2());
    }
    floors.print(std::cout);
    floors.writeCsv("ablation_floors.csv");

    // (d) Bank ceiling: long-pole viability of a write-limited cell.
    Table banks("Ablation (d): bank ceiling vs FeFET-Opt viability",
                {"MaxBanks", "Banks", "LatencyLoad", "Viable"});
    TrafficPattern traffic =
        TrafficPattern::fromByteRates("graphish", 4e9, 6e7, 64);
    for (int maxBanks : {1, 2, 4, 8, 16}) {
        ArrayConfig config;
        config.capacityBytes = 8.0 * 1024 * 1024;
        config.wordBits = 64;
        config.maxBanks = maxBanks;
        ArrayResult r = build(fefet, config);
        EvalResult ev = evaluate(r, traffic);
        banks.row()
            .add((long long)maxBanks)
            .add((long long)r.org.banks)
            .add(ev.latencyLoad)
            .add(ev.viable() ? "yes" : "no");
    }
    banks.print(std::cout);
    banks.writeCsv("ablation_banks.csv");

    // Robustness summary: the SRAM-vs-STT density ratio across nodes.
    Table summary("Robustness: STT/SRAM density ratio per node",
                  {"Node[nm]", "Ratio"});
    for (int node : {45, 28, 22, 16}) {
        ArrayConfig config;
        config.capacityBytes = 4.0 * 1024 * 1024;
        config.nodeNm = node;
        ArrayResult sttArr = build(stt, config);
        ArrayResult sramArr = build(sram, config);
        summary.row()
            .add((long long)node)
            .add(sttArr.densityMbPerMm2() / sramArr.densityMbPerMm2());
    }
    summary.print(std::cout);
    return 0;
}
