/**
 * @file
 * Regenerates Fig. 9: memory power, latency load, and projected
 * lifetime of a 16 MB eNVM LLC under SPEC-like benchmark traffic
 * produced by the built-in cache simulator.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto study = studies::llcStudy();

    Table table("Fig 9: 16MB LLC under SPEC-like traffic",
                {"Cell", "Benchmark", "Reads/s", "Writes/s",
                 "Power[mW]", "LatencyLoad", "Lifetime[yr]", "Viable"});
    AsciiPlot power("Fig 9a: power vs read rate", "LLC reads per second",
                    "total power [W]");
    AsciiPlot latency("Fig 9b: latency load vs write rate",
                      "LLC writes per second", "latency load");
    AsciiPlot lifetime("Fig 9c: lifetime vs write rate",
                       "LLC writes per second", "lifetime [yr]");
    for (auto *plot : {&power, &latency, &lifetime}) {
        plot->setXScale(AxisScale::Log10);
        plot->setYScale(AxisScale::Log10);
    }

    std::string lastSeries;
    for (const auto &ev : study.evals) {
        table.row()
            .add(ev.array.cell.name)
            .add(ev.traffic.name)
            .add(ev.traffic.readsPerSec)
            .add(ev.traffic.writesPerSec)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.lifetimeYears())
            .add(ev.viable() ? "yes" : "no");
        if (ev.array.cell.name != lastSeries) {
            power.addSeries(ev.array.cell.name);
            latency.addSeries(ev.array.cell.name);
            lifetime.addSeries(ev.array.cell.name);
            lastSeries = ev.array.cell.name;
        }
        power.addPoint(ev.array.cell.name, ev.traffic.readsPerSec,
                       ev.totalPower);
        latency.addPoint(ev.array.cell.name, ev.traffic.writesPerSec,
                         ev.latencyLoad);
        if (std::isfinite(ev.lifetimeYears())) {
            lifetime.addPoint(ev.array.cell.name,
                              ev.traffic.writesPerSec,
                              ev.lifetimeYears());
        }
    }
    table.print(std::cout);
    table.writeCsv("fig9_spec_llc.csv");
    power.print(std::cout);
    latency.print(std::cout);
    lifetime.print(std::cout);
    return 0;
}
