/**
 * @file
 * google-benchmark micro-benchmarks of the framework itself: array
 * design-space search, subarray characterization, fault injection,
 * graph kernels, cache simulation, and full-study throughput.
 */

#include <benchmark/benchmark.h>

#include "cachesim/streams.hh"
#include "celldb/tentpole.hh"
#include "dnn/inference.hh"
#include "eval/engine.hh"
#include "fault/injector.hh"
#include "graph/kernels.hh"
#include "nvsim/array_model.hh"
#include "support/bench_fixtures.hh"

using namespace nvmexp;

namespace {

void
BM_SubarrayCharacterize(benchmark::State &state)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    const TechNode &node = techNodeFor(22);
    SubarrayDesign design;
    design.rows = (int)state.range(0);
    design.cols = 1024;
    design.sensedBits = 512;
    for (auto _ : state) {
        auto metrics = characterizeSubarray(cell, node, design);
        benchmark::DoNotOptimize(metrics);
    }
}
BENCHMARK(BM_SubarrayCharacterize)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_ArrayOptimize(benchmark::State &state)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::RRAM);
    ArrayConfig config;
    config.capacityBytes = (double)state.range(0) * 1024.0 * 1024.0;
    for (auto _ : state) {
        ArrayDesigner designer(cell, config);
        auto result = designer.optimize(OptTarget::ReadEDP);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_ArrayOptimize)->Arg(2)->Arg(16)->Arg(64);

void
BM_Evaluate(benchmark::State &state)
{
    CellCatalog catalog;
    ArrayConfig config;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT), config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);
    TrafficPattern traffic =
        TrafficPattern::fromByteRates("bench", 5e9, 50e6, 512);
    for (auto _ : state) {
        auto result = evaluate(array, traffic);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_Evaluate);

void
BM_FaultInjection(benchmark::State &state)
{
    CellCatalog catalog;
    MemCell mlc = catalog.optimistic(CellTech::RRAM).makeMlc();
    FaultModel model(mlc);
    std::vector<std::int8_t> weights((std::size_t)state.range(0), 42);
    FaultInjector injector(model, 7);
    for (auto _ : state) {
        auto flips = injector.inject(
            std::span<std::int8_t>(weights.data(), weights.size()));
        benchmark::DoNotOptimize(flips);
    }
    state.SetBytesProcessed((std::int64_t)state.iterations() *
                            state.range(0));
}
BENCHMARK(BM_FaultInjection)->Arg(1 << 16)->Arg(1 << 20);

void
BM_GraphBfs(benchmark::State &state)
{
    Graph g = facebookLike();
    for (auto _ : state) {
        auto result = bfs(g, 0);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_GraphBfs);

void
BM_CacheSim(benchmark::State &state)
{
    const BenchmarkProfile &profile = profileByName("gcc");
    Hierarchy::Config config;
    for (auto _ : state) {
        auto traffic = runBenchmark(profile, 1'000'000, 0, config);
        benchmark::DoNotOptimize(traffic);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            1'000'000);
}
BENCHMARK(BM_CacheSim);

void
BM_QuantizedInference(benchmark::State &state)
{
    SyntheticTask task(32, 10, 256, 256, 1);
    Mlp mlp({32, 64, 10}, 2);
    mlp.train(task, 2, 0.02);
    QuantizedMlp q = mlp.quantize();
    for (auto _ : state) {
        double acc = q.accuracy(task.testX(), task.testY());
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_QuantizedInference);

} // namespace

int
main(int argc, char **argv)
{
    return benchsupport::benchMain(argc, argv);
}
