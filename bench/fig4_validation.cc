/**
 * @file
 * Regenerates Fig. 4: tentpole STT arrays vs a published 1 MB
 * STT-RAM macro — the optimistic/pessimistic pair must bracket the
 * published metrics.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto rows = studies::tentpoleValidation();

    Table table("Fig 4: tentpole STT vs published 1MB array",
                {"Metric", "Optimistic", "Published", "Pessimistic",
                 "Covered"});
    bool allCovered = true;
    for (const auto &row : rows) {
        table.row()
            .add(row.metric)
            .add(row.optimistic)
            .add(row.reference)
            .add(row.pessimistic)
            .add(row.covered ? "yes" : "NO");
        allCovered = allCovered && row.covered;
    }
    table.print(std::cout);
    table.writeCsv("fig4_validation.csv");
    std::cout << (allCovered
                      ? "validation PASSED: tentpoles cover the "
                        "published array\n"
                      : "validation FAILED: see table\n");
    return allCovered ? 0 : 1;
}
