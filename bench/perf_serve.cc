/**
 * @file
 * Load test for the query server: N client threads hammer a
 * QueryServer over loopback HTTP and report throughput and latency
 * percentiles per query shape.
 *
 * Doubles as a correctness gate: every single served response is
 * byte-compared against the offline store::queryStore answer for the
 * same StoreQuery, and any mismatch (or non-200) makes the process
 * exit nonzero. Unlike the perf_* microbenchmarks this is a plain
 * executable — no google-benchmark dependency — so it always builds.
 *
 * usage: perf_serve [--threads N] [--requests N] [--store DIR]
 *   --threads N   concurrent client threads (default 8)
 *   --requests N  requests per thread (default 50)
 *   --store DIR   serve an existing store instead of sweeping a
 *                 temporary one
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "serve/server.hh"
#include "store/result_store.hh"
#include "util/json.hh"
#include "util/logging.hh"

using namespace nvmexp;

namespace {

/** 4 cells x 2 capacities x 2 targets x 3 traffics = 48 rows: enough
 *  that Pareto/top-k queries do real work per request. */
std::string
buildFixtureStore()
{
    CellCatalog catalog;
    SweepConfig config;
    config.cells = {catalog.optimistic(CellTech::STT),
                    catalog.pessimistic(CellTech::STT),
                    catalog.optimistic(CellTech::RRAM),
                    CellCatalog::sram16()};
    config.capacitiesBytes = {2.0 * 1024 * 1024, 8.0 * 1024 * 1024};
    config.targets = {OptTarget::ReadEDP, OptTarget::Leakage};
    config.traffics = {
        TrafficPattern::fromByteRates("light", 1e9, 1e6, 512),
        TrafficPattern::fromByteRates("heavy", 10e9, 1e8, 512),
        TrafficPattern::fromByteRates("writeheavy", 2e9, 2e9, 512),
    };
    config.jobs = 4;
    config.outDir = (std::filesystem::temp_directory_path() /
                     "nvmexp_perf_serve_store").string();
    std::filesystem::remove_all(config.outDir);
    runSweep(config);
    return config.outDir;
}

struct QueryShape
{
    const char *label;
    const char *json;
};

constexpr QueryShape kShapes[] = {
    {"full-store", R"({})"},
    {"filter", R"({"constraints": ["total_power<0.5",
                                   "latency_load<=1.5"]})"},
    {"pareto-2d", R"({"pareto": ["total_power", "read_latency"]})"},
    {"pareto-3d",
     R"({"pareto": ["total_power", "read_latency", "area_mm2"]})"},
    {"top-k", R"({"top_k": {"metric": "read_edp", "k": 8}})"},
    {"pipeline", R"({"constraints": ["latency_load<=2"],
                     "pareto": ["total_power", "read_latency"],
                     "top_k": {"metric": "total_power", "k": 4}})"},
};
constexpr std::size_t kShapeCount =
    sizeof(kShapes) / sizeof(kShapes[0]);

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::size_t at = (std::size_t)((double)(sorted.size() - 1) * p);
    return sorted[at];
}

} // namespace

int
main(int argc, char **argv)
{
    int threads = 8;
    int requestsPerThread = 50;
    std::string storeDir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            threads = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--requests") == 0 &&
                   i + 1 < argc) {
            requestsPerThread = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--store") == 0 &&
                   i + 1 < argc) {
            storeDir = argv[++i];
        } else {
            std::cerr << "usage: perf_serve [--threads N] "
                         "[--requests N] [--store DIR]\n";
            return 2;
        }
    }

    setQuiet(true);
    if (storeDir.empty()) {
        std::cout << "building fixture store...\n";
        storeDir = buildFixtureStore();
    }

    // The offline ground truth every response is compared against.
    std::string expected[kShapeCount];
    for (std::size_t s = 0; s < kShapeCount; ++s) {
        store::StoreQuery query = store::StoreQuery::fromJson(
            JsonValue::parse(kShapes[s].json));
        expected[s] = store::serializeResults(
            store::queryStore(storeDir, query));
    }

    serve::ServeOptions options;
    options.storeDir = storeDir;
    options.port = 0;
    options.jobs = threads;
    serve::QueryServer server(options);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "perf_serve: " << error << "\n";
        return 1;
    }
    std::thread acceptLoop([&server] { server.run(); });

    std::atomic<long> mismatches{0};
    std::mutex latencyMutex;
    std::vector<std::vector<double>> latencyMs(kShapeCount);

    auto wallBegin = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    clients.reserve((std::size_t)threads);
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            std::vector<std::vector<double>> local(kShapeCount);
            // One keep-alive connection per thread: the server's
            // request cap recycles it transparently mid-run.
            serve::HttpClient client(server.port());
            for (int i = 0; i < requestsPerThread; ++i) {
                std::size_t s =
                    ((std::size_t)t + (std::size_t)i) % kShapeCount;
                auto begin = std::chrono::steady_clock::now();
                serve::HttpClientResult result;
                std::string clientError;
                bool ok = client.exchange("POST", "/query",
                                          kShapes[s].json, result,
                                          clientError);
                auto elapsed = std::chrono::duration<double,
                                                     std::milli>(
                    std::chrono::steady_clock::now() - begin);
                if (!ok || result.status != 200 ||
                    result.body != expected[s]) {
                    mismatches.fetch_add(1);
                } else {
                    local[s].push_back(elapsed.count());
                }
            }
            std::lock_guard<std::mutex> lock(latencyMutex);
            for (std::size_t s = 0; s < kShapeCount; ++s) {
                latencyMs[s].insert(latencyMs[s].end(),
                                    local[s].begin(), local[s].end());
            }
        });
    }
    for (auto &client : clients)
        client.join();
    auto wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wallBegin).count();

    server.stop();
    acceptLoop.join();

    long total = (long)threads * requestsPerThread;
    std::cout << "perf_serve: " << threads << " threads x "
              << requestsPerThread << " requests over "
              << server.index()->rows() << " rows\n";
    std::cout << "  total " << total << " requests in " << wallSeconds
              << " s (" << (double)total / wallSeconds << " req/s)\n";
    for (std::size_t s = 0; s < kShapeCount; ++s) {
        auto &samples = latencyMs[s];
        std::sort(samples.begin(), samples.end());
        std::cout << "  " << kShapes[s].label << ": "
                  << samples.size() << " ok, p50 "
                  << percentile(samples, 0.5) << " ms, p99 "
                  << percentile(samples, 0.99) << " ms\n";
    }

    if (mismatches.load() != 0) {
        std::cerr << "perf_serve: " << mismatches.load()
                  << " responses differed from the offline "
                     "queryStore() answer (or failed)\n";
        return 1;
    }
    std::cout << "  every response byte-identical to the offline "
                 "query path\n";
    return 0;
}
