/**
 * @file
 * Regenerates Fig. 3: 4 MB arrays per technology under every
 * optimization target — read energy vs. latency, write energy vs.
 * latency, and storage density.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto arrays = studies::arrayLandscape();

    Table table("Fig 3: 4MB array landscape (22nm eNVM, 16nm SRAM)",
                {"Cell", "Target", "ReadLat[ns]", "ReadE[pJ]",
                 "WriteLat[ns]", "WriteE[pJ]", "Density[Mb/mm2]",
                 "Leak[mW]"});
    AsciiPlot readPlot("Fig 3a: read energy vs read latency",
                       "read latency [s]", "read energy [J]");
    AsciiPlot writePlot("Fig 3b: write energy vs write latency",
                        "write latency [s]", "write energy [J]");
    readPlot.setXScale(AxisScale::Log10);
    readPlot.setYScale(AxisScale::Log10);
    writePlot.setXScale(AxisScale::Log10);
    writePlot.setYScale(AxisScale::Log10);

    const auto &targets = allOptTargets();
    std::string lastSeries;
    for (std::size_t i = 0; i < arrays.size(); ++i) {
        const auto &array = arrays[i];
        // One optimization target per row; Fig 3 omits pessimistic PCM
        // writes (> 10 us) from the plot but the table keeps them.
        table.row()
            .add(array.cell.name)
            .add(optTargetName(targets[i % targets.size()]))
            .add(array.readLatency * 1e9)
            .add(array.readEnergy * 1e12)
            .add(array.writeLatency * 1e9)
            .add(array.writeEnergy * 1e12)
            .add(array.densityMbPerMm2())
            .add(array.leakage * 1e3);
        if (array.cell.name != lastSeries) {
            readPlot.addSeries(array.cell.name);
            writePlot.addSeries(array.cell.name);
            lastSeries = array.cell.name;
        }
        readPlot.addPoint(array.cell.name, array.readLatency,
                          array.readEnergy);
        if (array.writeLatency < 10e-6) {
            writePlot.addPoint(array.cell.name, array.writeLatency,
                               array.writeEnergy);
        }
    }
    table.print(std::cout);
    table.writeCsv("fig3_landscape.csv");
    readPlot.print(std::cout);
    writePlot.print(std::cout);
    return 0;
}
