/**
 * @file
 * google-benchmark micro-benchmarks of the refine path: constraint
 * filtering (legacy adapter vs declarative clauses, clause-count
 * scaling), 2-D and N-D Pareto extraction, top-k ranking, and the
 * full store-query pipeline.
 *
 * CI runs this with --benchmark_out=BENCH_query.json to seed the perf
 * trajectory of the filter-and-refine stage; the workload is a
 * synthetic-but-deterministic result population so runs are
 * comparable across machines without a characterization sweep.
 */

#include <benchmark/benchmark.h>

#include "metrics/constraints.hh"
#include "metrics/refine.hh"
#include "store/result_store.hh"
#include "support/bench_fixtures.hh"

using namespace nvmexp;
using benchsupport::syntheticResults;

namespace {

void
BM_FilterLegacyAdapter(benchmark::State &state)
{
    auto results = syntheticResults((std::size_t)state.range(0));
    Constraints constraints;
    constraints.minLifetimeSec = 365.0 * 86400.0;
    constraints.maxPowerWatts = 0.25;
    for (auto _ : state) {
        auto kept = filterResults(results, constraints);
        benchmark::DoNotOptimize(kept);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            state.range(0));
}
BENCHMARK(BM_FilterLegacyAdapter)->Arg(1 << 10)->Arg(1 << 14);

void
BM_FilterConstraintSet(benchmark::State &state)
{
    auto results = syntheticResults(1 << 14);
    // 1, 3, or 6 clauses: clause-count scaling of the refine path.
    metrics::ConstraintSet set;
    const char *clauses[] = {
        "total_power<=0.25",      "latency_load<=1.0",
        "meets_read_bw>=1",       "lifetime_years>=1",
        "read_latency<=50e-9",    "area_mm2<=0.5",
    };
    for (int i = 0; i < state.range(0); ++i)
        set.add(clauses[i]);
    for (auto _ : state) {
        auto kept = set.filter(results);
        benchmark::DoNotOptimize(kept);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            (1 << 14));
}
BENCHMARK(BM_FilterConstraintSet)->Arg(1)->Arg(3)->Arg(6);

void
BM_Pareto2D(benchmark::State &state)
{
    auto results = syntheticResults((std::size_t)state.range(0));
    for (auto _ : state) {
        auto front = metrics::paretoByMetrics(
            results, {"total_power", "latency_load"});
        benchmark::DoNotOptimize(front);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            state.range(0));
}
BENCHMARK(BM_Pareto2D)->Arg(1 << 10)->Arg(1 << 14);

void
BM_Pareto3D(benchmark::State &state)
{
    auto results = syntheticResults((std::size_t)state.range(0));
    for (auto _ : state) {
        auto front = metrics::paretoByMetrics(
            results,
            {"total_power", "latency_load", "read_latency"});
        benchmark::DoNotOptimize(front);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            state.range(0));
}
BENCHMARK(BM_Pareto3D)->Arg(1 << 10)->Arg(1 << 14);

void
BM_TopK(benchmark::State &state)
{
    auto results = syntheticResults(1 << 14);
    for (auto _ : state) {
        auto top = metrics::topByMetric(results, "read_edp",
                                        (std::size_t)state.range(0));
        benchmark::DoNotOptimize(top);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            (1 << 14));
}
BENCHMARK(BM_TopK)->Arg(10)->Arg(1 << 12);

void
BM_ApplyQueryPipeline(benchmark::State &state)
{
    auto results = syntheticResults((std::size_t)state.range(0));
    store::StoreQuery query;
    query.constraints.add("latency_load<=1.0");
    query.constraints.add("lifetime_years>=1");
    query.paretoMetrics = {"total_power", "read_latency"};
    query.topMetric = "total_power";
    query.topK = 10;
    for (auto _ : state) {
        auto refined = store::applyQuery(results, query);
        benchmark::DoNotOptimize(refined);
    }
    state.SetItemsProcessed((std::int64_t)state.iterations() *
                            state.range(0));
}
BENCHMARK(BM_ApplyQueryPipeline)->Arg(1 << 10)->Arg(1 << 14);

} // namespace

int
main(int argc, char **argv)
{
    return benchsupport::benchMain(argc, argv);
}
