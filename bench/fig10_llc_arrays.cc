/**
 * @file
 * Regenerates Fig. 10: 16 MB LLC array characteristics in isolation —
 * read energy vs. read latency and write energy vs. write latency per
 * technology across optimization targets.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto study = studies::llcStudy();

    Table table("Fig 10: 16MB LLC array characteristics",
                {"Cell", "Target", "ReadLat[ns]", "ReadE[pJ]",
                 "WriteLat[ns]", "WriteE[pJ]", "AreaEff"});
    AsciiPlot reads("Fig 10a: read energy vs read latency (16MB)",
                    "read latency [s]", "read energy [J]");
    AsciiPlot writes("Fig 10b: write energy vs write latency (16MB)",
                     "write latency [s]", "write energy [J]");
    reads.setXScale(AxisScale::Log10);
    reads.setYScale(AxisScale::Log10);
    writes.setXScale(AxisScale::Log10);
    writes.setYScale(AxisScale::Log10);

    const auto &targets = allOptTargets();
    std::string lastSeries;
    for (std::size_t i = 0; i < study.arrays.size(); ++i) {
        const auto &array = study.arrays[i];
        table.row()
            .add(array.cell.name)
            .add(optTargetName(targets[i % targets.size()]))
            .add(array.readLatency * 1e9)
            .add(array.readEnergy * 1e12)
            .add(array.writeLatency * 1e9)
            .add(array.writeEnergy * 1e12)
            .add(array.areaEfficiency);
        if (array.cell.name != lastSeries) {
            reads.addSeries(array.cell.name);
            writes.addSeries(array.cell.name);
            lastSeries = array.cell.name;
        }
        reads.addPoint(array.cell.name, array.readLatency,
                       array.readEnergy);
        writes.addPoint(array.cell.name, array.writeLatency,
                        array.writeEnergy);
    }
    table.print(std::cout);
    table.writeCsv("fig10_llc_arrays.csv");
    reads.print(std::cout);
    writes.print(std::cout);
    return 0;
}
