/**
 * @file
 * Regenerates Fig. 11: back-gated FeFET co-design study. BG-FeFET
 * (10 ns pulse, 1e12 endurance) closes the write-performance gap to
 * SRAM across graph traffic while keeping the lowest operating power
 * over most of the read-rate range.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    auto study = studies::bgFefetStudy();

    Table table("Fig 11: back-gated FeFET vs prior FeFETs and SRAM "
                "(8MB scratchpad)",
                {"Cell", "Traffic", "Reads/s", "Writes/s", "Power[mW]",
                 "LatencyLoad", "Viable"});
    AsciiPlot power("Fig 11a: power vs read rate", "reads per second",
                    "total power [W]");
    AsciiPlot latency("Fig 11b: latency load vs write rate",
                      "writes per second", "latency load");
    power.setXScale(AxisScale::Log10);
    power.setYScale(AxisScale::Log10);
    latency.setXScale(AxisScale::Log10);
    latency.setYScale(AxisScale::Log10);

    std::string lastSeries;
    auto emit = [&](const EvalResult &ev) {
        table.row()
            .add(ev.array.cell.name)
            .add(ev.traffic.name)
            .add(ev.traffic.readsPerSec)
            .add(ev.traffic.writesPerSec)
            .add(ev.totalPower * 1e3)
            .add(ev.latencyLoad)
            .add(ev.viable() ? "yes" : "no");
        if (ev.array.cell.name != lastSeries) {
            power.addSeries(ev.array.cell.name);
            latency.addSeries(ev.array.cell.name);
            lastSeries = ev.array.cell.name;
        }
        power.addPoint(ev.array.cell.name, ev.traffic.readsPerSec,
                       ev.totalPower);
        latency.addPoint(ev.array.cell.name, ev.traffic.writesPerSec,
                         ev.latencyLoad);
    };
    for (const auto &ev : study.generic)
        emit(ev);
    for (const auto &ev : study.kernels)
        emit(ev);
    table.print(std::cout);
    table.writeCsv("fig11_bgfefet.csv");
    power.print(std::cout);
    latency.print(std::cout);
    return 0;
}
