/**
 * @file
 * Regenerates Fig. 7: total memory energy per day vs. wake-up
 * frequency for image classification (left) and NLP (right). The
 * paper's headline shape: optimistic FeFET wins at low inference
 * rates, optimistic STT takes over at high rates, and the crossover
 * happens earlier for ALBERT than for ResNet26.
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/ascii_plot.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    std::vector<double> rates = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
    auto rows = studies::dnnIntermittentEnergy(rates);

    for (const char *task : {"img-single", "nlp-single"}) {
        Table table(std::string("Fig 7: energy/day vs inferences/day (") +
                        task + ")",
                    {"Cell", "Inf/day", "E/day[J]", "E/inf[uJ]"});
        AsciiPlot plot(std::string("Fig 7: ") + task,
                       "inferences per day", "memory energy per day [J]");
        plot.setXScale(AxisScale::Log10);
        plot.setYScale(AxisScale::Log10);
        std::string lastSeries;
        for (const auto &row : rows) {
            if (row.task != task)
                continue;
            table.row()
                .add(row.cell)
                .add(row.eventsPerDay)
                .add(row.energyPerDay)
                .add(row.energyPerEvent * 1e6);
            if (row.cell != lastSeries) {
                plot.addSeries(row.cell);
                lastSeries = row.cell;
            }
            plot.addPoint(row.cell, row.eventsPerDay, row.energyPerDay);
        }
        table.print(std::cout);
        table.writeCsv(std::string("fig7_") + task + ".csv");
        plot.print(std::cout);

        // Report the winner at each rate (eNVMs only, like the paper).
        std::cout << "winners (" << task << "):";
        for (double rate : rates) {
            const studies::IntermittentRow *best = nullptr;
            for (const auto &row : rows) {
                if (row.task != task || row.eventsPerDay != rate ||
                    row.cell == "SRAM" || !row.meetsLatency ||
                    !row.meetsAccuracy) {
                    continue;
                }
                if (!best || row.energyPerDay < best->energyPerDay)
                    best = &row;
            }
            std::cout << "  " << Table::formatEng(rate) << "/day:"
                      << (best ? best->cell : "none");
        }
        std::cout << "\n";
    }
    return 0;
}
