/**
 * @file
 * Regenerates Fig. 14: masking write latency and reducing write
 * traffic with a write-buffering scheme broadens the set of viable
 * eNVMs for write-heavy workloads (SPEC-like LLC traffic and
 * Facebook-graph BFS).
 */

#include <iostream>

#include <cmath>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace nvmexp;

int
main()
{
    setQuiet(true);
    Table table("Fig 14: write-buffer masking / traffic-reduction",
                {"Cell", "Workload", "LatencyMask", "TrafficCut",
                 "Power[mW]", "LatencyLoad", "Viable"});
    for (const auto &row : studies::writeBufferStudy()) {
        table.row()
            .add(row.cell)
            .add(row.workload)
            .add(row.latencyMask)
            .add(row.trafficReduction)
            .add(row.totalPowerW * 1e3)
            .add(row.latencyLoad)
            .add(row.viable ? "yes" : "no");
    }
    table.print(std::cout);
    table.writeCsv("fig14_write_buffer.csv");
    return 0;
}
