#include <gtest/gtest.h>

#include <cmath>

#include "../support/fixtures.hh"
#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "fault/ecc.hh"
#include "fault/fault_model.hh"
#include "metrics/metric.hh"
#include "store/serialize.hh"

namespace nvmexp {
namespace {

using reliability::EccScheme;
using reliability::ReliabilityEvaluator;
using reliability::ReliabilitySpec;

class ReliabilityTest : public testsupport::QuietTest
{
};

TEST_F(ReliabilityTest, SchemeRegistryCoversTheVocabulary)
{
    for (const char *name :
         {"none", "secded-72-64", "dec-78-64", "tec-85-64"}) {
        const EccScheme *scheme = reliability::findEccScheme(name);
        ASSERT_NE(scheme, nullptr) << name;
        EXPECT_EQ(scheme->name, name);
        EXPECT_FALSE(scheme->description.empty());
        EXPECT_GE(scheme->codeBits, scheme->dataBits);
        EXPECT_GE(scheme->overhead(), 1.0);
    }
    EXPECT_EQ(reliability::findEccScheme("hamming-weave"), nullptr);
    const EccScheme &secded =
        reliability::requireEccScheme("secded-72-64");
    EXPECT_DOUBLE_EQ(secded.overhead(), 72.0 / 64.0);
    EXPECT_EQ(secded.correctable, 1);
}

TEST_F(ReliabilityTest, UnknownSchemeIsFatalWithContextAndNames)
{
    EXPECT_EXIT(reliability::requireEccScheme("raid-z", "--filter"),
                ::testing::ExitedWithCode(1),
                "--filter.*'raid-z' unknown.*secded-72-64");
    ReliabilitySpec spec;
    spec.ecc = "raid-z";
    EXPECT_EXIT(ReliabilityEvaluator evaluator(spec),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST_F(ReliabilityTest, BadScrubIntervalIsFatal)
{
    ReliabilitySpec spec;
    spec.scrubIntervalSec = -1.0;
    EXPECT_EXIT(ReliabilityEvaluator evaluator(spec),
                ::testing::ExitedWithCode(1), "scrub interval");
    spec.scrubIntervalSec = std::nan("");
    EXPECT_EXIT(ReliabilityEvaluator evaluator(spec),
                ::testing::ExitedWithCode(1), "scrub interval");
}

TEST_F(ReliabilityTest, BinomialTailMatchesBruteForceSums)
{
    // Small exact cases against the directly-expanded CDF complement.
    auto brute = [](int n, int k, double p) {
        auto choose = [](int n_, int k_) {
            double c = 1.0;
            for (int i = 0; i < k_; ++i)
                c = c * (double)(n_ - i) / (double)(i + 1);
            return c;
        };
        double sum = 0.0;
        for (int j = k; j <= n; ++j) {
            sum += choose(n, j) * std::pow(p, j) *
                std::pow(1.0 - p, n - j);
        }
        return sum;
    };
    for (double p : {0.5, 0.1, 1e-3}) {
        for (int k = 1; k <= 5; ++k) {
            EXPECT_NEAR(binomialTailAtLeast(8, k, p), brute(8, k, p),
                        1e-12)
                << "n=8 k=" << k << " p=" << p;
        }
    }
    // Edge cases.
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(72, 0, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(72, 73, 0.1), 0.0);
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(72, 2, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(72, 2, 1.0), 1.0);
    // Tiny tails survive (a 1-sum formulation returns 0 or noise
    // below ~1e-16): P(>=2 of 72 at 1e-9) ~ C(72,2) * 1e-18.
    double tiny = binomialTailAtLeast(72, 2, 1e-9);
    EXPECT_NEAR(tiny / (2556.0 * 1e-18), 1.0, 1e-3);
    // Monotone in p and in correction strength.
    EXPECT_LT(binomialTailAtLeast(72, 2, 1e-4),
              binomialTailAtLeast(72, 2, 1e-3));
    EXPECT_LT(binomialTailAtLeast(78, 3, 1e-3),
              binomialTailAtLeast(72, 2, 1e-3));
}

ArrayResult
arrayFor(const MemCell &cell, double capacityBytes = 4.0 * 1024 * 1024)
{
    ArrayConfig config;
    config.capacityBytes = capacityBytes;
    ArrayDesigner designer(cell, config);
    return designer.optimize(OptTarget::ReadEDP);
}

TEST_F(ReliabilityTest, SecDedRescuesMlcRramButNotMlcFefet)
{
    CellCatalog catalog;
    ArrayResult mlcRram =
        arrayFor(catalog.optimistic(CellTech::RRAM).makeMlc());
    ArrayResult mlcFefet =
        arrayFor(catalog.optimistic(CellTech::FeFET).makeMlc());

    ReliabilitySpec none;
    ReliabilitySpec secded;
    secded.ecc = "secded-72-64";
    auto rramNone = ReliabilityEvaluator(none).evaluate(mlcRram);
    auto rramSecded = ReliabilityEvaluator(secded).evaluate(mlcRram);
    auto fefetSecded = ReliabilityEvaluator(secded).evaluate(mlcFefet);

    // The Sec. V-C claim: moderate-BER MLC blows a 1e-2 word budget
    // raw but comes back under it with SEC-DED; small-cell MLC FeFET
    // stays unusable either way.
    EXPECT_GT(rramNone.uncorrectableWordRate, 1e-2);
    EXPECT_LT(rramSecded.uncorrectableWordRate, 1e-2);
    EXPECT_GT(fefetSecded.uncorrectableWordRate, 1e-1);

    // The correction costs density: 72/64 on both capacity and
    // density, none elsewhere.
    EXPECT_DOUBLE_EQ(rramSecded.eccOverhead, 72.0 / 64.0);
    EXPECT_DOUBLE_EQ(rramNone.eccOverhead, 1.0);
    EXPECT_EQ(rramNone.rawBer, rramSecded.rawBer);
}

TEST_F(ReliabilityTest, SramIsFaultFreeAndVolatileCellsDoNotDrift)
{
    ArrayResult sram = arrayFor(CellCatalog::sram16());
    ReliabilitySpec spec;
    spec.scrubIntervalSec = 365.0 * 86400.0;
    auto r = ReliabilityEvaluator(spec).evaluate(sram);
    EXPECT_EQ(r.rawBer, 0.0);
    // SRAM is volatile: no retention drift however long the window.
    EXPECT_EQ(r.scrubbedBer, 0.0);
    EXPECT_EQ(r.uncorrectableWordRate, 0.0);
    EXPECT_EQ(r.uncorrectableImageRate, 0.0);
}

TEST_F(ReliabilityTest, ScrubIntervalMonotonicallyDegradesNvmCells)
{
    CellCatalog catalog;
    ArrayResult array = arrayFor(catalog.optimistic(CellTech::PCM));
    double last = -1.0;
    for (double interval : {0.0, 3600.0, 86400.0, 30.0 * 86400.0}) {
        ReliabilitySpec spec;
        spec.ecc = "secded-72-64";
        spec.scrubIntervalSec = interval;
        auto r = ReliabilityEvaluator(spec).evaluate(array);
        EXPECT_GE(r.scrubbedBer, r.rawBer);
        EXPECT_GT(r.uncorrectableWordRate, last) << interval;
        last = r.uncorrectableWordRate;
        // Image rate upper-bounds the word rate and stays a
        // probability.
        EXPECT_GE(r.uncorrectableImageRate, r.uncorrectableWordRate);
        EXPECT_LE(r.uncorrectableImageRate, 1.0);
    }
}

TEST_F(ReliabilityTest, StrongerCodesTradeDensityForWordRate)
{
    CellCatalog catalog;
    ArrayResult array =
        arrayFor(catalog.optimistic(CellTech::RRAM).makeMlc());
    double lastRate = 2.0;
    double lastOverhead = 0.0;
    for (const char *name :
         {"none", "secded-72-64", "dec-78-64", "tec-85-64"}) {
        ReliabilitySpec spec;
        spec.ecc = name;
        auto r = ReliabilityEvaluator(spec).evaluate(array);
        EXPECT_LT(r.uncorrectableWordRate, lastRate) << name;
        EXPECT_GT(r.eccOverhead, lastOverhead) << name;
        lastRate = r.uncorrectableWordRate;
        lastOverhead = r.eccOverhead;
    }
}

/** The reliability sweep axis: rows expand spec-innermost, metrics
 *  resolve through the registry, and results are identical across
 *  worker counts (the --jobs determinism contract). */
TEST_F(ReliabilityTest, SweepAxisExpandsAndStaysJobCountDeterministic)
{
    SweepConfig config = testsupport::smallSweep();
    ReliabilitySpec none;
    ReliabilitySpec secded;
    secded.ecc = "secded-72-64";
    secded.scrubIntervalSec = 86400.0;
    config.reliability = {none, secded};

    config.jobs = 1;
    auto serial = runSweep(config);
    SweepConfig baseline = testsupport::smallSweep();
    baseline.jobs = 1;
    auto withoutAxis = runSweep(baseline);
    ASSERT_EQ(serial.size(), withoutAxis.size() * 2);

    for (std::size_t i = 0; i < serial.size(); i += 2) {
        EXPECT_EQ(serial[i].reliability.scheme, "none");
        EXPECT_EQ(serial[i + 1].reliability.scheme, "secded-72-64");
        // Spec-innermost: both rows evaluate the same (array,
        // traffic) point, so non-reliability fields agree with the
        // axis-free sweep bit-for-bit.
        EXPECT_TRUE(store::identical(serial[i], withoutAxis[i / 2]));
        EXPECT_EQ(serial[i + 1].totalPower,
                  withoutAxis[i / 2].totalPower);
        // Registry-resolved metrics see the annotation.
        EXPECT_EQ(metrics::metric("ecc_overhead").eval(serial[i]), 1.0);
        EXPECT_DOUBLE_EQ(
            metrics::metric("ecc_overhead").eval(serial[i + 1]),
            72.0 / 64.0);
        EXPECT_DOUBLE_EQ(
            metrics::metric("effective_density_mb_per_mm2")
                .eval(serial[i + 1]),
            serial[i + 1].array.densityMbPerMm2() / (72.0 / 64.0));
    }

    for (int jobs : {2, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        config.jobs = jobs;
        auto parallel = runSweep(config);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_TRUE(store::identical(serial[i], parallel[i])) << i;
    }
}

TEST_F(ReliabilityTest, DefaultAnnotationMatchesExplicitNoneSpec)
{
    // An empty reliability axis and a spelled-out {"none", 0} spec are
    // the same sweep: identical rows, identical fingerprints.
    SweepConfig bare = testsupport::smallSweep();
    SweepConfig spelled = testsupport::smallSweep();
    spelled.reliability = {ReliabilitySpec{}};
    auto a = runSweep(bare);
    auto b = runSweep(spelled);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_TRUE(store::identical(a[i], b[i])) << i;
    EXPECT_EQ(store::sweepFingerprint(bare),
              store::sweepFingerprint(spelled));
}

} // namespace
} // namespace nvmexp
