#include <gtest/gtest.h>

#include "cachesim/cache.hh"

namespace nvmexp {
namespace {

TEST(Cache, HitAfterFill)
{
    Cache c("t", 1024, 2, 64);  // 8 sets x 2 ways
    EXPECT_FALSE(c.access(0x1000, MemOp::Read).hit);
    EXPECT_TRUE(c.access(0x1000, MemOp::Read).hit);
    EXPECT_TRUE(c.access(0x1020, MemOp::Read).hit);  // same line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEvictsOldest)
{
    Cache c("t", 2 * 64, 2, 64);  // one set, two ways
    c.access(0 * 64, MemOp::Read);
    c.access(1 * 64, MemOp::Read);
    c.access(0 * 64, MemOp::Read);        // touch 0 -> 1 becomes LRU
    auto r = c.access(2 * 64, MemOp::Read);
    EXPECT_EQ(r.evictedLine, 1ull * 64);
    EXPECT_TRUE(c.contains(0 * 64));
    EXPECT_FALSE(c.contains(1 * 64));
    EXPECT_TRUE(c.contains(2 * 64));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache c("t", 2 * 64, 2, 64);
    c.access(0 * 64, MemOp::Write);
    c.access(1 * 64, MemOp::Read);
    auto r = c.access(2 * 64, MemOp::Read);  // evicts dirty line 0
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(r.evictedLine, 0ull);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ReadThenWriteMarksDirty)
{
    Cache c("t", 2 * 64, 2, 64);
    c.access(0, MemOp::Read);
    c.access(0, MemOp::Write);
    c.access(64, MemOp::Read);
    auto r = c.access(128, MemOp::Read);
    EXPECT_TRUE(r.evictedDirty);  // line 0 was dirtied by the write
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c("t", 1024, 2, 64);
    c.access(0x40, MemOp::Write);
    EXPECT_TRUE(c.contains(0x40));
    EXPECT_TRUE(c.invalidate(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.invalidate(0x40));  // already gone
}

TEST(Cache, SetIndexingSeparatesConflicts)
{
    Cache c("t", 4096, 1, 64);  // 64 direct-mapped sets
    // Two addresses in different sets should not evict each other.
    c.access(0 * 64, MemOp::Read);
    c.access(1 * 64, MemOp::Read);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(64));
    // Same set (stride = numSets * line) conflicts.
    c.access(64ull * 64, MemOp::Read);
    EXPECT_FALSE(c.contains(0));
}

TEST(CacheDeath, ValidatesGeometry)
{
    EXPECT_EXIT(Cache("bad", 1024, 0, 64),
                ::testing::ExitedWithCode(1), "way");
    EXPECT_EXIT(Cache("bad", 1024, 2, 48),
                ::testing::ExitedWithCode(1), "power of two");
    EXPECT_EXIT(Cache("bad", 96, 2, 64), ::testing::ExitedWithCode(1),
                "mismatch");
}

TEST(Cache, StatsMissRate)
{
    Cache c("t", 1024, 2, 64);
    c.access(0, MemOp::Read);
    c.access(0, MemOp::Read);
    c.access(4096, MemOp::Read);
    EXPECT_NEAR(c.stats().missRate(), 2.0 / 3.0, 1e-12);
}

} // namespace
} // namespace nvmexp
