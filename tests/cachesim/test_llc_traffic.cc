#include <gtest/gtest.h>

#include "cachesim/cache.hh"

namespace nvmexp {
namespace {

Hierarchy::Config
tinyConfig()
{
    Hierarchy::Config c;
    c.l1Bytes = 1024;
    c.l2Bytes = 4096;
    c.llcBytes = 16384;
    c.l1Ways = 2;
    c.l2Ways = 4;
    c.llcWays = 4;
    return c;
}

TEST(Hierarchy, L1HitNeverReachesLlc)
{
    Hierarchy h(tinyConfig());
    h.access(0x100, MemOp::Read);  // compulsory chain to LLC
    auto before = h.summarize("t");
    h.access(0x100, MemOp::Read);  // L1 hit
    h.access(0x104, MemOp::Read);  // same line, L1 hit
    auto after = h.summarize("t");
    EXPECT_EQ(after.llcReads, before.llcReads);
    EXPECT_EQ(after.dramReads, before.dramReads);
}

TEST(Hierarchy, CompulsoryMissFillsAllLevels)
{
    Hierarchy h(tinyConfig());
    h.access(0x2000, MemOp::Read);
    auto t = h.summarize("t");
    EXPECT_EQ(t.llcReads, 1u);
    EXPECT_EQ(t.dramReads, 1u);
    EXPECT_EQ(t.llcWrites, 1u);  // the fill itself
    EXPECT_TRUE(h.llc().contains(0x2000));
    EXPECT_TRUE(h.l1().contains(0x2000));
}

TEST(Hierarchy, L2HitStopsAtL2)
{
    Hierarchy h(tinyConfig());
    h.access(0x0, MemOp::Read);
    // Evict from tiny L1 (2 ways x 8 sets) while staying in L2.
    h.access(0x400, MemOp::Read);
    h.access(0x800, MemOp::Read);
    auto before = h.summarize("t");
    h.access(0x0, MemOp::Read);  // L1 miss, L2 hit
    auto after = h.summarize("t");
    EXPECT_EQ(after.llcReads, before.llcReads);
}

TEST(Hierarchy, ExecTimeGrowsWithMisses)
{
    Hierarchy hitsOnly(tinyConfig());
    hitsOnly.retireInstructions(1000);
    double baseline = hitsOnly.summarize("t").execTime;

    Hierarchy missy(tinyConfig());
    missy.retireInstructions(1000);
    for (int i = 0; i < 64; ++i)
        missy.access((std::uint64_t)i * 64 * 1024, MemOp::Read);
    EXPECT_GT(missy.summarize("t").execTime, baseline);
}

TEST(Hierarchy, DirtyLlcEvictionCountsDramWrite)
{
    auto config = tinyConfig();
    Hierarchy h(config);
    // Write-touch far more lines than the LLC holds.
    std::size_t lines = config.llcBytes / 64 * 4;
    for (std::size_t i = 0; i < lines; ++i)
        h.access((std::uint64_t)i * 64, MemOp::Write);
    auto t = h.summarize("t");
    EXPECT_GT(t.dramWrites, 0u);
}

TEST(Hierarchy, InclusiveBackInvalidation)
{
    auto config = tinyConfig();
    Hierarchy h(config);
    h.access(0x0, MemOp::Read);
    ASSERT_TRUE(h.l1().contains(0x0));
    // Thrash the LLC set containing 0x0 until it gets evicted.
    std::uint64_t setStride =
        (std::uint64_t)(config.llcBytes / config.llcWays);
    for (int i = 1; i <= config.llcWays + 1; ++i)
        h.access((std::uint64_t)i * setStride, MemOp::Read);
    EXPECT_FALSE(h.llc().contains(0x0));
    EXPECT_FALSE(h.l1().contains(0x0));
    EXPECT_FALSE(h.l2().contains(0x0));
}

TEST(Hierarchy, SummarizeCarriesBenchmarkName)
{
    Hierarchy h(tinyConfig());
    h.retireInstructions(10);
    auto t = h.summarize("myname");
    EXPECT_EQ(t.benchmark, "myname");
    EXPECT_EQ(t.instructions, 10u);
}

} // namespace
} // namespace nvmexp
