#include <gtest/gtest.h>

#include "cachesim/streams.hh"

namespace nvmexp {
namespace {

TEST(Suite, HasTenNamedProfiles)
{
    const auto &suite = specLikeSuite();
    EXPECT_EQ(suite.size(), 10u);
    for (const auto &profile : suite) {
        EXPECT_FALSE(profile.name.empty());
        EXPECT_GT(profile.workingSetBytes, 0.0);
        EXPECT_GT(profile.memOpsPerInstr, 0.0);
        EXPECT_GE(profile.readFraction, 0.0);
        EXPECT_LE(profile.readFraction, 1.0);
    }
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(profileByName("mcf").name, "mcf");
    EXPECT_EXIT(profileByName("nosuch"), ::testing::ExitedWithCode(1),
                "unknown benchmark");
}

TEST(RunBenchmark, ProducesTrafficAndTime)
{
    Hierarchy::Config config;
    LlcTraffic t = runBenchmark(profileByName("gcc"), 500'000, 100'000,
                                config);
    EXPECT_EQ(t.benchmark, "gcc");
    EXPECT_EQ(t.instructions, 500'000u);
    EXPECT_GT(t.execTime, 0.0);
    EXPECT_GT(t.llcReads, 0u);
}

TEST(RunBenchmark, DeterministicUnderProfileSeed)
{
    Hierarchy::Config config;
    LlcTraffic a = runBenchmark(profileByName("xz"), 300'000, 50'000,
                                config);
    LlcTraffic b = runBenchmark(profileByName("xz"), 300'000, 50'000,
                                config);
    EXPECT_EQ(a.llcReads, b.llcReads);
    EXPECT_EQ(a.llcWrites, b.llcWrites);
    EXPECT_DOUBLE_EQ(a.execTime, b.execTime);
}

TEST(RunBenchmark, CacheResidentProducesLessLlcTrafficThanThrashing)
{
    Hierarchy::Config config;
    LlcTraffic friendly = runBenchmark(profileByName("perlbench"),
                                       1'000'000, 200'000, config);
    LlcTraffic thrash = runBenchmark(profileByName("mcf"), 1'000'000,
                                     200'000, config);
    EXPECT_LT(friendly.llcReads * 5, thrash.llcReads);
}

TEST(RunBenchmark, StreamingWritesProduceWritebacks)
{
    Hierarchy::Config config;
    LlcTraffic lbm = runBenchmark(profileByName("lbm"), 1'000'000,
                                  200'000, config);
    EXPECT_GT(lbm.dramWrites, 0u);
    EXPECT_GT(lbm.llcWrites, lbm.llcReads / 2);
}

TEST(RunBenchmark, WarmupIsExcludedFromCounts)
{
    Hierarchy::Config config;
    LlcTraffic cold = runBenchmark(profileByName("gcc"), 500'000, 0,
                                   config);
    LlcTraffic warm = runBenchmark(profileByName("gcc"), 500'000,
                                   500'000, config);
    EXPECT_EQ(warm.instructions, 500'000u);
    // Warm measurement misses the compulsory-fill burst.
    EXPECT_LT(warm.llcReads, cold.llcReads);
}

TEST(RunBenchmarkDeath, RejectsZeroInstructions)
{
    Hierarchy::Config config;
    EXPECT_EXIT(runBenchmark(profileByName("gcc"), 0, 0, config),
                ::testing::ExitedWithCode(1), "instruction budget");
}

TEST(LlcTrafficPattern, ConvertsCounts)
{
    LlcTraffic t;
    t.benchmark = "x";
    t.llcReads = 1000;
    t.llcWrites = 100;
    t.execTime = 0.01;
    TrafficPattern p = llcTrafficPattern(t);
    EXPECT_DOUBLE_EQ(p.readsPerSec, 1e5);
    EXPECT_DOUBLE_EQ(p.writesPerSec, 1e4);
    EXPECT_EQ(p.name, "x");

    t.execTime = 0.0;
    EXPECT_EXIT(llcTrafficPattern(t), ::testing::ExitedWithCode(1),
                "execution time");
}

} // namespace
} // namespace nvmexp
