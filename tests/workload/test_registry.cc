/**
 * @file
 * Workload registry error paths and parameter-schema validation: the
 * satellite hardening tier for the plugin subsystem. Unknown names,
 * duplicate registrations, and every boundary of the parameter
 * validator must fail loudly (clean fatal) — never crash or silently
 * fall back to defaults.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "../support/fixtures.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace {

using namespace workload;

class RegistryTest : public testsupport::QuietTest
{
};

TEST_F(RegistryTest, BuiltinsAreRegistered)
{
    auto names = WorkloadRegistry::instance().names();
    for (const char *expected :
         {"llc", "dnn", "graph", "kv-store", "wal", "intermittent"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected;
    }
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST_F(RegistryTest, FindReturnsNullForUnknown)
{
    EXPECT_EQ(WorkloadRegistry::instance().find("quantum-db"), nullptr);
    EXPECT_NE(WorkloadRegistry::instance().find("kv-store"), nullptr);
}

TEST_F(RegistryTest, RequireUnknownIsFatalAndListsNames)
{
    EXPECT_EXIT(WorkloadRegistry::instance().require("quantum-db"),
                ::testing::ExitedWithCode(1),
                "unknown workload 'quantum-db'.*kv-store");
}

TEST_F(RegistryTest, SpecWithoutNameIsFatal)
{
    TrafficContext context;
    EXPECT_EXIT(
        trafficFromWorkloadJson(JsonValue::parse(R"({"fps": 30})"),
                                context),
        ::testing::ExitedWithCode(1), "needs a \"name\" key");
    EXPECT_EXIT(trafficFromWorkloadJson(
                    JsonValue::parse(R"(["not", "an", "object"])"),
                    context),
                ::testing::ExitedWithCode(1), "needs a \"name\" key");
}

namespace {

/** Minimal custom workload for registration tests. */
class TestWorkload : public Workload
{
  public:
    explicit TestWorkload(std::string name) : name_(std::move(name)) {}
    std::string name() const override { return name_; }
    std::string description() const override { return "test"; }
    std::vector<ParamSpec>
    schema() const override
    {
        return {ParamSpec::number("rate", 100.0, "reads per second")
                    .min(1.0)
                    .max(1e6)};
    }
    std::vector<TrafficPattern>
    generateTraffic(const Params &params,
                    const TrafficContext &) const override
    {
        return {TrafficPattern::fromCounts(name_,
                                           params.number("rate"), 0.0,
                                           1.0)};
    }

  private:
    std::string name_;
};

} // namespace

TEST_F(RegistryTest, DuplicateRegistrationIsRejected)
{
    EXPECT_EXIT(WorkloadRegistry::instance().add(
                    std::make_unique<TestWorkload>("kv-store")),
                ::testing::ExitedWithCode(1), "registered twice");
    EXPECT_EXIT(
        WorkloadRegistry::instance().add(std::make_unique<TestWorkload>("")),
        ::testing::ExitedWithCode(1), "empty name");
}

TEST_F(RegistryTest, PluggedInWorkloadIsDispatchable)
{
    // Registering a new workload makes it reachable through the same
    // JSON dispatch path the built-ins use — the plugin promise. (The
    // registry is process-wide, so stay idempotent under
    // --gtest_repeat.)
    if (!WorkloadRegistry::instance().find("test-plugin")) {
        WorkloadRegistry::instance().add(
            std::make_unique<TestWorkload>("test-plugin"));
    }
    TrafficContext context;
    auto patterns = trafficFromWorkloadJson(
        JsonValue::parse(
            R"({"name": "test-plugin", "rate": 1234})"),
        context);
    ASSERT_EQ(patterns.size(), 1u);
    EXPECT_DOUBLE_EQ(patterns[0].readsPerSec, 1234.0);
}

class ParamsTest : public testsupport::QuietTest
{
  protected:
    std::vector<ParamSpec>
    schema() const
    {
        return {
            ParamSpec::number("rate", 10.0, "a bounded number")
                .min(1.0).max(100.0),
            ParamSpec::string("mode", "fast", "a vocabulary string")
                .oneOf({"fast", "slow"}),
            ParamSpec::boolean("verify", false, "a flag"),
            ParamSpec::number("seed", 0.0, "an unbounded number"),
            ParamSpec::string("label", "", "a free-form string"),
            ParamSpec::object("inner", "a nested object"),
        };
    }

    Params
    parse(const char *json) const
    {
        return Params::fromJson("unit", JsonValue::parse(json),
                                schema());
    }
};

TEST_F(ParamsTest, DefaultsAndExplicitValues)
{
    Params params = parse(R"({"rate": 42, "verify": true})");
    EXPECT_DOUBLE_EQ(params.number("rate"), 42.0);
    EXPECT_EQ(params.str("mode"), "fast");
    EXPECT_TRUE(params.flag("verify"));
    EXPECT_TRUE(params.provided("rate"));
    EXPECT_FALSE(params.provided("mode"));
    // The "name" key is reserved for registry dispatch and ignored by
    // validation.
    Params named = parse(R"({"name": "unit", "rate": 2})");
    EXPECT_DOUBLE_EQ(named.number("rate"), 2.0);
}

TEST_F(ParamsTest, BoundaryValuesAreInclusive)
{
    EXPECT_DOUBLE_EQ(parse(R"({"rate": 1})").number("rate"), 1.0);
    EXPECT_DOUBLE_EQ(parse(R"({"rate": 100})").number("rate"), 100.0);
}

TEST_F(ParamsTest, OutOfRangeNumbersAreFatal)
{
    EXPECT_EXIT(parse(R"({"rate": 0.999})"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(parse(R"({"rate": 100.001})"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(parse(R"({"rate": NaN})"),
                ::testing::ExitedWithCode(1), "NaN");
    // Unbounded numbers accept anything finite.
    EXPECT_DOUBLE_EQ(parse(R"({"seed": -1e300})").number("seed"),
                     -1e300);
}

TEST_F(ParamsTest, UnknownKeysAreFatal)
{
    EXPECT_EXIT(parse(R"({"rtae": 42})"), ::testing::ExitedWithCode(1),
                "unknown parameter 'rtae'");
}

TEST_F(ParamsTest, KindMismatchesAreFatal)
{
    EXPECT_EXIT(parse(R"({"rate": "42"})"),
                ::testing::ExitedWithCode(1), "must be a number");
    EXPECT_EXIT(parse(R"({"mode": 3})"), ::testing::ExitedWithCode(1),
                "must be a string");
    EXPECT_EXIT(parse(R"({"verify": "yes"})"),
                ::testing::ExitedWithCode(1), "must be a bool");
    EXPECT_EXIT(parse(R"({"inner": 3})"),
                ::testing::ExitedWithCode(1), "must be a object");
}

TEST_F(ParamsTest, VocabularyStringsAreEnforced)
{
    EXPECT_EQ(parse(R"({"mode": "slow"})").str("mode"), "slow");
    EXPECT_EXIT(parse(R"({"mode": "medium"})"),
                ::testing::ExitedWithCode(1),
                "expected one of: fast, slow");
    // Free-form strings accept anything.
    EXPECT_EQ(parse(R"({"label": "anything"})").str("label"),
              "anything");
}

TEST_F(ParamsTest, MissingRequiredParameterIsFatal)
{
    auto required = std::vector<ParamSpec>{
        ParamSpec::object("inner", "inner spec").mandatory()};
    EXPECT_EXIT(
        Params::fromJson("unit", JsonValue::parse("{}"), required),
        ::testing::ExitedWithCode(1),
        "missing required parameter 'inner'");
}

TEST_F(ParamsTest, NonObjectSpecIsFatal)
{
    EXPECT_EXIT(Params::fromJson("unit", JsonValue::parse("[1, 2]"),
                                 schema()),
                ::testing::ExitedWithCode(1), "must be an object");
}

} // namespace
} // namespace nvmexp
