/**
 * @file
 * Behavioural tests for the scenario generators: the legacy families
 * must match their direct substrate APIs exactly (the refactor
 * guarantee), and the new KV/WAL/intermittent generators must respond
 * to their parameters in the physically sensible direction.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "../support/fixtures.hh"
#include "cachesim/streams.hh"
#include "dnn/networks.hh"
#include "graph/graph.hh"
#include "graph/kernels.hh"
#include "workload/workload.hh"

namespace nvmexp {
namespace {

using workload::TrafficContext;
using workload::trafficFromWorkloadJson;

class ScenarioTest : public testsupport::QuietTest
{
  protected:
    std::vector<TrafficPattern>
    generate(const char *json, int wordBits = 512) const
    {
        TrafficContext context;
        context.wordBits = wordBits;
        return trafficFromWorkloadJson(JsonValue::parse(json), context);
    }

    TrafficPattern
    one(const char *json, int wordBits = 512) const
    {
        auto patterns = generate(json, wordBits);
        EXPECT_EQ(patterns.size(), 1u);
        return patterns.front();
    }
};

// ---------------------------------------------------------------- legacy

TEST_F(ScenarioTest, DnnWorkloadMatchesDirectExtraction)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.tasks = 3;
    scenario.storage = DnnStorage::WeightsAndActivations;
    scenario.framesPerSec = 30.0;
    TrafficPattern direct = dnnTraffic(scenario);

    TrafficPattern viaRegistry = one(
        R"({"name": "dnn", "network": "resnet26", "tasks": 3,
            "storage": "weights+activations", "fps": 30})");
    EXPECT_EQ(viaRegistry.name, direct.name);
    EXPECT_DOUBLE_EQ(viaRegistry.readsPerSec, direct.readsPerSec);
    EXPECT_DOUBLE_EQ(viaRegistry.writesPerSec, direct.writesPerSec);
    EXPECT_DOUBLE_EQ(viaRegistry.execTime, direct.execTime);
}

TEST_F(ScenarioTest, GraphWorkloadMatchesDirectKernelRun)
{
    Graph g = facebookLike();
    GraphAccelModel accel;
    accel.scratchWordBits = 64;
    TrafficPattern direct =
        kernelTraffic("Facebook-BFS", bfs(g, 0).stats, accel);

    TrafficPattern viaRegistry = one(
        R"({"name": "graph", "graph": "facebook", "kernel": "bfs"})",
        64);
    EXPECT_EQ(viaRegistry.name, direct.name);
    EXPECT_DOUBLE_EQ(viaRegistry.readsPerSec, direct.readsPerSec);
    EXPECT_DOUBLE_EQ(viaRegistry.writesPerSec, direct.writesPerSec);
}

TEST_F(ScenarioTest, GraphKernelsAndGuards)
{
    TrafficPattern pr = one(
        R"({"name": "graph", "graph": "wikipedia",
            "kernel": "pagerank", "iterations": 5})");
    EXPECT_EQ(pr.name, "Wikipedia-PageRank");
    EXPECT_GT(pr.readsPerSec, 0.0);

    TrafficPattern cc = one(
        R"({"name": "graph", "kernel": "components",
            "pattern_name": "fb-cc"})");
    EXPECT_EQ(cc.name, "fb-cc");

    EXPECT_EXIT(generate(R"({"name": "graph", "source": 1e9})"),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST_F(ScenarioTest, LlcWorkloadMatchesDirectBenchmarkRun)
{
    Hierarchy::Config hconfig;  // 16 MiB LLC default, as the workload's
    LlcTraffic direct = runBenchmark(profileByName("mcf"), 1'000'000,
                                     200'000, hconfig);
    TrafficPattern expected = llcTrafficPattern(direct);

    TrafficPattern viaRegistry = one(
        R"({"name": "llc", "benchmark": "mcf",
            "instructions": 1e6, "warmup": 2e5})");
    EXPECT_EQ(viaRegistry.name, expected.name);
    EXPECT_DOUBLE_EQ(viaRegistry.readsPerSec, expected.readsPerSec);
    EXPECT_DOUBLE_EQ(viaRegistry.writesPerSec, expected.writesPerSec);
    EXPECT_DOUBLE_EQ(viaRegistry.execTime, expected.execTime);
}

TEST_F(ScenarioTest, LlcSuiteEmitsOnePatternPerProfile)
{
    auto patterns = generate(
        R"({"name": "llc", "benchmark": "suite",
            "instructions": 2e5, "warmup": 5e4})");
    const auto &suite = specLikeSuite();
    ASSERT_EQ(patterns.size(), suite.size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(patterns[i].name, suite[i].name);
}

// ------------------------------------------------------------------- kv

TEST_F(ScenarioTest, KvHigherSkewMeansFewerArrayReads)
{
    const char *fmt =
        R"({"name": "kv-store", "zipf_skew": %s})";
    char low[128], high[128];
    std::snprintf(low, sizeof low, fmt, "0.5");
    std::snprintf(high, sizeof high, fmt, "1.2");
    TrafficPattern lowSkew = one(low);
    TrafficPattern highSkew = one(high);
    // More skew -> hotter hot set -> higher cache hit rate -> fewer
    // reads reaching the array. Writes are write-through: unchanged.
    EXPECT_LT(highSkew.readsPerSec, lowSkew.readsPerSec);
    EXPECT_DOUBLE_EQ(highSkew.writesPerSec, lowSkew.writesPerSec);
}

TEST_F(ScenarioTest, KvCacheAbsorbsEverythingWhenItFits)
{
    // Cache large enough for every key: all GETs hit, only PUTs reach
    // the array.
    TrafficPattern all = one(
        R"({"name": "kv-store", "key_count": 1000, "cache_mib": 16,
            "get_fraction": 0.9, "ops_per_sec": 1e6})");
    EXPECT_DOUBLE_EQ(all.readsPerSec, 0.0);
    EXPECT_GT(all.writesPerSec, 0.0);

    // No cache: every GET reads the array.
    TrafficPattern none = one(
        R"({"name": "kv-store", "key_count": 1000, "cache_mib": 0,
            "get_fraction": 0.9, "ops_per_sec": 1e6})");
    EXPECT_GT(none.readsPerSec, 0.0);
}

TEST_F(ScenarioTest, KvValueSizeScalesTraffic)
{
    TrafficPattern small = one(
        R"({"name": "kv-store", "value_bytes": 48, "cache_mib": 0})");
    TrafficPattern large = one(
        R"({"name": "kv-store", "value_bytes": 4096, "cache_mib": 0})");
    EXPECT_GT(large.readsPerSec, small.readsPerSec);
    EXPECT_GT(large.writesPerSec, small.writesPerSec);
    // Word width feeds the record-to-word conversion.
    TrafficPattern narrow = one(
        R"({"name": "kv-store", "value_bytes": 4096, "cache_mib": 0})",
        64);
    EXPECT_GT(narrow.readsPerSec, large.readsPerSec);
}

// ------------------------------------------------------------------ wal

TEST_F(ScenarioTest, WalEmitsSteadyAndCheckpointPatterns)
{
    auto patterns = generate(R"({"name": "wal"})");
    ASSERT_EQ(patterns.size(), 2u);
    EXPECT_EQ(patterns[0].name, "wal-steady");
    EXPECT_EQ(patterns[1].name, "wal-checkpoint");
    // Steady state is append-only; the checkpoint burst re-reads the
    // period's log, so it is read-dominated and much hotter.
    EXPECT_DOUBLE_EQ(patterns[0].readsPerSec, 0.0);
    EXPECT_GT(patterns[0].writesPerSec, 0.0);
    EXPECT_GT(patterns[1].readsPerSec, patterns[0].writesPerSec);

    auto withRecovery = generate(R"({"name": "wal", "recovery": true})");
    ASSERT_EQ(withRecovery.size(), 3u);
    EXPECT_EQ(withRecovery[2].name, "wal-recovery");
    EXPECT_GT(withRecovery[2].readsPerSec,
              withRecovery[1].readsPerSec);
}

TEST_F(ScenarioTest, WalCheckpointScanCoversTheLoggedWords)
{
    // With a 1 s window, checkpoint reads/s == words logged per
    // period: the whole log is scanned back.
    TrafficPattern steady = generate(
        R"({"name": "wal", "checkpoint_period_sec": 10})")[0];
    TrafficPattern checkpoint = generate(
        R"({"name": "wal", "checkpoint_period_sec": 10})")[1];
    EXPECT_DOUBLE_EQ(checkpoint.readsPerSec,
                     steady.writesPerSec * 10.0);
    // The burst window is clamped to the period.
    auto clamped = generate(
        R"({"name": "wal", "checkpoint_period_sec": 0.5,
            "checkpoint_window_sec": 5})");
    EXPECT_DOUBLE_EQ(clamped[1].execTime, 0.5);
}

// --------------------------------------------------------- intermittent

TEST_F(ScenarioTest, IntermittentCatchUpCompressesRates)
{
    TrafficPattern inner = one(
        R"({"name": "kv-store", "cache_mib": 0})");
    TrafficPattern wrapped = one(
        R"({"name": "intermittent", "duty_cycle": 0.25,
            "inner": {"name": "kv-store", "cache_mib": 0}})");
    // Catch-up at 25% duty: the array sees 4x rates while powered.
    EXPECT_DOUBLE_EQ(wrapped.readsPerSec, inner.readsPerSec * 4.0);
    EXPECT_DOUBLE_EQ(wrapped.writesPerSec, inner.writesPerSec * 4.0);
    EXPECT_DOUBLE_EQ(wrapped.execTime, inner.execTime * 0.25);
    EXPECT_EQ(wrapped.name.rfind("int-d0.25/", 0), 0u);
}

TEST_F(ScenarioTest, IntermittentThrottleAveragesRates)
{
    TrafficPattern inner = one(
        R"({"name": "kv-store", "cache_mib": 0})");
    TrafficPattern wrapped = one(
        R"({"name": "intermittent", "duty_cycle": 0.25,
            "mode": "throttle",
            "inner": {"name": "kv-store", "cache_mib": 0}})");
    EXPECT_DOUBLE_EQ(wrapped.readsPerSec, inner.readsPerSec * 0.25);
    EXPECT_DOUBLE_EQ(wrapped.writesPerSec, inner.writesPerSec * 0.25);
}

TEST_F(ScenarioTest, IntermittentRestoreAndCheckpointAddTransferTraffic)
{
    TrafficPattern plain = one(
        R"({"name": "intermittent", "duty_cycle": 0.5,
            "period_sec": 2.0,
            "inner": {"name": "kv-store", "cache_mib": 0}})");
    TrafficPattern withState = one(
        R"({"name": "intermittent", "duty_cycle": 0.5,
            "period_sec": 2.0, "restore_mib": 1,
            "checkpoint_mib": 1,
            "inner": {"name": "kv-store", "cache_mib": 0}})");
    // 1 MiB at 64 B/word = 16384 words per wake, over 1 s of on-time.
    EXPECT_DOUBLE_EQ(withState.readsPerSec - plain.readsPerSec,
                     16384.0);
    EXPECT_DOUBLE_EQ(withState.writesPerSec - plain.writesPerSec,
                     16384.0);
}

TEST_F(ScenarioTest, IntermittentFullDutyIsIdentityForRates)
{
    TrafficPattern inner = one(R"({"name": "kv-store"})");
    TrafficPattern wrapped = one(
        R"({"name": "intermittent", "duty_cycle": 1.0,
            "inner": {"name": "kv-store"}})");
    EXPECT_DOUBLE_EQ(wrapped.readsPerSec, inner.readsPerSec);
    EXPECT_DOUBLE_EQ(wrapped.writesPerSec, inner.writesPerSec);
}

TEST_F(ScenarioTest, IntermittentWrapsMultiPatternAndNestedWorkloads)
{
    // Wrapping a two-pattern workload modulates both patterns.
    auto wal = generate(
        R"({"name": "intermittent",
            "inner": {"name": "wal"}})");
    ASSERT_EQ(wal.size(), 2u);

    // Wrappers nest: duty cycles compose multiplicatively.
    TrafficPattern nested = one(
        R"({"name": "intermittent", "duty_cycle": 0.5,
            "inner": {"name": "intermittent", "duty_cycle": 0.5,
                      "inner": {"name": "kv-store",
                                "cache_mib": 0}}})");
    TrafficPattern base = one(
        R"({"name": "kv-store", "cache_mib": 0})");
    EXPECT_DOUBLE_EQ(nested.readsPerSec, base.readsPerSec * 4.0);
}

TEST_F(ScenarioTest, IntermittentMissingInnerIsFatal)
{
    EXPECT_EXIT(generate(R"({"name": "intermittent"})"),
                ::testing::ExitedWithCode(1),
                "missing required parameter 'inner'");
    EXPECT_EXIT(
        generate(R"({"name": "intermittent", "inner": {}})"),
        ::testing::ExitedWithCode(1), "needs a \"name\" key");
}

} // namespace
} // namespace nvmexp
