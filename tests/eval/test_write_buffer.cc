#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"

namespace nvmexp {
namespace {

ArrayResult
fefetArray()
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 8.0 * 1024 * 1024;
    config.wordBits = 64;
    ArrayDesigner designer(catalog.optimistic(CellTech::FeFET), config);
    return designer.optimize(OptTarget::ReadEDP);
}

TEST(WriteBuffer, NoOpConfigMatchesPlainEvaluate)
{
    ArrayResult array = fefetArray();
    auto t = TrafficPattern::fromByteRates("t", 4e9, 80e6, 64);
    EvalResult plain = evaluate(array, t);
    EvalResult buffered =
        evaluateWithWriteBuffer(array, t, WriteBufferConfig{});
    EXPECT_NEAR(buffered.latencyLoad, plain.latencyLoad,
                plain.latencyLoad * 1e-12);
    EXPECT_NEAR(buffered.totalPower, plain.totalPower,
                plain.totalPower * 1e-12);
}

TEST(WriteBuffer, MaskingReducesLatencyLoad)
{
    ArrayResult array = fefetArray();
    auto t = TrafficPattern::fromByteRates("t", 4e9, 80e6, 64);
    WriteBufferConfig config;
    config.latencyMaskFraction = 1.0;
    EvalResult masked = evaluateWithWriteBuffer(array, t, config);
    EvalResult plain = evaluate(array, t);
    EXPECT_LT(masked.latencyLoad, plain.latencyLoad);
}

TEST(WriteBuffer, FullMaskKeepsBufferAccessFloor)
{
    ArrayResult array = fefetArray();
    auto t = TrafficPattern::fromByteRates("t", 1e9, 80e6, 64);
    WriteBufferConfig config;
    config.latencyMaskFraction = 1.0;
    EvalResult masked = evaluateWithWriteBuffer(array, t, config);
    // Effective write latency floors at half the read latency.
    EXPECT_NEAR(masked.array.writeLatency, array.readLatency * 0.5,
                array.readLatency * 1e-9);
}

TEST(WriteBuffer, TrafficReductionLowersPowerAndWear)
{
    ArrayResult array = fefetArray();
    auto t = TrafficPattern::fromByteRates("t", 4e9, 80e6, 64);
    WriteBufferConfig half;
    half.trafficReduction = 0.5;
    EvalResult reduced = evaluateWithWriteBuffer(array, t, half);
    EvalResult plain = evaluate(array, t);
    EXPECT_LT(reduced.totalPower, plain.totalPower);
    EXPECT_NEAR(reduced.lifetimeSec, 2.0 * plain.lifetimeSec,
                plain.lifetimeSec * 1e-9);
}

TEST(WriteBuffer, UnlocksWriteLimitedTechnology)
{
    // Paper Fig. 14: pessimistic FeFET fails write bandwidth under
    // heavy graph traffic; masking makes it serviceable.
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 8.0 * 1024 * 1024;
    config.wordBits = 64;
    ArrayDesigner designer(catalog.pessimistic(CellTech::FeFET),
                           config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);
    auto t = TrafficPattern::fromByteRates("t", 4e9, 100e6, 64);
    EXPECT_FALSE(evaluate(array, t).viable());
    WriteBufferConfig wb;
    wb.latencyMaskFraction = 1.0;
    wb.trafficReduction = 0.5;
    EXPECT_TRUE(evaluateWithWriteBuffer(array, t, wb).viable());
}

TEST(WriteBufferDeath, RejectsOutOfRangeFractions)
{
    ArrayResult array = fefetArray();
    auto t = TrafficPattern::fromByteRates("t", 1e9, 1e6, 64);
    WriteBufferConfig bad;
    bad.latencyMaskFraction = 1.5;
    EXPECT_EXIT(evaluateWithWriteBuffer(array, t, bad),
                ::testing::ExitedWithCode(1), "\\[0, 1\\]");
    bad.latencyMaskFraction = 0.0;
    bad.trafficReduction = -0.1;
    EXPECT_EXIT(evaluateWithWriteBuffer(array, t, bad),
                ::testing::ExitedWithCode(1), "\\[0, 1\\]");
}

} // namespace
} // namespace nvmexp
