#include <gtest/gtest.h>

#include <cmath>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"

namespace nvmexp {
namespace {

ArrayResult
build(const MemCell &cell, double mib = 2.0)
{
    ArrayConfig config;
    config.capacityBytes = mib * 1024 * 1024;
    config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
    ArrayDesigner designer(cell, config);
    return designer.optimize(OptTarget::ReadEDP);
}

IntermittentConfig
baseConfig()
{
    IntermittentConfig c;
    c.eventsPerDay = 1000.0;
    c.readsPerEvent = 30000.0;
    c.writesPerEvent = 0.0;
    c.computeTimePerEvent = 1e-4;
    c.restoreBytesOnWake = 1.6e6;
    return c;
}

TEST(Intermittent, NonVolatilePaysSleepLeakage)
{
    CellCatalog catalog;
    ArrayResult array = build(catalog.optimistic(CellTech::STT));
    auto config = baseConfig();
    IntermittentResult r = evaluateIntermittent(array, config);
    double expectedStandby =
        config.sleepLeakFraction * array.leakage * 86400.0;
    EXPECT_NEAR(r.standbyEnergyPerDay, expectedStandby,
                expectedStandby * 1e-12);
    EXPECT_DOUBLE_EQ(r.wakeLatency, 0.0);
    EXPECT_FALSE(r.keptPowered);
}

TEST(Intermittent, EnergyPerEventIncludesAccessAndOnTimeLeak)
{
    CellCatalog catalog;
    ArrayResult array = build(catalog.optimistic(CellTech::STT));
    auto config = baseConfig();
    IntermittentResult r = evaluateIntermittent(array, config);
    double access = config.readsPerEvent * array.readEnergy;
    double leak = array.leakage * config.computeTimePerEvent;
    EXPECT_NEAR(r.energyPerEvent, access + leak,
                (access + leak) * 1e-9);
}

TEST(Intermittent, VolatilePicksCheaperOfPoweredAndRestore)
{
    ArrayResult sram = build(CellCatalog::sram16());
    auto config = baseConfig();

    // Rare wake-ups: restoring is cheaper than staying powered.
    config.eventsPerDay = 10.0;
    IntermittentResult rare = evaluateIntermittent(sram, config);
    EXPECT_FALSE(rare.keptPowered);
    EXPECT_GT(rare.wakeLatency, 0.0);

    // Constant wake-ups: staying powered wins.
    config.eventsPerDay = 1e8;
    IntermittentResult busy = evaluateIntermittent(sram, config);
    EXPECT_TRUE(busy.keptPowered);
    EXPECT_DOUBLE_EQ(busy.wakeLatency, 0.0);
    EXPECT_NEAR(busy.standbyEnergyPerDay, sram.leakage * 86400.0,
                sram.leakage * 86400.0 * 1e-12);
}

TEST(Intermittent, EnergyPerDayComposition)
{
    CellCatalog catalog;
    ArrayResult array = build(catalog.optimistic(CellTech::FeFET));
    auto config = baseConfig();
    IntermittentResult r = evaluateIntermittent(array, config);
    EXPECT_NEAR(r.energyPerDay,
                r.energyPerEvent * config.eventsPerDay +
                    r.standbyEnergyPerDay,
                r.energyPerDay * 1e-12);
}

TEST(Intermittent, CrossoverBetweenFeFetAndStt)
{
    // Paper Fig. 7: FeFET wins at low wake-up rates (lower standby
    // leakage via its smaller array), STT wins at high rates (lower
    // energy per access).
    CellCatalog catalog;
    ArrayResult fefet = build(catalog.optimistic(CellTech::FeFET));
    ArrayResult stt = build(catalog.optimistic(CellTech::STT));
    auto config = baseConfig();

    config.eventsPerDay = 100.0;
    double fefetLow = evaluateIntermittent(fefet, config).energyPerDay;
    double sttLow = evaluateIntermittent(stt, config).energyPerDay;
    EXPECT_LT(fefetLow, sttLow);

    config.eventsPerDay = 1e7;
    double fefetHigh = evaluateIntermittent(fefet, config).energyPerDay;
    double sttHigh = evaluateIntermittent(stt, config).energyPerDay;
    EXPECT_LT(sttHigh, fefetHigh);
}

TEST(Intermittent, LifetimeAccountsRestoreWrites)
{
    ArrayResult sram = build(CellCatalog::sram16());
    auto config = baseConfig();
    config.eventsPerDay = 10.0;  // restore mode
    IntermittentResult r = evaluateIntermittent(sram, config);
    EXPECT_TRUE(std::isfinite(r.lifetimeSec));
    EXPECT_GT(r.lifetimeSec, 0.0);
}

TEST(Intermittent, RetentionMustCoverTheOffInterval)
{
    CellCatalog catalog;
    // Pessimistic RRAM retains for only ~1e3 s (the siox corpus
    // entry): fine at one event per minute, failing at one per day.
    ArrayResult weak = build(catalog.pessimistic(CellTech::RRAM));
    auto config = baseConfig();
    config.eventsPerDay = 86400.0 / 60.0;
    EXPECT_TRUE(evaluateIntermittent(weak, config).retentionOk);
    config.eventsPerDay = 1.0;
    EXPECT_FALSE(evaluateIntermittent(weak, config).retentionOk);

    // Optimistic STT (10-year retention) is fine either way.
    ArrayResult strong = build(catalog.optimistic(CellTech::STT));
    EXPECT_TRUE(evaluateIntermittent(strong, config).retentionOk);
}

TEST(IntermittentDeath, RejectsBadConfigs)
{
    CellCatalog catalog;
    ArrayResult array = build(catalog.optimistic(CellTech::STT));
    IntermittentConfig config;
    config.eventsPerDay = 0.0;
    EXPECT_EXIT(evaluateIntermittent(array, config),
                ::testing::ExitedWithCode(1), "wake-up rate");
    config = baseConfig();
    config.readsPerEvent = -1.0;
    EXPECT_EXIT(evaluateIntermittent(array, config),
                ::testing::ExitedWithCode(1), "negative");
}

} // namespace
} // namespace nvmexp
