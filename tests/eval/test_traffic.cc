#include <gtest/gtest.h>

#include <cmath>

#include "eval/traffic.hh"

namespace nvmexp {
namespace {

TEST(Traffic, FromByteRatesConvertsToWordAccesses)
{
    auto t = TrafficPattern::fromByteRates("t", 6.4e9, 6.4e7, 512);
    EXPECT_DOUBLE_EQ(t.readsPerSec, 1e8);   // 6.4 GB/s / 64 B
    EXPECT_DOUBLE_EQ(t.writesPerSec, 1e6);
    EXPECT_DOUBLE_EQ(t.readBytesPerSec(512), 6.4e9);
    EXPECT_DOUBLE_EQ(t.writeBytesPerSec(512), 6.4e7);
}

TEST(Traffic, FromCountsDividesByExecTime)
{
    auto t = TrafficPattern::fromCounts("t", 1000.0, 100.0, 0.5);
    EXPECT_DOUBLE_EQ(t.readsPerSec, 2000.0);
    EXPECT_DOUBLE_EQ(t.writesPerSec, 200.0);
    EXPECT_DOUBLE_EQ(t.readsPerExec(), 1000.0);
    EXPECT_DOUBLE_EQ(t.writesPerExec(), 100.0);
}

TEST(Traffic, ReadFraction)
{
    auto t = TrafficPattern::fromCounts("t", 300.0, 100.0, 1.0);
    EXPECT_DOUBLE_EQ(t.readFraction(), 0.75);
    TrafficPattern idle;
    idle.name = "idle";
    EXPECT_DOUBLE_EQ(idle.readFraction(), 1.0);
}

TEST(Traffic, ScaledMultipliesBothRates)
{
    auto t = TrafficPattern::fromCounts("t", 100.0, 10.0, 1.0);
    auto s = t.scaled(3.0, "t3");
    EXPECT_EQ(s.name, "t3");
    EXPECT_DOUBLE_EQ(s.readsPerSec, 300.0);
    EXPECT_DOUBLE_EQ(s.writesPerSec, 30.0);
    EXPECT_DOUBLE_EQ(s.execTime, t.execTime);
}

TEST(TrafficDeath, InvalidInputsAreFatal)
{
    EXPECT_EXIT(TrafficPattern::fromCounts("t", 1.0, 1.0, 0.0),
                ::testing::ExitedWithCode(1), "execution time");
    EXPECT_EXIT(TrafficPattern::fromByteRates("t", 1.0, 1.0, 0),
                ::testing::ExitedWithCode(1), "word size");
    auto t = TrafficPattern::fromCounts("t", 1.0, 1.0, 1.0);
    EXPECT_EXIT(t.scaled(-1.0, "bad"), ::testing::ExitedWithCode(1),
                "non-negative");
    TrafficPattern bad;
    bad.name = "bad";
    bad.readsPerSec = -1.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "negative");
}

TEST(TrafficGrid, SizeAndBounds)
{
    auto grid = genericTrafficGrid(1e9, 10e9, 1e6, 100e6, 5, 64);
    EXPECT_EQ(grid.size(), 25u);
    for (const auto &t : grid) {
        double rd = t.readBytesPerSec(64);
        double wr = t.writeBytesPerSec(64);
        EXPECT_GE(rd, 1e9 * 0.999);
        EXPECT_LE(rd, 10e9 * 1.001);
        EXPECT_GE(wr, 1e6 * 0.999);
        EXPECT_LE(wr, 100e6 * 1.001);
    }
}

TEST(TrafficGrid, LogSpacedEndpointsExact)
{
    auto grid = genericTrafficGrid(1e9, 10e9, 1e6, 100e6, 3, 64);
    EXPECT_NEAR(grid.front().readBytesPerSec(64), 1e9, 1.0);
    EXPECT_NEAR(grid.back().readBytesPerSec(64), 10e9, 10.0);
    // Middle step is the geometric midpoint.
    EXPECT_NEAR(grid[4].readBytesPerSec(64), std::sqrt(1e9 * 10e9),
                1e6);
}

TEST(TrafficGridDeath, RejectsBadBounds)
{
    EXPECT_EXIT(genericTrafficGrid(1e9, 1e8, 1e6, 1e8, 3, 64),
                ::testing::ExitedWithCode(1), "bounds");
    EXPECT_EXIT(genericTrafficGrid(1e9, 1e10, 1e6, 1e8, 1, 64),
                ::testing::ExitedWithCode(1), "steps");
}

} // namespace
} // namespace nvmexp
