#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"

namespace nvmexp {
namespace {

ArrayResult
sttArray(double mib = 2.0)
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = mib * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT), config);
    return designer.optimize(OptTarget::ReadEDP);
}

TEST(Evaluate, PowerDecomposesExactly)
{
    ArrayResult array = sttArray();
    auto t = TrafficPattern::fromCounts("t", 1e7, 1e6, 1.0);
    EvalResult r = evaluate(array, t);
    double expectedDyn =
        1e7 * array.readEnergy + 1e6 * array.writeEnergy;
    EXPECT_NEAR(r.dynamicPower, expectedDyn, expectedDyn * 1e-12);
    EXPECT_DOUBLE_EQ(r.leakagePower, array.leakage);
    EXPECT_NEAR(r.totalPower, expectedDyn + array.leakage, 1e-15);
}

TEST(Evaluate, IdleTrafficCostsOnlyLeakage)
{
    ArrayResult array = sttArray();
    TrafficPattern idle;
    idle.name = "idle";
    EvalResult r = evaluate(array, idle);
    EXPECT_DOUBLE_EQ(r.dynamicPower, 0.0);
    EXPECT_DOUBLE_EQ(r.totalPower, array.leakage);
    EXPECT_DOUBLE_EQ(r.latencyLoad, 0.0);
    EXPECT_EQ(r.slowdown, 1.0);
    EXPECT_TRUE(r.viable());
}

TEST(Evaluate, LongPoleModelUsesBankParallelism)
{
    ArrayResult array = sttArray();
    auto t = TrafficPattern::fromCounts("t", 2e8, 0.0, 1.0);
    EvalResult r = evaluate(array, t);
    double expected =
        2e8 * array.readLatency / array.org.banks;
    EXPECT_NEAR(r.latencyLoad, expected, expected * 1e-12);
}

TEST(Evaluate, SlowdownKicksInAboveUnity)
{
    ArrayResult array = sttArray();
    // Enough reads to exceed the service capability.
    double reads = 2.0 * array.org.banks / array.readLatency;
    auto t = TrafficPattern::fromCounts("t", reads, 0.0, 1.0);
    EvalResult r = evaluate(array, t);
    EXPECT_GT(r.latencyLoad, 1.0);
    EXPECT_DOUBLE_EQ(r.slowdown, r.latencyLoad);
    EXPECT_FALSE(r.viable());
}

TEST(Evaluate, BandwidthFlagsTripIndependently)
{
    ArrayResult array = sttArray();
    auto heavyWrites = TrafficPattern::fromByteRates(
        "w", 1.0, array.writeBandwidth * 2.0, array.wordBits);
    EvalResult r = evaluate(array, heavyWrites);
    EXPECT_TRUE(r.meetsReadBandwidth);
    EXPECT_FALSE(r.meetsWriteBandwidth);
    EXPECT_FALSE(r.viable());
}

TEST(Evaluate, TotalAccessLatencyUsesExecWindow)
{
    ArrayResult array = sttArray();
    auto t = TrafficPattern::fromCounts("t", 1000.0, 100.0, 0.01);
    EvalResult r = evaluate(array, t);
    double expected = 1000.0 * array.readLatency +
        100.0 * array.writeLatency;
    EXPECT_NEAR(r.totalAccessLatency, expected, expected * 1e-12);
}

TEST(Evaluate, SramVsEnvmPowerShape)
{
    // The headline Fig. 6 mechanism: SRAM leakage dwarfs eNVM total
    // power under weight-read traffic.
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 2.0 * 1024 * 1024;
    config.nodeNm = 16;
    ArrayDesigner sramDesigner(CellCatalog::sram16(), config);
    ArrayResult sram = sramDesigner.optimize(OptTarget::ReadEDP);
    ArrayResult stt = sttArray();
    auto t = TrafficPattern::fromCounts("weights", 1.6e6, 0.0, 1.0);
    EXPECT_GT(evaluate(sram, t).totalPower,
              4.0 * evaluate(stt, t).totalPower);
}

} // namespace
} // namespace nvmexp
