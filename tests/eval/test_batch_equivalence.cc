/**
 * @file
 * Differential tier for the batched sweep evaluation path
 * (eval/batch.hh): the batched structure-of-arrays inner loop must be
 * bitwise indistinguishable from the per-point reference path — same
 * EvalResults (reliability sub-object included), same store
 * fingerprint, same on-disk artifacts — across every shipped config,
 * randomized sweep axes, any batch size, any worker count, and
 * through a mid-batch checkpoint resume.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "celldb/tentpole.hh"
#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "reliability/reliability.hh"
#include "store/result_store.hh"
#include "util/random.hh"
#include "workload/workload.hh"

#include "../support/fixtures.hh"

namespace nvmexp {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE((bool)in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path,
           const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &line : lines)
        out << line << '\n';
}

/** The sweep's effective traffic list, workload specs expanded the
 *  same way ParallelSweepRunner::run() expands them. */
std::vector<TrafficPattern>
expandedTraffics(const SweepConfig &config)
{
    std::vector<TrafficPattern> traffics = config.traffics;
    if (!config.workloads.empty()) {
        workload::TrafficContext context;
        context.wordBits = config.wordBits;
        auto patterns =
            workload::expandWorkloads(config.workloads, context);
        traffics.insert(traffics.end(), patterns.begin(),
                        patterns.end());
    }
    return traffics;
}

void
expectIdentical(const std::vector<EvalResult> &batched,
                const std::vector<EvalResult> &scalar,
                const std::string &label)
{
    ASSERT_EQ(batched.size(), scalar.size()) << label;
    for (std::size_t i = 0; i < batched.size(); ++i) {
        EXPECT_TRUE(store::identical(batched[i], scalar[i]))
            << label << " slot " << i;
    }
}

class BatchEquivalenceTest : public testsupport::QuietTest
{
  protected:
    /** Fresh per-test store directory. */
    std::string
    storeDir(const std::string &name)
    {
        std::string dir = ::testing::TempDir() + "nvmexp_batch_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() +
            "_" + name;
        std::filesystem::remove_all(dir);
        return dir;
    }

    /** wideSweep with a reliability axis: 16 arrays x 3 traffics x 2
     *  specs = 96 slots, every axis the batched path hoists over. */
    SweepConfig
    reliabilitySweep()
    {
        SweepConfig config = testsupport::wideSweep();
        reliability::ReliabilitySpec none;
        reliability::ReliabilitySpec secded;
        secded.ecc = "secded-72-64";
        secded.scrubIntervalSec = 3600.0;
        config.reliability = {none, secded};
        return config;
    }
};

/** Every shipped study config, evaluated batched and per point at one
 *  and at eight workers: all four runs bitwise identical. */
TEST_F(BatchEquivalenceTest, ShippedConfigsMatchScalarAtAnyJobCount)
{
    const std::string configDir =
        std::string(NVMEXP_SOURCE_DIR) + "/config";
    std::size_t checked = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(configDir)) {
        if (entry.path().extension() != ".json")
            continue;
        ExperimentConfig experiment =
            loadExperimentFile(entry.path().string());
        SweepConfig sweep = experiment.sweep;
        sweep.outDir.clear();
        sweep.resume = false;
        auto traffics = expandedTraffics(sweep);

        // Characterization is deterministic and path-independent:
        // do it once and diff only the evaluation stage.
        ParallelSweepRunner characterizer(8);
        auto arrays = characterizer.characterize(sweep);
        ASSERT_FALSE(arrays.empty()) << entry.path();

        for (int jobs : {1, 8}) {
            ParallelSweepRunner runner(jobs);
            auto batched = runner.evaluateAll(arrays, traffics,
                                              sweep.reliability);
            auto scalar = runner.evaluateAllScalar(arrays, traffics,
                                                   sweep.reliability);
            std::string label = entry.path().filename().string();
            label += " -j";
            label += std::to_string(jobs);
            expectIdentical(batched, scalar, label);
        }
        ++checked;
    }
    // The repo ships eight study configs; a glob that silently
    // matches nothing would vacuously pass.
    EXPECT_GE(checked, 8u);
}

/** The batch flag and batch size are invisible to the store: a
 *  sweep's fingerprint (which guards checkpoint replay) must not
 *  depend on either. */
TEST_F(BatchEquivalenceTest, FingerprintIgnoresBatchSettings)
{
    SweepConfig config = reliabilitySweep();
    std::string base = store::sweepFingerprint(config);
    SweepConfig toggled = config;
    toggled.batch = false;
    EXPECT_EQ(base, store::sweepFingerprint(toggled));
    toggled.batch = true;
    toggled.batchSize = 7;
    EXPECT_EQ(base, store::sweepFingerprint(toggled));
}

/** Property test over randomized sweep axes: random subsets of a
 *  pre-characterized array universe x random traffics x random
 *  reliability specs, batched == scalar at 1 and 8 workers. */
TEST_F(BatchEquivalenceTest, RandomizedAxesMatchScalar)
{
    // Characterize the full universe once; trials draw arrays from it
    // instead of re-running the (expensive) design-space enumeration.
    CellCatalog catalog;
    SweepConfig universe;
    universe.cells = {CellCatalog::sram16(),
                      catalog.optimistic(CellTech::STT),
                      catalog.pessimistic(CellTech::RRAM),
                      catalog.optimistic(CellTech::FeFET)};
    universe.capacitiesBytes = {1.0 * 1024 * 1024, 4.0 * 1024 * 1024};
    universe.targets = {OptTarget::ReadEDP, OptTarget::Area};
    ParallelSweepRunner characterizer(8);
    auto pool = characterizer.characterize(universe);
    ASSERT_FALSE(pool.empty());

    const auto &schemes = reliability::eccSchemes();
    Rng rng(0xBA7C);
    for (int trial = 0; trial < 12; ++trial) {
        std::vector<ArrayResult> arrays;
        std::size_t narrays = 1 + rng.range(pool.size());
        for (std::size_t i = 0; i < narrays; ++i)
            arrays.push_back(pool[rng.range(pool.size())]);

        std::vector<TrafficPattern> traffics;
        std::size_t ntraffics = 1 + rng.range(4);
        for (std::size_t i = 0; i < ntraffics; ++i) {
            std::string name = "t";
            name += std::to_string(i);
            traffics.push_back(TrafficPattern::fromByteRates(
                name, 1e6 * (1.0 + rng.uniform() * 1e4),
                1e5 * (1.0 + rng.uniform() * 1e4), 512));
        }

        // Zero specs exercises the implicit-default-spec path.
        std::vector<reliability::ReliabilitySpec> specs;
        std::size_t nspecs = rng.range(4);
        for (std::size_t i = 0; i < nspecs; ++i) {
            reliability::ReliabilitySpec spec;
            spec.ecc = schemes[rng.range(schemes.size())].name;
            spec.scrubIntervalSec =
                rng.bernoulli(0.5) ? 0.0 : 60.0 + rng.uniform() * 1e5;
            specs.push_back(spec);
        }

        for (int jobs : {1, 8}) {
            ParallelSweepRunner runner(jobs);
            auto batched = runner.evaluateAll(arrays, traffics, specs);
            auto scalar =
                runner.evaluateAllScalar(arrays, traffics, specs);
            std::string label = "trial ";
            label += std::to_string(trial);
            label += " -j";
            label += std::to_string(jobs);
            expectIdentical(batched, scalar, label);
        }
    }
}

/** Batch size is pure scheduling granularity: every size — including
 *  1, primes that straddle spec runs, the whole sweep, and one past
 *  it — and the per-point path produce byte-identical results.json
 *  and results.csv. */
TEST_F(BatchEquivalenceTest, BatchSizesProduceIdenticalArtifacts)
{
    SweepConfig config = reliabilitySweep();
    config.jobs = 4;
    config.outDir = storeDir("sizes");

    ParallelSweepRunner runner(config.jobs);
    auto reference = runner.run(config);
    ASSERT_EQ(reference.size(), 96u);
    std::string goldenJson = readFile(config.outDir + "/results.json");
    std::string goldenCsv = readFile(config.outDir + "/results.csv");

    int slots = (int)reference.size();
    std::vector<int> sizes = {1, 3, 7, slots, slots + 1};
    for (int size : sizes) {
        SweepConfig sized = config;
        sized.batchSize = size;
        auto results = runner.run(sized);
        expectIdentical(results, reference,
                        "batch_size " + std::to_string(size));
        EXPECT_EQ(readFile(config.outDir + "/results.json"),
                  goldenJson)
            << "batch_size " << size;
        EXPECT_EQ(readFile(config.outDir + "/results.csv"), goldenCsv)
            << "batch_size " << size;
    }

    // The "batch": false escape hatch lands on the same bytes.
    SweepConfig scalar = config;
    scalar.batch = false;
    auto results = runner.run(scalar);
    expectIdentical(results, reference, "batch false");
    EXPECT_EQ(readFile(config.outDir + "/results.json"), goldenJson);
    EXPECT_EQ(readFile(config.outDir + "/results.csv"), goldenCsv);
}

/** A sweep killed mid-batch leaves a journal whose completed slots
 *  cut across a batch boundary; the resumed batched run must replay
 *  them and recompute only the rest, byte-identically. */
TEST_F(BatchEquivalenceTest, MidBatchCheckpointResumeReplaysExactly)
{
    SweepConfig config = reliabilitySweep();
    config.jobs = 4;
    config.batchSize = 5;  // slots 0..4 in one batch; a 3-slot journal
                           // tears mid-batch
    config.outDir = storeDir("uninterrupted");
    ParallelSweepRunner runner(config.jobs);
    auto fresh = runner.run(config);
    std::string golden = readFile(config.outDir + "/results.json");

    config.outDir = storeDir("interrupted");
    runner.run(config);
    std::string journal = config.outDir + "/checkpoint.jsonl";
    auto lines = readLines(journal);
    ASSERT_EQ(lines.size(), 1u + fresh.size());
    lines.resize(4);  // header + 3 completed slots
    writeLines(journal, lines);
    std::filesystem::remove(config.outDir + "/results.json");
    std::filesystem::remove(config.outDir + "/results.csv");

    config.resume = true;
    auto resumed = runner.run(config);
    expectIdentical(resumed, fresh, "resumed");
    EXPECT_EQ(readFile(config.outDir + "/results.json"), golden);

    store::StoreStats stats = store::loadStats(config.outDir);
    EXPECT_EQ(stats.checkpointLoaded, 3u);
    EXPECT_EQ(stats.checkpointComputed, fresh.size() - 3u);
}

/** Characterization depends only on (cell, capacity, target): a
 *  config edit confined to the innermost reliability axis must be
 *  served 100% from the characterization cache (no re-enumeration),
 *  while the changed fingerprint correctly discards the checkpoint. */
TEST_F(BatchEquivalenceTest, SpecAxisChangeKeepsCharacterizationCached)
{
    SweepConfig config = reliabilitySweep();
    config.jobs = 4;
    config.outDir = storeDir("specaxis");
    ParallelSweepRunner runner(config.jobs);
    runner.run(config);
    store::StoreStats cold = runner.lastStoreStats();
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, 16u);  // 4 cells x 2 caps x 2 targets

    // Perturb only the innermost axis: a third spec and a different
    // scrub interval on the second.
    config.reliability[1].scrubIntervalSec = 86400.0;
    reliability::ReliabilitySpec dec;
    dec.ecc = "dec-78-64";
    config.reliability.push_back(dec);

    auto results = runner.run(config);
    store::StoreStats warm = runner.lastStoreStats();
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.cacheHits, warm.cacheLookups());
    EXPECT_EQ(warm.cacheHits, 16u);
    // New fingerprint: every (now 144) evaluation slot is fresh.
    EXPECT_EQ(warm.checkpointLoaded, 0u);
    EXPECT_EQ(warm.checkpointComputed, results.size());

    // And the cache-served batched rows still match a cold scalar
    // reference run.
    SweepConfig reference = config;
    reference.outDir.clear();
    reference.batch = false;
    auto expected = runner.run(reference);
    expectIdentical(results, expected, "cache-served vs cold scalar");
}

} // namespace
} // namespace nvmexp
