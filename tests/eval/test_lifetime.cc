#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "celldb/tentpole.hh"
#include "eval/engine.hh"

namespace nvmexp {
namespace {

ArrayResult
arrayFor(CellTech tech, double mib = 8.0)
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = mib * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(tech), config);
    return designer.optimize(OptTarget::ReadEDP);
}

TEST(Lifetime, MatchesWearLevelingFormula)
{
    ArrayResult array = arrayFor(CellTech::RRAM);
    double writesPerSec = 1e6;
    auto t = TrafficPattern::fromCounts("t", 0.0, writesPerSec, 1.0);
    EvalResult r = evaluate(array, t);
    double words = array.capacityBytes * 8.0 / array.wordBits;
    double expected = array.cell.endurance * words / writesPerSec;
    EXPECT_NEAR(r.lifetimeSec, expected, expected * 1e-12);
}

TEST(Lifetime, InfiniteWithoutWrites)
{
    ArrayResult array = arrayFor(CellTech::RRAM);
    auto t = TrafficPattern::fromCounts("t", 1e6, 0.0, 1.0);
    EvalResult r = evaluate(array, t);
    EXPECT_TRUE(std::isinf(r.lifetimeSec));
    EXPECT_GT(r.lifetimeSec, 0.0);
}

TEST(Lifetime, InfiniteForUnlimitedEnduranceCells)
{
    // An unlimited-endurance cell never wears out, no matter how much
    // write traffic it absorbs.
    CellCatalog catalog;
    MemCell eternal = catalog.optimistic(CellTech::STT);
    eternal.endurance = std::numeric_limits<double>::infinity();
    ArrayConfig config;
    config.capacityBytes = 8.0 * 1024 * 1024;
    ArrayDesigner designer(eternal, config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);

    auto t = TrafficPattern::fromCounts("t", 0.0, 1e9, 1.0);
    EvalResult r = evaluate(array, t);
    EXPECT_TRUE(std::isinf(r.lifetimeSec));
    EXPECT_GT(r.lifetimeSec, 0.0);
}

TEST(Lifetime, DefaultMatchesUnlimitedContract)
{
    // The documented contract is "+inf for unlimited-endurance cells
    // or zero write traffic": a result nothing has evaluated yet must
    // not claim an already-dead array (lifetime 0).
    EvalResult untouched;
    EXPECT_TRUE(std::isinf(untouched.lifetimeSec));
    EXPECT_GT(untouched.lifetimeSec, 0.0);
    IntermittentResult idle;
    EXPECT_TRUE(std::isinf(idle.lifetimeSec));
}

TEST(Lifetime, InverselyProportionalToWriteRate)
{
    ArrayResult array = arrayFor(CellTech::PCM);
    auto t1 = TrafficPattern::fromCounts("a", 0.0, 1e5, 1.0);
    auto t2 = TrafficPattern::fromCounts("b", 0.0, 1e7, 1.0);
    double l1 = evaluate(array, t1).lifetimeSec;
    double l2 = evaluate(array, t2).lifetimeSec;
    EXPECT_NEAR(l1 / l2, 100.0, 1e-6);
}

TEST(Lifetime, OrderingFollowsEndurance)
{
    // Paper Fig. 8/9: STT has the best projected lifetime, RRAM the
    // worst among the optimistic eNVMs.
    auto t = TrafficPattern::fromCounts("t", 0.0, 1e6, 1.0);
    double stt = evaluate(arrayFor(CellTech::STT), t).lifetimeSec;
    double pcm = evaluate(arrayFor(CellTech::PCM), t).lifetimeSec;
    double rram = evaluate(arrayFor(CellTech::RRAM), t).lifetimeSec;
    EXPECT_GT(stt, pcm);
    EXPECT_GT(pcm, rram);
}

TEST(Lifetime, LargerArraysLastLongerAtFixedRate)
{
    auto t = TrafficPattern::fromCounts("t", 0.0, 1e6, 1.0);
    double small = evaluate(arrayFor(CellTech::RRAM, 2.0), t).lifetimeSec;
    double large = evaluate(arrayFor(CellTech::RRAM, 16.0), t).lifetimeSec;
    EXPECT_NEAR(large / small, 8.0, 1e-6);
}

} // namespace
} // namespace nvmexp
