/**
 * @file
 * ThreadSanitizer stress suite for the result store's concurrent
 * surfaces: characterization-cache lookups/stores from pool workers,
 * checkpoint-journal writes at -j8, concurrent queryStore() readers,
 * and a full store-backed sweep at 8 jobs. The sweep engine hits all
 * of these paths from worker threads, so this is the suite the TSan
 * CI leg runs to certify the threaded core ahead of the query-server
 * work.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "../support/fixtures.hh"
#include "util/thread_pool.hh"

namespace nvmexp {
namespace {

using testsupport::QuietTest;
using testsupport::smallSweep;

class StoreConcurrencyTest : public QuietTest
{
  protected:
    std::string
    storeDir(const std::string &name)
    {
        std::string dir = ::testing::TempDir() + "nvmexp_conc_" + name;
        std::filesystem::remove_all(dir);
        dirs_.push_back(dir);
        return dir;
    }

    void
    TearDown() override
    {
        for (const auto &dir : dirs_)
            std::filesystem::remove_all(dir);
        QuietTest::TearDown();
    }

  private:
    std::vector<std::string> dirs_;
};

/** One characterized array to populate cache entries with. */
ArrayResult
someArray()
{
    SweepConfig sweep = smallSweep();
    sweep.cells.resize(1);
    sweep.capacitiesBytes.resize(1);
    sweep.targets.resize(1);
    auto arrays = characterizeSweep(sweep);
    EXPECT_FALSE(arrays.empty());
    return arrays.front();
}

TEST_F(StoreConcurrencyTest, ConcurrentCacheHitsOnOneKey)
{
    store::ResultStore resultStore(storeDir("one_key"));
    ArrayResult array = someArray();
    const std::string key = "stress-key";
    resultStore.storeArray(key, array);

    const std::size_t lookups = 512;
    std::atomic<std::size_t> hits{0};
    parallelFor(lookups, 8, [&](std::size_t) {
        ArrayResult out;
        if (resultStore.lookupArray(key, out) ==
            store::ResultStore::CacheOutcome::Hit) {
            ++hits;
        }
    });
    EXPECT_EQ(hits.load(), lookups);
    auto stats = resultStore.stats();
    EXPECT_EQ(stats.cacheHits, lookups);
    EXPECT_EQ(stats.cacheMisses, 0u);
}

TEST_F(StoreConcurrencyTest, ConcurrentLookupsRacingStores)
{
    store::ResultStore resultStore(storeDir("race_rw"));
    ArrayResult array = someArray();

    // 8 workers interleave writes and reads over 16 shared keys.
    // Every lookup must come back either a miss (not yet written) or
    // a complete, parseable hit — never a torn entry — and the
    // counters must balance.
    const std::size_t ops = 512;
    parallelFor(ops, 8, [&](std::size_t i) {
        // Built without operator+ to dodge GCC 12's -Wrestrict false
        // positive (PR105651) on inlined string concatenation.
        std::string key = "k";
        key += std::to_string(i % 16);
        if (i % 3 == 0) {
            resultStore.storeArray(key, array);
        } else if (i % 7 == 0) {
            resultStore.storeInvalid(key);
        } else {
            ArrayResult out;
            (void)resultStore.lookupArray(key, out);
        }
    });
    auto stats = resultStore.stats();
    EXPECT_EQ(stats.cacheLookups(),
              stats.cacheHits + stats.cacheMisses);
    EXPECT_GT(stats.cacheStores, 0u);
}

TEST_F(StoreConcurrencyTest, CheckpointJournalWritesAtJ8)
{
    std::string dir = storeDir("journal_j8");
    SweepConfig sweep = smallSweep();
    auto arrays = characterizeSweep(sweep);
    ParallelSweepRunner serial(1);
    auto results = serial.evaluateAll(arrays, sweep.traffics);
    ASSERT_FALSE(results.empty());

    const std::size_t slots = results.size();
    store::ResultStore resultStore(dir);
    auto done = resultStore.openCheckpoint("stress-fp", slots, false);
    EXPECT_TRUE(done.empty());
    parallelFor(slots, 8, [&](std::size_t i) {
        resultStore.checkpointSlot(i, results[i]);
    });
    resultStore.closeCheckpoint();
    EXPECT_EQ(resultStore.stats().checkpointComputed, slots);

    // Every journaled slot replays intact: 8 writers never interleave
    // bytes within a line.
    store::ResultStore reopened(dir);
    auto replayed = reopened.openCheckpoint("stress-fp", slots, true);
    reopened.closeCheckpoint();
    EXPECT_EQ(replayed.size(), slots);
}

TEST_F(StoreConcurrencyTest, ConcurrentQueryStoreReaders)
{
    std::string dir = storeDir("query_readers");
    SweepConfig sweep = smallSweep();
    sweep.outDir = dir;
    ParallelSweepRunner runner(4);
    auto results = runner.run(sweep);
    ASSERT_FALSE(results.empty());

    store::StoreQuery query;
    query.constraints.add("total_power<1e9");
    query.paretoMetrics = {"total_power", "read_latency"};
    auto expected = store::queryStore(dir, query);

    std::vector<std::size_t> sizes(8, 0);
    std::vector<std::thread> readers;
    readers.reserve(sizes.size());
    for (std::size_t t = 0; t < sizes.size(); ++t) {
        readers.emplace_back([&, t] {
            for (int round = 0; round < 4; ++round) {
                auto rows = store::queryStore(dir, query);
                sizes[t] = rows.size();
            }
        });
    }
    for (auto &reader : readers)
        reader.join();
    for (std::size_t t = 0; t < sizes.size(); ++t)
        EXPECT_EQ(sizes[t], expected.size()) << "reader " << t;
}

TEST_F(StoreConcurrencyTest, StoreBackedSweepAtJ8MatchesSerial)
{
    SweepConfig sweep = smallSweep();
    ParallelSweepRunner serial(1);
    auto reference = serial.run(sweep);

    std::string dir = storeDir("sweep_j8");
    sweep.outDir = dir;
    sweep.jobs = 8;
    ParallelSweepRunner runner(8);
    auto cold = runner.run(sweep);
    ASSERT_EQ(cold.size(), reference.size());

    // Warm rerun: all characterization served concurrently from the
    // cache, still byte-identical in value terms.
    auto warm = runner.run(sweep);
    ASSERT_EQ(warm.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(warm[i].totalPower, reference[i].totalPower) << i;
        EXPECT_EQ(warm[i].latencyLoad, reference[i].latencyLoad) << i;
    }
    auto stats = runner.lastStoreStats();
    EXPECT_EQ(stats.cacheMisses, 0u);

    // Resume replay at -j8 over a journal written at -j8.
    sweep.resume = true;
    auto resumed = runner.run(sweep);
    ASSERT_EQ(resumed.size(), reference.size());
    EXPECT_EQ(runner.lastStoreStats().checkpointLoaded,
              reference.size());
}

} // namespace
} // namespace nvmexp
