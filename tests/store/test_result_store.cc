#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "store/result_store.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace nvmexp {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE((bool)in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path,
           const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &line : lines)
        out << line << '\n';
}

class ResultStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }

    /** Fresh per-test store directory. */
    std::string
    storeDir(const std::string &name)
    {
        std::string dir = ::testing::TempDir() + "nvmexp_store_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() +
            "_" + name;
        std::filesystem::remove_all(dir);
        return dir;
    }

    /** 2 cells x 1 capacity x 2 targets x 2 traffics = 8 eval slots. */
    SweepConfig
    smallSweep()
    {
        CellCatalog catalog;
        SweepConfig config;
        config.cells = {CellCatalog::sram16(),
                        catalog.optimistic(CellTech::STT)};
        config.capacitiesBytes = {1.0 * 1024 * 1024};
        config.targets = {OptTarget::ReadEDP, OptTarget::Area};
        config.traffics = {
            TrafficPattern::fromByteRates("hot", 2e9, 2e7, 512),
            TrafficPattern::fromByteRates("cold", 1e8, 1e6, 512),
        };
        config.jobs = 4;
        return config;
    }
};

TEST_F(ResultStoreTest, RepeatedSweepHitsCacheForEveryArray)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("cache");

    ParallelSweepRunner runner(config.jobs);
    auto first = runner.characterize(config);
    store::StoreStats cold = runner.lastStoreStats();
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, 4u);   // 2 cells x 2 targets
    EXPECT_EQ(cold.cacheStores, 4u);

    auto second = runner.characterize(config);
    store::StoreStats warm = runner.lastStoreStats();
    // 100% of arrays served from the characterization cache.
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.cacheHits, warm.cacheLookups());
    EXPECT_EQ(warm.cacheHits, 4u);

    // Cache hits preserve values and serial order bit-for-bit.
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(store::identical(first[i], second[i])) << i;

    // The same counters are persisted for offline verification.
    store::StoreStats onDisk = store::loadStats(config.outDir);
    EXPECT_EQ(onDisk.cacheHits, warm.cacheHits);
    EXPECT_EQ(onDisk.cacheMisses, 0u);
}

TEST_F(ResultStoreTest, EnlargedSweepOnlyCharacterizesNewArrays)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("enlarge");

    ParallelSweepRunner runner(config.jobs);
    runner.characterize(config);

    config.capacitiesBytes.push_back(2.0 * 1024 * 1024);
    runner.characterize(config);
    store::StoreStats stats = runner.lastStoreStats();
    EXPECT_EQ(stats.cacheHits, 4u);    // the original capacity
    EXPECT_EQ(stats.cacheMisses, 4u);  // the added capacity
}

TEST_F(ResultStoreTest, CorruptCacheEntryDegradesToMiss)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("corrupt");

    ParallelSweepRunner runner(config.jobs);
    auto first = runner.characterize(config);

    // Truncate one entry mid-file (torn copy / disk trouble): the
    // cache must never become a correctness or availability problem.
    std::string victim;
    for (const auto &entry : std::filesystem::directory_iterator(
             config.outDir + "/cache"))
        victim = entry.path().string();
    ASSERT_FALSE(victim.empty());
    std::string content = readFile(victim);
    std::ofstream(victim, std::ios::trunc)
        << content.substr(0, content.size() / 2);

    auto second = runner.characterize(config);
    store::StoreStats stats = runner.lastStoreStats();
    EXPECT_EQ(stats.cacheMisses, 1u);  // recomputed, not fatal
    EXPECT_EQ(stats.cacheHits, 3u);
    // The victim's whole (cell, capacity) pair re-persists: one
    // entry per target.
    EXPECT_EQ(stats.cacheStores, 2u);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_TRUE(store::identical(first[i], second[i])) << i;

    // And the rewritten entry serves the next run again.
    runner.characterize(config);
    EXPECT_EQ(runner.lastStoreStats().cacheMisses, 0u);

    // Brace-balanced but unparseable corruption (a flipped byte) must
    // also degrade to a miss rather than abort the sweep.
    std::string flipped = readFile(victim);
    flipped[flipped.find(':')] = ' ';
    std::ofstream(victim, std::ios::trunc) << flipped;
    runner.characterize(config);
    EXPECT_EQ(runner.lastStoreStats().cacheMisses, 1u);
    runner.characterize(config);
    EXPECT_EQ(runner.lastStoreStats().cacheMisses, 0u);
}

TEST_F(ResultStoreTest, RunSweepPersistsLoadableResults)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("artifacts");

    auto results = runSweep(config);
    ASSERT_EQ(results.size(), 8u);

    auto loaded = store::loadResults(config.outDir);
    ASSERT_EQ(loaded.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(store::identical(results[i], loaded[i])) << i;

    // CSV: header + one row per result.
    auto csv = readLines(config.outDir + "/results.csv");
    ASSERT_EQ(csv.size(), 1u + results.size());
    EXPECT_NE(csv[0].find("lifetime_sec"), std::string::npos);
}

TEST_F(ResultStoreTest, InterruptedSweepResumesByteIdentically)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("uninterrupted");
    runSweep(config);
    std::string golden = readFile(config.outDir + "/results.json");

    // Simulate an interruption: run to completion in a second store,
    // then rewind its journal to header + 3 completed slots and drop
    // the final artifacts, as a kill mid-sweep would leave them.
    config.outDir = storeDir("interrupted");
    runSweep(config);
    std::string journal = config.outDir + "/checkpoint.jsonl";
    auto lines = readLines(journal);
    ASSERT_EQ(lines.size(), 1u + 8u);
    lines.resize(4);
    writeLines(journal, lines);
    std::filesystem::remove(config.outDir + "/results.json");
    std::filesystem::remove(config.outDir + "/results.csv");

    config.resume = true;
    auto resumed = runSweep(config);
    EXPECT_EQ(readFile(config.outDir + "/results.json"), golden);

    store::StoreStats stats = store::loadStats(config.outDir);
    EXPECT_EQ(stats.checkpointLoaded, 3u);
    EXPECT_EQ(stats.checkpointComputed, 5u);
    EXPECT_EQ(stats.cacheHits, 4u);  // characterization fully cached
}

TEST_F(ResultStoreTest, TornTrailingJournalLineIsSkipped)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("torn");
    auto fresh = runSweep(config);
    std::string golden = readFile(config.outDir + "/results.json");

    // A real mid-write kill leaves a partial final line with NO
    // trailing newline — including tears that happen to stop right
    // after a nested closing brace (structurally unbalanced, but
    // first/last-character checks would accept them).
    std::string journal = config.outDir + "/checkpoint.jsonl";
    auto lines = readLines(journal);
    lines.resize(3);
    writeLines(journal, lines);
    {
        std::ofstream torn(journal, std::ios::app);
        torn << "{\"slot\":7,\"result\":{\"x\":1}";
    }

    config.resume = true;
    auto resumed = runSweep(config);
    ASSERT_EQ(resumed.size(), fresh.size());
    EXPECT_EQ(readFile(config.outDir + "/results.json"), golden);
    EXPECT_EQ(store::loadStats(config.outDir).checkpointLoaded, 2u);

    // The resume rewrote the journal (torn bytes gone, fresh entries
    // not merged into them), so a further resume replays every slot.
    auto again = runSweep(config);
    EXPECT_EQ(again.size(), fresh.size());
    EXPECT_EQ(readFile(config.outDir + "/results.json"), golden);
    store::StoreStats stats = store::loadStats(config.outDir);
    EXPECT_EQ(stats.checkpointLoaded, 8u);
    EXPECT_EQ(stats.checkpointComputed, 0u);
}

TEST_F(ResultStoreTest, CheckpointFromDifferentSweepIsDiscarded)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("fingerprint");
    runSweep(config);

    // Same store, different traffic: the journal must not be replayed.
    SweepConfig changed = config;
    changed.traffics[0].readsPerSec *= 2.0;
    changed.resume = true;
    auto results = runSweep(changed);

    store::StoreStats stats = store::loadStats(changed.outDir);
    EXPECT_EQ(stats.checkpointLoaded, 0u);
    EXPECT_EQ(stats.checkpointComputed, results.size());

    // And the restarted run matches a store-less reference run.
    SweepConfig reference = changed;
    reference.outDir.clear();
    reference.resume = false;
    auto expected = runSweep(reference);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(store::identical(results[i], expected[i])) << i;
}

TEST_F(ResultStoreTest, QueryStoreFiltersAndExtractsPareto)
{
    SweepConfig config = smallSweep();
    config.outDir = storeDir("query");
    auto results = runSweep(config);

    // Predicate: only the "hot" traffic rows.
    store::StoreQuery query;
    query.predicates.push_back([](const EvalResult &r) {
        return r.traffic.name == "hot";
    });
    auto hot = store::queryStore(config.outDir, query);
    EXPECT_EQ(hot.size(), 4u);
    for (const auto &r : hot)
        EXPECT_EQ(r.traffic.name, "hot");

    // Declarative constraint clauses filter rows.
    store::StoreQuery constrained;
    constrained.constraints.add("total_power<1e-15");
    EXPECT_TRUE(store::queryStore(config.outDir, constrained).empty());

    // Named-metric Pareto extraction matches paretoFront over the
    // same accessors.
    store::StoreQuery pareto;
    pareto.paretoMetrics = {"total_power", "read_latency"};
    auto front = store::queryStore(config.outDir, pareto);
    auto expected = paretoFront<EvalResult>(
        results, [](const EvalResult &r) { return r.totalPower; },
        [](const EvalResult &r) { return r.array.readLatency; });
    ASSERT_EQ(front.size(), expected.size());
    for (std::size_t i = 0; i < front.size(); ++i)
        EXPECT_TRUE(store::identical(front[i], expected[i]));

    // Top-k keeps the k best rows under a metric, best first.
    store::StoreQuery top;
    top.topMetric = "total_power";
    top.topK = 3;
    auto best = store::queryStore(config.outDir, top);
    ASSERT_EQ(best.size(), 3u);
    EXPECT_LE(best[0].totalPower, best[1].totalPower);
    EXPECT_LE(best[1].totalPower, best[2].totalPower);
    for (const auto &r : results)
        EXPECT_GE(r.totalPower, best[0].totalPower);
}

TEST_F(ResultStoreTest, StoreQuerySerializesLosslessly)
{
    store::StoreQuery query;
    query.constraints.add("total_power<=0.25");
    query.constraints.add("lifetime_years>=3");
    query.paretoMetrics = {"total_power", "latency_load",
                           "read_latency"};
    query.topMetric = "read_edp";
    query.topK = 7;

    // dump -> parse -> dump is byte-stable, and the reloaded query
    // behaves identically.
    std::string dumped = query.toJson().dump();
    store::StoreQuery reloaded =
        store::StoreQuery::fromJson(JsonValue::parse(dumped));
    EXPECT_EQ(reloaded.toJson().dump(), dumped);
    ASSERT_EQ(reloaded.constraints.size(), 2u);
    EXPECT_EQ(reloaded.constraints.clauses()[0].text(),
              "total_power<=0.25");
    EXPECT_EQ(reloaded.paretoMetrics, query.paretoMetrics);
    EXPECT_EQ(reloaded.topMetric, "read_edp");
    EXPECT_EQ(reloaded.topK, 7u);

    SweepConfig config = smallSweep();
    config.outDir = storeDir("query-roundtrip");
    auto results = runSweep(config);
    auto direct = store::applyQuery(results, query);
    auto viaJson = store::applyQuery(results, reloaded);
    ASSERT_EQ(direct.size(), viaJson.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_TRUE(store::identical(direct[i], viaJson[i]));

    // Programmatic predicates are the one non-serializable part.
    store::StoreQuery withPredicate;
    withPredicate.predicates.push_back(
        [](const EvalResult &) { return true; });
    EXPECT_EXIT(withPredicate.toJson(), ::testing::ExitedWithCode(1),
                "cannot be serialized");
}

TEST_F(ResultStoreTest, StoreQueryRejectsUnknownKeysFatally)
{
    // The classic typo: "paretto" used to be silently ignored, turning
    // a Pareto query into the full store. It must now name the key.
    EXPECT_EXIT(store::StoreQuery::fromJson(JsonValue::parse(
                    R"({"paretto": ["total_power"]})")),
                ::testing::ExitedWithCode(1), "unknown key 'paretto'");
    EXPECT_EXIT(store::StoreQuery::fromJson(JsonValue::parse(
                    R"({"constraints": [], "topk":
                        {"metric": "total_power", "k": 3}})")),
                ::testing::ExitedWithCode(1), "unknown key 'topk'");
    // Non-object documents and format mismatches are diagnosed too.
    EXPECT_EXIT(store::StoreQuery::fromJson(JsonValue::parse("[]")),
                ::testing::ExitedWithCode(1), "must be a JSON object");
    EXPECT_EXIT(store::StoreQuery::fromJson(
                    JsonValue::parse(R"({"format": 999})")),
                ::testing::ExitedWithCode(1), "format");
}

TEST_F(ResultStoreTest, TechCsvColumnEscapesLikeEveryOtherIdentity)
{
    // The tech column now routes through Table::csvEscape like the
    // other string identity columns. Every registered tech name is
    // escape-neutral (no commas/quotes/newlines), so existing goldens
    // stay byte-identical — this pins both halves of that claim.
    for (int t = 0; t < (int)CellTech::NumTech; ++t) {
        std::string name = techName((CellTech)t);
        EXPECT_EQ(Table::csvEscape(name), name) << name;
    }

    SweepConfig config = smallSweep();
    config.outDir = storeDir("techcsv");
    runSweep(config);
    auto lines = readLines(config.outDir + "/results.csv");
    ASSERT_GE(lines.size(), 2u);
    // Column 2 of every data row is the unquoted tech name.
    for (std::size_t i = 1; i < lines.size(); ++i) {
        std::size_t c1 = lines[i].find(',');
        std::size_t c2 = lines[i].find(',', c1 + 1);
        ASSERT_NE(c2, std::string::npos);
        std::string tech = lines[i].substr(c1 + 1, c2 - c1 - 1);
        EXPECT_EQ(tech, techName(techFromName(tech))) << lines[i];
    }
}

TEST_F(ResultStoreTest, CharacterizationKeySeparatesDesignPoints)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayConfig ac;
    std::string base = store::ResultStore::characterizationKey(
        cell, ac, OptTarget::ReadEDP);
    EXPECT_NE(base, store::ResultStore::characterizationKey(
        cell, ac, OptTarget::Area));
    ArrayConfig bigger = ac;
    bigger.capacityBytes *= 2.0;
    EXPECT_NE(base, store::ResultStore::characterizationKey(
        cell, bigger, OptTarget::ReadEDP));
    MemCell tweaked = cell;
    tweaked.endurance *= 10.0;
    EXPECT_NE(base, store::ResultStore::characterizationKey(
        tweaked, ac, OptTarget::ReadEDP));
    EXPECT_EQ(base, store::ResultStore::characterizationKey(
        cell, ac, OptTarget::ReadEDP));
}

TEST_F(ResultStoreTest, SweepFingerprintTracksResultShapingFields)
{
    SweepConfig config = smallSweep();
    std::string base = store::sweepFingerprint(config);

    SweepConfig sameResults = config;
    sameResults.jobs = 1;
    sameResults.outDir = "elsewhere";
    sameResults.resume = true;
    EXPECT_EQ(base, store::sweepFingerprint(sameResults));

    SweepConfig different = config;
    different.traffics.pop_back();
    EXPECT_NE(base, store::sweepFingerprint(different));
    different = config;
    different.wordBits = 256;
    EXPECT_NE(base, store::sweepFingerprint(different));
}

} // namespace
} // namespace nvmexp
