#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "celldb/tentpole.hh"
#include "store/serialize.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

using store::toJson;

/** Doubles spanning the magnitudes the models produce, plus the
 *  awkward ones (negatives, subnormals, infinities, long fractions). */
double
randomDouble(Rng &rng)
{
    switch (rng.range(8)) {
      case 0: return 0.0;
      case 1: return std::numeric_limits<double>::infinity();
      case 2: return rng.uniform();                        // [0, 1)
      case 3: return rng.gaussian() * 1e-12;               // ~energies
      case 4: return rng.gaussian() * 1e9;                 // ~rates
      case 5: return -rng.uniform() * 1e3;
      case 6: return rng.uniform() * 5e-324 * 1e4;         // subnormal-ish
      default: return rng.uniform() * std::pow(10.0, (double)rng.range(40) - 20.0);
    }
}

MemCell
randomCell(Rng &rng)
{
    MemCell cell;
    cell.name = "cell-" + std::to_string(rng.range(1000000));
    cell.tech = (CellTech)rng.range((std::uint64_t)CellTech::NumTech);
    cell.flavor = (CellFlavor)rng.range(4);
    cell.senseMode = (SenseMode)rng.range(4);
    cell.bitsPerCell = 1 + (int)rng.range(2);
    cell.areaF2 = randomDouble(rng);
    cell.aspectRatio = randomDouble(rng);
    cell.readVoltage = randomDouble(rng);
    cell.writeVoltage = randomDouble(rng);
    cell.resistanceOn = randomDouble(rng);
    cell.resistanceOff = randomDouble(rng);
    cell.setPulse = randomDouble(rng);
    cell.resetPulse = randomDouble(rng);
    cell.setCurrent = randomDouble(rng);
    cell.resetCurrent = randomDouble(rng);
    cell.readEnergyPerBit = randomDouble(rng);
    cell.endurance = randomDouble(rng);
    cell.retention = randomDouble(rng);
    cell.nonVolatile = rng.bernoulli(0.5);
    cell.cellLeakage = randomDouble(rng);
    cell.minNodeNm = 1 + (int)rng.range(90);
    cell.mlcCapable = rng.bernoulli(0.5);
    return cell;
}

EvalResult
randomEvalResult(Rng &rng)
{
    EvalResult r;
    r.array.cell = randomCell(rng);
    r.array.nodeNm = 1 + (int)rng.range(90);
    r.array.capacityBytes = randomDouble(rng);
    r.array.wordBits = 1 + (int)rng.range(1024);
    r.array.org.banks = 1 + (int)rng.range(16);
    r.array.org.subarraysPerBank = 1 + (int)rng.range(64);
    r.array.org.subarray.rows = 1 << rng.range(12);
    r.array.org.subarray.cols = 1 << rng.range(12);
    r.array.org.subarray.sensedBits = 1 + (int)rng.range(512);
    r.array.readLatency = randomDouble(rng);
    r.array.writeLatency = randomDouble(rng);
    r.array.readEnergy = randomDouble(rng);
    r.array.writeEnergy = randomDouble(rng);
    r.array.leakage = randomDouble(rng);
    r.array.areaM2 = randomDouble(rng);
    r.array.areaEfficiency = randomDouble(rng);
    r.array.readBandwidth = randomDouble(rng);
    r.array.writeBandwidth = randomDouble(rng);
    r.traffic.name = "traffic,with \"quotes\"\n" +
        std::to_string(rng.range(1000));
    r.traffic.readsPerSec = randomDouble(rng);
    r.traffic.writesPerSec = randomDouble(rng);
    r.traffic.execTime = randomDouble(rng);
    r.dynamicPower = randomDouble(rng);
    r.leakagePower = randomDouble(rng);
    r.totalPower = randomDouble(rng);
    r.latencyLoad = randomDouble(rng);
    r.slowdown = randomDouble(rng);
    r.totalAccessLatency = randomDouble(rng);
    r.meetsReadBandwidth = rng.bernoulli(0.5);
    r.meetsWriteBandwidth = rng.bernoulli(0.5);
    r.lifetimeSec = randomDouble(rng);
    r.reliability.scheme = "scheme-" + std::to_string(rng.range(100));
    r.reliability.scrubIntervalSec = randomDouble(rng);
    r.reliability.rawBer = randomDouble(rng);
    r.reliability.scrubbedBer = randomDouble(rng);
    r.reliability.uncorrectableWordRate = randomDouble(rng);
    r.reliability.uncorrectableImageRate = randomDouble(rng);
    r.reliability.eccOverhead = randomDouble(rng);
    return r;
}

/** Property: deserialize(serialize(r)) == r, exactly, for randomized
 *  EvalResults (including non-finite metrics and hostile strings). */
TEST(StoreSerialize, RandomizedEvalResultRoundTripsExactly)
{
    Rng rng(20260729);
    for (int trial = 0; trial < 200; ++trial) {
        EvalResult original = randomEvalResult(rng);
        EvalResult restored = store::evalResultFromJson(
            JsonValue::parse(toJson(original).dump(-1)));

        EXPECT_TRUE(store::identical(original, restored)) << trial;
        // Spot-check bitwise equality on representative fields (the
        // identical() helper compares via the same serializer under
        // test, so pin a few fields independently).
        EXPECT_EQ(original.array.cell.name, restored.array.cell.name);
        EXPECT_EQ(original.array.cell.tech, restored.array.cell.tech);
        EXPECT_EQ(original.array.cell.endurance,
                  restored.array.cell.endurance);
        EXPECT_EQ(original.array.readLatency,
                  restored.array.readLatency);
        EXPECT_EQ(original.array.org.subarray.cols,
                  restored.array.org.subarray.cols);
        EXPECT_EQ(original.traffic.name, restored.traffic.name);
        EXPECT_EQ(original.totalPower, restored.totalPower);
        EXPECT_EQ(original.lifetimeSec, restored.lifetimeSec);
        EXPECT_EQ(original.meetsWriteBandwidth,
                  restored.meetsWriteBandwidth);
        EXPECT_EQ(original.reliability.scheme,
                  restored.reliability.scheme);
        EXPECT_EQ(original.reliability.uncorrectableWordRate,
                  restored.reliability.uncorrectableWordRate);
        EXPECT_EQ(original.reliability.eccOverhead,
                  restored.reliability.eccOverhead);
    }
}

/** Property: serialization is stable — serializing the deserialized
 *  value reproduces the original document byte-for-byte (pretty and
 *  compact forms). */
TEST(StoreSerialize, SerializationIsByteStable)
{
    Rng rng(42);
    for (int trial = 0; trial < 100; ++trial) {
        EvalResult original = randomEvalResult(rng);
        std::string once = toJson(original).dump();
        EvalResult restored =
            store::evalResultFromJson(JsonValue::parse(once));
        EXPECT_EQ(once, toJson(restored).dump()) << trial;
        EXPECT_EQ(toJson(original).dump(-1), toJson(restored).dump(-1));
    }
}

TEST(StoreSerialize, RealCharacterizedArrayRoundTrips)
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 2.0 * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT), config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);

    ArrayResult restored = store::arrayResultFromJson(
        JsonValue::parse(toJson(array).dump()));
    EXPECT_TRUE(store::identical(array, restored));
    EXPECT_EQ(array.readLatency, restored.readLatency);
    EXPECT_EQ(array.areaM2, restored.areaM2);
}

TEST(StoreSerialize, ResultVectorRoundTripsWithFormatTag)
{
    Rng rng(7);
    std::vector<EvalResult> results = {randomEvalResult(rng),
                                       randomEvalResult(rng)};
    JsonValue doc = toJson(results);
    EXPECT_EQ((int)doc.at("format").asNumber(), store::kFormatVersion);
    auto restored = store::evalResultsFromJson(
        JsonValue::parse(doc.dump()));
    ASSERT_EQ(restored.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(store::identical(results[i], restored[i]));
}

TEST(StoreSerialize, NonFiniteNumbersSurviveTheParser)
{
    JsonValue doc = JsonValue::parse("[Infinity, -Infinity, NaN]");
    const auto &a = doc.asArray();
    ASSERT_EQ(a.size(), 3u);
    EXPECT_TRUE(std::isinf(a[0].asNumber()));
    EXPECT_GT(a[0].asNumber(), 0.0);
    EXPECT_TRUE(std::isinf(a[1].asNumber()));
    EXPECT_LT(a[1].asNumber(), 0.0);
    EXPECT_TRUE(std::isnan(a[2].asNumber()));
}

} // namespace
} // namespace nvmexp
