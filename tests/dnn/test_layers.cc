#include <gtest/gtest.h>

#include "dnn/layers.hh"

namespace nvmexp {
namespace {

TEST(LayerSpec, ConvCounts)
{
    auto l = LayerSpec::conv("c", 64, 128, 3, 28, 28);
    EXPECT_EQ(l.weightCount(), 64ll * 128 * 9 + 128);
    EXPECT_EQ(l.outputCount(), 128ll * 28 * 28);
    EXPECT_EQ(l.macs(), 128ll * 28 * 28 * 64 * 9);
}

TEST(LayerSpec, FcCounts)
{
    auto l = LayerSpec::fc("f", 512, 1000);
    EXPECT_EQ(l.weightCount(), 512ll * 1000 + 1000);
    EXPECT_EQ(l.outputCount(), 1000);
    EXPECT_EQ(l.macs(), 512ll * 1000);
}

TEST(LayerSpec, EmbeddingCounts)
{
    auto l = LayerSpec::embedding("e", 30000, 128, 64);
    EXPECT_EQ(l.weightCount(), 30000ll * 128);
    EXPECT_EQ(l.outputCount(), 64ll * 128);
    EXPECT_EQ(l.macs(), 0);
}

TEST(LayerSpecDeath, ValidatesShapes)
{
    EXPECT_EXIT(LayerSpec::conv("bad", 0, 8, 3, 8, 8),
                ::testing::ExitedWithCode(1), "channel");
    EXPECT_EXIT(LayerSpec::embedding("bad", 100, 8, 0),
                ::testing::ExitedWithCode(1), "lookups");
}

TEST(NetworkModel, TotalsSumLayers)
{
    NetworkModel net;
    net.name = "tiny";
    net.layers.push_back(LayerSpec::conv("c", 3, 8, 3, 16, 16));
    net.layers.push_back(LayerSpec::fc("f", 8, 4));
    net.validate();
    EXPECT_EQ(net.totalWeights(),
              net.layers[0].weightCount() + net.layers[1].weightCount());
    EXPECT_EQ(net.totalActivations(),
              net.layers[0].outputCount() + net.layers[1].outputCount());
    EXPECT_DOUBLE_EQ(net.weightBytes(8), (double)net.totalWeights());
    EXPECT_DOUBLE_EQ(net.weightBytes(16),
                     2.0 * (double)net.totalWeights());
}

TEST(NetworkModel, SharedWeightsRereadPerExecution)
{
    NetworkModel net;
    net.name = "shared";
    net.layers.push_back(LayerSpec::fc("block", 64, 64));
    net.timesExecuted = {12};
    net.validate();
    EXPECT_EQ(net.weightReadsPerInference(),
              12 * net.layers[0].weightCount());
    EXPECT_EQ(net.totalWeights(), net.layers[0].weightCount());
    EXPECT_EQ(net.totalMacs(), 12ll * 64 * 64);
}

TEST(NetworkModel, EmbeddingReadsOnlyLookedUpRows)
{
    NetworkModel net;
    net.name = "emb";
    net.layers.push_back(LayerSpec::embedding("e", 10000, 128, 32));
    net.validate();
    EXPECT_EQ(net.weightReadsPerInference(), 32ll * 128);
    EXPECT_LT(net.weightReadsPerInference(), net.totalWeights());
}

TEST(NetworkModelDeath, ValidatesStructure)
{
    NetworkModel empty;
    empty.name = "empty";
    EXPECT_EXIT(empty.validate(), ::testing::ExitedWithCode(1),
                "no layers");

    NetworkModel bad;
    bad.name = "bad";
    bad.layers.push_back(LayerSpec::fc("f", 4, 4));
    bad.timesExecuted = {1, 2};
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "size mismatch");

    bad.timesExecuted = {0};
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "non-positive");
}

} // namespace
} // namespace nvmexp
