#include <gtest/gtest.h>

#include "dnn/networks.hh"

namespace nvmexp {
namespace {

TEST(Catalog, ResNet26FitsTheNvdlaBuffer)
{
    NetworkModel net = resnet26();
    net.validate();
    // ~1.6M int8 parameters: fits the 2 MB buffer of the case study.
    EXPECT_GT(net.totalWeights(), 1.2e6);
    EXPECT_LT(net.weightBytes(8), 2.0 * 1024 * 1024);
    // 26 weight layers.
    EXPECT_EQ(net.layers.size(), 26u);
}

TEST(Catalog, ResNet18MatchesPublishedSize)
{
    NetworkModel net = resnet18();
    net.validate();
    EXPECT_NEAR((double)net.totalWeights(), 11.7e6, 0.8e6);
    // Fits a 16 MB array but not 8 MB at int8 (Fig. 13 capacity gate).
    EXPECT_GT(net.weightBytes(8), 8.0 * 1024 * 1024);
    EXPECT_LT(net.weightBytes(8), 16.0 * 1024 * 1024);
}

TEST(Catalog, AlbertSharesWeightsAcrossLayers)
{
    NetworkModel net = albertBase();
    net.validate();
    // ~12M unique parameters...
    EXPECT_NEAR((double)net.totalWeights(), 12e6, 3e6);
    // ...but each inference re-reads the shared block 12 times.
    EXPECT_GT(net.weightReadsPerInference(), 5 * net.totalWeights());
    // NLP needs more compute per inference than ResNet26.
    EXPECT_GT(net.totalMacs(), 10 * resnet26().totalMacs());
}

TEST(Catalog, AlbertEmbeddingsSubset)
{
    NetworkModel emb = albertEmbeddings();
    emb.validate();
    EXPECT_LT(emb.totalWeights(), albertBase().totalWeights());
    EXPECT_GT(emb.totalWeights(), 3e6);
}

TEST(Traffic, WeightsOnlyHasNoWrites)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.storage = DnnStorage::WeightsOnly;
    auto profile = extractAccessProfile(scenario);
    EXPECT_GT(profile.readWordsPerFrame, 0.0);
    EXPECT_EQ(profile.writeWordsPerFrame, 0.0);
}

TEST(Traffic, ActivationsAddReadsAndWrites)
{
    DnnScenario weights;
    weights.network = resnet26();
    weights.storage = DnnStorage::WeightsOnly;
    DnnScenario acts = weights;
    acts.storage = DnnStorage::WeightsAndActivations;
    auto pw = extractAccessProfile(weights);
    auto pa = extractAccessProfile(acts);
    EXPECT_GT(pa.writeWordsPerFrame, 0.0);
    EXPECT_GT(pa.readWordsPerFrame, pw.readWordsPerFrame);
    EXPECT_GT(pa.footprintBytes, pw.footprintBytes);
}

TEST(Traffic, MultiTaskScalesLinearly)
{
    DnnScenario single;
    single.network = resnet26();
    DnnScenario multi = single;
    multi.tasks = 3;
    auto ps = extractAccessProfile(single);
    auto pm = extractAccessProfile(multi);
    EXPECT_NEAR(pm.readWordsPerFrame, 3.0 * ps.readWordsPerFrame,
                ps.readWordsPerFrame * 1e-9);
}

TEST(Traffic, RatesScaleWithFrameRate)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.framesPerSec = 60.0;
    TrafficPattern at60 = dnnTraffic(scenario);
    scenario.framesPerSec = 30.0;
    TrafficPattern at30 = dnnTraffic(scenario);
    EXPECT_NEAR(at60.readsPerSec, 2.0 * at30.readsPerSec,
                at30.readsPerSec * 1e-9);
    EXPECT_DOUBLE_EQ(at60.execTime, 1.0 / 60.0);
}

TEST(Traffic, NamesEncodeScenario)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.tasks = 3;
    scenario.storage = DnnStorage::WeightsAndActivations;
    TrafficPattern t = dnnTraffic(scenario);
    EXPECT_NE(t.name.find("multi"), std::string::npos);
    EXPECT_NE(t.name.find("w+a"), std::string::npos);
}

TEST(TrafficDeath, RejectsBadScenario)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.tasks = 0;
    EXPECT_EXIT(extractAccessProfile(scenario),
                ::testing::ExitedWithCode(1), "task");
}

} // namespace
} // namespace nvmexp
