#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "dnn/inference.hh"
#include "fault/injector.hh"

namespace nvmexp {
namespace {

class InferenceTest : public ::testing::Test
{
  protected:
    static SyntheticTask &
    task()
    {
        static SyntheticTask t(16, 6, 1500, 800, 0xABCD, 0.8);
        return t;
    }

    static Mlp &
    trainedMlp()
    {
        static Mlp mlp = [] {
            Mlp m({16, 48, 6}, 0x1234);
            m.train(task(), 10, 0.02);
            return m;
        }();
        return mlp;
    }
};

TEST_F(InferenceTest, TaskIsDeterministicUnderSeed)
{
    SyntheticTask a(8, 3, 100, 50, 42);
    SyntheticTask b(8, 3, 100, 50, 42);
    EXPECT_EQ(a.trainX(), b.trainX());
    EXPECT_EQ(a.trainY(), b.trainY());
    EXPECT_EQ(a.testX(), b.testX());
}

TEST_F(InferenceTest, TaskShapesAreConsistent)
{
    EXPECT_EQ(task().trainX().size(), 1500u);
    EXPECT_EQ(task().testX().size(), 800u);
    EXPECT_EQ((int)task().trainX()[0].size(), 16);
    for (int y : task().testY()) {
        EXPECT_GE(y, 0);
        EXPECT_LT(y, 6);
    }
}

TEST_F(InferenceTest, TrainingReachesHighAccuracy)
{
    double trainAcc =
        trainedMlp().accuracy(task().trainX(), task().trainY());
    double testAcc =
        trainedMlp().accuracy(task().testX(), task().testY());
    EXPECT_GT(trainAcc, 0.9);
    EXPECT_GT(testAcc, 0.85);
}

TEST_F(InferenceTest, UntrainedIsNearChance)
{
    Mlp fresh({16, 48, 6}, 0x777);
    double acc = fresh.accuracy(task().testX(), task().testY());
    EXPECT_LT(acc, 0.5);
}

TEST_F(InferenceTest, QuantizationPreservesAccuracy)
{
    QuantizedMlp q = trainedMlp().quantize();
    double floatAcc =
        trainedMlp().accuracy(task().testX(), task().testY());
    double quantAcc = q.accuracy(task().testX(), task().testY());
    EXPECT_NEAR(quantAcc, floatAcc, 0.03);
    EXPECT_EQ(q.weightBytes(), (std::size_t)(16 * 48 + 48 * 6));
}

TEST_F(InferenceTest, MassiveCorruptionDestroysAccuracy)
{
    QuantizedMlp q = trainedMlp().quantize();
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 9);
    injector.injectUniform(q.weightImage(), 0.4);
    double corrupted = q.accuracy(task().testX(), task().testY());
    EXPECT_LT(corrupted, 0.6);
}

TEST_F(InferenceTest, RestoreRecoversCleanWeights)
{
    QuantizedMlp q = trainedMlp().quantize();
    double clean = q.accuracy(task().testX(), task().testY());
    FaultModel model(CellCatalog::sram16());
    FaultInjector injector(model, 10);
    injector.injectUniform(q.weightImage(), 0.4);
    q.restore();
    EXPECT_DOUBLE_EQ(q.accuracy(task().testX(), task().testY()), clean);
}

TEST_F(InferenceTest, AccuracyMonotoneInBer)
{
    QuantizedMlp q = trainedMlp().quantize();
    FaultModel model(CellCatalog::sram16());
    double prev = 1.1;
    int nonIncreasing = 0;
    int steps = 0;
    for (double ber : {1e-4, 1e-3, 1e-2, 1e-1}) {
        double acc = 0.0;
        for (int trial = 0; trial < 3; ++trial) {
            q.restore();
            FaultInjector injector(model,
                                   100 + (std::uint64_t)(ber * 1e6) +
                                       (std::uint64_t)trial);
            injector.injectUniform(q.weightImage(), ber);
            acc += q.accuracy(task().testX(), task().testY());
        }
        acc /= 3.0;
        if (acc <= prev + 0.02)
            ++nonIncreasing;
        prev = acc;
        ++steps;
    }
    // Allow small statistical wiggle but require the overall trend.
    EXPECT_GE(nonIncreasing, steps - 1);
}

TEST(MlpDeath, RejectsBadShapes)
{
    EXPECT_EXIT(Mlp({16}, 1), ::testing::ExitedWithCode(1),
                "input and output");
    EXPECT_EXIT(Mlp({16, 0, 4}, 1), ::testing::ExitedWithCode(1),
                "width");
}

TEST(SyntheticTaskDeath, RejectsBadShape)
{
    EXPECT_EXIT(SyntheticTask(1, 3, 100, 50, 1),
                ::testing::ExitedWithCode(1), "dims");
}

} // namespace
} // namespace nvmexp
