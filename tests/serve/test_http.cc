#include <gtest/gtest.h>

#include <string>

#include "serve/http.hh"

namespace nvmexp {
namespace {

using serve::HttpRequestParser;
using serve::HttpResponse;
using serve::ParseState;

TEST(HttpParser, ParsesPostWithBody)
{
    HttpRequestParser parser(1024);
    std::string raw = "POST /query HTTP/1.1\r\n"
                      "Host: 127.0.0.1\r\n"
                      "Content-Length: 11\r\n"
                      "\r\n"
                      "{\"a\": true}";
    EXPECT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Done);
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().target, "/query");
    EXPECT_EQ(parser.request().version, "HTTP/1.1");
    EXPECT_EQ(parser.request().body, "{\"a\": true}");
    // Header names are case-folded.
    EXPECT_EQ(parser.request().headers.at("content-length"), "11");
}

TEST(HttpParser, ParsesIncrementallyByteByByte)
{
    HttpRequestParser parser(1024);
    std::string raw = "POST /reload HTTP/1.1\r\n"
                      "Content-Length: 2\r\n\r\n{}";
    for (std::size_t i = 0; i + 1 < raw.size(); ++i) {
        ASSERT_EQ(parser.consume(&raw[i], 1), ParseState::NeedMore)
            << "byte " << i;
    }
    EXPECT_EQ(parser.consume(&raw[raw.size() - 1], 1), ParseState::Done);
    EXPECT_EQ(parser.request().body, "{}");
}

TEST(HttpParser, AcceptsBareLfLineEndings)
{
    HttpRequestParser parser(1024);
    std::string raw = "GET /healthz HTTP/1.1\nHost: x\n\n";
    EXPECT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Done);
    EXPECT_EQ(parser.request().method, "GET");
    EXPECT_EQ(parser.request().body, "");
}

TEST(HttpParser, GetWithoutContentLengthCompletesAtHeaderEnd)
{
    HttpRequestParser parser(1024);
    std::string raw = "GET /statz HTTP/1.1\r\n\r\n";
    EXPECT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Done);
}

TEST(HttpParser, PathStripsQueryString)
{
    HttpRequestParser parser(1024);
    std::string raw = "GET /healthz?verbose=1 HTTP/1.1\r\n\r\n";
    ASSERT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Done);
    EXPECT_EQ(parser.request().target, "/healthz?verbose=1");
    EXPECT_EQ(parser.request().path(), "/healthz");
}

TEST(HttpParser, RejectsMalformedRequestLine)
{
    struct Case
    {
        const char *raw;
        const char *error;
    } cases[] = {
        {"\r\n\r\n", "empty request line"},
        {"POST /query\r\n\r\n", "malformed request line"},
        {"POST /query HTTP/1.1 extra\r\n\r\n", "malformed request line"},
        {"POST /query SMTP/1.0\r\n\r\n", "unsupported protocol"},
    };
    for (const auto &c : cases) {
        HttpRequestParser parser(1024);
        std::string raw = c.raw;
        EXPECT_EQ(parser.consume(raw.data(), raw.size()),
                  ParseState::Bad)
            << c.raw;
        EXPECT_NE(parser.error().find(c.error), std::string::npos)
            << parser.error();
    }
}

TEST(HttpParser, RejectsMalformedHeadersAndContentLength)
{
    {
        HttpRequestParser parser(1024);
        std::string raw = "GET / HTTP/1.1\r\nno colon here\r\n\r\n";
        EXPECT_EQ(parser.consume(raw.data(), raw.size()),
                  ParseState::Bad);
        EXPECT_NE(parser.error().find("malformed header"),
                  std::string::npos);
    }
    for (const char *bad : {"abc", "-4", "2.5"}) {
        HttpRequestParser parser(1024);
        std::string raw = std::string("POST / HTTP/1.1\r\n"
                                      "Content-Length: ") +
                          bad + "\r\n\r\n";
        EXPECT_EQ(parser.consume(raw.data(), raw.size()),
                  ParseState::Bad)
            << bad;
        EXPECT_NE(parser.error().find("bad Content-Length"),
                  std::string::npos);
    }
}

TEST(HttpParser, RejectsOversizedDeclaredBody)
{
    HttpRequestParser parser(16);
    std::string raw = "POST /query HTTP/1.1\r\n"
                      "Content-Length: 17\r\n\r\n";
    EXPECT_EQ(parser.consume(raw.data(), raw.size()),
              ParseState::TooLarge);
    EXPECT_NE(parser.error().find("too large"), std::string::npos);
}

TEST(HttpParser, RejectsUnboundedHeaderSpam)
{
    // A peer streaming junk without ever terminating the header block
    // must not buffer without limit.
    HttpRequestParser parser(16);
    std::string junk(64 * 1024, 'x');
    ParseState state = parser.consume(junk.data(), junk.size());
    EXPECT_EQ(state, ParseState::TooLarge);
}

TEST(HttpParser, TerminalStateIsSticky)
{
    HttpRequestParser parser(1024);
    std::string raw = "BAD\r\n\r\n";
    ASSERT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Bad);
    std::string more = "GET / HTTP/1.1\r\n\r\n";
    EXPECT_EQ(parser.consume(more.data(), more.size()),
              ParseState::Bad);
}

TEST(HttpResponseSerialization, CarriesStatusLengthAndClose)
{
    HttpResponse response{200, "application/json", "{\"ok\": true}\n"};
    std::string wire = serve::serializeResponse(response);
    EXPECT_EQ(wire.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
    EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 13\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - response.body.size()),
              response.body);
}

TEST(HttpResponseSerialization, KeepAliveTokenSelectsConnectionHeader)
{
    HttpResponse response{200, "application/json", "{}\n"};
    std::string wire = serve::serializeResponse(response, true);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.find("Connection: close"), std::string::npos);
    // The explicit false matches the default-argument wire bytes.
    EXPECT_EQ(serve::serializeResponse(response, false),
              serve::serializeResponse(response));
}

TEST(HttpParser, RemainderExposesPipelinedBytes)
{
    HttpRequestParser parser(1024);
    std::string raw = "POST /query HTTP/1.1\r\n"
                      "Content-Length: 2\r\n"
                      "\r\n"
                      "{}"
                      "GET /healthz HTTP/1.1\r\n";
    EXPECT_EQ(parser.consume(raw.data(), raw.size()), ParseState::Done);
    EXPECT_EQ(parser.request().body, "{}");
    EXPECT_EQ(parser.remainder(), "GET /healthz HTTP/1.1\r\n");

    HttpRequestParser exact(1024);
    std::string fit = "GET / HTTP/1.1\r\n\r\n";
    EXPECT_EQ(exact.consume(fit.data(), fit.size()), ParseState::Done);
    EXPECT_EQ(exact.remainder(), "");
}

TEST(HttpResponseSerialization, ReasonPhrasesCoverServerStatuses)
{
    EXPECT_STREQ(serve::reasonPhrase(200), "OK");
    EXPECT_STREQ(serve::reasonPhrase(400), "Bad Request");
    EXPECT_STREQ(serve::reasonPhrase(404), "Not Found");
    EXPECT_STREQ(serve::reasonPhrase(405), "Method Not Allowed");
    EXPECT_STREQ(serve::reasonPhrase(409), "Conflict");
    EXPECT_STREQ(serve::reasonPhrase(413), "Payload Too Large");
    EXPECT_STREQ(serve::reasonPhrase(500), "Internal Server Error");
    EXPECT_STREQ(serve::reasonPhrase(299), "Unknown");
}

} // namespace
} // namespace nvmexp
