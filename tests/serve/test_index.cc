#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "../support/fixtures.hh"
#include "core/parallel_sweep.hh"
#include "metrics/metric.hh"
#include "serve/index.hh"
#include "store/result_store.hh"

namespace nvmexp {
namespace {

using serve::StoreIndex;

/** One wide sweep, shared across the suite (rebuilt per process). */
const std::vector<EvalResult> &
sweepRows()
{
    static const std::vector<EvalResult> rows = [] {
        setQuiet(true);
        auto r = runSweep(testsupport::wideSweep());
        setQuiet(false);
        return r;
    }();
    return rows;
}

class StoreIndexTest : public testsupport::QuietTest
{
  protected:
    /** Byte-level differential: the columnar path must serialize
     *  exactly like the offline applyQuery path. */
    void
    expectIdentical(const std::vector<EvalResult> &rows,
                    const store::StoreQuery &query,
                    const std::string &label)
    {
        auto index = StoreIndex::fromResults(rows, "test");
        EXPECT_EQ(store::serializeResults(index->query(query)),
                  store::serializeResults(store::applyQuery(rows, query)))
            << label;
    }

    std::string
    storeDir(const std::string &name)
    {
        std::string dir = ::testing::TempDir() + "nvmexp_index_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() +
            "_" + name;
        std::filesystem::remove_all(dir);
        return dir;
    }
};

TEST_F(StoreIndexTest, EmptyQueryReturnsEveryRowInOrder)
{
    store::StoreQuery query;
    expectIdentical(sweepRows(), query, "empty");
}

TEST_F(StoreIndexTest, ConstraintFilteringMatchesOfflinePath)
{
    store::StoreQuery query;
    query.constraints.add("latency_load<=1.0");
    query.constraints.add("total_power<0.2");
    expectIdentical(sweepRows(), query, "constraints");
}

TEST_F(StoreIndexTest, PredicatesRunOverFullRows)
{
    store::StoreQuery query;
    query.predicates.push_back([](const EvalResult &r) {
        return r.traffic.name != "heavy";
    });
    expectIdentical(sweepRows(), query, "predicate");
}

TEST_F(StoreIndexTest, ParetoFrontsMatchForTwoAndMoreDimensions)
{
    store::StoreQuery two;
    two.paretoMetrics = {"total_power", "read_latency"};
    expectIdentical(sweepRows(), two, "pareto-2d");

    store::StoreQuery three;
    three.paretoMetrics = {"total_power", "read_latency", "area_mm2"};
    expectIdentical(sweepRows(), three, "pareto-3d");

    // A maximize-direction metric exercises the negation fold.
    store::StoreQuery folded;
    folded.paretoMetrics = {"total_power", "lifetime_years"};
    expectIdentical(sweepRows(), folded, "pareto-maximize");
}

TEST_F(StoreIndexTest, TopKMatchesIncludingDirectionFold)
{
    for (const char *metric : {"total_power", "lifetime_years"}) {
        for (std::size_t k : {1u, 3u, 1000u}) {
            store::StoreQuery query;
            query.topMetric = metric;
            query.topK = k;
            expectIdentical(sweepRows(), query,
                            std::string(metric) + " k=" +
                                std::to_string(k));
        }
    }
}

TEST_F(StoreIndexTest, FullPipelineMatches)
{
    store::StoreQuery query;
    query.constraints.add("latency_load<=1.5");
    query.paretoMetrics = {"total_power", "read_latency"};
    query.topMetric = "total_power";
    query.topK = 4;
    expectIdentical(sweepRows(), query, "pipeline");
}

TEST_F(StoreIndexTest, NanRowsDropAndTieDuplicatesSurviveIdentically)
{
    // Inject NaN power into a few rows and duplicate one row so the
    // NaN-drop and exact-duplicate-tie rules both trigger.
    std::vector<EvalResult> rows = sweepRows();
    rows[1].totalPower = std::numeric_limits<double>::quiet_NaN();
    rows[5].totalPower = std::numeric_limits<double>::quiet_NaN();
    rows.push_back(rows[2]);
    rows.push_back(rows[0]);

    store::StoreQuery pareto;
    pareto.paretoMetrics = {"total_power", "read_latency"};
    expectIdentical(rows, pareto, "nan-pareto");

    store::StoreQuery top;
    top.topMetric = "total_power";
    top.topK = 6;
    expectIdentical(rows, top, "nan-top");

    store::StoreQuery constrained;
    constrained.constraints.add("total_power<1.0");
    expectIdentical(rows, constrained, "nan-constraint");
}

TEST_F(StoreIndexTest, RandomizedQueriesMatchByteForByte)
{
    const auto &rows = sweepRows();
    auto index = StoreIndex::fromResults(rows, "test");

    // Deterministically seeded: any mismatch reproduces.
    std::mt19937 rng(20260808u);
    std::vector<std::string> names =
        metrics::MetricRegistry::instance().names();
    std::uniform_int_distribution<std::size_t> pickName(
        0, names.size() - 1);
    std::uniform_int_distribution<int> coin(0, 1);
    std::uniform_int_distribution<std::size_t> pickK(1, rows.size());
    const char *ops[] = {"<", "<=", ">", ">=", "!="};
    std::uniform_int_distribution<std::size_t> pickOp(0, 4);

    for (int trial = 0; trial < 50; ++trial) {
        store::StoreQuery query;
        if (coin(rng)) {
            // Bound drawn from the metric's actual value range so the
            // filter is neither trivially empty nor trivially full.
            const std::string &name = names[pickName(rng)];
            const metrics::Metric &m =
                metrics::MetricRegistry::instance().require(name);
            double value = m.eval(rows[pickK(rng) - 1]);
            if (std::isfinite(value)) {
                query.constraints.add(name + ops[pickOp(rng)] +
                                      JsonValue::formatNumber(value));
            }
        }
        if (coin(rng)) {
            std::size_t dims = 2 + (std::size_t)coin(rng);
            for (std::size_t d = 0; d < dims; ++d)
                query.paretoMetrics.push_back(names[pickName(rng)]);
        }
        if (coin(rng)) {
            query.topMetric = names[pickName(rng)];
            query.topK = pickK(rng);
        }
        EXPECT_EQ(store::serializeResults(index->query(query)),
                  store::serializeResults(
                      store::applyQuery(rows, query)))
            << "trial " << trial;
    }
}

TEST_F(StoreIndexTest, LoadMatchesQueryStoreAndReadsFingerprint)
{
    SweepConfig config = testsupport::smallSweep();
    config.outDir = storeDir("load");
    runSweep(config);

    std::string fingerprint;
    ASSERT_TRUE(serve::readStoreFingerprint(config.outDir, fingerprint));
    EXPECT_FALSE(fingerprint.empty());

    std::string error;
    auto index = StoreIndex::load(config.outDir, error);
    ASSERT_TRUE(index) << error;
    EXPECT_EQ(index->fingerprint(), fingerprint);
    EXPECT_EQ(index->rows(), 16u);

    store::StoreQuery query;
    query.paretoMetrics = {"total_power", "read_latency"};
    EXPECT_EQ(store::serializeResults(index->query(query)),
              store::serializeResults(
                  store::queryStore(config.outDir, query)));
}

TEST_F(StoreIndexTest, LoadRejectsMissingOrCorruptStores)
{
    std::string error;
    EXPECT_EQ(StoreIndex::load(storeDir("absent"), error), nullptr);
    EXPECT_NE(error.find("checkpoint.jsonl"), std::string::npos);

    // A store whose results.json is torn mid-write must be rejected,
    // not half-served.
    SweepConfig config = testsupport::smallSweep();
    config.outDir = storeDir("corrupt");
    runSweep(config);
    {
        std::ofstream out(config.outDir + "/results.json",
                          std::ios::trunc);
        out << "{\"format\": 2, \"results\": [";
    }
    EXPECT_EQ(StoreIndex::load(config.outDir, error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST_F(StoreIndexTest, UnknownMetricIsFatalWithStoreQueryContext)
{
    auto index = StoreIndex::fromResults(sweepRows(), "test");
    store::StoreQuery query;
    query.topMetric = "warp_factor";
    query.topK = 2;
    ScopedFatalThrows guard;
    try {
        index->query(query);
        FAIL() << "unknown metric must be fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("store query"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("warp_factor"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace nvmexp
