#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "../support/fixtures.hh"
#include "core/parallel_sweep.hh"
#include "serve/server.hh"
#include "store/result_store.hh"
#include "util/json.hh"

namespace nvmexp {
namespace {

/** The store directory every suite member serves (built once). */
const std::string &
sharedStore()
{
    static const std::string dir = [] {
        setQuiet(true);
        std::string path =
            ::testing::TempDir() + "nvmexp_serve_shared_store";
        std::filesystem::remove_all(path);
        SweepConfig config = testsupport::smallSweep();
        config.outDir = path;
        config.jobs = 4;
        runSweep(config);
        setQuiet(false);
        return path;
    }();
    return dir;
}

/** A QueryServer started on an ephemeral port with its accept loop on
 *  a dedicated thread; stops and joins on destruction. */
class RunningServer
{
  public:
    explicit RunningServer(serve::ServeOptions options)
        : server_(std::move(options))
    {
        std::string error;
        started_ = server_.start(error);
        EXPECT_TRUE(started_) << error;
        if (started_)
            thread_ = std::thread([this] { server_.run(); });
    }

    ~RunningServer()
    {
        server_.stop();
        if (thread_.joinable())
            thread_.join();
    }

    serve::QueryServer &server() { return server_; }
    int port() { return server_.port(); }
    bool started() const { return started_; }

  private:
    serve::QueryServer server_;
    std::thread thread_;
    bool started_ = false;
};

serve::ServeOptions
sharedOptions()
{
    serve::ServeOptions options;
    options.storeDir = sharedStore();
    options.port = 0;
    options.jobs = 4;
    return options;
}

/** POST `body` to /query and return the response. */
serve::HttpClientResult
postQuery(int port, const std::string &body)
{
    serve::HttpClientResult result;
    std::string error;
    EXPECT_TRUE(serve::httpExchange(port, "POST", "/query", body,
                                    result, error))
        << error;
    return result;
}

/** What the offline path answers for the same wire-format query. */
std::string
offlineAnswer(const std::string &queryJson)
{
    store::StoreQuery query =
        store::StoreQuery::fromJson(JsonValue::parse(queryJson));
    return store::serializeResults(
        store::queryStore(sharedStore(), query));
}

class ServeTest : public testsupport::QuietTest
{
};

TEST_F(ServeTest, HealthzReportsStoreFingerprintRowsAndFormat)
{
    RunningServer running(sharedOptions());
    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(serve::httpExchange(running.port(), "GET", "/healthz",
                                    "", result, error))
        << error;
    EXPECT_EQ(result.status, 200);

    std::string fingerprint;
    ASSERT_TRUE(serve::readStoreFingerprint(sharedStore(), fingerprint));
    JsonValue health = JsonValue::parse(result.body);
    EXPECT_EQ(health.at("status").asString(), "ok");
    EXPECT_EQ(health.at("fingerprint").asString(), fingerprint);
    EXPECT_EQ((std::size_t)health.at("rows").asNumber(), 16u);
    EXPECT_EQ((int)health.at("format").asNumber(),
              store::kFormatVersion);
}

TEST_F(ServeTest, ConcurrentQueriesAreByteIdenticalToOffline)
{
    // The acceptance differential: >= 8 concurrent client threads,
    // each hammering a different query shape, and every single
    // response must match the offline CLI path byte for byte.
    const std::vector<std::string> queries = {
        R"({})",
        R"({"constraints": ["total_power<0.2"]})",
        R"({"pareto": ["total_power", "read_latency"]})",
        R"({"pareto": ["total_power", "read_latency", "area_mm2"]})",
        R"({"top_k": {"metric": "read_edp", "k": 5}})",
        R"({"constraints": ["latency_load<=1.5"],
            "pareto": ["total_power", "read_latency"],
            "top_k": {"metric": "total_power", "k": 3}})",
        R"({"constraints": ["lifetime_years>=1"]})",
        R"({"top_k": {"metric": "lifetime_years", "k": 4}})",
    };
    std::vector<std::string> expected;
    expected.reserve(queries.size());
    for (const auto &q : queries)
        expected.push_back(offlineAnswer(q));

    RunningServer running(sharedOptions());
    constexpr int kThreads = 8;
    constexpr int kRequestsPerThread = 10;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kRequestsPerThread; ++i) {
                std::size_t pick =
                    ((std::size_t)t + (std::size_t)i) % queries.size();
                serve::HttpClientResult result;
                std::string error;
                if (!serve::httpExchange(running.port(), "POST",
                                         "/query", queries[pick],
                                         result, error) ||
                    result.status != 200 ||
                    result.body != expected[pick]) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(running.server().counters().queries,
              (std::uint64_t)(kThreads * kRequestsPerThread));
}

TEST_F(ServeTest, MalformedAndUnknownQueriesGetStructured400s)
{
    RunningServer running(sharedOptions());

    // Malformed JSON body.
    auto malformed = postQuery(running.port(), "{\"constraints\": [");
    EXPECT_EQ(malformed.status, 400);
    EXPECT_FALSE(
        JsonValue::parse(malformed.body).at("error").asString().empty());

    // The typo'd key that used to silently return the full store.
    auto typo =
        postQuery(running.port(), R"({"paretto": ["total_power"]})");
    EXPECT_EQ(typo.status, 400);
    EXPECT_NE(typo.body.find("unknown key 'paretto'"),
              std::string::npos)
        << typo.body;

    // Unknown metric names inside a known key.
    auto unknownMetric = postQuery(
        running.port(), R"({"constraints": ["warp_factor<0.5"]})");
    EXPECT_EQ(unknownMetric.status, 400);
    EXPECT_NE(unknownMetric.body.find("warp_factor"),
              std::string::npos);

    // Wrong methods and unknown endpoints.
    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(serve::httpExchange(running.port(), "GET", "/query", "",
                                    result, error));
    EXPECT_EQ(result.status, 405);
    ASSERT_TRUE(serve::httpExchange(running.port(), "POST", "/healthz",
                                    "", result, error));
    EXPECT_EQ(result.status, 405);
    ASSERT_TRUE(serve::httpExchange(running.port(), "GET", "/nope", "",
                                    result, error));
    EXPECT_EQ(result.status, 404);

    // The server survived every error and still answers correctly.
    auto ok = postQuery(running.port(), "{}");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, offlineAnswer("{}"));
    EXPECT_GE(running.server().counters().badRequests, 5u);
}

TEST_F(ServeTest, OversizedBodiesGet413)
{
    serve::ServeOptions options = sharedOptions();
    options.maxBodyBytes = 64;
    RunningServer running(options);

    std::string big = R"({"constraints": [)";
    while (big.size() <= 64)
        big += R"("total_power<0.5", )";
    big += "]}";
    auto result = postQuery(running.port(), big);
    EXPECT_EQ(result.status, 413);
    EXPECT_NE(result.body.find("too large"), std::string::npos);

    auto ok = postQuery(running.port(), "{}");
    EXPECT_EQ(ok.status, 200);
}

TEST_F(ServeTest, DroppedConnectionMidRequestIsCountedNotFatal)
{
    RunningServer running(sharedOptions());

    // Open a raw socket, send half a request, and hang up.
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons((uint16_t)running.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, (const sockaddr *)&addr, sizeof(addr)), 0);
    std::string partial = "POST /query HTTP/1.1\r\nContent-Length: 999";
    ASSERT_TRUE(serve::sendAll(fd, partial));
    ::close(fd);

    // The worker notices the hangup, records it, and keeps serving.
    for (int i = 0; i < 100; ++i) {
        if (running.server().counters().dropped > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(running.server().counters().dropped, 1u);
    auto ok = postQuery(running.port(), "{}");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, offlineAnswer("{}"));
}

TEST_F(ServeTest, ReloadSwapsIndexAndRejectsTornStores)
{
    // A private store copy this test may corrupt and restore.
    std::string dir =
        ::testing::TempDir() + "nvmexp_serve_reload_store";
    std::filesystem::remove_all(dir);
    std::filesystem::copy(sharedStore(), dir,
                          std::filesystem::copy_options::recursive);

    serve::ServeOptions options = sharedOptions();
    options.storeDir = dir;
    RunningServer running(options);

    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(serve::httpExchange(running.port(), "POST", "/reload",
                                    "", result, error));
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(JsonValue::parse(result.body).at("status").asString(),
              "reloaded");

    // Tear results.json mid-write: the reload must be refused with a
    // 409 and the previous index must keep serving identical bytes.
    std::string resultsJson;
    {
        std::ifstream in(dir + "/results.json");
        resultsJson.assign(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    }
    {
        std::ofstream out(dir + "/results.json", std::ios::trunc);
        out << resultsJson.substr(0, resultsJson.size() / 2);
    }
    ASSERT_TRUE(serve::httpExchange(running.port(), "POST", "/reload",
                                    "", result, error));
    EXPECT_EQ(result.status, 409);
    EXPECT_FALSE(
        JsonValue::parse(result.body).at("error").asString().empty());
    auto ok = postQuery(running.port(), "{}");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, offlineAnswer("{}"));

    // Restored store reloads cleanly again.
    {
        std::ofstream out(dir + "/results.json", std::ios::trunc);
        out << resultsJson;
    }
    ASSERT_TRUE(serve::httpExchange(running.port(), "POST", "/reload",
                                    "", result, error));
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(running.server().counters().reloads, 2u);
    EXPECT_EQ(running.server().counters().reloadFailures, 1u);
}

TEST_F(ServeTest, SignalFlagTriggersReloadAtNextAcceptTick)
{
    RunningServer running(sharedOptions());
    EXPECT_EQ(running.server().counters().reloads, 0u);
    // What the SIGHUP handler calls; the accept loop polls the flag
    // every timeout tick (200 ms).
    serve::QueryServer::requestReloadFromSignal();
    for (int i = 0; i < 100; ++i) {
        if (running.server().counters().reloads > 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(running.server().counters().reloads, 1u);
}

TEST_F(ServeTest, ConcurrentQueriesAndReloadsStaySafeAndIdentical)
{
    // Readers drain on the old index while reloads swap in fresh ones;
    // under TSan this pins the shared_ptr handoff as race-free, and in
    // every build each response must still match the offline bytes.
    const std::string queryJson =
        R"({"pareto": ["total_power", "read_latency"]})";
    const std::string expected = offlineAnswer(queryJson);

    RunningServer running(sharedOptions());
    std::atomic<bool> done{false};
    std::atomic<int> mismatches{0};

    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&] {
            while (!done.load()) {
                serve::HttpClientResult result;
                std::string error;
                if (!serve::httpExchange(running.port(), "POST",
                                         "/query", queryJson, result,
                                         error) ||
                    result.status != 200 || result.body != expected) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    std::thread reloader([&] {
        while (!done.load()) {
            serve::HttpClientResult result;
            std::string error;
            if (!serve::httpExchange(running.port(), "POST", "/reload",
                                     "", result, error) ||
                result.status != 200) {
                mismatches.fetch_add(1);
            }
        }
    });

    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    done.store(true);
    for (auto &client : clients)
        client.join();
    reloader.join();

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_GT(running.server().counters().queries, 0u);
    EXPECT_GT(running.server().counters().reloads, 0u);
    EXPECT_EQ(running.server().counters().reloadFailures, 0u);
}

TEST_F(ServeTest, KeepAliveServesManyRequestsOnOneConnection)
{
    RunningServer running(sharedOptions());
    const std::string expected = offlineAnswer("{}");

    serve::HttpClient client(running.port());
    for (int i = 0; i < 5; ++i) {
        serve::HttpClientResult result;
        std::string error;
        ASSERT_TRUE(client.exchange("POST", "/query", "{}", result,
                                    error))
            << error;
        EXPECT_EQ(result.status, 200);
        EXPECT_EQ(result.body, expected);
        EXPECT_EQ(result.headers.at("connection"), "keep-alive");
        EXPECT_TRUE(client.connected());
    }
    // Five requests, one connection, zero drops: a keep-alive client
    // going away between requests is a clean close.
    client.disconnect();
    auto ok = postQuery(running.port(), "{}");
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(running.server().counters().dropped, 0u);
}

TEST_F(ServeTest, RequestCapClosesAndClientReconnects)
{
    serve::ServeOptions options = sharedOptions();
    options.maxRequestsPerConnection = 2;
    RunningServer running(options);

    serve::HttpClient client(running.port());
    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(client.exchange("GET", "/healthz", "", result, error))
        << error;
    EXPECT_EQ(result.headers.at("connection"), "keep-alive");
    // The capped request is answered, with close, and the server hangs
    // up afterwards.
    ASSERT_TRUE(client.exchange("GET", "/healthz", "", result, error))
        << error;
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(result.headers.at("connection"), "close");
    EXPECT_FALSE(client.connected());
    // The next exchange transparently opens a fresh connection.
    ASSERT_TRUE(client.exchange("GET", "/healthz", "", result, error))
        << error;
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(running.server().counters().dropped, 0u);
}

TEST_F(ServeTest, IdleKeepAliveTimeoutIsACleanCloseNotADrop)
{
    serve::ServeOptions options = sharedOptions();
    options.keepAliveTimeoutMillis = 150;
    RunningServer running(options);

    serve::HttpClient client(running.port());
    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(client.exchange("GET", "/healthz", "", result, error))
        << error;
    EXPECT_EQ(result.headers.at("connection"), "keep-alive");

    // Sit past the idle window; the server recycles the worker without
    // counting a drop, and the client recovers by reconnecting.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    ASSERT_TRUE(client.exchange("GET", "/healthz", "", result, error))
        << error;
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(running.server().counters().dropped, 0u);
}

TEST_F(ServeTest, ExplicitConnectionCloseStillHonored)
{
    RunningServer running(sharedOptions());
    // httpExchange sends "Connection: close" and reads to EOF: the
    // pre-keep-alive contract must keep working bytes-for-bytes.
    serve::HttpClientResult result;
    std::string error;
    ASSERT_TRUE(serve::httpExchange(running.port(), "POST", "/query",
                                    "{}", result, error))
        << error;
    EXPECT_EQ(result.status, 200);
    EXPECT_EQ(result.headers.at("connection"), "close");
    EXPECT_EQ(result.body, offlineAnswer("{}"));
}

} // namespace
} // namespace nvmexp
