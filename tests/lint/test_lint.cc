/**
 * @file
 * Error-path tests for nvmexplorer_lint: every seeded-bad artifact
 * must produce a diagnostic naming the file and the offending key,
 * and the shipped repo artifacts must lint clean.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "../support/fixtures.hh"
#include "campaign/campaign.hh"
#include "core/parallel_sweep.hh"
#include "lint.hh"

namespace nvmexp {
namespace lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public testsupport::QuietTest
{
  protected:
    void SetUp() override
    {
        testsupport::QuietTest::SetUp();
        dir_ = fs::temp_directory_path() /
            ("nvmexp-lint-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        fs::remove_all(dir_);
        testsupport::QuietTest::TearDown();
    }

    /** Write `text` under the temp dir and return its path. */
    std::string
    write(const std::string &name, const std::string &text)
    {
        fs::path path = dir_ / name;
        fs::create_directories(path.parent_path());
        std::ofstream out(path);
        out << text;
        out.close();
        return path.string();
    }

    /** The one diagnostic expected for `path`, keyed `key`. */
    static void
    expectOneDiagnostic(const LintReport &report,
                        const std::string &path, const std::string &key)
    {
        ASSERT_EQ(report.diagnostics.size(), 1u)
            << "expected exactly one diagnostic for key '" << key << "'";
        EXPECT_EQ(report.diagnostics[0].file, path);
        EXPECT_EQ(report.diagnostics[0].key, key);
        EXPECT_FALSE(report.diagnostics[0].message.empty());
    }

    /** A minimal valid config, as a mutable skeleton for seeding one
     *  defect at a time. */
    static std::string
    validConfig(const std::string &extra)
    {
        return std::string("{\n"
                           "  \"experiment\": \"lint-fixture\",\n"
                           "  \"cells\": [\"SRAM\"],\n"
                           "  \"capacities_mib\": [1],\n"
                           "  \"traffic\": [{\"name\": \"t\",\n"
                           "    \"read_bytes_per_sec\": 1e9,\n"
                           "    \"write_bytes_per_sec\": 1e8}]") +
            (extra.empty() ? "" : ",\n" + extra) + "\n}\n";
    }

    fs::path dir_;
};

TEST_F(LintTest, ValidConfigIsClean)
{
    auto path = write("ok.json", validConfig(""));
    LintReport report = lintConfigFile(path);
    EXPECT_TRUE(report.clean()) << report.diagnostics.size();
}

TEST_F(LintTest, ShippedRepoArtifactsLintClean)
{
    LintReport report = lintTree(NVMEXP_SOURCE_DIR);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
    // Registries + every shipped config + both golden files.
    EXPECT_GE(report.checked, 10u);
}

TEST_F(LintTest, UnknownMetricInParetoIsDiagnosed)
{
    auto path = write("pareto.json",
                      validConfig("  \"pareto\": [\"total_powerz\"]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "pareto");
    EXPECT_NE(report.diagnostics[0].message.find("total_powerz"),
              std::string::npos);
}

TEST_F(LintTest, UnknownMetricInTopKIsDiagnosed)
{
    auto path = write(
        "topk.json",
        validConfig("  \"top_k\": {\"metric\": \"nope\", \"k\": 3}"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "top_k");
}

TEST_F(LintTest, MalformedConstraintClauseIsDiagnosed)
{
    auto path = write(
        "clause.json",
        validConfig("  \"constraints\": [\"total_power<=0.5\","
                    " \"total_power<<1\"]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "constraints[1]");
}

TEST_F(LintTest, UnknownConstraintMetricIsDiagnosed)
{
    auto path = write(
        "cmetric.json",
        validConfig("  \"constraints\": [{\"metric\": \"watts\","
                    " \"op\": \"<\", \"bound\": 1}]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "constraints[0]");
    EXPECT_NE(report.diagnostics[0].message.find("watts"),
              std::string::npos);
}

TEST_F(LintTest, UnknownWorkloadIsDiagnosed)
{
    auto path = write(
        "workload.json",
        validConfig("  \"workloads\": [{\"name\": \"no-such\"}]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "workloads[0]");
}

TEST_F(LintTest, UnknownEccSchemeIsDiagnosed)
{
    auto path = write("ecc.json",
                      validConfig("  \"ecc\": \"secded-999\""));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "ecc");
    EXPECT_NE(report.diagnostics[0].message.find("secded-999"),
              std::string::npos);
}

TEST_F(LintTest, UnknownTopLevelKeyIsDiagnosed)
{
    auto path = write("typo.json",
                      validConfig("  \"trafic\": []"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "trafic");
}

TEST_F(LintTest, UnparseableConfigIsDiagnosed)
{
    auto path = write("broken.json", "{ not json");
    LintReport report = lintConfigFile(path);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].file, path);
    EXPECT_EQ(report.diagnostics[0].key, "");
}

TEST_F(LintTest, UnknownCellIsDiagnosedByFullLoad)
{
    auto path = write(
        "cell.json",
        "{\n  \"experiment\": \"x\",\n  \"cells\": [\"NoSuchCell\"],\n"
        "  \"capacities_mib\": [1],\n"
        "  \"traffic\": [{\"name\": \"t\",\n"
        "    \"read_bytes_per_sec\": 1e9,\n"
        "    \"write_bytes_per_sec\": 1e8}]\n}\n");
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "load");
}

TEST_F(LintTest, StaleGoldenFormatVersionIsDiagnosed)
{
    auto path = write("golden.json",
                      "{\"format\": 1, \"results\": []}");
    LintReport report = lintGoldenFile(path);
    expectOneDiagnostic(report, path, "format");
    EXPECT_NE(report.diagnostics[0].message.find("stale"),
              std::string::npos);
}

TEST_F(LintTest, GoldenWithoutResultsIsDiagnosed)
{
    auto path = write("golden2.json", "{\"format\": 2}");
    LintReport report = lintGoldenFile(path);
    expectOneDiagnostic(report, path, "results");
}

TEST_F(LintTest, StaleStoreCheckpointFormatIsDiagnosed)
{
    write("store/checkpoint.jsonl",
          "{\"format\":1,\"fingerprint\":\"abc\",\"slots\":4}\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "format");
}

TEST_F(LintTest, CheckpointWithoutFingerprintIsDiagnosed)
{
    write("store/checkpoint.jsonl", "{\"format\":2,\"slots\":4}\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "fingerprint");
}

TEST_F(LintTest, UnparseableCheckpointHeaderIsDiagnosed)
{
    write("store/checkpoint.jsonl", "not json at all\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "header");
}

TEST_F(LintTest, FreshStoreDirectoryLintsClean)
{
    auto sweep = testsupport::smallSweep();
    sweep.outDir = (dir_ / "store").string();
    runSweep(sweep);
    LintReport report = lintStoreDir(sweep.outDir);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(LintTest, RegistriesAreConsistent)
{
    LintReport report = lintRegistries();
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

class CampaignLintTest : public LintTest
{
  protected:
    /** A structurally valid two-shard manifest, one field swappable
     *  at a time. */
    static std::string
    manifestJson(const std::string &fingerprint,
                 const std::string &shard1Status)
    {
        return "{\n"
               "  \"format\": 2,\n"
               "  \"campaign_format\": 1,\n"
               "  \"fingerprint\": \"" + fingerprint + "\",\n"
               "  \"shard_count\": 2,\n"
               "  \"granularity\": 2,\n"
               "  \"shards\": [\n"
               "    {\"id\": 0, \"dir\": \"shards/shard-0\",\n"
               "     \"status\": \"pending\", \"attempts\": 0},\n"
               "    {\"id\": 1, \"dir\": \"shards/shard-1\",\n"
               "     \"status\": \"" + shard1Status + "\",\n"
               "     \"attempts\": 1}\n"
               "  ]\n"
               "}\n";
    }

    static std::string
    journalHeader(const std::string &fingerprint)
    {
        return "{\"format\": 2, \"fingerprint\": \"" + fingerprint +
               "\", \"slots\": 32}\n";
    }
};

TEST_F(CampaignLintTest, PendingCampaignLintsClean)
{
    write("campaign.json", manifestJson("00000000aaaaaaaa", "pending"));
    LintReport report = lintCampaignDir(dir_.string());
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(CampaignLintTest, WrongCampaignFormatVersionIsDiagnosed)
{
    std::string bad = manifestJson("00000000aaaaaaaa", "pending");
    bad.replace(bad.find("\"campaign_format\": 1"),
                std::string("\"campaign_format\": 1").size(),
                "\"campaign_format\": 99");
    auto path = write("campaign.json", bad);
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, path, "");
    EXPECT_NE(report.diagnostics[0].message.find("campaign_format"),
              std::string::npos);
}

TEST_F(CampaignLintTest, ShardTableSizeMismatchIsDiagnosed)
{
    std::string bad = manifestJson("00000000aaaaaaaa", "pending");
    bad.replace(bad.find("\"shard_count\": 2"),
                std::string("\"shard_count\": 2").size(),
                "\"shard_count\": 3");
    auto path = write("campaign.json", bad);
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, path, "");
    EXPECT_NE(report.diagnostics[0].message.find("shard table"),
              std::string::npos);
}

TEST_F(CampaignLintTest, CompletedShardWithoutStoreIsDiagnosed)
{
    auto path =
        write("campaign.json",
              manifestJson("00000000aaaaaaaa", "complete"));
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, path, "shards[1]");
    EXPECT_NE(report.diagnostics[0].message.find("missing"),
              std::string::npos);
}

TEST_F(CampaignLintTest, ForeignShardJournalFingerprintIsDiagnosed)
{
    write("campaign.json", manifestJson("00000000aaaaaaaa", "partial"));
    auto journal = write("shards/shard-1/checkpoint.jsonl",
                         journalHeader("00000000bbbbbbbb"));
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, journal, "fingerprint");
    EXPECT_NE(report.diagnostics[0].message.find("00000000bbbbbbbb"),
              std::string::npos);
}

TEST_F(CampaignLintTest, InconsistentShardStateIsDiagnosed)
{
    write("campaign.json", manifestJson("00000000aaaaaaaa", "partial"));
    write("shards/shard-1/checkpoint.jsonl",
          journalHeader("00000000aaaaaaaa"));
    // A shard.json claiming another shard's identity: torn retry
    // bookkeeping the lenient loader would silently zero.
    auto state = write("shards/shard-1/shard.json",
                       "{\"format\": 2, \"campaign_format\": 1,\n"
                       " \"fingerprint\": \"00000000aaaaaaaa\",\n"
                       " \"shard\": 0, \"shard_count\": 2,\n"
                       " \"attempts\": 1, \"completed\": false}\n");
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, state, "shard");
}

TEST_F(CampaignLintTest, MergedStoreFingerprintMismatchIsDiagnosed)
{
    write("campaign.json", manifestJson("00000000aaaaaaaa", "pending"));
    auto journal = write("merged/checkpoint.jsonl",
                         journalHeader("00000000cccccccc"));
    LintReport report = lintCampaignDir(dir_.string());
    expectOneDiagnostic(report, journal, "fingerprint");
}

TEST_F(CampaignLintTest, RealCampaignLifecycleLintsClean)
{
    std::string dir = (dir_ / "campaign").string();
    SweepConfig sweep = testsupport::smallSweep();
    campaign::planCampaign(dir, sweep, 2);
    ParallelSweepRunner runner(2);
    campaign::runShard(dir, sweep, 0, runner);
    campaign::runShard(dir, sweep, 1, runner);
    campaign::mergeCampaign(dir);

    LintReport report = lintCampaignDir(dir);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
    // The campaign itself, two shard stores, and the merged store.
    EXPECT_GE(report.checked, 4u);
}

class BenchLintTest : public LintTest
{
  protected:
    /** A minimal valid google-benchmark snapshot with the two rows
     *  tools/bench_gate.py requires, one field swappable at a time. */
    static std::string
    benchJson(const std::string &contextBody,
              const std::string &extraRows)
    {
        return "{\n"
               "  \"context\": {" + contextBody + "},\n"
               "  \"benchmarks\": [\n"
               "    {\"name\": \"BM_SweepEvalScalar/1\",\n"
               "     \"run_type\": \"iteration\",\n"
               "     \"real_time\": 1000.0, \"time_unit\": \"ns\"},\n"
               "    {\"name\": \"BM_SweepEvalBatched/1\",\n"
               "     \"run_type\": \"iteration\",\n"
               "     \"real_time\": 250.0, \"time_unit\": \"ns\"}" +
               (extraRows.empty() ? "" : ",\n" + extraRows) +
               "\n  ]\n}\n";
    }
};

TEST_F(BenchLintTest, ValidSnapshotIsClean)
{
    auto path = write("ok.json", benchJson("\"num_cpus\": 8", ""));
    LintReport report = lintBenchFile(path);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(BenchLintTest, CommittedSnapshotLintsClean)
{
    LintReport report =
        lintBenchFile(std::string(NVMEXP_SOURCE_DIR) +
                      "/BENCH_sweep.json");
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(BenchLintTest, MissingCpuCountIsDiagnosed)
{
    auto path = write("cpus.json", benchJson("\"host_name\": \"x\"", ""));
    LintReport report = lintBenchFile(path);
    expectOneDiagnostic(report, path, "context.num_cpus");
}

TEST_F(BenchLintTest, UnknownTimeUnitIsDiagnosed)
{
    // "min" is exactly the hazard: bench_gate scales unknown units by
    // 1.0 without a warning, so this row would gate at 60x off.
    auto path = write(
        "unit.json",
        benchJson("\"num_cpus\": 8",
                  "    {\"name\": \"BM_Other/1\","
                  " \"run_type\": \"iteration\","
                  " \"real_time\": 2.0, \"time_unit\": \"min\"}"));
    LintReport report = lintBenchFile(path);
    expectOneDiagnostic(report, path, "benchmarks[2] (BM_Other/1)");
    EXPECT_NE(report.diagnostics[0].message.find("ns/us/ms/s"),
              std::string::npos);
}

TEST_F(BenchLintTest, DuplicateIterationRowIsDiagnosed)
{
    auto path = write(
        "dup.json",
        benchJson("\"num_cpus\": 8",
                  "    {\"name\": \"BM_SweepEvalScalar/1\","
                  " \"run_type\": \"iteration\","
                  " \"real_time\": 999.0, \"time_unit\": \"ns\"}"));
    LintReport report = lintBenchFile(path);
    expectOneDiagnostic(report, path,
                        "benchmarks[2] (BM_SweepEvalScalar/1)");
    EXPECT_NE(report.diagnostics[0].message.find("duplicate"),
              std::string::npos);
}

TEST_F(BenchLintTest, MissingReferenceRowIsDiagnosed)
{
    auto path = write(
        "noref.json",
        "{\n  \"context\": {\"num_cpus\": 8},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"BM_SweepEvalBatched/1\",\n"
        "     \"run_type\": \"iteration\",\n"
        "     \"real_time\": 250.0, \"time_unit\": \"ns\"}\n  ]\n}\n");
    LintReport report = lintBenchFile(path);
    expectOneDiagnostic(report, path, "BM_SweepEvalScalar/1");
}

TEST_F(BenchLintTest, AggregateRowsNeedNoRealTime)
{
    // _mean/_stddev aggregate rows are skipped by the gate; the lint
    // must not demand iteration fields of them.
    auto path = write(
        "agg.json",
        benchJson("\"num_cpus\": 8",
                  "    {\"name\": \"BM_SweepEvalScalar/1_mean\","
                  " \"run_type\": \"aggregate\","
                  " \"time_unit\": \"ns\"}"));
    LintReport report = lintBenchFile(path);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(BenchLintTest, NonNumericRealTimeIsDiagnosed)
{
    auto path = write(
        "realtime.json",
        benchJson("\"num_cpus\": 8",
                  "    {\"name\": \"BM_Other/1\","
                  " \"run_type\": \"iteration\","
                  " \"real_time\": \"fast\", \"time_unit\": \"ns\"}"));
    LintReport report = lintBenchFile(path);
    expectOneDiagnostic(report, path, "benchmarks[2] (BM_Other/1)");
    EXPECT_NE(report.diagnostics[0].message.find("real_time"),
              std::string::npos);
}

TEST_F(LintTest, MultipleDefectsYieldMultipleDiagnostics)
{
    auto path = write(
        "multi.json",
        validConfig("  \"pareto\": [\"nope\"],\n"
                    "  \"ecc\": \"bad-scheme\",\n"
                    "  \"extra_key\": 1"));
    LintReport report = lintConfigFile(path);
    EXPECT_EQ(report.diagnostics.size(), 3u);
}

} // namespace
} // namespace lint
} // namespace nvmexp
