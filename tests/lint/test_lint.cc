/**
 * @file
 * Error-path tests for nvmexplorer_lint: every seeded-bad artifact
 * must produce a diagnostic naming the file and the offending key,
 * and the shipped repo artifacts must lint clean.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "../support/fixtures.hh"
#include "lint.hh"

namespace nvmexp {
namespace lint {
namespace {

namespace fs = std::filesystem;

class LintTest : public testsupport::QuietTest
{
  protected:
    void SetUp() override
    {
        testsupport::QuietTest::SetUp();
        dir_ = fs::temp_directory_path() /
            ("nvmexp-lint-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        fs::remove_all(dir_);
        testsupport::QuietTest::TearDown();
    }

    /** Write `text` under the temp dir and return its path. */
    std::string
    write(const std::string &name, const std::string &text)
    {
        fs::path path = dir_ / name;
        fs::create_directories(path.parent_path());
        std::ofstream out(path);
        out << text;
        out.close();
        return path.string();
    }

    /** The one diagnostic expected for `path`, keyed `key`. */
    static void
    expectOneDiagnostic(const LintReport &report,
                        const std::string &path, const std::string &key)
    {
        ASSERT_EQ(report.diagnostics.size(), 1u)
            << "expected exactly one diagnostic for key '" << key << "'";
        EXPECT_EQ(report.diagnostics[0].file, path);
        EXPECT_EQ(report.diagnostics[0].key, key);
        EXPECT_FALSE(report.diagnostics[0].message.empty());
    }

    /** A minimal valid config, as a mutable skeleton for seeding one
     *  defect at a time. */
    static std::string
    validConfig(const std::string &extra)
    {
        return std::string("{\n"
                           "  \"experiment\": \"lint-fixture\",\n"
                           "  \"cells\": [\"SRAM\"],\n"
                           "  \"capacities_mib\": [1],\n"
                           "  \"traffic\": [{\"name\": \"t\",\n"
                           "    \"read_bytes_per_sec\": 1e9,\n"
                           "    \"write_bytes_per_sec\": 1e8}]") +
            (extra.empty() ? "" : ",\n" + extra) + "\n}\n";
    }

    fs::path dir_;
};

TEST_F(LintTest, ValidConfigIsClean)
{
    auto path = write("ok.json", validConfig(""));
    LintReport report = lintConfigFile(path);
    EXPECT_TRUE(report.clean()) << report.diagnostics.size();
}

TEST_F(LintTest, ShippedRepoArtifactsLintClean)
{
    LintReport report = lintTree(NVMEXP_SOURCE_DIR);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
    // Registries + every shipped config + both golden files.
    EXPECT_GE(report.checked, 10u);
}

TEST_F(LintTest, UnknownMetricInParetoIsDiagnosed)
{
    auto path = write("pareto.json",
                      validConfig("  \"pareto\": [\"total_powerz\"]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "pareto");
    EXPECT_NE(report.diagnostics[0].message.find("total_powerz"),
              std::string::npos);
}

TEST_F(LintTest, UnknownMetricInTopKIsDiagnosed)
{
    auto path = write(
        "topk.json",
        validConfig("  \"top_k\": {\"metric\": \"nope\", \"k\": 3}"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "top_k");
}

TEST_F(LintTest, MalformedConstraintClauseIsDiagnosed)
{
    auto path = write(
        "clause.json",
        validConfig("  \"constraints\": [\"total_power<=0.5\","
                    " \"total_power<<1\"]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "constraints[1]");
}

TEST_F(LintTest, UnknownConstraintMetricIsDiagnosed)
{
    auto path = write(
        "cmetric.json",
        validConfig("  \"constraints\": [{\"metric\": \"watts\","
                    " \"op\": \"<\", \"bound\": 1}]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "constraints[0]");
    EXPECT_NE(report.diagnostics[0].message.find("watts"),
              std::string::npos);
}

TEST_F(LintTest, UnknownWorkloadIsDiagnosed)
{
    auto path = write(
        "workload.json",
        validConfig("  \"workloads\": [{\"name\": \"no-such\"}]"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "workloads[0]");
}

TEST_F(LintTest, UnknownEccSchemeIsDiagnosed)
{
    auto path = write("ecc.json",
                      validConfig("  \"ecc\": \"secded-999\""));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "ecc");
    EXPECT_NE(report.diagnostics[0].message.find("secded-999"),
              std::string::npos);
}

TEST_F(LintTest, UnknownTopLevelKeyIsDiagnosed)
{
    auto path = write("typo.json",
                      validConfig("  \"trafic\": []"));
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "trafic");
}

TEST_F(LintTest, UnparseableConfigIsDiagnosed)
{
    auto path = write("broken.json", "{ not json");
    LintReport report = lintConfigFile(path);
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].file, path);
    EXPECT_EQ(report.diagnostics[0].key, "");
}

TEST_F(LintTest, UnknownCellIsDiagnosedByFullLoad)
{
    auto path = write(
        "cell.json",
        "{\n  \"experiment\": \"x\",\n  \"cells\": [\"NoSuchCell\"],\n"
        "  \"capacities_mib\": [1],\n"
        "  \"traffic\": [{\"name\": \"t\",\n"
        "    \"read_bytes_per_sec\": 1e9,\n"
        "    \"write_bytes_per_sec\": 1e8}]\n}\n");
    LintReport report = lintConfigFile(path);
    expectOneDiagnostic(report, path, "load");
}

TEST_F(LintTest, StaleGoldenFormatVersionIsDiagnosed)
{
    auto path = write("golden.json",
                      "{\"format\": 1, \"results\": []}");
    LintReport report = lintGoldenFile(path);
    expectOneDiagnostic(report, path, "format");
    EXPECT_NE(report.diagnostics[0].message.find("stale"),
              std::string::npos);
}

TEST_F(LintTest, GoldenWithoutResultsIsDiagnosed)
{
    auto path = write("golden2.json", "{\"format\": 2}");
    LintReport report = lintGoldenFile(path);
    expectOneDiagnostic(report, path, "results");
}

TEST_F(LintTest, StaleStoreCheckpointFormatIsDiagnosed)
{
    write("store/checkpoint.jsonl",
          "{\"format\":1,\"fingerprint\":\"abc\",\"slots\":4}\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "format");
}

TEST_F(LintTest, CheckpointWithoutFingerprintIsDiagnosed)
{
    write("store/checkpoint.jsonl", "{\"format\":2,\"slots\":4}\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "fingerprint");
}

TEST_F(LintTest, UnparseableCheckpointHeaderIsDiagnosed)
{
    write("store/checkpoint.jsonl", "not json at all\n");
    LintReport report = lintStoreDir((dir_ / "store").string());
    ASSERT_EQ(report.diagnostics.size(), 1u);
    EXPECT_EQ(report.diagnostics[0].key, "header");
}

TEST_F(LintTest, FreshStoreDirectoryLintsClean)
{
    auto sweep = testsupport::smallSweep();
    sweep.outDir = (dir_ / "store").string();
    runSweep(sweep);
    LintReport report = lintStoreDir(sweep.outDir);
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(LintTest, RegistriesAreConsistent)
{
    LintReport report = lintRegistries();
    for (const auto &d : report.diagnostics)
        ADD_FAILURE() << d.file << ": [" << d.key << "] " << d.message;
}

TEST_F(LintTest, MultipleDefectsYieldMultipleDiagnostics)
{
    auto path = write(
        "multi.json",
        validConfig("  \"pareto\": [\"nope\"],\n"
                    "  \"ecc\": \"bad-scheme\",\n"
                    "  \"extra_key\": 1"));
    LintReport report = lintConfigFile(path);
    EXPECT_EQ(report.diagnostics.size(), 3u);
}

} // namespace
} // namespace lint
} // namespace nvmexp
