#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hh"

namespace nvmexp {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesClosedForm)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSingleStream)
{
    RunningStats whole, a, b;
    for (int i = 0; i < 100; ++i) {
        double x = std::sin(i) * 10.0;
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);

    RunningStats b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, BucketBoundaries)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(4), 10.0);
}

TEST(Histogram, OutOfRangeClampsIntoEdgeBuckets)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, QuantileOfUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 2.0);
}

TEST(HistogramDeath, RejectsDegenerateRange)
{
    EXPECT_EXIT(Histogram(1.0, 1.0, 4), ::testing::ExitedWithCode(1),
                "Histogram");
    EXPECT_EXIT(Histogram(0.0, 1.0, 0), ::testing::ExitedWithCode(1),
                "Histogram");
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 9.0}), 6.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(GeomeanDeath, RejectsNonPositive)
{
    EXPECT_EXIT(geomean({1.0, 0.0}), ::testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(geomean({}), ::testing::ExitedWithCode(1), "empty");
}

TEST(Pearson, PerfectCorrelationIsOne)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectAnticorrelationIsMinusOne)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    std::vector<double> ys = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesYieldsZero)
{
    std::vector<double> xs = {1, 2, 3};
    std::vector<double> ys = {5, 5, 5};
    EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(PearsonDeath, RejectsMismatchedLengths)
{
    EXPECT_EXIT(pearson({1.0}, {1.0, 2.0}),
                ::testing::ExitedWithCode(1), "equal-length");
}

} // namespace
} // namespace nvmexp
