#include <gtest/gtest.h>

#include <cmath>

#include "util/random.hh"

namespace nvmexp {
namespace {

TEST(Rng, DeterministicUnderFixedSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInHalfOpenUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int kN = 100000;
    for (int i = 0; i < kN; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, RangeRespectsBound)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.range(bound), bound);
    }
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.range(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, GaussianMomentsMatchStandardNormal)
{
    Rng rng(13);
    double sum = 0.0, sumSq = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
        double g = rng.gaussian();
        sum += g;
        sumSq += g * g;
    }
    double mean = sum / kN;
    double var = sumSq / kN - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

class RngBernoulliTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngBernoulliTest, FrequencyMatchesProbability)
{
    double p = GetParam();
    Rng rng(17);
    constexpr int kN = 100000;
    int hits = 0;
    for (int i = 0; i < kN; ++i)
        if (rng.bernoulli(p))
            ++hits;
    double freq = (double)hits / kN;
    double tol = 4.0 * std::sqrt(p * (1.0 - p) / kN) + 1e-4;
    EXPECT_NEAR(freq, p, tol);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngBernoulliTest,
                         ::testing::Values(0.0, 0.01, 0.25, 0.5, 0.9,
                                           1.0));

} // namespace
} // namespace nvmexp
