#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace nvmexp {
namespace {

TEST(Table, BasicLayoutContainsHeadersAndCells)
{
    Table t("demo", {"Name", "Value"});
    t.row().add("alpha").add(1.5);
    t.row().add("beta").add((long long)42);
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, CellAccessors)
{
    Table t("t", {"a", "b"});
    t.row().add("x").add(2.0);
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_EQ(t.numCols(), 2u);
    EXPECT_EQ(t.cell(0, 0), "x");
    EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(Table, CsvEscapesSpecialCharacters)
{
    Table t("csv", {"col"});
    t.row().add("plain");
    t.row().add("with,comma");
    t.row().add("with\"quote");
    std::ostringstream os;
    t.printCsv(os);
    std::string out = os.str();
    EXPECT_NE(out.find("plain\n"), std::string::npos);
    EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, FormatNumberBands)
{
    EXPECT_EQ(Table::formatNumber(0.0), "0");
    EXPECT_EQ(Table::formatNumber(1.5), "1.5");
    EXPECT_EQ(Table::formatNumber(12345.0), "12345");
    // Large and tiny magnitudes switch to scientific notation.
    EXPECT_NE(Table::formatNumber(1.23e8).find("e"), std::string::npos);
    EXPECT_NE(Table::formatNumber(1.23e-7).find("e"), std::string::npos);
    EXPECT_EQ(Table::formatNumber(
                  std::numeric_limits<double>::quiet_NaN()), "nan");
}

TEST(Table, FormatEngPicksSuffix)
{
    EXPECT_EQ(Table::formatEng(0.0), "0");
    EXPECT_EQ(Table::formatEng(1500.0), "1.5k");
    EXPECT_EQ(Table::formatEng(2.5e9), "2.5G");
    EXPECT_EQ(Table::formatEng(3e-9), "3n");
    EXPECT_EQ(Table::formatEng(4.2e-12), "4.2p");
}

TEST(Table, AddEngAppendsUnit)
{
    Table t("t", {"v"});
    t.row().addEng(5e-9, "s");
    EXPECT_EQ(t.cell(0, 0), "5ns");
}

TEST(TableDeath, RejectsEmptyHeaders)
{
    EXPECT_EXIT(Table("bad", {}), ::testing::ExitedWithCode(1),
                "at least one column");
}

TEST(TableDeath, RejectsAddBeforeRow)
{
    Table t("t", {"a"});
    EXPECT_EXIT(t.add("x"), ::testing::ExitedWithCode(1),
                "before row");
}

TEST(TableDeath, RejectsShortRow)
{
    Table t("t", {"a", "b"});
    t.row().add("only-one");
    EXPECT_EXIT(t.row(), ::testing::ExitedWithCode(1), "cells");
}

TEST(TableDeath, WriteCsvToBadPathFails)
{
    Table t("t", {"a"});
    t.row().add("x");
    EXPECT_EXIT(t.writeCsv("/nonexistent-dir/x.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace nvmexp
