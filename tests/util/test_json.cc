#include <gtest/gtest.h>

#include "util/json.hh"

namespace nvmexp {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesEscapes)
{
    auto v = JsonValue::parse(R"("a\"b\\c\nd\te")");
    EXPECT_EQ(v.asString(), "a\"b\\c\nd\te");
}

TEST(Json, ParsesNestedStructures)
{
    auto v = JsonValue::parse(R"({
        "name": "sweep",
        "caps": [1, 2, 16],
        "inner": {"flag": true, "x": 0.5}
    })");
    EXPECT_EQ(v.at("name").asString(), "sweep");
    EXPECT_EQ(v.at("caps").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("caps").asArray()[2].asNumber(), 16.0);
    EXPECT_TRUE(v.at("inner").at("flag").asBool());
    EXPECT_DOUBLE_EQ(v.at("inner").numberOr("x", 0.0), 0.5);
}

TEST(Json, LineCommentsAreSkipped)
{
    auto v = JsonValue::parse(
        "// leading comment\n"
        "{ \"a\": 1, // trailing comment\n"
        "  \"b\": 2 }\n");
    EXPECT_DOUBLE_EQ(v.at("a").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v.at("b").asNumber(), 2.0);
}

TEST(Json, DefaultsApplyWhenMembersAbsent)
{
    auto v = JsonValue::parse(R"({"present": 7})");
    EXPECT_DOUBLE_EQ(v.numberOr("present", 1.0), 7.0);
    EXPECT_DOUBLE_EQ(v.numberOr("absent", 1.0), 1.0);
    EXPECT_EQ(v.stringOr("absent", "d"), "d");
    EXPECT_TRUE(v.boolOr("absent", true));
}

TEST(Json, MemberNamesPreserveOrder)
{
    auto v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
    auto names = v.memberNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "z");
    EXPECT_EQ(names[1], "a");
    EXPECT_EQ(names[2], "m");
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(JsonValue::parse("[]").asArray().empty());
    EXPECT_TRUE(JsonValue::parse("{}").isObject());
}

TEST(JsonDeath, ReportsPositionOnErrors)
{
    EXPECT_EXIT(JsonValue::parse("{\"a\": }"),
                ::testing::ExitedWithCode(1), "line 1");
    EXPECT_EXIT(JsonValue::parse("{\"a\": 1,\n\"a\": 2}"),
                ::testing::ExitedWithCode(1), "duplicate member");
    EXPECT_EXIT(JsonValue::parse("[1, 2"),
                ::testing::ExitedWithCode(1), "unexpected end");
    EXPECT_EXIT(JsonValue::parse("{} extra"),
                ::testing::ExitedWithCode(1), "trailing");
}

TEST(JsonDeath, TypeMismatchesAreFatal)
{
    auto v = JsonValue::parse(R"({"s": "x"})");
    EXPECT_EXIT(v.at("s").asNumber(), ::testing::ExitedWithCode(1),
                "expected a number");
    EXPECT_EXIT(v.at("missing"), ::testing::ExitedWithCode(1),
                "missing required member");
    EXPECT_EXIT(JsonValue::parse("3").at("x"),
                ::testing::ExitedWithCode(1), "expected an object");
}

TEST(JsonDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(JsonValue::parseFile("/no/such/file.json"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace nvmexp
