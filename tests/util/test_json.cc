#include <gtest/gtest.h>

#include <limits>

#include "util/json.hh"

namespace nvmexp {
namespace {

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(JsonValue::parse("null").isNull());
    EXPECT_TRUE(JsonValue::parse("true").asBool());
    EXPECT_FALSE(JsonValue::parse("false").asBool());
    EXPECT_DOUBLE_EQ(JsonValue::parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(JsonValue::parse("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(JsonValue::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesEscapes)
{
    auto v = JsonValue::parse(R"("a\"b\\c\nd\te")");
    EXPECT_EQ(v.asString(), "a\"b\\c\nd\te");
}

TEST(Json, ParsesNestedStructures)
{
    auto v = JsonValue::parse(R"({
        "name": "sweep",
        "caps": [1, 2, 16],
        "inner": {"flag": true, "x": 0.5}
    })");
    EXPECT_EQ(v.at("name").asString(), "sweep");
    EXPECT_EQ(v.at("caps").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("caps").asArray()[2].asNumber(), 16.0);
    EXPECT_TRUE(v.at("inner").at("flag").asBool());
    EXPECT_DOUBLE_EQ(v.at("inner").numberOr("x", 0.0), 0.5);
}

TEST(Json, LineCommentsAreSkipped)
{
    auto v = JsonValue::parse(
        "// leading comment\n"
        "{ \"a\": 1, // trailing comment\n"
        "  \"b\": 2 }\n");
    EXPECT_DOUBLE_EQ(v.at("a").asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(v.at("b").asNumber(), 2.0);
}

TEST(Json, DefaultsApplyWhenMembersAbsent)
{
    auto v = JsonValue::parse(R"({"present": 7})");
    EXPECT_DOUBLE_EQ(v.numberOr("present", 1.0), 7.0);
    EXPECT_DOUBLE_EQ(v.numberOr("absent", 1.0), 1.0);
    EXPECT_EQ(v.stringOr("absent", "d"), "d");
    EXPECT_TRUE(v.boolOr("absent", true));
}

TEST(Json, MemberNamesPreserveOrder)
{
    auto v = JsonValue::parse(R"({"z": 1, "a": 2, "m": 3})");
    auto names = v.memberNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "z");
    EXPECT_EQ(names[1], "a");
    EXPECT_EQ(names[2], "m");
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(JsonValue::parse("[]").asArray().empty());
    EXPECT_TRUE(JsonValue::parse("{}").isObject());
}

TEST(JsonDeath, ReportsPositionOnErrors)
{
    EXPECT_EXIT(JsonValue::parse("{\"a\": }"),
                ::testing::ExitedWithCode(1), "line 1");
    EXPECT_EXIT(JsonValue::parse("{\"a\": 1,\n\"a\": 2}"),
                ::testing::ExitedWithCode(1), "duplicate member");
    EXPECT_EXIT(JsonValue::parse("[1, 2"),
                ::testing::ExitedWithCode(1), "unexpected end");
    EXPECT_EXIT(JsonValue::parse("{} extra"),
                ::testing::ExitedWithCode(1), "trailing");
}

TEST(JsonDeath, TypeMismatchesAreFatal)
{
    auto v = JsonValue::parse(R"({"s": "x"})");
    EXPECT_EXIT(v.at("s").asNumber(), ::testing::ExitedWithCode(1),
                "expected a number");
    EXPECT_EXIT(v.at("missing"), ::testing::ExitedWithCode(1),
                "missing required member");
    EXPECT_EXIT(JsonValue::parse("3").at("x"),
                ::testing::ExitedWithCode(1), "expected an object");
}

TEST(JsonDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(JsonValue::parseFile("/no/such/file.json"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(JsonWriter, BuildersDumpAndReparse)
{
    JsonValue doc = JsonValue::makeObject();
    doc.set("name", JsonValue::makeString("line \"1\"\n\ttab"));
    doc.set("flag", JsonValue::makeBool(true));
    doc.set("nothing", JsonValue());
    JsonValue list = JsonValue::makeArray();
    list.append(JsonValue::makeNumber(1.0));
    list.append(JsonValue::makeNumber(-2.5e-19));
    doc.set("list", std::move(list));
    doc.set("flag", JsonValue::makeBool(false));  // overwrite in place

    JsonValue back = JsonValue::parse(doc.dump());
    EXPECT_EQ(back.at("name").asString(), "line \"1\"\n\ttab");
    EXPECT_FALSE(back.at("flag").asBool());
    EXPECT_TRUE(back.at("nothing").isNull());
    EXPECT_EQ(back.at("list").asArray()[1].asNumber(), -2.5e-19);
    // Member order is preserved, so dumps are byte-stable.
    EXPECT_EQ(doc.dump(), back.dump());
    EXPECT_EQ(doc.dump(-1), back.dump(-1));
    EXPECT_EQ(doc.dump(-1),
              "{\"name\":\"line \\\"1\\\"\\n\\ttab\",\"flag\":false,"
              "\"nothing\":null,\"list\":[1,-2.5e-19]}");
}

TEST(JsonWriter, FormatNumberRoundTripsExactly)
{
    const double values[] = {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0,
                             6.02214076e23, 5e-324, -1.7976931348623157e308,
                             2.0e-19, 146.0};
    for (double v : values) {
        std::string text = JsonValue::formatNumber(v);
        EXPECT_EQ(JsonValue::parse(text).asNumber(), v) << text;
    }
    EXPECT_EQ(JsonValue::formatNumber(
                  std::numeric_limits<double>::infinity()),
              "Infinity");
    EXPECT_EQ(JsonValue::formatNumber(
                  -std::numeric_limits<double>::infinity()),
              "-Infinity");
    EXPECT_EQ(JsonValue::formatNumber(
                  std::numeric_limits<double>::quiet_NaN()),
              "NaN");
}

TEST(JsonWriter, TryParseReportsErrorsWithoutExiting)
{
    JsonValue out;
    EXPECT_TRUE(JsonValue::tryParse("{\"a\": [1, Infinity]}", out));
    EXPECT_EQ(out.at("a").asArray()[0].asNumber(), 1.0);
    EXPECT_FALSE(JsonValue::tryParse("{\"a\" 1}", out));  // balanced braces
    EXPECT_FALSE(JsonValue::tryParse("{\"a\": 1", out));  // truncated
    EXPECT_FALSE(JsonValue::tryParse("{} trailing", out));
    EXPECT_FALSE(JsonValue::tryParse("{\"a\": tru", out));
    EXPECT_FALSE(JsonValue::tryParse("", out));
}

TEST(JsonWriterDeath, BuilderMisuseIsFatal)
{
    JsonValue array = JsonValue::makeArray();
    EXPECT_EXIT(array.set("k", JsonValue()),
                ::testing::ExitedWithCode(1), "set on non-object");
    JsonValue object = JsonValue::makeObject();
    EXPECT_EXIT(object.append(JsonValue()),
                ::testing::ExitedWithCode(1), "append on non-array");
}

} // namespace
} // namespace nvmexp
