/**
 * @file
 * ThreadSanitizer stress suite for the ThreadPool: saturation,
 * shutdown/destruction ordering, and submit-during-shutdown
 * semantics. These tests are written to maximize interleavings (many
 * small tasks, construct/destroy churn, deliberate races between
 * submit and the destructor), so the TSan CI leg exercises every
 * lock-ordering path the sweep engine relies on. They also pin the
 * pool's drain guarantees as plain functional assertions, so a future
 * refactor that drops tasks on shutdown fails loudly without TSan.
 */

#include "util/thread_pool.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "util/logging.hh"

namespace nvmexp {
namespace {

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(ThreadPoolStress, SaturationManySmallTasks)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    const int tasks = 20000;
    for (int i = 0; i < tasks; ++i)
        ASSERT_TRUE(pool.submit([&count] { ++count; }));
    pool.wait();
    EXPECT_EQ(count.load(), tasks);
}

TEST(ThreadPoolStress, RepeatedWaitSubmitCycles)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    for (int round = 0; round < 200; ++round) {
        for (int i = 0; i < 64; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (round + 1) * 64);
    }
}

TEST(ThreadPoolStress, ParallelForSlotWritesAreVisibleAfterReturn)
{
    ThreadPool pool(8);
    const std::size_t n = 50000;
    std::vector<int> slots(n, 0);
    for (int round = 0; round < 5; ++round) {
        parallelFor(pool, n, [&](std::size_t i) {
            slots[i] += (int)(i % 7) + 1;
        });
    }
    long long sum = std::accumulate(slots.begin(), slots.end(), 0LL);
    long long expect = 0;
    for (std::size_t i = 0; i < n; ++i)
        expect += 5 * ((long long)(i % 7) + 1);
    EXPECT_EQ(sum, expect);
}

// Destruction drains: every task enqueued before the destructor runs,
// even with no intervening wait().
TEST(ThreadPoolStress, DestructorDrainsPendingQueue)
{
    std::atomic<int> count{0};
    const int tasks = 500;
    {
        ThreadPool pool(4);
        for (int i = 0; i < tasks; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must run the backlog.
    }
    EXPECT_EQ(count.load(), tasks);
}

// Pinned regression for shutdown ordering: a running task that
// submits follow-up work during the destructor's drain must still get
// that work executed (the submitting worker cannot have exited), even
// when every other worker has already seen an empty queue and left.
TEST(ThreadPoolStress, SubmitFromTaskDuringShutdownStillRuns)
{
    for (int round = 0; round < 20; ++round) {
        std::atomic<bool> followUpRan{false};
        std::atomic<bool> destructing{false};
        {
            ThreadPool pool(4);
            pool.submit([&] {
                // Park until the main thread is about to destroy the
                // pool, so the nested submit races the drain.
                while (!destructing.load())
                    std::this_thread::yield();
                sleepMs(1);
                ASSERT_TRUE(pool.submit(
                    [&followUpRan] { followUpRan = true; }));
            });
            destructing = true;
        }
        EXPECT_TRUE(followUpRan.load()) << "round " << round;
    }
}

// Pinned regression for the outside-submit hole: once shutdown has
// begun, a non-worker thread's submit is either accepted (it won the
// race, so the drain runs it) or refused with `false` — it is never
// accepted and then silently dropped.
TEST(ThreadPoolStress, OutsideSubmitDuringShutdownAcceptedOrRefused)
{
    setQuiet(true);  // the refusal path warns by design
    for (int round = 0; round < 50; ++round) {
        std::atomic<bool> ran{false};
        std::atomic<bool> go{false};
        bool accepted = false;
        std::thread outsider;
        {
            ThreadPool pool(2);
            outsider = std::thread([&] {
                while (!go.load())
                    std::this_thread::yield();
                accepted = pool.submit([&ran] { ran = true; });
            });
            go = true;
            // Destructor races the outsider's submit.
        }
        outsider.join();
        EXPECT_EQ(ran.load(), accepted) << "round " << round;
    }
    setQuiet(false);
}

TEST(ThreadPoolStress, ConstructDestroyChurn)
{
    std::atomic<int> count{0};
    for (int round = 0; round < 100; ++round) {
        ThreadPool pool(4);
        for (int i = 0; i < 8; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 100 * 8);
}

TEST(ThreadPoolStress, ImmediateDestructionNoTasks)
{
    for (int round = 0; round < 200; ++round)
        ThreadPool pool(4);
}

// parallelFor claims iterations dynamically; uneven task costs at
// full saturation must neither lose nor duplicate iterations.
TEST(ThreadPoolStress, ParallelForUnevenCosts)
{
    ThreadPool pool(8);
    const std::size_t n = 256;
    std::vector<std::atomic<int>> visits(n);
    parallelFor(pool, n, [&](std::size_t i) {
        if (i % 17 == 0)
            sleepMs(1);
        ++visits[i];
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "slot " << i;
}

} // namespace
} // namespace nvmexp
