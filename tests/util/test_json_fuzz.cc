/**
 * @file
 * Randomized property tier for util/json: round-trip stability of
 * arbitrary generated documents and crash-free rejection of corrupted
 * input. Runs under the CI ASan/UBSan leg, so any parser over-read or
 * UB on garbage input fails loudly.
 *
 * All randomness flows from the project Rng with fixed seeds —
 * failures reproduce exactly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "../support/golden_compare.hh"
#include "util/json.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

/** Random scalar: strings with escapes, numbers across scales
 *  (including Infinity/NaN literals the writer emits), bools, null. */
JsonValue
randomScalar(Rng &rng)
{
    switch (rng.range(6)) {
      case 0: {
        static const char alphabet[] =
            "abcXYZ019 \t\n\"\\/{}[],:.\x01\x7f";
        std::string s;
        std::size_t len = rng.range(12);
        for (std::size_t i = 0; i < len; ++i)
            s += alphabet[rng.range(sizeof alphabet - 1)];
        return JsonValue::makeString(s);
      }
      case 1: {
        // Exact-round-trip doubles across magnitudes and signs.
        double mag = std::pow(10.0, (double)rng.range(600) - 300.0);
        double v = (rng.uniform() * 2.0 - 1.0) * mag;
        return JsonValue::makeNumber(v);
      }
      case 2:
        return JsonValue::makeNumber((double)rng() -
                                     9.22e18);  // huge integers
      case 3: {
        const double specials[] = {
            0.0, -0.0, std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::quiet_NaN(),
            std::numeric_limits<double>::denorm_min(),
            std::numeric_limits<double>::max(),
        };
        return JsonValue::makeNumber(specials[rng.range(7)]);
      }
      case 4:
        return JsonValue::makeBool(rng.bernoulli(0.5));
      default:
        return JsonValue();  // null
    }
}

JsonValue
randomDocument(Rng &rng, int depth)
{
    if (depth <= 0 || rng.bernoulli(0.3))
        return randomScalar(rng);
    if (rng.bernoulli(0.5)) {
        JsonValue array = JsonValue::makeArray();
        std::size_t n = rng.range(5);
        for (std::size_t i = 0; i < n; ++i)
            array.append(randomDocument(rng, depth - 1));
        return array;
    }
    JsonValue object = JsonValue::makeObject();
    std::size_t n = rng.range(5);
    for (std::size_t i = 0; i < n; ++i) {
        // Built without operator+ to dodge GCC 12's -Wrestrict false
        // positive (PR105651) on inlined string concatenation.
        std::string key = "k";
        key += std::to_string(rng.range(8));
        object.set(key, randomDocument(rng, depth - 1));
    }
    return object;
}

TEST(JsonFuzz, RandomDocumentsRoundTripExactly)
{
    Rng rng(0xF022);
    for (int round = 0; round < 200; ++round) {
        SCOPED_TRACE("round " + std::to_string(round));
        JsonValue doc = randomDocument(rng, 4);
        // Pretty, compact, and re-dumped forms must all reparse to a
        // structurally identical value (relTol 0: numbers must match
        // bit-for-bit, NaN==NaN included).
        for (int indent : {-1, 0, 2}) {
            std::string text = doc.dump(indent);
            JsonValue reparsed;
            ASSERT_TRUE(JsonValue::tryParse(text, reparsed)) << text;
            std::vector<std::string> diffs;
            EXPECT_TRUE(testsupport::jsonNear(doc, reparsed, 0.0,
                                              diffs))
                << text << (diffs.empty() ? "" : "\n" + diffs[0]);
            // Serialize -> parse -> serialize is byte-stable.
            EXPECT_EQ(reparsed.dump(indent), text);
        }
    }
}

TEST(JsonFuzz, TruncatedDocumentsAreRejectedWithoutCrashing)
{
    Rng rng(0x7239);
    int rejected = 0;
    for (int round = 0; round < 50; ++round) {
        JsonValue object = JsonValue::makeObject();
        object.set("payload", randomDocument(rng, 3));
        std::string text = object.dump(-1);
        // Every strict prefix of an object document is incomplete.
        for (std::size_t len : {std::size_t{0}, text.size() / 4,
                                text.size() / 2, text.size() - 1}) {
            JsonValue out;
            EXPECT_FALSE(JsonValue::tryParse(text.substr(0, len), out))
                << "prefix of " << text;
            ++rejected;
        }
    }
    EXPECT_EQ(rejected, 200);
}

TEST(JsonFuzz, MutatedDocumentsNeverCrashTheParser)
{
    Rng rng(0xBAD5EED);
    for (int round = 0; round < 300; ++round) {
        JsonValue doc = randomDocument(rng, 3);
        std::string text = doc.dump((int)rng.range(3) - 1);
        // Flip, delete, or insert a handful of bytes.
        std::size_t edits = 1 + rng.range(4);
        for (std::size_t e = 0; e < edits && !text.empty(); ++e) {
            std::size_t pos = rng.range(text.size());
            switch (rng.range(3)) {
              case 0:
                text[pos] = (char)rng.range(256);
                break;
              case 1:
                text.erase(pos, 1);
                break;
              default:
                text.insert(pos, 1, (char)rng.range(256));
                break;
            }
        }
        JsonValue out;
        bool ok = JsonValue::tryParse(text, out);
        if (ok) {
            // Whatever survived mutation must itself round-trip.
            JsonValue again;
            EXPECT_TRUE(JsonValue::tryParse(out.dump(-1), again));
        }
    }
}

TEST(JsonFuzz, PureGarbageIsRejectedWithoutCrashing)
{
    Rng rng(0x6A2BA6E);
    for (int round = 0; round < 300; ++round) {
        std::string garbage;
        std::size_t len = rng.range(64);
        for (std::size_t i = 0; i < len; ++i)
            garbage += (char)rng.range(256);
        JsonValue out;
        // Must not crash; random bytes essentially never form valid
        // JSON, but acceptance is not itself a bug — re-dump if so.
        if (JsonValue::tryParse(garbage, out))
            (void)out.dump(-1);
    }
}

TEST(JsonFuzz, DeeplyNestedInputDoesNotOverflow)
{
    // 4k-deep arrays/objects: the parser must either parse or reject
    // them cleanly (no stack smash under ASan).
    std::string deepArray(4096, '[');
    deepArray += std::string(4096, ']');
    JsonValue out;
    bool ok = JsonValue::tryParse(deepArray, out);
    std::string unterminated(8192, '{');
    EXPECT_FALSE(JsonValue::tryParse(unterminated, out));
    (void)ok;
}

} // namespace
} // namespace nvmexp
