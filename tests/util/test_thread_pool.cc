#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <vector>

#include "util/thread_pool.hh"

namespace nvmexp {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { count.fetch_add(1); });
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ResolveJobs)
{
    EXPECT_EQ(ThreadPool::resolveJobs(3), 3);
    EXPECT_EQ(ThreadPool::resolveJobs(1), 1);
    EXPECT_GE(ThreadPool::resolveJobs(0), 1);
    EXPECT_GE(ThreadPool::resolveJobs(-1), 1);
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, JobsInRangeBoundsUserInput)
{
    // Shared validator behind both the CLI --jobs flag and the config
    // front-end's "jobs" key: [0, kMaxThreads], nothing else.
    EXPECT_TRUE(ThreadPool::jobsInRange(0.0));
    EXPECT_TRUE(ThreadPool::jobsInRange(1.0));
    EXPECT_TRUE(ThreadPool::jobsInRange((double)ThreadPool::kMaxThreads));
    EXPECT_FALSE(ThreadPool::jobsInRange(-1.0));
    EXPECT_FALSE(
        ThreadPool::jobsInRange((double)ThreadPool::kMaxThreads + 1.0));
    EXPECT_FALSE(ThreadPool::jobsInRange(1e18));
    EXPECT_FALSE(ThreadPool::jobsInRange(-1e18));
    EXPECT_FALSE(ThreadPool::jobsInRange(
        std::numeric_limits<double>::quiet_NaN()));
    EXPECT_FALSE(ThreadPool::jobsInRange(
        std::numeric_limits<double>::infinity()));
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    for (int jobs : {1, 2, 8}) {
        std::vector<std::atomic<int>> visits(257);
        parallelFor(visits.size(), jobs, [&](std::size_t i) {
            visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i].load(), 1) << "jobs=" << jobs
                                           << " i=" << i;
    }
}

TEST(ParallelFor, HandlesEmptyAndSingleRanges)
{
    std::atomic<int> count{0};
    parallelFor(0, 8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 0);
    parallelFor(1, 8, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1);
}

} // namespace
} // namespace nvmexp
