#include <gtest/gtest.h>

#include "util/logging.hh"

namespace nvmexp {
namespace {

TEST(Logging, FormatAllConcatenatesArguments)
{
    EXPECT_EQ(detail::formatAll("a", 1, "-", 2.5), "a1-2.5");
    EXPECT_EQ(detail::formatAll(), "");
    EXPECT_EQ(detail::formatAll(42), "42");
}

TEST(Logging, QuietFlagRoundTrips)
{
    bool initial = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    setQuiet(false);
    EXPECT_FALSE(isQuiet());
    setQuiet(initial);
}

TEST(Logging, InformAndWarnDoNotTerminate)
{
    setQuiet(true);
    inform("informational ", 1);
    warn("warning ", 2);
    setQuiet(false);
    SUCCEED();
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("boom"), ::testing::ExitedWithCode(1), "boom");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("bug ", 7), "bug 7");
}

TEST(LoggingDeath, FatalFormatsAllArguments)
{
    EXPECT_EXIT(fatal("x=", 3, " y=", 4.5),
                ::testing::ExitedWithCode(1), "x=3 y=4.5");
}

} // namespace
} // namespace nvmexp
