#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hh"

namespace nvmexp {
namespace {

TEST(AsciiPlot, RendersTitleAxesAndLegend)
{
    AsciiPlot plot("myplot", "xlab", "ylab", 40, 10);
    plot.addSeries("s1");
    plot.addPoint("s1", 1.0, 2.0);
    plot.addPoint("s1", 3.0, 4.0);
    std::ostringstream os;
    plot.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("myplot"), std::string::npos);
    EXPECT_NE(out.find("xlab"), std::string::npos);
    EXPECT_NE(out.find("ylab"), std::string::npos);
    EXPECT_NE(out.find("s1"), std::string::npos);
}

TEST(AsciiPlot, PlotsGlyphForEachSeries)
{
    AsciiPlot plot("p", "x", "y", 30, 8);
    plot.addSeries("a", 'A');
    plot.addSeries("b", 'B');
    plot.addPoint("a", 0.0, 0.0);
    plot.addPoint("b", 1.0, 1.0);
    std::ostringstream os;
    plot.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find('A'), std::string::npos);
    EXPECT_NE(out.find('B'), std::string::npos);
}

TEST(AsciiPlot, LogScaleSkipsNonPositivePoints)
{
    AsciiPlot plot("p", "x", "y", 30, 8);
    plot.setXScale(AxisScale::Log10);
    plot.setYScale(AxisScale::Log10);
    plot.addSeries("s", 'S');
    plot.addPoint("s", -1.0, 5.0);  // dropped
    plot.addPoint("s", 0.0, 5.0);   // dropped
    plot.addPoint("s", 10.0, 100.0);
    std::ostringstream os;
    plot.print(os);
    // Exactly one 'S' glyph should appear in the grid.
    std::string out = os.str();
    std::size_t glyphs = 0;
    bool inLegend = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
        if (out.compare(i, 7, "legend:") == 0)
            inLegend = true;
        if (!inLegend && out[i] == 'S')
            ++glyphs;
    }
    EXPECT_EQ(glyphs, 1u);
}

TEST(AsciiPlot, FixedRangesClampPoints)
{
    AsciiPlot plot("p", "x", "y", 30, 8);
    plot.setXRange(0.0, 1.0);
    plot.setYRange(0.0, 1.0);
    plot.addSeries("s", 'S');
    plot.addPoint("s", 100.0, 100.0);  // clamps to the corner
    std::ostringstream os;
    plot.print(os);
    EXPECT_NE(os.str().find('S'), std::string::npos);
}

TEST(AsciiPlot, EmptyPlotStillRenders)
{
    AsciiPlot plot("empty", "x", "y");
    plot.addSeries("none");
    std::ostringstream os;
    plot.print(os);
    EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(AsciiPlotDeath, UnknownSeriesIsFatal)
{
    AsciiPlot plot("p", "x", "y");
    EXPECT_EXIT(plot.addPoint("nope", 1.0, 1.0),
                ::testing::ExitedWithCode(1), "unknown series");
}

TEST(AsciiPlotDeath, BadRangeIsFatal)
{
    AsciiPlot plot("p", "x", "y");
    EXPECT_EXIT(plot.setXRange(1.0, 1.0),
                ::testing::ExitedWithCode(1), "range");
}

} // namespace
} // namespace nvmexp
