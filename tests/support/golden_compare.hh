/**
 * @file
 * Golden-file comparison helper: structural diff of two JSON
 * documents with a configurable numeric tolerance.
 *
 * relTol = 0 demands bitwise-identical numbers (the default for the
 * golden regression tier — the store serializes doubles exactly, so
 * any drift is a real behavior change); a positive relTol allows the
 * relative slack a deliberate numeric refactor may need while it
 * updates the golden file.
 */

#ifndef NVMEXP_TESTS_SUPPORT_GOLDEN_COMPARE_HH
#define NVMEXP_TESTS_SUPPORT_GOLDEN_COMPARE_HH

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/json.hh"

namespace nvmexp {
namespace testsupport {

inline bool
numbersNear(double expected, double actual, double relTol)
{
    if (expected == actual)  // covers matching infinities
        return true;
    if (std::isnan(expected) && std::isnan(actual))
        return true;
    if (relTol <= 0.0)
        return false;
    double scale = std::max(std::fabs(expected), std::fabs(actual));
    return std::fabs(expected - actual) <= relTol * scale;
}

/**
 * Recursively compare `actual` against `expected`; every mismatch is
 * appended to `diffs` as "<path>: <detail>" (capped so a wholesale
 * regression stays readable). @return true when no differences.
 */
inline bool
jsonNear(const JsonValue &expected, const JsonValue &actual,
         double relTol, std::vector<std::string> &diffs,
         const std::string &path = "$")
{
    constexpr std::size_t kMaxDiffs = 25;
    if (diffs.size() >= kMaxDiffs)
        return false;
    if (expected.kind() != actual.kind()) {
        diffs.push_back(path + ": kind mismatch (" +
                        expected.dump(-1).substr(0, 40) + " vs " +
                        actual.dump(-1).substr(0, 40) + ")");
        return false;
    }
    bool same = true;
    switch (expected.kind()) {
      case JsonValue::Kind::Null:
        break;
      case JsonValue::Kind::Bool:
        if (expected.asBool() != actual.asBool()) {
            diffs.push_back(path + ": bool mismatch");
            same = false;
        }
        break;
      case JsonValue::Kind::String:
        if (expected.asString() != actual.asString()) {
            diffs.push_back(path + ": '" + expected.asString() +
                            "' vs '" + actual.asString() + "'");
            same = false;
        }
        break;
      case JsonValue::Kind::Number:
        if (!numbersNear(expected.asNumber(), actual.asNumber(),
                         relTol)) {
            diffs.push_back(
                path + ": " + JsonValue::formatNumber(expected.asNumber()) +
                " vs " + JsonValue::formatNumber(actual.asNumber()));
            same = false;
        }
        break;
      case JsonValue::Kind::Array: {
        const auto &e = expected.asArray();
        const auto &a = actual.asArray();
        if (e.size() != a.size()) {
            diffs.push_back(path + ": array size " +
                            std::to_string(e.size()) + " vs " +
                            std::to_string(a.size()));
            return false;
        }
        for (std::size_t i = 0; i < e.size(); ++i) {
            same &= jsonNear(e[i], a[i], relTol, diffs,
                             path + "[" + std::to_string(i) + "]");
        }
        break;
      }
      case JsonValue::Kind::Object: {
        std::set<std::string> names(expected.memberNames().begin(),
                                    expected.memberNames().end());
        std::set<std::string> actualNames(actual.memberNames().begin(),
                                          actual.memberNames().end());
        if (names != actualNames) {
            diffs.push_back(path + ": member set differs");
            return false;
        }
        for (const auto &name : names) {
            same &= jsonNear(expected.at(name), actual.at(name), relTol,
                             diffs, path + "." + name);
        }
        break;
      }
    }
    return same;
}

} // namespace testsupport
} // namespace nvmexp

#endif // NVMEXP_TESTS_SUPPORT_GOLDEN_COMPARE_HH
