/**
 * @file
 * Shared test fixtures: the sweep configurations and JSON experiment
 * documents that several suites across tests/core/ and
 * tests/integration/ previously each built their own copy of.
 *
 * referenceSweep() is load-bearing: tests/data/golden_sweep.json was
 * generated from it, so changing it requires an NVMEXP_REGOLD run.
 */

#ifndef NVMEXP_TESTS_SUPPORT_FIXTURES_HH
#define NVMEXP_TESTS_SUPPORT_FIXTURES_HH

#include <gtest/gtest.h>

#include <string>

#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace testsupport {

/** Base fixture: silence informational warnings for the test body. */
class QuietTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

/** Two eNVM cells x two capacities x two targets x two traffics: the
 *  small-but-full cross product the core sweep suites share. */
inline SweepConfig
smallSweep()
{
    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = {catalog.optimistic(CellTech::STT),
                   catalog.optimistic(CellTech::RRAM)};
    sweep.capacitiesBytes = {2.0 * 1024 * 1024, 8.0 * 1024 * 1024};
    sweep.targets = {OptTarget::ReadEDP, OptTarget::Area};
    sweep.traffics = {
        TrafficPattern::fromByteRates("light", 1e9, 1e6, 512),
        TrafficPattern::fromByteRates("heavy", 10e9, 1e8, 512),
    };
    return sweep;
}

/** Wider 4-cell x 2-capacity x 2-target x 3-traffic cross product:
 *  enough items that parallel sharding actually interleaves. */
inline SweepConfig
wideSweep()
{
    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = {catalog.optimistic(CellTech::STT),
                   catalog.pessimistic(CellTech::STT),
                   catalog.optimistic(CellTech::RRAM),
                   CellCatalog::sram16()};
    sweep.capacitiesBytes = {2.0 * 1024 * 1024, 8.0 * 1024 * 1024};
    sweep.targets = {OptTarget::ReadEDP, OptTarget::Leakage};
    sweep.traffics = {
        TrafficPattern::fromByteRates("light", 1e9, 1e6, 512),
        TrafficPattern::fromByteRates("heavy", 10e9, 1e8, 512),
        TrafficPattern::fromByteRates("writeheavy", 2e9, 2e9, 512),
    };
    return sweep;
}

/** The golden-file reference sweep: 3 cells x 2 capacities x 2
 *  targets x 2 traffics = 24 evaluation rows covering SRAM + two eNVM
 *  flavors, both bandwidth regimes, and a finite-lifetime cell. */
inline SweepConfig
referenceSweep()
{
    CellCatalog catalog;
    SweepConfig config;
    config.cells = {CellCatalog::sram16(),
                    catalog.optimistic(CellTech::STT),
                    catalog.pessimistic(CellTech::RRAM)};
    config.capacitiesBytes = {1.0 * 1024 * 1024, 4.0 * 1024 * 1024};
    config.targets = {OptTarget::ReadEDP, OptTarget::WriteLatency};
    config.traffics = {
        TrafficPattern::fromByteRates("dnn-like", 2e9, 2e7, 512),
        TrafficPattern::fromCounts("bursty", 5e6, 5e5, 0.25),
    };
    config.jobs = 4;
    return config;
}

/** The full-schema JSON experiment document the config suites load. */
inline const char *
basicConfigJson()
{
    return R"({
        "experiment": "unit-test-sweep",
        "cells": ["SRAM", "RRAM-Opt"],
        "capacities_mib": [2, 8],
        "targets": ["ReadEDP", "Area"],
        "word_bits": 512,
        "traffic": [
            {"name": "a", "read_bytes_per_sec": 1e9,
             "write_bytes_per_sec": 1e7},
            {"name": "b", "reads": 1e6, "writes": 1e5, "exec_time": 0.5}
        ],
        "constraints": {"max_latency_load": 1.0,
                        "min_lifetime_years": 1},
        "output_csv": ""
    })";
}

/** Minimal single-cell JSON document with a custom body spliced in
 *  (used by config suites probing one key at a time). */
inline std::string
minimalConfigJson(const std::string &extraKeys)
{
    return R"({
        "cells": ["SRAM"],
        "capacities_mib": [2],
        "traffic": [{"name": "t", "reads": 1}])" +
        (extraKeys.empty() ? std::string() : ", " + extraKeys) + "}";
}

} // namespace testsupport
} // namespace nvmexp

#endif // NVMEXP_TESTS_SUPPORT_FIXTURES_HH
