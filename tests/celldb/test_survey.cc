#include <gtest/gtest.h>

#include "celldb/survey.hh"

namespace nvmexp {
namespace {

class SurveyPerTechTest : public ::testing::TestWithParam<CellTech>
{
  protected:
    SurveyDatabase db_;
};

TEST_P(SurveyPerTechTest, HasEntriesWithAtLeastOneArea)
{
    auto entries = db_.entriesFor(GetParam());
    ASSERT_FALSE(entries.empty());
    bool anyArea = false;
    for (const auto &entry : entries) {
        EXPECT_EQ(entry.tech, GetParam());
        EXPECT_FALSE(entry.label.empty());
        EXPECT_GE(entry.year, 2016);
        EXPECT_LE(entry.year, 2020);
        anyArea = anyArea || entry.areaF2.has_value();
    }
    EXPECT_TRUE(anyArea);
}

TEST_P(SurveyPerTechTest, ReportedValuesArePhysical)
{
    for (const auto &entry : db_.entriesFor(GetParam())) {
        if (entry.areaF2) {
            EXPECT_GT(*entry.areaF2, 0.0);
        }
        if (entry.writePulseNs) {
            EXPECT_GT(*entry.writePulseNs, 0.0);
        }
        if (entry.endurance) {
            EXPECT_GE(*entry.endurance, 1e3);
        }
        if (entry.ronKohm && entry.roffKohm) {
            EXPECT_GE(*entry.roffKohm, *entry.ronKohm);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTechs, SurveyPerTechTest,
    ::testing::Values(CellTech::PCM, CellTech::STT, CellTech::SOT,
                      CellTech::RRAM, CellTech::CTT, CellTech::FeRAM,
                      CellTech::FeFET),
    [](const ::testing::TestParamInfo<CellTech> &info) {
        return techName(info.param);
    });

TEST(Survey, ParamRangeMatchesTableOne)
{
    SurveyDatabase db;
    auto sttArea = db.paramRange(CellTech::STT, &SurveyEntry::areaF2);
    ASSERT_TRUE(sttArea.has_value());
    EXPECT_DOUBLE_EQ(sttArea->first, 14.0);
    EXPECT_DOUBLE_EQ(sttArea->second, 75.0);

    auto pcmPulse =
        db.paramRange(CellTech::PCM, &SurveyEntry::writePulseNs);
    ASSERT_TRUE(pcmPulse.has_value());
    EXPECT_DOUBLE_EQ(pcmPulse->first, 100.0);
    EXPECT_DOUBLE_EQ(pcmPulse->second, 30000.0);

    auto rramEnd = db.paramRange(CellTech::RRAM, &SurveyEntry::endurance);
    ASSERT_TRUE(rramEnd.has_value());
    EXPECT_DOUBLE_EQ(rramEnd->first, 1e3);
    EXPECT_DOUBLE_EQ(rramEnd->second, 1e8);
}

TEST(Survey, ParamRangeEmptyWhenUnreported)
{
    SurveyDatabase db;
    // No SOT entry reports read voltage... actually one does; use a
    // field genuinely absent: array energy for CTT.
    auto range = db.paramRange(CellTech::CTT,
                               &SurveyEntry::arrayReadEnergyPjPerBit);
    EXPECT_FALSE(range.has_value());
}

TEST(Survey, AddEntryExtendsDatabase)
{
    SurveyDatabase db;
    std::size_t before = db.countFor(CellTech::FeFET);
    SurveyEntry entry;
    entry.label = "test-entry";
    entry.tech = CellTech::FeFET;
    entry.areaF2 = 9.0;
    db.addEntry(entry);
    EXPECT_EQ(db.countFor(CellTech::FeFET), before + 1);
}

TEST(SurveyDeath, AddEntryValidates)
{
    SurveyDatabase db;
    SurveyEntry noLabel;
    EXPECT_EXIT(db.addEntry(noLabel), ::testing::ExitedWithCode(1),
                "label");
    SurveyEntry badArea;
    badArea.label = "x";
    badArea.areaF2 = -1.0;
    EXPECT_EXIT(db.addEntry(badArea), ::testing::ExitedWithCode(1),
                "area");
}

TEST(Survey, DensityUsesSlcFootprint)
{
    SurveyEntry entry;
    entry.label = "d";
    entry.areaF2 = 25.0;
    entry.mlcDemonstrated = true;
    ASSERT_TRUE(entry.densityBitsPerF2().has_value());
    EXPECT_DOUBLE_EQ(*entry.densityBitsPerF2(), 1.0 / 25.0);
    entry.areaF2.reset();
    EXPECT_FALSE(entry.densityBitsPerF2().has_value());
}

} // namespace
} // namespace nvmexp
