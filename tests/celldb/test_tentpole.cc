#include <gtest/gtest.h>

#include "celldb/tentpole.hh"

namespace nvmexp {
namespace {

class TentpolePerTechTest : public ::testing::TestWithParam<CellTech>
{
  protected:
    CellCatalog catalog_;
};

TEST_P(TentpolePerTechTest, OptimisticIsDenserThanPessimistic)
{
    MemCell opt = catalog_.optimistic(GetParam());
    MemCell pess = catalog_.pessimistic(GetParam());
    EXPECT_LT(opt.areaF2, pess.areaF2);
    EXPECT_GT(opt.densityBitsPerF2(), pess.densityBitsPerF2());
}

TEST_P(TentpolePerTechTest, OptimisticFillInsAreAtLeastAsGood)
{
    MemCell opt = catalog_.optimistic(GetParam());
    MemCell pess = catalog_.pessimistic(GetParam());
    // Tentpole fill-ins only guarantee ordering for parameters the
    // base publications did not fix; endurance is monotone for the
    // built-in corpus. (Retention is NOT: the density tentpole's own
    // reported retention sticks even when unflattering -- the amalgam
    // quirk Sec. III-B acknowledges.)
    EXPECT_GE(opt.endurance, pess.endurance);
}

TEST_P(TentpolePerTechTest, CellsAreFullySpecifiedAndNonVolatile)
{
    for (MemCell cell : {catalog_.optimistic(GetParam()),
                         catalog_.pessimistic(GetParam())}) {
        cell.validate();  // would fatal() on an unspecified cell
        EXPECT_TRUE(cell.nonVolatile);
        EXPECT_EQ(cell.bitsPerCell, 1);
        EXPECT_GT(cell.worstWritePulse(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEnvms, TentpolePerTechTest,
    ::testing::Values(CellTech::PCM, CellTech::STT, CellTech::SOT,
                      CellTech::RRAM, CellTech::CTT, CellTech::FeRAM,
                      CellTech::FeFET),
    [](const ::testing::TestParamInfo<CellTech> &info) {
        return techName(info.param);
    });

TEST(Tentpole, OptimisticSttMatchesPaperAmalgam)
{
    CellCatalog catalog;
    MemCell opt = catalog.optimistic(CellTech::STT);
    // Density base: the 14 F^2 compact-cell publication...
    EXPECT_DOUBLE_EQ(opt.areaF2, 14.0);
    // ...with the fastest pulse and best endurance filled in from the
    // rest of the corpus.
    EXPECT_DOUBLE_EQ(opt.setPulse, 2e-9);
    EXPECT_DOUBLE_EQ(opt.endurance, 1e15);
}

TEST(Tentpole, PessimisticSttTakesWorstFillIns)
{
    CellCatalog catalog;
    MemCell pess = catalog.pessimistic(CellTech::STT);
    EXPECT_DOUBLE_EQ(pess.areaF2, 75.0);
    EXPECT_DOUBLE_EQ(pess.setPulse, 200e-9);   // reported by the base
    EXPECT_DOUBLE_EQ(pess.endurance, 1e5);     // reported by the base
}

TEST(Tentpole, PcmWriteAsymmetry)
{
    CellCatalog catalog;
    MemCell pcm = catalog.optimistic(CellTech::PCM);
    EXPECT_LT(pcm.resetPulse, pcm.setPulse);
    EXPECT_GT(pcm.resetCurrent, pcm.setCurrent);
}

TEST(Tentpole, FeFetIsDensestOptimisticCell)
{
    CellCatalog catalog;
    MemCell fefet = catalog.optimistic(CellTech::FeFET);
    for (CellTech tech : {CellTech::PCM, CellTech::STT, CellTech::RRAM,
                          CellTech::CTT}) {
        EXPECT_LE(fefet.areaF2, catalog.optimistic(tech).areaF2)
            << techName(tech);
    }
}

TEST(Tentpole, ReferenceCellComesFromNamedEntry)
{
    CellCatalog catalog;
    MemCell ref = catalog.rramReference();
    EXPECT_EQ(ref.tech, CellTech::RRAM);
    EXPECT_EQ(ref.flavor, CellFlavor::Reference);
    EXPECT_DOUBLE_EQ(ref.areaF2, 30.0);
    EXPECT_DOUBLE_EQ(ref.setPulse, 100e-9);
    // Reference sits between the tentpoles on density.
    EXPECT_GT(ref.areaF2, catalog.optimistic(CellTech::RRAM).areaF2);
    EXPECT_LT(ref.areaF2, catalog.pessimistic(CellTech::RRAM).areaF2);
}

TEST(TentpoleDeath, UnknownReferenceLabelIsFatal)
{
    SurveyDatabase db;
    TentpoleBuilder builder(db);
    EXPECT_EXIT(builder.reference(CellTech::RRAM, "no-such-label"),
                ::testing::ExitedWithCode(1), "no survey entry");
}

TEST(TentpoleDeath, ReferenceTechMismatchIsFatal)
{
    SurveyDatabase db;
    TentpoleBuilder builder(db);
    EXPECT_EXIT(builder.reference(CellTech::PCM,
                                  "ISSCC18-RRAM-n40-256kx44"),
                ::testing::ExitedWithCode(1), "not PCM");
}

TEST(TentpoleDeath, SramHasNoTentpoles)
{
    SurveyDatabase db;
    TentpoleBuilder builder(db);
    EXPECT_EXIT(builder.optimistic(CellTech::SRAM),
                ::testing::ExitedWithCode(1), "SRAM");
}

TEST(Catalog, Sram16Baseline)
{
    MemCell sram = CellCatalog::sram16();
    EXPECT_EQ(sram.tech, CellTech::SRAM);
    EXPECT_FALSE(sram.nonVolatile);
    EXPECT_DOUBLE_EQ(sram.areaF2, 146.0);
    EXPECT_GT(sram.cellLeakage, 0.0);
    EXPECT_FALSE(sram.mlcCapable);
    sram.validate();
}

TEST(Catalog, BackGatedFeFetImprovesWriteAndEndurance)
{
    CellCatalog catalog;
    MemCell base = catalog.optimistic(CellTech::FeFET);
    MemCell bg = CellCatalog::backGatedFeFET();
    EXPECT_LT(bg.worstWritePulse(), base.worstWritePulse());
    EXPECT_GT(bg.endurance, base.endurance);
    // ...at slight density and read-energy cost.
    EXPECT_GT(bg.areaF2, base.areaF2);
    EXPECT_GT(bg.readVoltage, base.readVoltage);
}

TEST(Catalog, StudySetComposition)
{
    CellCatalog catalog;
    auto cells = catalog.studyCells();
    // SRAM + 5 techs x (opt, pess) + reference RRAM.
    EXPECT_EQ(cells.size(), 12u);
    EXPECT_EQ(cells.front().tech, CellTech::SRAM);
    int sotCount = 0, feramCount = 0;
    for (const auto &cell : cells) {
        if (cell.tech == CellTech::SOT)
            ++sotCount;
        if (cell.tech == CellTech::FeRAM)
            ++feramCount;
    }
    // SOT and FeRAM are excluded for lack of validation data.
    EXPECT_EQ(sotCount, 0);
    EXPECT_EQ(feramCount, 0);
}

} // namespace
} // namespace nvmexp
