#include <gtest/gtest.h>

#include "celldb/cell.hh"
#include "celldb/tentpole.hh"

namespace nvmexp {
namespace {

TEST(CellNames, TechNameRoundTrip)
{
    for (int t = 0; t < (int)CellTech::NumTech; ++t) {
        auto tech = (CellTech)t;
        EXPECT_EQ(techFromName(techName(tech)), tech);
    }
}

TEST(CellNamesDeath, UnknownTechIsFatal)
{
    EXPECT_EXIT(techFromName("FLUX"), ::testing::ExitedWithCode(1),
                "unknown cell technology");
}

TEST(MemCell, WriteEnergyAveragesSetAndReset)
{
    MemCell c = CellCatalog::sram16();
    c.writeVoltage = 1.0;
    c.setCurrent = 100e-6;
    c.resetCurrent = 100e-6;
    c.setPulse = 10e-9;
    c.resetPulse = 10e-9;
    // E = V*I*t = 1.0 * 1e-4 * 1e-8 = 1e-12 J
    EXPECT_NEAR(c.writeEnergyPerBit(), 1e-12, 1e-18);
}

TEST(MemCell, WorstWritePulseIsMaxOfSetAndReset)
{
    MemCell c = CellCatalog::sram16();
    c.setPulse = 5e-9;
    c.resetPulse = 20e-9;
    EXPECT_DOUBLE_EQ(c.worstWritePulse(), 20e-9);
}

TEST(MemCell, ReadCurrentsFollowOhmsLaw)
{
    MemCell c = CellCatalog::sram16();
    c.readVoltage = 0.2;
    c.resistanceOn = 10e3;
    c.resistanceOff = 100e3;
    EXPECT_NEAR(c.readCurrentOn(), 20e-6, 1e-12);
    EXPECT_NEAR(c.readCurrentOff(), 2e-6, 1e-12);
}

TEST(MemCell, DensityScalesWithBitsPerCell)
{
    CellCatalog catalog;
    MemCell slc = catalog.optimistic(CellTech::RRAM);
    MemCell mlc = slc.makeMlc();
    EXPECT_DOUBLE_EQ(mlc.densityBitsPerF2(),
                     2.0 * slc.densityBitsPerF2());
}

TEST(MemCell, MakeMlcAppliesProgramAndVerifyCosts)
{
    CellCatalog catalog;
    MemCell slc = catalog.optimistic(CellTech::RRAM);
    MemCell mlc = slc.makeMlc(2, 4);
    EXPECT_EQ(mlc.bitsPerCell, 2);
    EXPECT_DOUBLE_EQ(mlc.setPulse, 4.0 * slc.setPulse);
    EXPECT_DOUBLE_EQ(mlc.resetPulse, 4.0 * slc.resetPulse);
    EXPECT_LT(mlc.endurance, slc.endurance);
    EXPECT_NE(mlc.name.find("MLC"), std::string::npos);
}

TEST(MemCellDeath, MlcOnIncapableCellIsFatal)
{
    MemCell sram = CellCatalog::sram16();
    EXPECT_EXIT(sram.makeMlc(), ::testing::ExitedWithCode(1),
                "multi-level");
}

TEST(MemCellDeath, MlcBitRangeChecked)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::RRAM);
    EXPECT_EXIT(cell.makeMlc(1), ::testing::ExitedWithCode(1),
                "bits per cell");
    EXPECT_EXIT(cell.makeMlc(5), ::testing::ExitedWithCode(1),
                "bits per cell");
}

TEST(MemCellDeath, ValidateCatchesBadParameters)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);

    MemCell bad = cell;
    bad.areaF2 = 0.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1), "area");

    bad = cell;
    bad.resistanceOff = bad.resistanceOn / 2.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1), "Ron");

    bad = cell;
    bad.setPulse = -1.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1), "pulse");

    bad = cell;
    bad.endurance = 0.0;
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "endurance");

    bad = cell;
    bad.nonVolatile = false;  // STT claiming to be volatile
    EXPECT_EXIT(bad.validate(), ::testing::ExitedWithCode(1),
                "volatile");
}

} // namespace
} // namespace nvmexp
