#include <gtest/gtest.h>

#include "nvsim/circuits.hh"

namespace nvmexp {
namespace {

const TechNode &node22 = techNodeFor(22);

TEST(Decoder, DelayGrowsWithRowsAndLoad)
{
    double pitch = 100e-9;
    auto small = decoderModel(node22, 128, 20e-15, 0.9, pitch);
    auto tall = decoderModel(node22, 4096, 20e-15, 0.9, pitch);
    auto loaded = decoderModel(node22, 128, 500e-15, 0.9, pitch);
    EXPECT_GT(tall.delay, small.delay);
    EXPECT_GT(loaded.delay, small.delay);
    EXPECT_GT(tall.areaM2, small.areaM2);
    EXPECT_GT(tall.leakage, small.leakage);
}

TEST(DecoderDeath, RejectsDegenerateRowCount)
{
    EXPECT_EXIT(decoderModel(node22, 1, 1e-15, 0.9, 1e-7),
                ::testing::ExitedWithCode(1), "rows");
}

TEST(Decoder, SliceAreaHasLogicFloor)
{
    // At tiny pitches the decoder slice is bounded by its logic area,
    // not the pitch.
    auto tiny = decoderModel(node22, 256, 20e-15, 0.9, 1e-9);
    double f = node22.featureM();
    EXPECT_GE(tiny.areaM2, 256.0 * 1500.0 * f * f * 0.999);
}

TEST(ColumnMux, DegreeOneIsFree)
{
    auto m = columnMuxModel(node22, 1, 512, 50e-15);
    EXPECT_EQ(m.delay, 0.0);
    EXPECT_EQ(m.energy, 0.0);
}

TEST(ColumnMux, HigherDegreeCostsMore)
{
    auto m2 = columnMuxModel(node22, 2, 512, 50e-15);
    auto m8 = columnMuxModel(node22, 8, 512, 50e-15);
    EXPECT_GT(m8.delay, 0.0);
    EXPECT_GT(m8.leakage, m2.leakage);
}

TEST(SenseAmp, AreaFloorIndependentOfPitch)
{
    auto narrow = senseAmpModel(node22, 512, 10e-9);
    auto wide = senseAmpModel(node22, 512, 1500e-9);
    double f = node22.featureM();
    EXPECT_GE(narrow.areaM2, 512.0 * 2000.0 * f * f * 0.999);
    EXPECT_GT(wide.areaM2, narrow.areaM2);
}

TEST(SenseAmp, EnergyScalesWithSensedBits)
{
    auto sa256 = senseAmpModel(node22, 256, 100e-9);
    auto sa512 = senseAmpModel(node22, 512, 100e-9);
    EXPECT_NEAR(sa512.energy / sa256.energy, 2.0, 1e-9);
}

TEST(WriteDriver, WidthTracksProgrammingCurrent)
{
    auto weak = writeDriverModel(node22, 512, 1e-6, 1.5, 100e-9);
    auto strong = writeDriverModel(node22, 512, 300e-6, 1.5, 100e-9);
    EXPECT_GT(strong.areaM2, weak.areaM2 * 0.99);
    EXPECT_GT(strong.delay, weak.delay);
}

TEST(ChargePump, OnlyBoostedWritesPayEfficiency)
{
    EXPECT_DOUBLE_EQ(chargePumpEfficiency(node22, 0.8), 1.0);
    EXPECT_DOUBLE_EQ(chargePumpEfficiency(node22, node22.vdd), 1.0);
    EXPECT_DOUBLE_EQ(chargePumpEfficiency(node22, 3.5), 0.4);
}

TEST(RepeatedWire, DelayAndEnergyLinearInLength)
{
    double d1 = repeatedWireDelay(node22, 1e-3);
    double d2 = repeatedWireDelay(node22, 2e-3);
    EXPECT_NEAR(d2 / d1, 2.0, 1e-9);
    double e1 = repeatedWireEnergyPerBit(node22, 1e-3);
    double e2 = repeatedWireEnergyPerBit(node22, 2e-3);
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
    EXPECT_EQ(repeatedWireDelay(node22, 0.0), 0.0);
}

TEST(RepeatedWire, DelayPerMmInPlausibleBand)
{
    // ~50-300 ps/mm at 22 nm for repeated global wires.
    double perMm = repeatedWireDelay(node22, 1e-3);
    EXPECT_GT(perMm, 30e-12);
    EXPECT_LT(perMm, 400e-12);
}

} // namespace
} // namespace nvmexp
