#include <gtest/gtest.h>

#include "nvsim/technology.hh"

namespace nvmexp {
namespace {

TEST(TechNode, LookupReturnsExactNodes)
{
    for (int nm : {7, 10, 14, 16, 22, 28, 32, 40, 45, 65, 90, 130})
        EXPECT_EQ(techNodeFor(nm).featureNm, nm);
}

TEST(TechNode, UnknownNodeSnapsToNearest)
{
    EXPECT_EQ(techNodeFor(20).featureNm, 22);
    EXPECT_EQ(techNodeFor(55).featureNm, 45);
    EXPECT_EQ(techNodeFor(120).featureNm, 130);
}

TEST(TechNodeDeath, OutOfRangeIsFatal)
{
    EXPECT_EXIT(techNodeFor(5), ::testing::ExitedWithCode(1),
                "outside supported range");
    EXPECT_EXIT(techNodeFor(180), ::testing::ExitedWithCode(1),
                "outside supported range");
}

TEST(TechNode, ScalingTrendsAreMonotone)
{
    // Bigger nodes: slower gates, higher supply, less leaky, cheaper
    // wires per um.
    const TechNode &n22 = techNodeFor(22);
    const TechNode &n90 = techNodeFor(90);
    EXPECT_LT(n22.fo4Delay, n90.fo4Delay);
    EXPECT_LE(n22.vdd, n90.vdd);
    EXPECT_GT(n22.offCurrentPerUm, n90.offCurrentPerUm);
    EXPECT_GT(n22.wireResPerUm, n90.wireResPerUm);
}

TEST(TechNode, MinGateCapMatchesTwoFeatureWidths)
{
    const TechNode &node = techNodeFor(22);
    EXPECT_NEAR(node.minGateCap(),
                node.gateCapPerUm * 2.0 * 22e-3, 1e-20);
}

TEST(TechNode, DriveResistanceInverseInWidth)
{
    const TechNode &node = techNodeFor(22);
    double r1 = node.driveResistance(1.0);
    double r2 = node.driveResistance(2.0);
    EXPECT_NEAR(r1 / r2, 2.0, 1e-9);
    EXPECT_GT(r1, 0.0);
}

TEST(TechNodeDeath, DriveResistanceRejectsZeroWidth)
{
    EXPECT_EXIT(techNodeFor(22).driveResistance(0.0),
                ::testing::ExitedWithCode(1), "width");
}

TEST(TechNode, LeakageRolesDifferByOrders)
{
    const TechNode &node = techNodeFor(22);
    double hp = node.leakagePower(10.0, DeviceRole::HighPerformance);
    double lstp = node.leakagePower(10.0, DeviceRole::LowStandbyPower);
    EXPECT_GT(hp, 10.0 * lstp);
}

} // namespace
} // namespace nvmexp
