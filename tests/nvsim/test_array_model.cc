#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "nvsim/array_model.hh"

namespace nvmexp {
namespace {

ArrayConfig
config(double mib, int wordBits = 512, int node = 22)
{
    ArrayConfig c;
    c.capacityBytes = mib * 1024.0 * 1024.0;
    c.wordBits = wordBits;
    c.nodeNm = node;
    return c;
}

TEST(ArrayModel, OptTargetNamesRoundTrip)
{
    for (OptTarget t : allOptTargets())
        EXPECT_FALSE(optTargetName(t).empty());
    EXPECT_EQ(optTargetName(OptTarget::ReadEDP), "ReadEDP");
    EXPECT_EQ(allOptTargets().size(), 8u);
}

TEST(ArrayModel, EnumerateProducesConsistentOrganizations)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayDesigner designer(cell, config(4));
    auto results = designer.enumerate();
    ASSERT_FALSE(results.empty());
    for (const auto &r : results) {
        double bits = (double)r.org.banks * r.org.subarraysPerBank *
            r.org.subarray.rows * r.org.subarray.cols *
            cell.bitsPerCell;
        EXPECT_DOUBLE_EQ(bits, 4.0 * 1024 * 1024 * 8);
        EXPECT_EQ(r.org.subarray.cols % r.org.subarray.sensedBits, 0);
        EXPECT_GE(r.areaEfficiency, 0.35);
    }
}

TEST(ArrayModel, OptimizeIsMinimalOverEnumeration)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::RRAM);
    ArrayDesigner designer(cell, config(2));
    auto all = designer.enumerate();
    for (OptTarget target : allOptTargets()) {
        ArrayResult best = designer.optimize(target);
        for (const auto &r : all)
            EXPECT_LE(best.metric(target), r.metric(target) * (1 + 1e-12))
                << optTargetName(target);
    }
}

TEST(ArrayModel, TargetsShapeTheChosenDesign)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayDesigner designer(cell, config(8));
    auto fastest = designer.optimize(OptTarget::ReadLatency);
    auto smallest = designer.optimize(OptTarget::Area);
    EXPECT_LE(fastest.readLatency, smallest.readLatency);
    EXPECT_LE(smallest.areaM2, fastest.areaM2);
}

TEST(ArrayModel, CapacityScalesAreaAndLeakage)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::PCM);
    ArrayDesigner d2(cell, config(2));
    ArrayDesigner d16(cell, config(16));
    auto a2 = d2.optimize(OptTarget::ReadEDP);
    auto a16 = d16.optimize(OptTarget::ReadEDP);
    EXPECT_GT(a16.areaM2, 4.0 * a2.areaM2);
    EXPECT_GT(a16.leakage, 2.0 * a2.leakage);
}

TEST(ArrayModel, DensityOrderingFollowsCellArea)
{
    CellCatalog catalog;
    auto area = [&](CellTech tech) {
        ArrayDesigner designer(catalog.optimistic(tech), config(4));
        return designer.optimize(OptTarget::Area).densityMbPerMm2();
    };
    double fefet = area(CellTech::FeFET);
    double stt = area(CellTech::STT);
    double pcm = area(CellTech::PCM);
    EXPECT_GT(fefet, stt);
    EXPECT_GT(stt, pcm);
}

TEST(ArrayModel, MlcHalvesCellCountAndRaisesDensity)
{
    CellCatalog catalog;
    MemCell slc = catalog.optimistic(CellTech::RRAM);
    MemCell mlc = slc.makeMlc();
    ArrayDesigner ds(slc, config(8));
    ArrayDesigner dm(mlc, config(8));
    auto rs = ds.optimize(OptTarget::Area);
    auto rm = dm.optimize(OptTarget::Area);
    EXPECT_GT(rm.densityMbPerMm2(), 1.5 * rs.densityMbPerMm2());
}

TEST(ArrayModel, BandwidthMatchesBanksTimesWordRate)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayDesigner designer(cell, config(4));
    auto r = designer.optimize(OptTarget::ReadEDP);
    double expected = r.org.banks * (r.wordBits / 8.0) / r.readLatency;
    EXPECT_NEAR(r.readBandwidth, expected, expected * 1e-12);
}

TEST(ArrayModel, ReadEnergyPerBitDividesWordWidth)
{
    CellCatalog catalog;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT),
                           config(2));
    auto r = designer.optimize(OptTarget::ReadEDP);
    EXPECT_NEAR(r.readEnergyPerBit() * r.wordBits, r.readEnergy,
                r.readEnergy * 1e-12);
}

TEST(ArrayModel, CharacterizeAllCoversEveryCell)
{
    CellCatalog catalog;
    auto cells = catalog.studyEnvms();
    auto results = characterizeAll(cells, config(2),
                                   OptTarget::ReadEDP);
    ASSERT_EQ(results.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(results[i].cell.name, cells[i].name);
}

TEST(ArrayModelDeath, RejectsTinyCapacity)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayConfig c = config(4);
    c.capacityBytes = 512.0;
    EXPECT_EXIT(ArrayDesigner(cell, c), ::testing::ExitedWithCode(1),
                "capacity");
}

TEST(ArrayModelDeath, RejectsBadWordWidth)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayConfig c = config(4, 512);
    c.wordBits = 4;
    EXPECT_EXIT(ArrayDesigner(cell, c), ::testing::ExitedWithCode(1),
                "wordBits");
}

TEST(ArrayModelDeath, ImpossibleConstraintsAreFatalInOptimize)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    ArrayConfig c = config(2);
    c.minAreaEfficiency = 0.99;  // unattainable
    ArrayDesigner designer(cell, c);
    EXPECT_EXIT(designer.optimize(OptTarget::ReadEDP),
                ::testing::ExitedWithCode(1), "no valid array");
}

} // namespace
} // namespace nvmexp
