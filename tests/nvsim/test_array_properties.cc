/**
 * @file
 * Property-style sweeps over the whole study cell set: invariants
 * that must hold for every technology, capacity, and word width.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "celldb/tentpole.hh"
#include "nvsim/array_model.hh"

namespace nvmexp {
namespace {

struct ArrayCase
{
    std::string cellName;
    double capacityMiB;
    int wordBits;
};

std::vector<ArrayCase>
allCases()
{
    CellCatalog catalog;
    std::vector<ArrayCase> cases;
    for (const auto &cell : catalog.studyCells())
        for (double mib : {1.0, 4.0, 16.0})
            for (int wordBits : {64, 512})
                cases.push_back({cell.name, mib, wordBits});
    return cases;
}

class ArrayPropertyTest : public ::testing::TestWithParam<ArrayCase>
{
  protected:
    static MemCell
    cellByName(const std::string &name)
    {
        CellCatalog catalog;
        for (const auto &cell : catalog.studyCells())
            if (cell.name == name)
                return cell;
        ADD_FAILURE() << "unknown cell " << name;
        return CellCatalog::sram16();
    }

    ArrayResult
    build(const ArrayCase &c, OptTarget target)
    {
        MemCell cell = cellByName(c.cellName);
        ArrayConfig config;
        config.capacityBytes = c.capacityMiB * 1024.0 * 1024.0;
        config.wordBits = c.wordBits;
        config.nodeNm = cell.tech == CellTech::SRAM ? 16 : 22;
        ArrayDesigner designer(cell, config);
        return designer.optimize(target);
    }
};

TEST_P(ArrayPropertyTest, AllMetricsFiniteAndPositive)
{
    auto r = build(GetParam(), OptTarget::ReadEDP);
    for (double v : {r.readLatency, r.writeLatency, r.readEnergy,
                     r.writeEnergy, r.leakage, r.areaM2,
                     r.readBandwidth, r.writeBandwidth}) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GT(v, 0.0);
    }
    EXPECT_GT(r.areaEfficiency, 0.0);
    EXPECT_LE(r.areaEfficiency, 1.0);
}

TEST_P(ArrayPropertyTest, WriteLatencyAtLeastCellPulse)
{
    auto r = build(GetParam(), OptTarget::WriteLatency);
    EXPECT_GE(r.writeLatency, r.cell.worstWritePulse());
}

TEST_P(ArrayPropertyTest, ReadLatencyBelowWriteLatencyForNvm)
{
    auto r = build(GetParam(), OptTarget::ReadEDP);
    if (r.cell.nonVolatile && r.cell.worstWritePulse() > 5e-9) {
        EXPECT_LT(r.readLatency, r.writeLatency);
    }
}

TEST_P(ArrayPropertyTest, DensityConsistentWithArea)
{
    auto r = build(GetParam(), OptTarget::Area);
    double mbits = r.capacityBytes * 8.0 / 1e6;
    EXPECT_NEAR(r.densityMbPerMm2(), mbits / (r.areaM2 * 1e6),
                r.densityMbPerMm2() * 1e-9);
}

TEST_P(ArrayPropertyTest, TargetOrderingsHold)
{
    auto fastestRead = build(GetParam(), OptTarget::ReadLatency);
    auto lowestLeak = build(GetParam(), OptTarget::Leakage);
    auto smallest = build(GetParam(), OptTarget::Area);
    EXPECT_LE(fastestRead.readLatency, lowestLeak.readLatency);
    EXPECT_LE(fastestRead.readLatency, smallest.readLatency);
    EXPECT_LE(lowestLeak.leakage, fastestRead.leakage);
    EXPECT_LE(smallest.areaM2, fastestRead.areaM2 * (1 + 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    StudySet, ArrayPropertyTest, ::testing::ValuesIn(allCases()),
    [](const ::testing::TestParamInfo<ArrayCase> &info) {
        std::string name = info.param.cellName + "_" +
            std::to_string((int)info.param.capacityMiB) + "MiB_w" +
            std::to_string(info.param.wordBits);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace nvmexp
