#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "nvsim/subarray.hh"

namespace nvmexp {
namespace {

const TechNode &node22 = techNodeFor(22);

SubarrayDesign
design(int rows, int cols, int sensed)
{
    SubarrayDesign d;
    d.rows = rows;
    d.cols = cols;
    d.sensedBits = sensed;
    return d;
}

TEST(Subarray, MetricsArePositiveAndFinite)
{
    CellCatalog catalog;
    for (const auto &cell : catalog.studyCells()) {
        const TechNode &node =
            techNodeFor(cell.tech == CellTech::SRAM ? 16 : 22);
        auto m = characterizeSubarray(cell, node,
                                      design(512, 1024, 512));
        EXPECT_GT(m.readLatency, 0.0) << cell.name;
        EXPECT_GT(m.writeLatency, 0.0) << cell.name;
        EXPECT_GT(m.readEnergy, 0.0) << cell.name;
        EXPECT_GT(m.writeEnergy, 0.0) << cell.name;
        EXPECT_GT(m.leakage, 0.0) << cell.name;
        EXPECT_GT(m.areaM2, m.cellAreaM2) << cell.name;
        EXPECT_GT(m.areaEfficiency(), 0.0) << cell.name;
        EXPECT_LT(m.areaEfficiency(), 1.0) << cell.name;
    }
}

TEST(Subarray, WriteLatencyIncludesCellPulse)
{
    CellCatalog catalog;
    MemCell cell = catalog.pessimistic(CellTech::FeFET);
    auto m = characterizeSubarray(cell, node22, design(512, 512, 512));
    EXPECT_GE(m.writeLatency, cell.worstWritePulse());
}

TEST(Subarray, TallerArraysReadSlower)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    auto short_ = characterizeSubarray(cell, node22,
                                       design(128, 1024, 512));
    auto tall = characterizeSubarray(cell, node22,
                                     design(4096, 1024, 512));
    EXPECT_GT(tall.readLatency, short_.readLatency);
}

TEST(Subarray, WiderRowsCostMoreReadEnergyForNvm)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::FeFET);
    auto narrow = characterizeSubarray(cell, node22,
                                       design(512, 512, 512));
    auto wide = characterizeSubarray(cell, node22,
                                     design(512, 4096, 512));
    // Row activation biases every bitline, so wider rows burn more.
    EXPECT_GT(wide.readEnergy, narrow.readEnergy);
}

TEST(Subarray, MlcSensingIsSlowerAndHungrier)
{
    CellCatalog catalog;
    MemCell slc = catalog.optimistic(CellTech::RRAM);
    MemCell mlc = slc.makeMlc();
    // Iso cell count (MLC stores twice the bits in the same matrix).
    auto mSlc = characterizeSubarray(slc, node22,
                                     design(1024, 1024, 512));
    auto mMlc = characterizeSubarray(mlc, node22,
                                     design(1024, 1024, 256));
    EXPECT_GT(mMlc.readLatency, mSlc.readLatency);
    EXPECT_GT(mMlc.writeLatency, mSlc.writeLatency);
}

TEST(Subarray, SramLeakageDominatedByCells)
{
    MemCell sram = CellCatalog::sram16();
    const TechNode &node16 = techNodeFor(16);
    auto m = characterizeSubarray(sram, node16,
                                  design(1024, 1024, 512));
    double cellLeak = 1024.0 * 1024.0 * sram.cellLeakage;
    EXPECT_GT(m.leakage, cellLeak);
    EXPECT_LT(m.leakage, cellLeak * 1.5);
}

TEST(Subarray, EnvmHasNoCellLeakage)
{
    CellCatalog catalog;
    MemCell stt = catalog.optimistic(CellTech::STT);
    auto m512 = characterizeSubarray(stt, node22,
                                     design(512, 512, 512));
    auto m2048 = characterizeSubarray(stt, node22,
                                      design(512, 2048, 512));
    // 4x the cells but only periphery leaks: growth well below 4x.
    EXPECT_LT(m2048.leakage, 3.0 * m512.leakage);
}

TEST(Subarray, FeFetReadEnergyExceedsStt)
{
    CellCatalog catalog;
    auto fefet = characterizeSubarray(catalog.optimistic(
                                          CellTech::FeFET),
                                      node22, design(512, 1024, 512));
    auto stt = characterizeSubarray(catalog.optimistic(CellTech::STT),
                                    node22, design(512, 1024, 512));
    EXPECT_GT(fefet.readEnergy, 2.0 * stt.readEnergy);
}

TEST(Subarray, ChargePumpPenalizesHighVoltageWrites)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::PCM);  // 1.2 V > vdd
    MemCell lowV = cell;
    lowV.writeVoltage = 0.8;  // below the 0.9 V supply
    auto boosted = characterizeSubarray(cell, node22,
                                        design(512, 512, 512));
    auto direct = characterizeSubarray(lowV, node22,
                                       design(512, 512, 512));
    EXPECT_GT(boosted.writeEnergy, direct.writeEnergy);
}

TEST(SubarrayDeath, RejectsBadGeometry)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    EXPECT_EXIT(characterizeSubarray(cell, node22, design(1, 512, 512)),
                ::testing::ExitedWithCode(1), "2x2");
    EXPECT_EXIT(
        characterizeSubarray(cell, node22, design(512, 512, 500)),
        ::testing::ExitedWithCode(1), "divide");
}

TEST(SubarrayDeath, RejectsMarginlessCell)
{
    CellCatalog catalog;
    MemCell cell = catalog.optimistic(CellTech::STT);
    cell.resistanceOff = cell.resistanceOn;  // no sensing signal
    EXPECT_EXIT(
        characterizeSubarray(cell, node22, design(512, 512, 512)),
        ::testing::ExitedWithCode(1), "margin");
}

} // namespace
} // namespace nvmexp
