/**
 * @file
 * Unit tier for the campaign partitioning and splicing primitives:
 * the ShardPlan must be a deterministic, complete, block-aligned
 * partition of the expanded slot space, and the stitch helpers must
 * round-trip the store serializer's artifacts byte-exactly (they are
 * what makes the merged store canonical).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/shard_plan.hh"
#include "campaign/stitch.hh"
#include "core/parallel_sweep.hh"
#include "reliability/reliability.hh"
#include "store/result_store.hh"
#include "util/logging.hh"

#include "../support/fixtures.hh"

namespace nvmexp {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE((bool)in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class ShardPlanTest : public testsupport::QuietTest
{
  protected:
    /** smallSweep with two reliability specs: 8 arrays x 2 traffics x
     *  2 specs = 32 slots, spec blocks of length 2. */
    SweepConfig
    specSweep()
    {
        SweepConfig config = testsupport::smallSweep();
        reliability::ReliabilitySpec none;
        reliability::ReliabilitySpec secded;
        secded.ecc = "secded-72-64";
        config.reliability = {none, secded};
        return config;
    }
};

TEST_F(ShardPlanTest, PlanIsDeterministicAndMatchesStoreFingerprint)
{
    SweepConfig config = specSweep();
    campaign::ShardPlan a = campaign::makeShardPlan(config, 4);
    campaign::ShardPlan b = campaign::makeShardPlan(config, 4);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.runLength, b.runLength);
    EXPECT_EQ(a.rotation, b.rotation);
    EXPECT_EQ(a.shardCount, 4u);
    EXPECT_EQ(a.runLength, config.reliability.size());
    // The plan is defined over the same fingerprint the result store
    // journals, so shard journals and the merged journal agree.
    EXPECT_EQ(a.fingerprint, store::sweepFingerprint(config));
}

TEST_F(ShardPlanTest, EveryShardCountPartitionsTheSlotSpace)
{
    SweepConfig config = specSweep();
    const std::size_t totalSlots = 32;
    for (std::size_t shards : {1u, 2u, 3u, 5u, 8u, 33u}) {
        campaign::ShardPlan plan =
            campaign::makeShardPlan(config, shards);
        std::size_t covered = 0;
        for (std::size_t k = 0; k < shards; ++k) {
            std::size_t owned = plan.ownedCount(k, totalSlots);
            covered += owned;
            // The selector agrees with shardOf, slot by slot.
            auto selector = plan.selector(k);
            std::size_t selected = 0;
            for (std::size_t slot = 0; slot < totalSlots; ++slot) {
                EXPECT_LT(plan.shardOf(slot), shards);
                EXPECT_EQ(selector(slot), plan.owns(k, slot));
                if (selector(slot))
                    ++selected;
            }
            EXPECT_EQ(selected, owned) << shards << " shards, shard "
                                       << k;
        }
        EXPECT_EQ(covered, totalSlots) << shards << " shards";
    }
}

TEST_F(ShardPlanTest, SpecBlocksNeverStraddleShards)
{
    SweepConfig config = specSweep();
    for (std::size_t shards : {2u, 3u, 7u}) {
        campaign::ShardPlan plan =
            campaign::makeShardPlan(config, shards);
        ASSERT_EQ(plan.runLength, 2u);
        for (std::size_t slot = 0; slot + 1 < 32; slot += 2) {
            EXPECT_EQ(plan.shardOf(slot), plan.shardOf(slot + 1))
                << "block at slot " << slot << ", " << shards
                << " shards";
        }
    }
}

TEST_F(ShardPlanTest, RotationVariesWithSweepNotWithCall)
{
    // Different sweeps land on different rotations (fingerprint-
    // derived), so repeated campaigns don't always hand shard 0 the
    // same corner of the space.
    SweepConfig a = specSweep();
    SweepConfig b = specSweep();
    b.reliability[1].scrubIntervalSec = 3600.0;
    campaign::ShardPlan pa = campaign::makeShardPlan(a, 8);
    campaign::ShardPlan pb = campaign::makeShardPlan(b, 8);
    EXPECT_NE(pa.fingerprint, pb.fingerprint);
    EXPECT_LT(pa.rotation, 8u);
    EXPECT_LT(pb.rotation, 8u);
}

TEST_F(ShardPlanTest, ZeroShardsAndOutOfRangeSelectorAreFatal)
{
    SweepConfig config = specSweep();
    ScopedFatalThrows guard;
    EXPECT_THROW(campaign::makeShardPlan(config, 0), FatalError);
    campaign::ShardPlan plan = campaign::makeShardPlan(config, 2);
    EXPECT_THROW(plan.selector(2), FatalError);
}

TEST_F(ShardPlanTest, StitchRoundTripsSerializedResults)
{
    SweepConfig config = testsupport::smallSweep();
    ParallelSweepRunner runner(2);
    auto results = runner.run(config);
    ASSERT_EQ(results.size(), 16u);

    std::string text = store::serializeResults(results);
    auto rows = campaign::splitSerializedResults(text, "test");
    ASSERT_EQ(rows.size(), results.size());
    EXPECT_EQ(campaign::joinSerializedResults(rows), text);

    // Row texts are position-independent: a subset joins to exactly
    // what the serializer prints for that subset.
    std::vector<EvalResult> subset = {results[3], results[7],
                                      results[12]};
    std::vector<std::string> subsetRows = {rows[3], rows[7], rows[12]};
    EXPECT_EQ(campaign::joinSerializedResults(subsetRows),
              store::serializeResults(subset));

    // The empty artifact is its own envelope.
    std::string empty = store::serializeResults({});
    EXPECT_TRUE(campaign::splitSerializedResults(empty, "test").empty());
    EXPECT_EQ(campaign::joinSerializedResults({}), empty);
}

TEST_F(ShardPlanTest, StitchRejectsTornSerializedResults)
{
    SweepConfig config = testsupport::smallSweep();
    ParallelSweepRunner runner(2);
    std::string text = store::serializeResults(runner.run(config));
    ScopedFatalThrows guard;
    EXPECT_THROW(campaign::splitSerializedResults(
                     text.substr(0, text.size() / 2), "torn"),
                 FatalError);
    EXPECT_THROW(campaign::splitSerializedResults("[1, 2, 3]\n",
                                                  "foreign"),
                 FatalError);
}

TEST_F(ShardPlanTest, StitchRoundTripsResultsCsv)
{
    SweepConfig config = testsupport::smallSweep();
    config.outDir = ::testing::TempDir() + "nvmexp_stitch_csv";
    std::filesystem::remove_all(config.outDir);
    ParallelSweepRunner runner(2);
    runner.run(config);
    std::string text = readFile(config.outDir + "/results.csv");

    campaign::CsvSplit split = campaign::splitResultsCsv(text, "test");
    EXPECT_EQ(split.rows.size(), 16u);
    EXPECT_EQ(campaign::joinResultsCsv(split.header, split.rows), text);

    ScopedFatalThrows guard;
    EXPECT_THROW(campaign::splitResultsCsv(
                     text.substr(0, text.size() - 1), "no newline"),
                 FatalError);
}

} // namespace
} // namespace nvmexp
