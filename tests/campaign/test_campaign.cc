/**
 * @file
 * Differential tier for distributed sweep campaigns: shards run as
 * independent store-backed workers (any shard count, any worker
 * count, killed and retried mid-shard) must merge into a store
 * byte-identical to a single-process `--out` run of the same config —
 * checkpoint journal included. Also pins the merge's refusal
 * diagnostics, the manifest round trip, the status snapshot, and the
 * single-node launcher's retry policy.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hh"
#include "campaign/stitch.hh"
#include "core/parallel_sweep.hh"
#include "reliability/reliability.hh"
#include "store/result_store.hh"
#include "util/logging.hh"

#include "../support/fixtures.hh"

namespace nvmexp {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE((bool)in) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

void
writeLines(const std::string &path,
           const std::vector<std::string> &lines)
{
    std::ofstream out(path, std::ios::trunc);
    for (const auto &line : lines)
        out << line << '\n';
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

/** The merge failure message for `body`, "" when it succeeded. */
std::string
mergeError(const std::string &dir)
{
    ScopedFatalThrows guard;
    try {
        campaign::mergeCampaign(dir);
    } catch (const FatalError &e) {
        return e.what();
    }
    return "";
}

class CampaignTest : public testsupport::QuietTest
{
  protected:
    std::string
    freshDir(const std::string &name)
    {
        std::string dir = ::testing::TempDir() + "nvmexp_campaign_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()->name() +
            "_" + name;
        std::filesystem::remove_all(dir);
        return dir;
    }

    /** smallSweep with two reliability specs: 32 slots in blocks of
     *  2 (the granularity shards are assigned at). */
    SweepConfig
    specSweep()
    {
        SweepConfig config = testsupport::smallSweep();
        reliability::ReliabilitySpec none;
        reliability::ReliabilitySpec secded;
        secded.ecc = "secded-72-64";
        config.reliability = {none, secded};
        return config;
    }

    /** wideSweep with two reliability specs: 96 slots, enough that
     *  every shard count under test owns several blocks. */
    SweepConfig
    wideSpecSweep()
    {
        SweepConfig config = testsupport::wideSweep();
        reliability::ReliabilitySpec none;
        reliability::ReliabilitySpec secded;
        secded.ecc = "secded-72-64";
        secded.scrubIntervalSec = 3600.0;
        config.reliability = {none, secded};
        return config;
    }

    /** Single-process reference artifacts for `config` (run at one
     *  worker so the journal is in ascending slot order, the canonical
     *  form the merge produces). */
    struct Reference
    {
        std::string json, csv, journal;
    };

    Reference
    referenceRun(SweepConfig config, const std::string &dir)
    {
        config.outDir = dir;
        ParallelSweepRunner runner(1);
        runner.run(config);
        return {readFile(dir + "/results.json"),
                readFile(dir + "/results.csv"),
                readFile(dir + "/checkpoint.jsonl")};
    }

    void
    expectMergedMatches(const std::string &dir, const Reference &ref,
                        const std::string &label)
    {
        std::string merged = campaign::mergedDir(dir);
        EXPECT_EQ(readFile(merged + "/results.json"), ref.json)
            << label;
        EXPECT_EQ(readFile(merged + "/results.csv"), ref.csv) << label;
        EXPECT_EQ(readFile(merged + "/checkpoint.jsonl"), ref.journal)
            << label;
    }
};

/** The headline guarantee: for every shard count and worker count,
 *  running the shards independently and merging produces bytes
 *  indistinguishable from never having sharded at all. */
TEST_F(CampaignTest, MergedStoreIsByteIdenticalAcrossShardCounts)
{
    SweepConfig config = wideSpecSweep();
    Reference ref = referenceRun(config, freshDir("reference"));

    for (std::size_t shards : {1u, 2u, 3u, 8u}) {
        for (int jobs : {1, 8}) {
            std::string label = std::to_string(shards) + " shards -j" +
                std::to_string(jobs);
            std::string dir = freshDir(label);
            campaign::planCampaign(dir, config, shards);
            ParallelSweepRunner runner(jobs);
            std::size_t rows = 0;
            for (std::size_t k = 0; k < shards; ++k)
                rows += campaign::runShard(dir, config, k, runner)
                            .size();
            EXPECT_EQ(rows, 96u) << label;

            campaign::MergeSummary summary =
                campaign::mergeCampaign(dir);
            EXPECT_EQ(summary.totalSlots, 96u) << label;
            EXPECT_EQ(summary.shardCount, shards) << label;
            // Every slot was evaluated exactly once, somewhere.
            EXPECT_EQ(summary.stats.checkpointComputed, 96u) << label;
            expectMergedMatches(dir, ref, label);
        }
    }
}

/** A shard killed mid-write leaves a torn store; the retry resumes
 *  from the journal and the campaign still merges byte-identically,
 *  with the replayed slots visible in the summed stats. */
TEST_F(CampaignTest, KilledShardRetriesAndMergesIdentically)
{
    SweepConfig config = specSweep();
    Reference ref = referenceRun(config, freshDir("reference"));

    std::string dir = freshDir("campaign");
    campaign::planCampaign(dir, config, 3);
    ParallelSweepRunner runner(2);
    for (std::size_t k = 0; k < 3; ++k)
        campaign::runShard(dir, config, k, runner);

    // Re-create the kill: shard 1's journal is cut after two entries
    // and its results artifacts vanish (the store only writes them at
    // the end of a run).
    std::string shardDir = dir + "/" + campaign::shardDirName(1);
    auto lines = readLines(shardDir + "/checkpoint.jsonl");
    ASSERT_GT(lines.size(), 3u);
    lines.resize(3);  // header + 2 journaled slots
    writeLines(shardDir + "/checkpoint.jsonl", lines);
    std::filesystem::remove(shardDir + "/results.json");
    std::filesystem::remove(shardDir + "/results.csv");

    // Merging a torn campaign is refused with the shard named...
    std::string error = mergeError(dir);
    EXPECT_NE(error.find("shard-1"), std::string::npos) << error;

    // ...and the retry heals it: replay the two surviving slots,
    // recompute the rest, merge clean.
    auto rows = campaign::runShard(dir, config, 1, runner);
    campaign::MergeSummary summary = campaign::mergeCampaign(dir);
    EXPECT_EQ(summary.totalSlots, 32u);
    EXPECT_EQ(summary.stats.checkpointLoaded, 2u);
    expectMergedMatches(dir, ref, "after retry");

    // The shard's own record shows both attempts.
    campaign::CampaignStatus status = campaign::campaignStatus(dir);
    EXPECT_EQ(status.shards[1].attempts, 2u);
    EXPECT_EQ(rows.size(), status.shards[1].ownedSlots);
}

TEST_F(CampaignTest, MergeRefusesMissingForeignAndStaleShards)
{
    SweepConfig config = specSweep();
    std::string dir = freshDir("campaign");
    campaign::planCampaign(dir, config, 2);
    ParallelSweepRunner runner(2);

    // Shard 1 never ran: the merge names its journal, not some slot
    // arithmetic deep in the stitcher.
    campaign::runShard(dir, config, 0, runner);
    std::string error = mergeError(dir);
    EXPECT_NE(error.find("shard-1"), std::string::npos) << error;

    campaign::runShard(dir, config, 1, runner);
    ASSERT_EQ(mergeError(dir), "");

    std::string shardDir = dir + "/" + campaign::shardDirName(0);
    std::string journalPath = shardDir + "/checkpoint.jsonl";
    std::string journal = readFile(journalPath);

    // A journal claiming a different sweep is refused up front.
    auto lines = readLines(journalPath);
    lines[0] = store::checkpointHeaderLine(
        "00000000deadbeef", campaign::campaignStatus(dir).totalSlots);
    writeLines(journalPath, lines);
    error = mergeError(dir);
    EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;
    writeText(journalPath, journal);

    // A journal missing one owned slot means the worker did not
    // finish; the merge says so instead of silently dropping rows.
    lines = readLines(journalPath);
    lines.pop_back();
    writeLines(journalPath, lines);
    error = mergeError(dir);
    EXPECT_NE(error.find("incomplete"), std::string::npos) << error;
    writeText(journalPath, journal);

    // results.json rows disagreeing with the journal (a stale artifact
    // from an older attempt) are refused, not spliced.
    std::string resultsPath = shardDir + "/results.json";
    std::string results = readFile(resultsPath);
    auto rows = campaign::splitSerializedResults(results, "test");
    rows.pop_back();
    writeText(resultsPath, campaign::joinSerializedResults(rows));
    error = mergeError(dir);
    EXPECT_NE(error.find("stale"), std::string::npos) << error;
    writeText(resultsPath, results);

    ASSERT_EQ(mergeError(dir), "");
}

TEST_F(CampaignTest, PlanIsIdempotentButRefusesConflicts)
{
    SweepConfig config = specSweep();
    std::string dir = freshDir("campaign");
    campaign::CampaignManifest first =
        campaign::planCampaign(dir, config, 3);
    // Same config, same shard count: a no-op (launchers always plan).
    campaign::CampaignManifest again =
        campaign::planCampaign(dir, config, 3);
    EXPECT_EQ(again.fingerprint, first.fingerprint);

    ScopedFatalThrows guard;
    // Different shard count or different sweep: refuse, don't clobber.
    EXPECT_THROW(campaign::planCampaign(dir, config, 4), FatalError);
    SweepConfig other = config;
    other.reliability.pop_back();
    EXPECT_THROW(campaign::planCampaign(dir, other, 3), FatalError);
}

TEST_F(CampaignTest, ManifestRoundTripsThroughJson)
{
    SweepConfig config = specSweep();
    std::string dir = freshDir("campaign");
    campaign::CampaignManifest written =
        campaign::planCampaign(dir, config, 5);
    campaign::CampaignManifest loaded = campaign::loadManifest(dir);
    EXPECT_EQ(loaded.fingerprint, written.fingerprint);
    EXPECT_EQ(loaded.shardCount, 5u);
    EXPECT_EQ(loaded.granularity, 2u);
    ASSERT_EQ(loaded.shards.size(), 5u);
    for (std::size_t k = 0; k < 5; ++k) {
        EXPECT_EQ(loaded.shards[k].id, k);
        EXPECT_EQ(loaded.shards[k].dir, campaign::shardDirName(k));
        EXPECT_EQ(loaded.shards[k].status, "pending");
        EXPECT_EQ(loaded.shards[k].attempts, 0u);
    }
    campaign::CampaignManifest reparsed =
        campaign::CampaignManifest::fromJson(loaded.toJson(), "test");
    EXPECT_EQ(reparsed.fingerprint, loaded.fingerprint);
    EXPECT_EQ(reparsed.shards.size(), loaded.shards.size());

    // The plan reconstructed from the manifest is the planner's.
    campaign::ShardPlan plan = loaded.plan();
    campaign::ShardPlan direct = campaign::makeShardPlan(config, 5);
    EXPECT_EQ(plan.rotation, direct.rotation);
    EXPECT_EQ(plan.runLength, direct.runLength);
}

TEST_F(CampaignTest, StatusTracksShardLifecycles)
{
    SweepConfig config = specSweep();
    std::string dir = freshDir("campaign");
    campaign::planCampaign(dir, config, 2);

    campaign::CampaignStatus fresh = campaign::campaignStatus(dir);
    EXPECT_FALSE(fresh.allComplete());
    EXPECT_FALSE(fresh.merged);
    EXPECT_EQ(fresh.totalSlots, 0u);  // nothing journaled yet
    ASSERT_EQ(fresh.shards.size(), 2u);
    EXPECT_EQ(fresh.shards[0].state, "pending");

    ParallelSweepRunner runner(2);
    campaign::runShard(dir, config, 0, runner);
    campaign::CampaignStatus half = campaign::campaignStatus(dir);
    EXPECT_FALSE(half.allComplete());
    EXPECT_EQ(half.totalSlots, 32u);
    EXPECT_EQ(half.shards[0].state, "complete");
    EXPECT_EQ(half.shards[0].doneSlots, half.shards[0].ownedSlots);
    EXPECT_EQ(half.shards[1].state, "pending");

    campaign::runShard(dir, config, 1, runner);
    campaign::mergeCampaign(dir);
    campaign::CampaignStatus done = campaign::campaignStatus(dir);
    EXPECT_TRUE(done.allComplete());
    EXPECT_TRUE(done.merged);
    EXPECT_EQ(done.shards[0].doneSlots + done.shards[1].doneSlots,
              32u);
}

/** The single-node launcher forks real worker processes, skips done
 *  shards, and retries a crashing one until its store completes. */
TEST_F(CampaignTest, LauncherRetriesCrashingWorkerProcesses)
{
    SweepConfig config = specSweep();
    Reference ref = referenceRun(config, freshDir("reference"));
    std::string dir = freshDir("campaign");
    campaign::planCampaign(dir, config, 3);

    // Shard 1's first attempt does real work, then "dies" leaving the
    // torn store a mid-write kill would: journal cut short, results
    // artifacts gone, nonzero exit. The sentinel lives on the shared
    // filesystem, so the retry — a fresh process — sees it and runs
    // clean.
    std::string sentinel = dir + "/shard1-crashed-once";
    auto worker = [&](std::size_t shard) -> int {
        ParallelSweepRunner runner(1);
        auto rows = campaign::runShard(dir, config, shard, runner);
        if (rows.empty())
            return 1;
        if (shard == 1 && !std::filesystem::exists(sentinel)) {
            std::string shardDir =
                dir + "/" + campaign::shardDirName(1);
            auto lines = readLines(shardDir + "/checkpoint.jsonl");
            lines.resize(2);  // header + 1 journaled slot
            writeLines(shardDir + "/checkpoint.jsonl", lines);
            std::filesystem::remove(shardDir + "/results.json");
            std::filesystem::remove(shardDir + "/results.csv");
            writeText(sentinel, "x\n");
            return 1;
        }
        return 0;
    };

    campaign::LaunchOptions options;
    options.workers = 2;
    options.maxAttempts = 3;
    EXPECT_TRUE(campaign::launchCampaign(dir, options, worker));

    campaign::CampaignStatus status = campaign::campaignStatus(dir);
    EXPECT_TRUE(status.allComplete());
    EXPECT_GE(status.shards[1].attempts, 2u);

    campaign::mergeCampaign(dir);
    expectMergedMatches(dir, ref, "launched");

    // Relaunching a finished campaign is a no-op (all shards skipped),
    // and the merge output is untouched.
    EXPECT_TRUE(campaign::launchCampaign(dir, options, worker));
    expectMergedMatches(dir, ref, "relaunched");
}

/** A worker that always dies exhausts its attempt budget; the launcher
 *  reports failure instead of spinning. */
TEST_F(CampaignTest, LauncherGivesUpAfterMaxAttempts)
{
    SweepConfig config = specSweep();
    std::string dir = freshDir("campaign");
    campaign::planCampaign(dir, config, 2);

    auto worker = [&](std::size_t shard) -> int {
        if (shard == 1)
            return 7;  // crashes every time
        ParallelSweepRunner runner(1);
        return campaign::runShard(dir, config, shard, runner).empty()
            ? 1 : 0;
    };

    campaign::LaunchOptions options;
    options.workers = 2;
    options.maxAttempts = 2;
    EXPECT_FALSE(campaign::launchCampaign(dir, options, worker));

    campaign::CampaignStatus status = campaign::campaignStatus(dir);
    EXPECT_FALSE(status.allComplete());
    EXPECT_EQ(status.shards[0].state, "complete");
    EXPECT_NE(status.shards[1].state, "complete");
}

} // namespace
} // namespace nvmexp
