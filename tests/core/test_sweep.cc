#include <gtest/gtest.h>

#include "../support/fixtures.hh"
#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

using testsupport::smallSweep;

TEST(Sweep, CharacterizeCrossesCellsCapacitiesTargets)
{
    auto arrays = characterizeSweep(smallSweep());
    EXPECT_EQ(arrays.size(), 2u * 2u * 2u);
}

TEST(Sweep, RunCrossesTraffics)
{
    auto results = runSweep(smallSweep());
    EXPECT_EQ(results.size(), 8u * 2u);
    for (const auto &r : results) {
        EXPECT_GT(r.totalPower, 0.0);
        EXPECT_FALSE(r.traffic.name.empty());
    }
}

TEST(SweepDeath, EmptyConfigsAreFatal)
{
    SweepConfig noCells;
    noCells.traffics = {TrafficPattern::fromCounts("t", 1, 1, 1)};
    EXPECT_EXIT(runSweep(noCells), ::testing::ExitedWithCode(1),
                "no cells");
    SweepConfig noTraffic = smallSweep();
    noTraffic.traffics.clear();
    EXPECT_EXIT(runSweep(noTraffic), ::testing::ExitedWithCode(1),
                "no traffic");
}

TEST(Pareto, KeepsOnlyNonDominatedPoints)
{
    struct P
    {
        double a, b;
    };
    std::vector<P> points = {
        {1, 4}, {2, 2}, {4, 1}, {3, 3}, {5, 5},
    };
    auto front = paretoFront<P>(
        points, [](const P &p) { return p.a; },
        [](const P &p) { return p.b; });
    ASSERT_EQ(front.size(), 3u);
    for (const auto &p : front)
        EXPECT_TRUE((p.a == 1 && p.b == 4) || (p.a == 2 && p.b == 2) ||
                    (p.a == 4 && p.b == 1));
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    std::vector<double> xs = {3.0};
    auto front = paretoFront<double>(
        xs, [](const double &x) { return x; },
        [](const double &x) { return -x; });
    EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, MatchesBruteForceOnRandomPointsWithTies)
{
    struct P
    {
        double a, b;
        bool operator==(const P &o) const
        {
            return a == o.a && b == o.b;
        }
    };
    auto keyA = [](const P &p) { return p.a; };
    auto keyB = [](const P &p) { return p.b; };

    Rng rng(0xFACADE);
    for (int round = 0; round < 20; ++round) {
        std::vector<P> points;
        for (int i = 0; i < 200; ++i) {
            // Coarse grid so equal keys and exact duplicates occur.
            points.push_back({(double)rng.range(12),
                              (double)rng.range(12)});
        }

        // Reference: the original O(n^2) dominance scan.
        std::vector<P> expected;
        for (const auto &c : points) {
            bool dominated = false;
            for (const auto &o : points) {
                if (o.a <= c.a && o.b <= c.b &&
                    (o.a < c.a || o.b < c.b)) {
                    dominated = true;
                    break;
                }
            }
            if (!dominated)
                expected.push_back(c);
        }

        auto front = paretoFront<P>(points, keyA, keyB);
        ASSERT_EQ(front.size(), expected.size()) << "round " << round;
        for (std::size_t i = 0; i < front.size(); ++i)
            EXPECT_TRUE(front[i] == expected[i])
                << "round " << round << " item " << i;
    }
}

TEST(Pareto, PreservesInputOrderAndDuplicates)
{
    struct P
    {
        double a, b;
    };
    std::vector<P> points = {
        {4, 1}, {2, 2}, {1, 4}, {2, 2}, {3, 3}, {1, 4},
    };
    auto front = paretoFront<P>(
        points, [](const P &p) { return p.a; },
        [](const P &p) { return p.b; });
    // All duplicates of non-dominated points survive, in input order.
    ASSERT_EQ(front.size(), 5u);
    EXPECT_EQ(front[0].a, 4);
    EXPECT_EQ(front[1].a, 2);
    EXPECT_EQ(front[2].a, 1);
    EXPECT_EQ(front[3].a, 2);
    EXPECT_EQ(front[4].a, 1);
}

TEST(BestBy, FindsMinimum)
{
    auto results = runSweep(smallSweep());
    const EvalResult *best = bestBy(
        results, [](const EvalResult &r) { return r.totalPower; });
    ASSERT_NE(best, nullptr);
    for (const auto &r : results)
        EXPECT_LE(best->totalPower, r.totalPower);
    std::vector<EvalResult> empty;
    EXPECT_EQ(bestBy(empty,
                     [](const EvalResult &r) { return r.totalPower; }),
              nullptr);
}

TEST(BestBy, SkipsNanKeys)
{
    auto results = runSweep(smallSweep());
    ASSERT_GE(results.size(), 2u);
    const double nan = std::numeric_limits<double>::quiet_NaN();

    // A NaN key on the first result must not be selected as "best"
    // (the old `!best` short-circuit did exactly that).
    const EvalResult *first = &results.front();
    const EvalResult *best = bestBy(
        results, [&](const EvalResult &r) {
            return &r == first ? nan : r.totalPower;
        });
    ASSERT_NE(best, nullptr);
    EXPECT_NE(best, first);
    for (const auto &r : results) {
        if (&r != first) {
            EXPECT_LE(best->totalPower, r.totalPower);
        }
    }

    // All-NaN keys: nothing is rankable.
    EXPECT_EQ(bestBy(results,
                     [&](const EvalResult &) { return nan; }),
              nullptr);

    // +inf keys stay selectable (e.g. unlimited lifetimes).
    const EvalResult *inf = bestBy(
        results, [](const EvalResult &) {
            return std::numeric_limits<double>::infinity();
        });
    EXPECT_EQ(inf, &results.front());
}

} // namespace
} // namespace nvmexp
