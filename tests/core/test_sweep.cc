#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "core/sweep.hh"

namespace nvmexp {
namespace {

SweepConfig
smallSweep()
{
    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = {catalog.optimistic(CellTech::STT),
                   catalog.optimistic(CellTech::RRAM)};
    sweep.capacitiesBytes = {2.0 * 1024 * 1024, 8.0 * 1024 * 1024};
    sweep.targets = {OptTarget::ReadEDP, OptTarget::Area};
    sweep.traffics = {
        TrafficPattern::fromByteRates("light", 1e9, 1e6, 512),
        TrafficPattern::fromByteRates("heavy", 10e9, 1e8, 512),
    };
    return sweep;
}

TEST(Sweep, CharacterizeCrossesCellsCapacitiesTargets)
{
    auto arrays = characterizeSweep(smallSweep());
    EXPECT_EQ(arrays.size(), 2u * 2u * 2u);
}

TEST(Sweep, RunCrossesTraffics)
{
    auto results = runSweep(smallSweep());
    EXPECT_EQ(results.size(), 8u * 2u);
    for (const auto &r : results) {
        EXPECT_GT(r.totalPower, 0.0);
        EXPECT_FALSE(r.traffic.name.empty());
    }
}

TEST(SweepDeath, EmptyConfigsAreFatal)
{
    SweepConfig noCells;
    noCells.traffics = {TrafficPattern::fromCounts("t", 1, 1, 1)};
    EXPECT_EXIT(runSweep(noCells), ::testing::ExitedWithCode(1),
                "no cells");
    SweepConfig noTraffic = smallSweep();
    noTraffic.traffics.clear();
    EXPECT_EXIT(runSweep(noTraffic), ::testing::ExitedWithCode(1),
                "no traffic");
}

TEST(Pareto, KeepsOnlyNonDominatedPoints)
{
    struct P
    {
        double a, b;
    };
    std::vector<P> points = {
        {1, 4}, {2, 2}, {4, 1}, {3, 3}, {5, 5},
    };
    auto front = paretoFront<P>(
        points, [](const P &p) { return p.a; },
        [](const P &p) { return p.b; });
    ASSERT_EQ(front.size(), 3u);
    for (const auto &p : front)
        EXPECT_TRUE((p.a == 1 && p.b == 4) || (p.a == 2 && p.b == 2) ||
                    (p.a == 4 && p.b == 1));
}

TEST(Pareto, SinglePointIsItsOwnFront)
{
    std::vector<double> xs = {3.0};
    auto front = paretoFront<double>(
        xs, [](const double &x) { return x; },
        [](const double &x) { return -x; });
    EXPECT_EQ(front.size(), 1u);
}

TEST(BestBy, FindsMinimum)
{
    auto results = runSweep(smallSweep());
    const EvalResult *best = bestBy(
        results, [](const EvalResult &r) { return r.totalPower; });
    ASSERT_NE(best, nullptr);
    for (const auto &r : results)
        EXPECT_LE(best->totalPower, r.totalPower);
    std::vector<EvalResult> empty;
    EXPECT_EQ(bestBy(empty,
                     [](const EvalResult &r) { return r.totalPower; }),
              nullptr);
}

} // namespace
} // namespace nvmexp
