#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "../support/fixtures.hh"
#include "core/sweep.hh"
#include "metrics/refine.hh"
#include "store/serialize.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

struct Point
{
    double a = 0.0;
    double b = 0.0;
    int id = 0;
};

const std::function<double(const Point &)> keyA =
    [](const Point &p) { return p.a; };
const std::function<double(const Point &)> keyB =
    [](const Point &p) { return p.b; };

/** Random sets with deliberate duplicate coordinates: a small value
 *  grid makes ties and exact-duplicate points common. */
std::vector<Point>
randomPoints(Rng &rng, int count)
{
    std::vector<Point> points;
    points.reserve(count);
    for (int i = 0; i < count; ++i) {
        Point p;
        p.a = (double)rng.range(8);
        p.b = (double)rng.range(8);
        p.id = i;
        points.push_back(p);
    }
    return points;
}

std::multiset<int>
ids(const std::vector<Point> &points)
{
    std::multiset<int> out;
    for (const auto &p : points)
        out.insert(p.id);
    return out;
}

bool
dominates(const Point &x, const Point &y)
{
    return (x.a <= y.a && x.b < y.b) || (x.a < y.a && x.b <= y.b);
}

TEST(ParetoProperties, Idempotent)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 1 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);
        auto twice = paretoFront<Point>(front, keyA, keyB);
        EXPECT_EQ(ids(twice), ids(front)) << trial;
    }
}

TEST(ParetoProperties, NoDominatedSurvivorAndNoDroppedNonDominated)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 1 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);

        // Survivors are never dominated by any input point.
        for (const auto &survivor : front) {
            for (const auto &p : points) {
                EXPECT_FALSE(dominates(p, survivor))
                    << trial << ": (" << p.a << "," << p.b
                    << ") dominates surviving (" << survivor.a << ","
                    << survivor.b << ")";
            }
        }

        // And everything non-dominated survives (brute force).
        std::multiset<int> expected;
        for (const auto &candidate : points) {
            bool dominated = false;
            for (const auto &p : points)
                if (dominates(p, candidate)) {
                    dominated = true;
                    break;
                }
            if (!dominated)
                expected.insert(candidate.id);
        }
        EXPECT_EQ(ids(front), expected) << trial;
    }
}

TEST(ParetoProperties, SurvivingSetIsPermutationInvariant)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 2 + (int)rng.range(60));
        auto baseline = ids(paretoFront<Point>(points, keyA, keyB));

        auto shuffled = points;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        EXPECT_EQ(ids(paretoFront<Point>(shuffled, keyA, keyB)),
                  baseline)
            << trial;
    }
}

TEST(ParetoProperties, OutputPreservesInputOrder)
{
    Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        auto points = randomPoints(rng, 2 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);
        for (std::size_t i = 1; i < front.size(); ++i)
            EXPECT_LT(front[i - 1].id, front[i].id) << trial;
    }
}

// ---------------------------------------------------------------------
// N-dimensional generalization (paretoFrontND / paretoByMetrics).

struct NdPoint
{
    std::vector<double> keys;
    int id = 0;
};

std::vector<std::function<double(const NdPoint &)>>
ndKeys(std::size_t d)
{
    std::vector<std::function<double(const NdPoint &)>> keys;
    for (std::size_t k = 0; k < d; ++k)
        keys.push_back([k](const NdPoint &p) { return p.keys[k]; });
    return keys;
}

std::vector<NdPoint>
randomNdPoints(Rng &rng, int count, std::size_t d)
{
    std::vector<NdPoint> points;
    points.reserve(count);
    for (int i = 0; i < count; ++i) {
        NdPoint p;
        for (std::size_t k = 0; k < d; ++k)
            p.keys.push_back((double)rng.range(6));
        p.id = i;
        points.push_back(p);
    }
    return points;
}

std::multiset<int>
ndIds(const std::vector<NdPoint> &points)
{
    std::multiset<int> out;
    for (const auto &p : points)
        out.insert(p.id);
    return out;
}

bool
ndDominates(const NdPoint &x, const NdPoint &y)
{
    bool oneLt = false;
    for (std::size_t k = 0; k < x.keys.size(); ++k) {
        if (x.keys[k] > y.keys[k])
            return false;
        if (x.keys[k] < y.keys[k])
            oneLt = true;
    }
    return oneLt;
}

TEST(ParetoNdProperties, MatchesBruteForceDominanceWithTies)
{
    Rng rng(5);
    for (std::size_t d : {1u, 3u, 4u}) {
        for (int trial = 0; trial < 40; ++trial) {
            auto points = randomNdPoints(rng, 1 + (int)rng.range(60), d);
            auto front = paretoFrontND<NdPoint>(points, ndKeys(d));

            std::multiset<int> expected;
            for (const auto &candidate : points) {
                bool dominated = false;
                for (const auto &p : points)
                    if (ndDominates(p, candidate)) {
                        dominated = true;
                        break;
                    }
                if (!dominated)
                    expected.insert(candidate.id);
            }
            EXPECT_EQ(ndIds(front), expected) << d << "-D " << trial;
        }
    }
}

TEST(ParetoNdProperties, PermutationInvariantAndOrderPreserving)
{
    Rng rng(6);
    for (int trial = 0; trial < 40; ++trial) {
        auto points = randomNdPoints(rng, 2 + (int)rng.range(60), 3);
        auto front = paretoFrontND<NdPoint>(points, ndKeys(3));
        for (std::size_t i = 1; i < front.size(); ++i)
            EXPECT_LT(front[i - 1].id, front[i].id) << trial;

        auto shuffled = points;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        EXPECT_EQ(ndIds(paretoFrontND<NdPoint>(shuffled, ndKeys(3))),
                  ndIds(front))
            << trial;
    }
}

TEST(ParetoNdProperties, TwoKeysReproduceTheLegacy2DFrontExactly)
{
    Rng rng(7);
    for (int trial = 0; trial < 60; ++trial) {
        auto points = randomNdPoints(rng, 1 + (int)rng.range(80), 2);
        auto legacy = paretoFront<NdPoint>(
            points, [](const NdPoint &p) { return p.keys[0]; },
            [](const NdPoint &p) { return p.keys[1]; });
        auto nd = paretoFrontND<NdPoint>(points, ndKeys(2));
        ASSERT_EQ(nd.size(), legacy.size()) << trial;
        for (std::size_t i = 0; i < nd.size(); ++i)
            EXPECT_EQ(nd[i].id, legacy[i].id) << trial;
    }
}

/** The golden-sweep acceptance check: on the reference sweep the
 *  golden-file tier pins, the N-D front over two named metrics is
 *  element-for-element identical to the legacy 2-D front over the
 *  same accessors. */
TEST(ParetoNdProperties, TwoMetricFrontMatchesLegacyOnGoldenSweep)
{
    setQuiet(true);
    auto results = runSweep(testsupport::referenceSweep());
    setQuiet(false);
    ASSERT_EQ(results.size(), 24u);

    const struct
    {
        const char *x;
        const char *y;
        std::function<double(const EvalResult &)> keyX;
        std::function<double(const EvalResult &)> keyY;
    } cases[] = {
        {"total_power", "latency_load",
         [](const EvalResult &r) { return r.totalPower; },
         [](const EvalResult &r) { return r.latencyLoad; }},
        {"read_latency", "total_power",
         [](const EvalResult &r) { return r.array.readLatency; },
         [](const EvalResult &r) { return r.totalPower; }},
    };
    for (const auto &c : cases) {
        auto named = metrics::paretoByMetrics(results, {c.x, c.y});
        auto legacy = paretoFront<EvalResult>(results, c.keyX, c.keyY);
        ASSERT_EQ(named.size(), legacy.size()) << c.x << "/" << c.y;
        for (std::size_t i = 0; i < named.size(); ++i)
            EXPECT_TRUE(store::identical(named[i], legacy[i]))
                << c.x << "/" << c.y << " item " << i;
    }

    // A maximize metric folds its direction: Pareto over
    // (total_power, density) keeps the high-density frontier.
    auto mixed = metrics::paretoByMetrics(
        results, {"total_power", "density_mb_per_mm2"});
    auto folded = paretoFront<EvalResult>(
        results, [](const EvalResult &r) { return r.totalPower; },
        [](const EvalResult &r) {
            return -r.array.densityMbPerMm2();
        });
    ASSERT_EQ(mixed.size(), folded.size());
    for (std::size_t i = 0; i < mixed.size(); ++i)
        EXPECT_TRUE(store::identical(mixed[i], folded[i])) << i;
}

} // namespace
} // namespace nvmexp
