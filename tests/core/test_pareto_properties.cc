#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/sweep.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

struct Point
{
    double a = 0.0;
    double b = 0.0;
    int id = 0;
};

const std::function<double(const Point &)> keyA =
    [](const Point &p) { return p.a; };
const std::function<double(const Point &)> keyB =
    [](const Point &p) { return p.b; };

/** Random sets with deliberate duplicate coordinates: a small value
 *  grid makes ties and exact-duplicate points common. */
std::vector<Point>
randomPoints(Rng &rng, int count)
{
    std::vector<Point> points;
    points.reserve(count);
    for (int i = 0; i < count; ++i) {
        Point p;
        p.a = (double)rng.range(8);
        p.b = (double)rng.range(8);
        p.id = i;
        points.push_back(p);
    }
    return points;
}

std::multiset<int>
ids(const std::vector<Point> &points)
{
    std::multiset<int> out;
    for (const auto &p : points)
        out.insert(p.id);
    return out;
}

bool
dominates(const Point &x, const Point &y)
{
    return (x.a <= y.a && x.b < y.b) || (x.a < y.a && x.b <= y.b);
}

TEST(ParetoProperties, Idempotent)
{
    Rng rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 1 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);
        auto twice = paretoFront<Point>(front, keyA, keyB);
        EXPECT_EQ(ids(twice), ids(front)) << trial;
    }
}

TEST(ParetoProperties, NoDominatedSurvivorAndNoDroppedNonDominated)
{
    Rng rng(2);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 1 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);

        // Survivors are never dominated by any input point.
        for (const auto &survivor : front) {
            for (const auto &p : points) {
                EXPECT_FALSE(dominates(p, survivor))
                    << trial << ": (" << p.a << "," << p.b
                    << ") dominates surviving (" << survivor.a << ","
                    << survivor.b << ")";
            }
        }

        // And everything non-dominated survives (brute force).
        std::multiset<int> expected;
        for (const auto &candidate : points) {
            bool dominated = false;
            for (const auto &p : points)
                if (dominates(p, candidate)) {
                    dominated = true;
                    break;
                }
            if (!dominated)
                expected.insert(candidate.id);
        }
        EXPECT_EQ(ids(front), expected) << trial;
    }
}

TEST(ParetoProperties, SurvivingSetIsPermutationInvariant)
{
    Rng rng(3);
    for (int trial = 0; trial < 100; ++trial) {
        auto points = randomPoints(rng, 2 + (int)rng.range(60));
        auto baseline = ids(paretoFront<Point>(points, keyA, keyB));

        auto shuffled = points;
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        EXPECT_EQ(ids(paretoFront<Point>(shuffled, keyA, keyB)),
                  baseline)
            << trial;
    }
}

TEST(ParetoProperties, OutputPreservesInputOrder)
{
    Rng rng(4);
    for (int trial = 0; trial < 50; ++trial) {
        auto points = randomPoints(rng, 2 + (int)rng.range(60));
        auto front = paretoFront<Point>(points, keyA, keyB);
        for (std::size_t i = 1; i < front.size(); ++i)
            EXPECT_LT(front[i - 1].id, front[i].id) << trial;
    }
}

} // namespace
} // namespace nvmexp
