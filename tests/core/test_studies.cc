#include <gtest/gtest.h>

#include "core/studies.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace nvmexp {
namespace {

class StudiesTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

TEST_F(StudiesTest, ValidationCoversPublishedArray)
{
    auto rows = studies::tentpoleValidation();
    ASSERT_EQ(rows.size(), 2u);
    for (const auto &row : rows) {
        EXPECT_TRUE(row.covered) << row.metric;
        EXPECT_LE(row.optimistic, row.reference);
        EXPECT_LE(row.reference, row.pessimistic);
    }
}

TEST_F(StudiesTest, ArrayLandscapeCoversCellsAndTargets)
{
    auto arrays = studies::arrayLandscape();
    EXPECT_EQ(arrays.size(), 12u * allOptTargets().size());
}

TEST_F(StudiesTest, DnnBufferDensityOrdering)
{
    auto arrays = studies::dnnBufferArrays();
    double sram = 0.0, stt = 0.0, fefet = 0.0, best = 0.0;
    for (const auto &array : arrays) {
        double d = array.densityMbPerMm2();
        if (array.cell.name == "SRAM")
            sram = d;
        if (array.cell.name == "STT-Opt")
            stt = d;
        if (array.cell.name == "FeFET-Opt")
            fefet = d;
        best = std::max(best, d);
    }
    // Fig 5: optimistic FeFET is the densest option; optimistic STT
    // offers ~6x density over SRAM.
    EXPECT_DOUBLE_EQ(fefet, best);
    EXPECT_GT(stt / sram, 4.0);
    EXPECT_LT(stt / sram, 9.0);
}

TEST_F(StudiesTest, ContinuousPowerScenariosComplete)
{
    auto rows = studies::dnnContinuousPower();
    EXPECT_EQ(rows.size(), 4u * 12u);
    int excluded = 0;
    for (const auto &row : rows)
        if (!row.meetsFps)
            ++excluded;
    // Some pessimistic cells cannot sustain 60 FPS with activations.
    EXPECT_GT(excluded, 0);
}

TEST_F(StudiesTest, IntermittentRowsCoverTasksAndRates)
{
    auto rows = studies::dnnIntermittentEnergy({1e3, 1e6});
    // 5 tasks x 12 cells x 2 rates.
    EXPECT_EQ(rows.size(), 5u * 12u * 2u);
    for (const auto &row : rows) {
        EXPECT_GT(row.energyPerEvent, 0.0);
        EXPECT_GT(row.energyPerDay, 0.0);
    }
}

TEST_F(StudiesTest, UseCaseSummaryShapeMatchesTable2)
{
    auto rows = studies::dnnUseCaseSummary();
    // 4 continuous scenarios x 2 priorities + 5 intermittent tasks x 2.
    EXPECT_EQ(rows.size(), 8u + 10u);
    for (const auto &row : rows) {
        EXPECT_NE(row.optChoice, "");
        EXPECT_NE(row.altChoice, "");
        // Winners come from the right pools.
        if (row.optChoice != "none") {
            EXPECT_NE(row.optChoice.find("-Opt"), std::string::npos)
                << row.optChoice;
        }
        if (row.altChoice != "none") {
            bool alt = row.altChoice.find("-Pess") != std::string::npos ||
                row.altChoice.find("-Ref") != std::string::npos;
            EXPECT_TRUE(alt) << row.altChoice;
        }
    }
}

TEST_F(StudiesTest, AreaEfficiencyLatencyAnticorrelation)
{
    auto arrays = studies::areaEfficiencyStudy();
    ASSERT_GT(arrays.size(), 50u);
    // Pool the per-cell correlation over STT (a representative tech).
    std::vector<double> aeff, lat;
    for (const auto &array : arrays) {
        if (array.cell.name != "STT-Opt")
            continue;
        aeff.push_back(array.areaEfficiency);
        lat.push_back(array.readLatency);
    }
    ASSERT_GT(aeff.size(), 5u);
    EXPECT_GT(pearson(aeff, lat), 0.2)
        << "lower area efficiency should mean lower latency";
}

TEST_F(StudiesTest, WriteBufferHelpsWriteLimitedCells)
{
    auto rows = studies::writeBufferStudy();
    double fefetPlain = -1.0, fefetMasked = -1.0;
    for (const auto &row : rows) {
        if (row.cell != "FeFET-Opt" || row.workload != "Facebook-BFS")
            continue;
        if (row.latencyMask == 0.0 && row.trafficReduction == 0.0)
            fefetPlain = row.latencyLoad;
        if (row.latencyMask == 1.0 && row.trafficReduction == 0.5)
            fefetMasked = row.latencyLoad;
    }
    ASSERT_GE(fefetPlain, 0.0);
    ASSERT_GE(fefetMasked, 0.0);
    EXPECT_LT(fefetMasked, fefetPlain / 4.0);
}

} // namespace
} // namespace nvmexp
