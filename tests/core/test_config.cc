#include <gtest/gtest.h>

#include <cstdlib>

#include "../support/fixtures.hh"
#include "core/config.hh"
#include "core/parallel_sweep.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace nvmexp {
namespace {

using testsupport::basicConfigJson;
using testsupport::minimalConfigJson;

class ConfigTest : public testsupport::QuietTest
{
};

TEST_F(ConfigTest, ResolvesNamedCells)
{
    EXPECT_EQ(resolveCellReference("SRAM").tech, CellTech::SRAM);
    MemCell sttOpt = resolveCellReference("STT-Opt");
    EXPECT_EQ(sttOpt.tech, CellTech::STT);
    EXPECT_EQ(sttOpt.flavor, CellFlavor::Optimistic);
    EXPECT_EQ(resolveCellReference("CTT-Opt").tech, CellTech::CTT);
    EXPECT_EQ(resolveCellReference("PCM-Pess").flavor,
              CellFlavor::Pessimistic);
    EXPECT_EQ(resolveCellReference("RRAM-Ref").flavor,
              CellFlavor::Reference);
    EXPECT_EQ(resolveCellReference("FeFET-BG").name, "FeFET-BG");
}

TEST_F(ConfigTest, ResolvesMlcSuffix)
{
    MemCell mlc = resolveCellReference("RRAM-Opt+MLC2");
    EXPECT_EQ(mlc.bitsPerCell, 2);
    EXPECT_NE(mlc.name.find("MLC"), std::string::npos);
}

TEST_F(ConfigTest, UnknownReferencesAreFatal)
{
    EXPECT_EXIT(resolveCellReference("Quantum-Opt"),
                ::testing::ExitedWithCode(1), "unknown cell");
    EXPECT_EXIT(resolveCellReference("bogus"),
                ::testing::ExitedWithCode(1), "unknown cell");
}

TEST_F(ConfigTest, LoadsFullSchema)
{
    ExperimentConfig config =
        loadExperiment(JsonValue::parse(basicConfigJson()));
    EXPECT_EQ(config.name, "unit-test-sweep");
    EXPECT_EQ(config.sweep.cells.size(), 2u);
    EXPECT_EQ(config.sweep.capacitiesBytes.size(), 2u);
    EXPECT_DOUBLE_EQ(config.sweep.capacitiesBytes[1],
                     8.0 * 1024 * 1024);
    EXPECT_EQ(config.sweep.targets.size(), 2u);
    EXPECT_EQ(config.sweep.traffics.size(), 2u);
    EXPECT_DOUBLE_EQ(config.sweep.traffics[1].readsPerSec, 2e6);
    EXPECT_TRUE(config.applyConstraints);
    // The legacy fixed-field object adapts onto declarative clauses:
    // latency load ceiling, lifetime floor, and the two bandwidth
    // requirements requireBandwidth implies.
    ASSERT_EQ(config.constraints.size(), 4u);
    const auto &lifetime = config.constraints.clauses()[1];
    EXPECT_EQ(lifetime.metric, "lifetime_sec");
    EXPECT_EQ(lifetime.op, metrics::ConstraintOp::GE);
    EXPECT_NEAR(lifetime.bound, 365.0 * 86400.0, 1.0);
}

TEST_F(ConfigTest, StudySetExpands)
{
    auto doc = JsonValue::parse(R"({
        "cells": ["study-set"],
        "capacities_mib": [2],
        "traffic": [{"name": "t", "reads": 1e5, "writes": 0}]
    })");
    ExperimentConfig config = loadExperiment(doc);
    EXPECT_EQ(config.sweep.cells.size(), 12u);
    // Defaults applied.
    EXPECT_EQ(config.sweep.targets.size(), 1u);
    EXPECT_EQ(config.sweep.wordBits, 512);
    EXPECT_FALSE(config.applyConstraints);
}

TEST_F(ConfigTest, GenericGridTrafficExpands)
{
    auto doc = JsonValue::parse(R"({
        "cells": ["STT-Opt"],
        "capacities_mib": [2],
        "word_bits": 64,
        "traffic": [{"kind": "generic_grid",
                     "read_lo": 1e9, "read_hi": 1e10,
                     "write_lo": 1e6, "write_hi": 1e8,
                     "steps": 3}]
    })");
    ExperimentConfig config = loadExperiment(doc);
    EXPECT_EQ(config.sweep.traffics.size(), 9u);
}

TEST_F(ConfigTest, CustomCellsOverrideBaseParameters)
{
    auto doc = JsonValue::parse(R"({
        "cells": [{"name": "hero", "base": "STT-Opt",
                   "write_pulse_ns": 1.0, "endurance": 1e16}],
        "capacities_mib": [2],
        "traffic": [{"name": "t", "reads": 1e5, "writes": 1e4}]
    })");
    ExperimentConfig config = loadExperiment(doc);
    ASSERT_EQ(config.sweep.cells.size(), 1u);
    EXPECT_EQ(config.sweep.cells[0].name, "hero");
    EXPECT_DOUBLE_EQ(config.sweep.cells[0].setPulse, 1e-9);
    EXPECT_DOUBLE_EQ(config.sweep.cells[0].endurance, 1e16);
}

TEST_F(ConfigTest, RunExperimentProducesDashboardRows)
{
    ExperimentConfig config =
        loadExperiment(JsonValue::parse(basicConfigJson()));
    config.applyConstraints = false;
    Table table = runExperiment(config);
    // 2 cells x 2 capacities x 2 targets x 2 traffics.
    EXPECT_EQ(table.numRows(), 16u);
    EXPECT_EQ(table.headers().front(), "Cell");
}

TEST_F(ConfigTest, ConstraintsFilterRows)
{
    ExperimentConfig config =
        loadExperiment(JsonValue::parse(basicConfigJson()));
    Table filtered = runExperiment(config);
    config.applyConstraints = false;
    Table all = runExperiment(config);
    EXPECT_LT(filtered.numRows(), all.numRows());
}

TEST_F(ConfigTest, ShippedConfigFilesLoad)
{
    for (const char *path : {"config/main_dnn_study.json",
                             "config/graph_scratchpad_study.json",
                             "config/llc_replacement_study.json",
                             "config/llc_refine_study.json",
                             "config/kv_store_study.json",
                             "config/wal_study.json",
                             "config/intermittent_dnn_study.json"}) {
        std::string full = std::string(NVMEXP_SOURCE_DIR) + "/" + path;
        ExperimentConfig config = loadExperimentFile(full);
        EXPECT_FALSE(config.sweep.cells.empty()) << path;
        EXPECT_TRUE(!config.sweep.traffics.empty() ||
                    !config.sweep.workloads.empty())
            << path;
    }
}

TEST_F(ConfigTest, WorkloadKeysThreadThroughToTheSweep)
{
    // Both the "workloads" array and the singular "workload" object
    // are accepted; specs are kept raw for the sweep engine to expand
    // through the registry.
    ExperimentConfig config = loadExperiment(JsonValue::parse(R"({
        "cells": ["SRAM"],
        "capacities_mib": [2],
        "workloads": [
            {"name": "kv-store", "zipf_skew": 0.8},
            {"name": "wal"}
        ],
        "workload": {"name": "dnn", "network": "resnet26"}
    })"));
    ASSERT_EQ(config.sweep.workloads.size(), 3u);
    EXPECT_TRUE(config.sweep.traffics.empty());
    EXPECT_EQ(config.sweep.workloads[0].at("name").asString(),
              "kv-store");
    EXPECT_EQ(config.sweep.workloads[2].at("name").asString(), "dnn");

    // The sweep expands them: 1 cell x 1 capacity x 1 target x
    // (1 kv + 2 wal + 1 dnn) patterns.
    auto results = runSweep(config.sweep);
    EXPECT_EQ(results.size(), 4u);
}

TEST_F(ConfigTest, WorkloadErrorsAreFatalAtLoadTime)
{
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("workloads": [{"name": "does-not-exist"}])"))),
        ::testing::ExitedWithCode(1), "unknown workload");

    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("workloads": [{"name": "kv-store", "zipf": 1}])"))),
        ::testing::ExitedWithCode(1), "unknown parameter");

    // A wrapper's nested spec is validated at load time too.
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("workloads": [{"name": "intermittent",
                              "inner": {"name": "nope"}}])"))),
        ::testing::ExitedWithCode(1), "unknown workload");
}

TEST_F(ConfigTest, ReliabilityBlockThreadsThroughToTheSweep)
{
    // Array-valued keys sweep: schemes x scrub intervals,
    // scheme-major, and the dashboard grows reliability columns.
    ExperimentConfig config =
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"ecc": ["none", "secded-72-64"],
                               "scrub_interval_sec": [0, 3600]})")));
    EXPECT_TRUE(config.showReliability);
    ASSERT_EQ(config.sweep.reliability.size(), 4u);
    EXPECT_EQ(config.sweep.reliability[0].ecc, "none");
    EXPECT_EQ(config.sweep.reliability[0].scrubIntervalSec, 0.0);
    EXPECT_EQ(config.sweep.reliability[1].scrubIntervalSec, 3600.0);
    EXPECT_EQ(config.sweep.reliability[2].ecc, "secded-72-64");

    // The "ecc" shorthand: one scheme name.
    ExperimentConfig shorthand =
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("ecc": "secded-72-64")")));
    EXPECT_TRUE(shorthand.showReliability);
    ASSERT_EQ(shorthand.sweep.reliability.size(), 1u);
    EXPECT_EQ(shorthand.sweep.reliability[0].ecc, "secded-72-64");
    EXPECT_EQ(shorthand.sweep.reliability[0].scrubIntervalSec, 0.0);

    // No block at all: no axis, no extra columns.
    ExperimentConfig bare =
        loadExperiment(JsonValue::parse(minimalConfigJson("")));
    EXPECT_FALSE(bare.showReliability);
    EXPECT_TRUE(bare.sweep.reliability.empty());
}

TEST_F(ConfigTest, ReliabilityErrorsAreFatalAtLoadTime)
{
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"ecc": "raid-z"})"))),
        ::testing::ExitedWithCode(1), "'raid-z' unknown");
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"scrub_interval_sec": -5})"))),
        ::testing::ExitedWithCode(1), "scrub interval");
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"ecc": []})"))),
        ::testing::ExitedWithCode(1), "empty");
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"scheme": "none"})"))),
        ::testing::ExitedWithCode(1), "unknown key 'scheme'");
    EXPECT_EXIT(
        loadExperiment(JsonValue::parse(minimalConfigJson(
            R"("reliability": {"ecc": "none"}, "ecc": "none")"))),
        ::testing::ExitedWithCode(1), "not both");
}

TEST_F(ConfigTest, ConfigWithoutTrafficOrWorkloadsIsFatal)
{
    EXPECT_EXIT(loadExperiment(JsonValue::parse(R"({
        "cells": ["SRAM"],
        "capacities_mib": [2]
    })")), ::testing::ExitedWithCode(1),
                "traffic.*patterns or .*workloads");
}

TEST_F(ConfigTest, JobsKeyValidatedLikeTheCliFlag)
{
    // Both input paths funnel through ThreadPool::jobsInRange, so the
    // JSON "jobs" key accepts exactly the --jobs range [0, kMaxThreads].
    auto configWithJobs = [](const std::string &jobs) {
        return JsonValue::parse(R"({
            "cells": ["SRAM"],
            "capacities_mib": [2],
            "traffic": [{"name": "t", "reads": 1}],
            "jobs": )" + jobs + "}");
    };

    for (const char *ok : {"0", "1", "256"}) {
        ExperimentConfig config = loadExperiment(configWithJobs(ok));
        EXPECT_EQ(config.sweep.jobs, std::atoi(ok)) << ok;
        EXPECT_TRUE(ThreadPool::jobsInRange(std::atof(ok))) << ok;
    }
    for (const char *bad : {"-1", "257", "1e9", "-0.5", "NaN"}) {
        EXPECT_FALSE(ThreadPool::jobsInRange(std::atof(bad))) << bad;
        EXPECT_EXIT(loadExperiment(configWithJobs(bad)),
                    ::testing::ExitedWithCode(1), "jobs")
            << bad;
    }
}

TEST_F(ConfigTest, StoreKeysThreadThroughToTheSweep)
{
    auto doc = JsonValue::parse(R"({
        "cells": ["SRAM"],
        "capacities_mib": [2],
        "traffic": [{"name": "t", "reads": 1}],
        "out_dir": "/tmp/nvmexp-store",
        "resume": true
    })");
    ExperimentConfig config = loadExperiment(doc);
    EXPECT_EQ(config.sweep.outDir, "/tmp/nvmexp-store");
    EXPECT_TRUE(config.sweep.resume);

    // Without store keys a config stays persistence-free — the
    // process-wide default (studies/bench/$NVMEXP_STORE_DIR hook) is
    // layered on by the CLI, never inside loadExperiment, so configs
    // loaded programmatically are unaffected by the environment.
    setDefaultSweepStoreDir("/tmp/nvmexp-default-store");
    ExperimentConfig plain =
        loadExperiment(JsonValue::parse(basicConfigJson()));
    EXPECT_TRUE(plain.sweep.outDir.empty());
    EXPECT_FALSE(plain.sweep.resume);
    EXPECT_EQ(defaultSweepStoreDir(), "/tmp/nvmexp-default-store");
    setDefaultSweepStoreDir("");
}

TEST_F(ConfigTest, BadConfigsAreFatal)
{
    EXPECT_EXIT(loadExperiment(JsonValue::parse(R"({
        "cells": [],
        "capacities_mib": [2],
        "traffic": [{"name": "t", "reads": 1}]
    })")), ::testing::ExitedWithCode(1), "no cells");

    EXPECT_EXIT(loadExperiment(JsonValue::parse(R"({
        "cells": ["SRAM"],
        "capacities_mib": [2],
        "traffic": [{"name": "t"}]
    })")), ::testing::ExitedWithCode(1), "byte rates or access");

    EXPECT_EXIT(loadExperiment(JsonValue::parse(R"({
        "cells": ["SRAM"],
        "capacities_mib": [2],
        "targets": ["FastestEver"],
        "traffic": [{"name": "t", "reads": 1}]
    })")), ::testing::ExitedWithCode(1), "unknown optimization");
}

TEST_F(ConfigTest, DeclarativeConstraintArrayLoads)
{
    ExperimentConfig config = loadExperiment(
        JsonValue::parse(minimalConfigJson(R"("constraints": [
            "total_power<0.5",
            {"metric": "lifetime_years", "op": ">=", "bound": 3}
        ])")));
    EXPECT_TRUE(config.applyConstraints);
    ASSERT_EQ(config.constraints.size(), 2u);
    EXPECT_EQ(config.constraints.clauses()[0].text(),
              "total_power<0.5");
    EXPECT_EQ(config.constraints.clauses()[1].metric,
              "lifetime_years");
    EXPECT_EQ(config.constraints.clauses()[1].op,
              metrics::ConstraintOp::GE);
}

TEST_F(ConfigTest, ParetoAndTopKeysLoad)
{
    ExperimentConfig config = loadExperiment(
        JsonValue::parse(minimalConfigJson(
            R"("pareto": ["total_power", "latency_load",
                          "read_latency"],
               "top_k": {"metric": "read_edp", "k": 4})")));
    ASSERT_EQ(config.paretoMetrics.size(), 3u);
    EXPECT_EQ(config.paretoMetrics[2], "read_latency");
    EXPECT_EQ(config.topMetric, "read_edp");
    EXPECT_EQ(config.topK, 4u);
}

TEST_F(ConfigTest, RunExperimentAppliesParetoAndTopK)
{
    // Unrefined baseline: 2 cells x 2 capacities x 2 targets x 2
    // traffics = 16 rows.
    ExperimentConfig config =
        loadExperiment(JsonValue::parse(basicConfigJson()));
    config.applyConstraints = false;
    Table all = runExperiment(config);

    config.paretoMetrics = {"total_power", "read_latency"};
    Table front = runExperiment(config);
    EXPECT_LT(front.numRows(), all.numRows());
    EXPECT_GE(front.numRows(), 1u);

    config.paretoMetrics.clear();
    config.topMetric = "total_power";
    config.topK = 3;
    Table top = runExperiment(config);
    EXPECT_EQ(top.numRows(), 3u);
}

TEST_F(ConfigTest, RefineKeyErrorPathsAreFatalAtLoadTime)
{
    // Unknown metric in each of the three keys.
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("constraints": ["warp_factor<1"])"))),
                ::testing::ExitedWithCode(1),
                "'warp_factor' unknown");
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("pareto": ["total_power", "warp_factor"])"))),
                ::testing::ExitedWithCode(1),
                "'warp_factor' unknown");
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("top_k": {"metric": "warp_factor", "k": 3})"))),
                ::testing::ExitedWithCode(1),
                "'warp_factor' unknown");

    // Bad operator and malformed bound carry the config context.
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("constraints": [{"metric": "total_power",
                        "op": "~", "bound": 1}])"))),
                ::testing::ExitedWithCode(1), "operator '~' unknown");
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("constraints": ["total_power<fast"])"))),
                ::testing::ExitedWithCode(1), "not a number");

    // top_k needs a positive integer k.
    for (const char *k : {"0", "-2", "2.5"}) {
        EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                        std::string(R"("top_k": {"metric":
                            "total_power", "k": )") + k + "}"))),
                    ::testing::ExitedWithCode(1), "positive integer")
            << k;
    }

    // An empty pareto list is rejected.
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("pareto": [])"))),
                ::testing::ExitedWithCode(1), "at least one metric");

    // "constraints" must be the clause array or the legacy object —
    // a bare string must not silently load as the default filter.
    EXPECT_EXIT(loadExperiment(JsonValue::parse(minimalConfigJson(
                    R"("constraints": "total_power<0.5")"))),
                ::testing::ExitedWithCode(1),
                "array of clauses or a legacy");
}

} // namespace
} // namespace nvmexp
