#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../support/fixtures.hh"
#include "celldb/tentpole.hh"
#include "core/parallel_sweep.hh"
#include "core/sweep.hh"
#include "util/random.hh"

namespace nvmexp {
namespace {

using testsupport::wideSweep;

/** Exact (bitwise, via operator==) equality across every field that
 *  identifies an EvalResult and every metric it carries. */
void
expectIdentical(const std::vector<EvalResult> &lhs,
                const std::vector<EvalResult> &rhs)
{
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        SCOPED_TRACE("result " + std::to_string(i));
        const EvalResult &a = lhs[i];
        const EvalResult &b = rhs[i];
        EXPECT_EQ(a.array.cell.name, b.array.cell.name);
        EXPECT_EQ(a.array.capacityBytes, b.array.capacityBytes);
        EXPECT_EQ(a.array.readLatency, b.array.readLatency);
        EXPECT_EQ(a.array.writeLatency, b.array.writeLatency);
        EXPECT_EQ(a.array.areaM2, b.array.areaM2);
        EXPECT_EQ(a.traffic.name, b.traffic.name);
        EXPECT_EQ(a.dynamicPower, b.dynamicPower);
        EXPECT_EQ(a.leakagePower, b.leakagePower);
        EXPECT_EQ(a.totalPower, b.totalPower);
        EXPECT_EQ(a.latencyLoad, b.latencyLoad);
        EXPECT_EQ(a.slowdown, b.slowdown);
        EXPECT_EQ(a.totalAccessLatency, b.totalAccessLatency);
        EXPECT_EQ(a.meetsReadBandwidth, b.meetsReadBandwidth);
        EXPECT_EQ(a.meetsWriteBandwidth, b.meetsWriteBandwidth);
        EXPECT_EQ(a.lifetimeSec, b.lifetimeSec);
    }
}

TEST(ParallelSweep, OneAndManyThreadsProduceIdenticalOrderings)
{
    SweepConfig sweep = wideSweep();
    auto serial = ParallelSweepRunner(1).run(sweep);
    ASSERT_EQ(serial.size(),
              4u * 2u * 2u * 3u);  // cells x caps x targets x traffics
    for (int jobs : {2, 4, 8}) {
        SCOPED_TRACE("jobs=" + std::to_string(jobs));
        expectIdentical(serial, ParallelSweepRunner(jobs).run(sweep));
    }
}

TEST(ParallelSweep, MatchesSerialRunSweepEntryPoint)
{
    SweepConfig sweep = wideSweep();
    sweep.jobs = 1;
    auto serial = runSweep(sweep);
    sweep.jobs = 4;
    expectIdentical(serial, runSweep(sweep));
}

TEST(ParallelSweep, CharacterizeOrderingIsThreadCountInvariant)
{
    SweepConfig sweep = wideSweep();
    auto serial = ParallelSweepRunner(1).characterize(sweep);
    auto parallel = ParallelSweepRunner(8).characterize(sweep);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].cell.name, parallel[i].cell.name);
        EXPECT_EQ(serial[i].capacityBytes, parallel[i].capacityBytes);
        EXPECT_EQ(serial[i].readLatency, parallel[i].readLatency);
        EXPECT_EQ(serial[i].areaM2, parallel[i].areaM2);
    }
}

/** Repeated parallel runs over Rng-seeded traffic must be
 *  deterministic: same seed => byte-identical result sequence. */
TEST(ParallelSweep, SeededTrafficRunsAreDeterministic)
{
    auto buildSweep = [](std::uint64_t seed) {
        Rng rng(seed);
        SweepConfig sweep = wideSweep();
        sweep.traffics.clear();
        for (int i = 0; i < 6; ++i) {
            sweep.traffics.push_back(TrafficPattern::fromByteRates(
                "rand" + std::to_string(i),
                1e8 + rng.uniform() * 10e9, rng.uniform() * 1e9, 512));
        }
        return sweep;
    };
    auto first = ParallelSweepRunner(4).run(buildSweep(0xD5EEDull));
    auto second = ParallelSweepRunner(4).run(buildSweep(0xD5EEDull));
    expectIdentical(first, second);

    // A different seed must actually change the workload (guards
    // against the generator silently ignoring the seed).
    auto other = ParallelSweepRunner(4).run(buildSweep(0xBEEFull));
    ASSERT_EQ(other.size(), first.size());
    bool anyDifferent = false;
    for (std::size_t i = 0; i < first.size(); ++i)
        if (first[i].totalPower != other[i].totalPower)
            anyDifferent = true;
    EXPECT_TRUE(anyDifferent);
}

TEST(ParallelSweep, EvaluateAllIsArrayMajor)
{
    SweepConfig sweep = wideSweep();
    ParallelSweepRunner runner(4);
    auto arrays = runner.characterize(sweep);
    auto evals = runner.evaluateAll(arrays, sweep.traffics);
    ASSERT_EQ(evals.size(), arrays.size() * sweep.traffics.size());
    for (std::size_t i = 0; i < evals.size(); ++i) {
        EXPECT_EQ(evals[i].array.cell.name,
                  arrays[i / sweep.traffics.size()].cell.name);
        EXPECT_EQ(evals[i].traffic.name,
                  sweep.traffics[i % sweep.traffics.size()].name);
    }
}

TEST(ParallelSweep, OptimizeAllKeepsCellOrder)
{
    CellCatalog catalog;
    auto cells = catalog.studyCells();
    auto arrays = ParallelSweepRunner(4).optimizeAll(
        cells, 2.0 * 1024 * 1024, 512, OptTarget::ReadEDP);
    ASSERT_EQ(arrays.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(arrays[i].cell.name, cells[i].name);
}

TEST(ParallelSweep, DefaultJobsRoundTrip)
{
    int before = defaultSweepJobs();
    setDefaultSweepJobs(3);
    EXPECT_EQ(defaultSweepJobs(), 3);
    setDefaultSweepJobs(0);  // all hardware threads
    EXPECT_GE(defaultSweepJobs(), 1);
    setDefaultSweepJobs(before);
}

} // namespace
} // namespace nvmexp
