#include <gtest/gtest.h>

#include "celldb/tentpole.hh"
#include "core/sweep.hh"

namespace nvmexp {
namespace {

EvalResult
makeResult()
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 2.0 * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT), config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);
    auto traffic = TrafficPattern::fromByteRates("t", 2e9, 2e7, 512);
    return evaluate(array, traffic);
}

TEST(Filters, UnconstrainedPasses)
{
    EvalResult r = makeResult();
    Constraints c;
    EXPECT_TRUE(satisfies(r, c));
}

TEST(Filters, PowerBudget)
{
    EvalResult r = makeResult();
    Constraints c;
    c.maxPowerWatts = r.totalPower / 2.0;
    EXPECT_FALSE(satisfies(r, c));
    c.maxPowerWatts = r.totalPower * 2.0;
    EXPECT_TRUE(satisfies(r, c));
}

TEST(Filters, AreaBudget)
{
    EvalResult r = makeResult();
    Constraints c;
    c.maxAreaM2 = r.array.areaM2 * 0.5;
    EXPECT_FALSE(satisfies(r, c));
}

TEST(Filters, LifetimeFloor)
{
    EvalResult r = makeResult();
    Constraints c;
    c.minLifetimeSec = r.lifetimeSec * 2.0;
    EXPECT_FALSE(satisfies(r, c));
    c.minLifetimeSec = r.lifetimeSec / 2.0;
    EXPECT_TRUE(satisfies(r, c));
}

TEST(Filters, LatencyCeilings)
{
    EvalResult r = makeResult();
    Constraints c;
    c.maxReadLatency = r.array.readLatency / 2.0;
    EXPECT_FALSE(satisfies(r, c));
    c = Constraints{};
    c.maxWriteLatency = r.array.writeLatency / 2.0;
    EXPECT_FALSE(satisfies(r, c));
}

TEST(Filters, LatencyLoadCeiling)
{
    EvalResult r = makeResult();
    Constraints c;
    c.maxLatencyLoad = r.latencyLoad / 2.0;
    EXPECT_FALSE(satisfies(r, c));
}

TEST(Filters, BandwidthRequirementToggle)
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 2.0 * 1024 * 1024;
    ArrayDesigner designer(catalog.pessimistic(CellTech::FeFET),
                           config);
    ArrayResult slow = designer.optimize(OptTarget::ReadEDP);
    auto heavy = TrafficPattern::fromByteRates(
        "w", 1e9, slow.writeBandwidth * 4.0, 512);
    EvalResult r = evaluate(slow, heavy);
    ASSERT_FALSE(r.meetsWriteBandwidth);
    Constraints c;
    c.maxLatencyLoad = -1.0;  // disable the load ceiling
    EXPECT_FALSE(satisfies(r, c));
    c.requireBandwidth = false;
    EXPECT_TRUE(satisfies(r, c));
}

TEST(Filters, FilterResultsKeepsOrder)
{
    EvalResult r = makeResult();
    std::vector<EvalResult> all = {r, r, r};
    Constraints none;
    EXPECT_EQ(filterResults(all, none).size(), 3u);
    Constraints impossible;
    impossible.maxPowerWatts = 1e-12;
    EXPECT_TRUE(filterResults(all, impossible).empty());
}

} // namespace
} // namespace nvmexp
