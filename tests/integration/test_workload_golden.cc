/**
 * @file
 * Golden-file regression for the new scenario generators: a reference
 * sweep whose traffic comes entirely from registry workloads (KV
 * store, WAL, intermittent-wrapped KV) with serialized results
 * committed under tests/data/. Any change to the generators' traffic
 * models — or to the registry expansion path — shows up as a
 * structural diff.
 *
 * To intentionally re-baseline after a deliberate model change:
 *   NVMEXP_REGOLD=1 build/tests/integration_test_workload_golden
 * and commit the rewritten tests/data/golden_workloads.json.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "../support/fixtures.hh"
#include "../support/golden_compare.hh"
#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "store/serialize.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace {

const char *kGoldenRelPath = "tests/data/golden_workloads.json";

std::string
goldenPath()
{
    return std::string(NVMEXP_SOURCE_DIR) + "/" + kGoldenRelPath;
}

/** 2 cells x 1 capacity x 1 target, traffic entirely from workload
 *  specs: 1 KV + 2 WAL + 1 duty-cycled KV = 8 evaluation rows. */
SweepConfig
workloadReferenceSweep()
{
    CellCatalog catalog;
    SweepConfig config;
    config.cells = {catalog.optimistic(CellTech::STT),
                    catalog.pessimistic(CellTech::PCM)};
    config.capacitiesBytes = {4.0 * 1024 * 1024};
    config.targets = {OptTarget::ReadEDP};
    config.workloads = {
        JsonValue::parse(
            R"({"name": "kv-store", "ops_per_sec": 1.5e6,
                "get_fraction": 0.9, "zipf_skew": 0.99,
                "key_count": 2e6, "value_bytes": 256,
                "cache_mib": 8})"),
        JsonValue::parse(
            R"({"name": "wal", "commits_per_sec": 4e4,
                "record_bytes": 128, "group_commit": 8,
                "checkpoint_period_sec": 20, "snapshot_mib": 2})"),
        JsonValue::parse(
            R"({"name": "intermittent", "duty_cycle": 0.2,
                "period_sec": 0.5, "restore_mib": 0.5,
                "mode": "catch-up",
                "inner": {"name": "kv-store", "ops_per_sec": 2e5,
                          "cache_mib": 0}})"),
    };
    config.jobs = 4;
    return config;
}

class WorkloadGolden : public testsupport::QuietTest
{
};

TEST_F(WorkloadGolden, NewWorkloadMetricsMatchTheCommittedReference)
{
    auto results = runSweep(workloadReferenceSweep());
    ASSERT_EQ(results.size(), 2u * 4u);  // cells x patterns
    JsonValue current = store::toJson(results);

    if (std::getenv("NVMEXP_REGOLD")) {
        current.writeFile(goldenPath());
        GTEST_SKIP() << "regenerated " << kGoldenRelPath;
    }

    JsonValue golden = JsonValue::parseFile(goldenPath());
    std::vector<std::string> diffs;
    // Tolerance 0: generators are deterministic and the store
    // serializes doubles exactly, so any drift is a real change to a
    // traffic model.
    bool same = testsupport::jsonNear(golden, current, 0.0, diffs);
    for (const auto &diff : diffs)
        ADD_FAILURE() << diff;
    EXPECT_TRUE(same)
        << "workload reference sweep diverged from " << kGoldenRelPath
        << "; if intentional, regenerate with NVMEXP_REGOLD=1";
}

TEST_F(WorkloadGolden, WorkloadSweepSurvivesStoreRoundTrip)
{
    if (std::getenv("NVMEXP_REGOLD"))
        GTEST_SKIP() << "regeneration run";

    // Persisted workload-driven results reload bit-identically: the
    // expanded patterns flow through the same serialization the
    // explicit-traffic path uses.
    auto results = runSweep(workloadReferenceSweep());
    JsonValue encoded = store::toJson(results);
    auto decoded = store::evalResultsFromJson(
        JsonValue::parse(encoded.dump(-1)));
    ASSERT_EQ(decoded.size(), results.size());
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_TRUE(store::identical(results[i], decoded[i])) << i;
}

} // namespace
} // namespace nvmexp
