/**
 * @file
 * End-to-end integration: exercise the full NVMExplorer-CPP pipeline
 * the way a user would — survey extension, tentpoles, array search,
 * workload substrates, analytical evaluation, and fault injection —
 * checking cross-module consistency along the way.
 */

#include <gtest/gtest.h>

#include "cachesim/streams.hh"
#include "celldb/tentpole.hh"
#include "core/sweep.hh"
#include "metrics/constraints.hh"
#include "metrics/refine.hh"
#include "dnn/inference.hh"
#include "dnn/networks.hh"
#include "fault/injector.hh"
#include "graph/kernels.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace {

class EndToEndTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

TEST_F(EndToEndTest, CustomSurveyEntryFlowsToArrayResults)
{
    // A user adds their own published cell...
    SurveyDatabase db;
    SurveyEntry entry;
    entry.label = "user-RRAM-2026";
    entry.tech = CellTech::RRAM;
    entry.nodeNm = 22;
    entry.areaF2 = 12.0;  // denser than every built-in RRAM
    entry.writePulseNs = 8.0;
    entry.endurance = 1e9;
    db.addEntry(entry);

    // ...and the tentpole machinery picks it up as the new optimist.
    TentpoleBuilder builder(db);
    MemCell opt = builder.optimistic(CellTech::RRAM);
    EXPECT_DOUBLE_EQ(opt.areaF2, 12.0);
    EXPECT_DOUBLE_EQ(opt.setPulse, 8e-9);

    ArrayConfig config;
    config.capacityBytes = 4.0 * 1024 * 1024;
    ArrayDesigner designer(opt, config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);
    EXPECT_GT(array.densityMbPerMm2(), 0.0);
}

TEST_F(EndToEndTest, DnnTrafficThroughSweepAndFilters)
{
    DnnScenario scenario;
    scenario.network = resnet26();
    scenario.framesPerSec = 60.0;

    CellCatalog catalog;
    SweepConfig sweep;
    sweep.cells = catalog.studyCells();
    sweep.capacitiesBytes = {2.0 * 1024 * 1024};
    sweep.traffics = {dnnTraffic(scenario)};
    auto results = runSweep(sweep);
    ASSERT_EQ(results.size(), 12u);

    // Default legacy constraints and their declarative equivalent
    // agree row-for-row...
    Constraints c;
    auto viable = filterResults(results, c);
    EXPECT_GE(viable.size(), 8u);  // most cells sustain weights@60FPS
    metrics::ConstraintSet declarative;
    declarative.add("latency_load<=1.0");
    declarative.add("meets_read_bw>=1");
    declarative.add("meets_write_bw>=1");
    EXPECT_EQ(declarative.filter(results).size(), viable.size());

    // ...and the named-metric best matches the hand-written lambda.
    const EvalResult *lowest = bestBy(
        viable, [](const EvalResult &r) { return r.totalPower; });
    ASSERT_NE(lowest, nullptr);
    EXPECT_NE(lowest->array.cell.name, "SRAM");
    EXPECT_EQ(metrics::bestByMetric(viable, "total_power"), lowest);
}

TEST_F(EndToEndTest, GraphKernelToLifetimeProjection)
{
    Graph g = facebookLike();
    BfsResult r = bfs(g, 0);
    GraphAccelModel accel;
    TrafficPattern traffic = kernelTraffic("bfs", r.stats, accel);

    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 8.0 * 1024 * 1024;
    config.wordBits = accel.scratchWordBits;
    ArrayDesigner designer(catalog.optimistic(CellTech::RRAM), config);
    ArrayResult array = designer.optimize(OptTarget::ReadEDP);
    EvalResult ev = evaluate(array, traffic);
    // RRAM under sustained BFS writes wears out in well under the
    // 10-year deployment bar.
    EXPECT_LT(ev.lifetimeYears(), 10.0);
    EXPECT_GT(ev.lifetimeYears(), 0.0);
}

TEST_F(EndToEndTest, CacheSimFeedsLlcEvaluation)
{
    Hierarchy::Config hconfig;
    LlcTraffic llc = runBenchmark(profileByName("mcf"), 1'000'000,
                                  200'000, hconfig);
    TrafficPattern traffic = llcTrafficPattern(llc);

    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 16.0 * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(CellTech::STT), config);
    EvalResult ev = evaluate(designer.optimize(OptTarget::ReadEDP),
                             traffic);
    EXPECT_TRUE(ev.viable());
    EXPECT_GT(ev.dynamicPower, 0.0);
}

TEST_F(EndToEndTest, FaultPipelineMatchesModelRates)
{
    CellCatalog catalog;
    MemCell mlc = catalog.optimistic(CellTech::FeFET).makeMlc();
    FaultModel model(mlc);

    SyntheticTask task(16, 4, 800, 400, 3);
    Mlp mlp({16, 32, 4}, 4);
    mlp.train(task, 8, 0.03);
    QuantizedMlp q = mlp.quantize();
    double clean = q.accuracy(task.testX(), task.testY());

    FaultInjector injector(model, 5);
    std::size_t flips = injector.inject(q.weightImage());
    double corrupted = q.accuracy(task.testX(), task.testY());
    EXPECT_GT(flips, 0u);
    EXPECT_LE(corrupted, clean);
}

TEST_F(EndToEndTest, EvaluateIsDeterministic)
{
    CellCatalog catalog;
    ArrayConfig config;
    config.capacityBytes = 2.0 * 1024 * 1024;
    ArrayDesigner designer(catalog.optimistic(CellTech::PCM), config);
    ArrayResult a = designer.optimize(OptTarget::WriteEDP);
    ArrayResult b = designer.optimize(OptTarget::WriteEDP);
    EXPECT_DOUBLE_EQ(a.readLatency, b.readLatency);
    EXPECT_DOUBLE_EQ(a.writeEnergy, b.writeEnergy);
    EXPECT_EQ(a.org.banks, b.org.banks);
    EXPECT_EQ(a.org.subarray.rows, b.org.subarray.rows);
}

} // namespace
} // namespace nvmexp
