/**
 * @file
 * The paper's headline qualitative claims, asserted against the
 * reproduction. Each test names the exhibit it guards. These are the
 * "shape" checks EXPERIMENTS.md reports on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/studies.hh"
#include "util/logging.hh"

namespace nvmexp {
namespace {

class PaperClaimsTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }

    static std::map<std::string, ArrayResult>
    arraysByName(const std::vector<ArrayResult> &arrays)
    {
        std::map<std::string, ArrayResult> out;
        for (const auto &array : arrays)
            out.emplace(array.cell.name, array);
        return out;
    }
};

TEST_F(PaperClaimsTest, Fig3_WriteCharacteristicsSpanDecades)
{
    auto arrays = arraysByName(studies::dnnBufferArrays(4 << 20));
    double fastest = 1e9, slowest = 0.0;
    for (const auto &[name, array] : arrays) {
        if (name == "SRAM")
            continue;
        fastest = std::min(fastest, array.writeLatency);
        slowest = std::max(slowest, array.writeLatency);
    }
    EXPECT_GT(slowest / fastest, 1e3);
}

TEST_F(PaperClaimsTest, Fig5_ReadEnergyTiers)
{
    auto arrays = arraysByName(studies::dnnBufferArrays());
    double sram = arrays.at("SRAM").readEnergy;
    // Tier 1: STT, PCM, RRAM below SRAM.
    EXPECT_LT(arrays.at("STT-Opt").readEnergy, sram);
    EXPECT_LT(arrays.at("PCM-Opt").readEnergy, sram);
    EXPECT_LT(arrays.at("RRAM-Opt").readEnergy, sram);
    // Tier 2: FeFET-based cells above SRAM.
    EXPECT_GT(arrays.at("FeFET-Opt").readEnergy, sram);
    EXPECT_GT(arrays.at("FeFET-Pess").readEnergy, sram);
}

TEST_F(PaperClaimsTest, Fig5_PessimisticPcmIsTheReadLatencyOutlier)
{
    auto arrays = arraysByName(studies::dnnBufferArrays());
    double pcmPess = arrays.at("PCM-Pess").readLatency;
    for (const auto &[name, array] : arrays) {
        if (name != "PCM-Pess") {
            EXPECT_LT(array.readLatency, pcmPess) << name;
        }
    }
}

TEST_F(PaperClaimsTest, Fig5_DensityHeadlines)
{
    auto arrays = arraysByName(studies::dnnBufferArrays());
    double sram = arrays.at("SRAM").densityMbPerMm2();
    double stt = arrays.at("STT-Opt").densityMbPerMm2();
    double fefet = arrays.at("FeFET-Opt").densityMbPerMm2();
    // "optimistic STT offers ~6x higher density over SRAM"
    EXPECT_GT(stt / sram, 4.0);
    EXPECT_LT(stt / sram, 9.0);
    // "optimistic FeFET offers the highest storage density"
    for (const auto &[name, array] : arrays)
        EXPECT_LE(array.densityMbPerMm2(), fefet) << name;
}

TEST_F(PaperClaimsTest, Fig6_EnvmsBeatSramPowerByOver4x)
{
    double sram = 0.0;
    std::map<std::string, double> power;
    for (const auto &row : studies::dnnContinuousPower()) {
        if (row.scenario != "single/weights")
            continue;
        if (row.cell == "SRAM")
            sram = row.totalPowerW;
        else
            power[row.cell] = row.totalPowerW;
    }
    ASSERT_GT(sram, 0.0);
    for (const char *cell : {"PCM-Opt", "RRAM-Opt", "STT-Opt"})
        EXPECT_GT(sram / power.at(cell), 4.0) << cell;
}

TEST_F(PaperClaimsTest, Fig6_HighTrafficFavorsSttOverFefet)
{
    // Under the heaviest continuous scenario (multi-task with
    // activations) FeFET's expensive reads cost it the power crown;
    // STT is the efficient high-traffic option, as in the paper.
    std::map<std::string, double> power;
    for (const auto &row : studies::dnnContinuousPower())
        if (row.scenario == "multi/w+a")
            power[row.cell] = row.totalPowerW;
    EXPECT_GT(power.at("FeFET-Opt"), power.at("STT-Opt"));
}

TEST_F(PaperClaimsTest, Fig6_WriteHeavyScenarioExcludesSlowCells)
{
    int excluded = 0;
    for (const auto &row : studies::dnnContinuousPower()) {
        if (row.scenario != "multi/w+a")
            continue;
        if (row.cell == "CTT-Opt" || row.cell == "CTT-Pess" ||
            row.cell == "PCM-Pess" || row.cell == "RRAM-Pess") {
            EXPECT_FALSE(row.meetsFps) << row.cell;
            ++excluded;
        }
        if (row.cell == "STT-Opt") {
            EXPECT_TRUE(row.meetsFps);
        }
    }
    EXPECT_EQ(excluded, 4);
}

TEST_F(PaperClaimsTest, Fig7_FefetToSttCrossover)
{
    std::vector<double> rates = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
    auto rows = studies::dnnIntermittentEnergy(rates);
    auto energyAt = [&](const std::string &cell, double rate,
                        const std::string &task) {
        for (const auto &row : rows)
            if (row.cell == cell && row.eventsPerDay == rate &&
                row.task == task)
                return row.energyPerDay;
        ADD_FAILURE() << "missing row";
        return 0.0;
    };
    // Image classification: FeFET wins at low rates, STT at high.
    EXPECT_LT(energyAt("FeFET-Opt", 1e2, "img-single"),
              energyAt("STT-Opt", 1e2, "img-single"));
    EXPECT_LT(energyAt("STT-Opt", 1e7, "img-single"),
              energyAt("FeFET-Opt", 1e7, "img-single"));

    // The crossover happens at a LOWER rate for ALBERT than for
    // ResNet26 (more accesses per inference).
    auto crossover = [&](const std::string &task) {
        for (double rate : rates)
            if (energyAt("STT-Opt", rate, task) <
                energyAt("FeFET-Opt", rate, task))
                return rate;
        return 1e99;
    };
    EXPECT_LT(crossover("nlp-single"), crossover("img-single"));
}

TEST_F(PaperClaimsTest, Fig8_GraphHeadlines)
{
    auto study = studies::graphStudy();
    // STT offers the best projected lifetime and RRAM the worst among
    // viable optimistic eNVMs (kernel points).
    std::map<std::string, double> lifetime;
    std::map<std::string, double> power;
    for (const auto &ev : study.kernels) {
        if (ev.traffic.name != "Wikipedia-BFS")
            continue;
        lifetime[ev.array.cell.name] = ev.lifetimeSec;
        power[ev.array.cell.name] = ev.totalPower;
    }
    EXPECT_GT(lifetime.at("STT-Opt"), lifetime.at("PCM-Opt"));
    EXPECT_GT(lifetime.at("PCM-Opt"), lifetime.at("RRAM-Opt"));
    // eNVMs deliver the paper's ~2-10x power win over SRAM.
    EXPECT_GT(power.at("SRAM") / power.at("STT-Opt"), 2.0);
    // Pessimistic FeFET cannot keep up with the write traffic.
    for (const auto &ev : study.kernels) {
        if (ev.array.cell.name == "FeFET-Pess") {
            EXPECT_FALSE(ev.viable());
        }
    }
}

TEST_F(PaperClaimsTest, Fig8_LowReadRatePowerWinnerIsFeFet)
{
    auto study = studies::graphStudy();
    // At the lowest generic read rate, optimistic FeFET is the lowest
    // power eNVM; at the highest rate optimistic STT wins.
    double loRate = 1e99, hiRate = 0.0;
    for (const auto &ev : study.generic) {
        loRate = std::min(loRate, ev.traffic.readsPerSec);
        hiRate = std::max(hiRate, ev.traffic.readsPerSec);
    }
    std::map<std::string, double> lo, hi;
    for (const auto &ev : study.generic) {
        if (ev.traffic.readsPerSec == loRate)
            lo.try_emplace(ev.array.cell.name, ev.totalPower);
        if (ev.traffic.readsPerSec == hiRate)
            hi.try_emplace(ev.array.cell.name, ev.totalPower);
    }
    EXPECT_LT(lo.at("FeFET-Opt"), lo.at("STT-Opt"));
    EXPECT_LT(lo.at("FeFET-Opt"), lo.at("PCM-Opt"));
    EXPECT_LT(hi.at("STT-Opt"), hi.at("FeFET-Opt"));
}

TEST_F(PaperClaimsTest, Fig9_SttWinsHighTrafficLlc)
{
    auto study = studies::llcStudy();
    // For the highest-traffic benchmark, STT provides the lowest
    // power, lowest latency load, and longest lifetime among eNVMs.
    const EvalResult *heaviest = nullptr;
    for (const auto &ev : study.evals)
        if (!heaviest ||
            ev.traffic.readsPerSec > heaviest->traffic.readsPerSec)
            heaviest = &ev;
    ASSERT_NE(heaviest, nullptr);
    std::string heavyBench = heaviest->traffic.name;
    std::map<std::string, const EvalResult *> at;
    for (const auto &ev : study.evals)
        if (ev.traffic.name == heavyBench)
            at[ev.array.cell.name] = &ev;
    for (const char *cell : {"PCM-Opt", "RRAM-Opt", "FeFET-Opt"}) {
        EXPECT_LE(at.at("STT-Opt")->totalPower,
                  at.at(cell)->totalPower) << cell;
        EXPECT_LE(at.at("STT-Opt")->latencyLoad,
                  at.at(cell)->latencyLoad) << cell;
        EXPECT_GE(at.at("STT-Opt")->lifetimeSec,
                  at.at(cell)->lifetimeSec) << cell;
    }
}

TEST_F(PaperClaimsTest, Fig9_RramNotViableAsLlcLongTerm)
{
    auto study = studies::llcStudy();
    // "RRAM does not appear viable as an LLC": lifetime under a year
    // for every benchmark with meaningful write traffic.
    int checked = 0;
    for (const auto &ev : study.evals) {
        if (ev.array.cell.name != "RRAM-Opt")
            continue;
        if (ev.traffic.writesPerSec < 1e6)
            continue;  // near-idle benchmarks wear nothing
        EXPECT_LT(ev.lifetimeYears(), 1.0) << ev.traffic.name;
        ++checked;
    }
    EXPECT_GE(checked, 5);
}

TEST_F(PaperClaimsTest, Fig11_BackGatedFefetClosesThePerformanceGap)
{
    auto study = studies::bgFefetStudy();
    double bgWorst = 0.0, pessWorst = 0.0, sramWorst = 0.0;
    for (const auto &ev : study.generic) {
        double load = ev.latencyLoad;
        if (ev.array.cell.name == "FeFET-BG")
            bgWorst = std::max(bgWorst, load);
        if (ev.array.cell.name == "FeFET-Pess")
            pessWorst = std::max(pessWorst, load);
        if (ev.array.cell.name == "SRAM")
            sramWorst = std::max(sramWorst, load);
    }
    // BG-FeFET holds SRAM-comparable latency loads where prior FeFETs
    // fall far behind.
    EXPECT_LT(bgWorst, pessWorst / 5.0);
    EXPECT_LT(bgWorst, 10.0 * sramWorst);

    // BG-FeFET is the best FeFET on the Wikipedia BFS kernel point
    // and the lowest-power cell overall at the low end of the read
    // range (the leakage-dominated regime its density wins).
    std::map<std::string, double> kernelPower;
    for (const auto &ev : study.kernels)
        if (ev.traffic.name == "Wikipedia-BFS")
            kernelPower[ev.array.cell.name] = ev.totalPower;
    EXPECT_LT(kernelPower.at("FeFET-BG"),
              kernelPower.at("FeFET-Pess"));
    EXPECT_LT(kernelPower.at("FeFET-BG"),
              kernelPower.at("SRAM"));

    double loRate = 1e99;
    for (const auto &ev : study.generic)
        loRate = std::min(loRate, ev.traffic.readsPerSec);
    std::map<std::string, double> lo;
    for (const auto &ev : study.generic)
        if (ev.traffic.readsPerSec == loRate)
            lo.try_emplace(ev.array.cell.name, ev.totalPower);
    for (const auto &[name, power] : lo) {
        if (name != "FeFET-BG" && name != "FeFET-Opt") {
            EXPECT_LE(lo.at("FeFET-BG"), power) << name;
        }
    }
}

TEST_F(PaperClaimsTest, Fig13_MlcReliabilityIsTechnologySpecific)
{
    auto rows = studies::mlcFaultStudy(2);
    bool sawRramMlc = false, sawSmallFefetMlc = false,
         sawLargeFefetMlc = false;
    for (const auto &row : rows) {
        if (row.bitsPerCell != 2)
            continue;
        if (row.cell.find("RRAM") != std::string::npos) {
            EXPECT_TRUE(row.meetsAccuracy) << row.cell;
            sawRramMlc = true;
        }
        if (row.cell == "FeFET-Opt-MLC2") {  // 4 F^2: too variable
            EXPECT_FALSE(row.meetsAccuracy);
            sawSmallFefetMlc = true;
        }
        if (row.cell == "FeFET-Pess-MLC2") {  // 103 F^2: acceptable
            EXPECT_TRUE(row.meetsAccuracy);
            sawLargeFefetMlc = true;
        }
    }
    EXPECT_TRUE(sawRramMlc);
    EXPECT_TRUE(sawSmallFefetMlc);
    EXPECT_TRUE(sawLargeFefetMlc);
}

TEST_F(PaperClaimsTest, Fig13_MlcDoublesDensity)
{
    auto rows = studies::mlcFaultStudy(1);
    std::map<std::string, double> density;
    for (const auto &row : rows)
        if (row.capacityBytes > 9e6)
            density[row.cell] = row.densityMbPerMm2;
    EXPECT_GT(density.at("RRAM-Opt-MLC2"), 1.5 * density.at("RRAM-Opt"));
}

TEST_F(PaperClaimsTest, Fig14_WriteBufferingBroadensViability)
{
    auto rows = studies::writeBufferStudy();
    // STT remains the lowest-power viable option for Facebook-BFS
    // even without buffering; FeFET's latency load collapses once
    // writes are masked.
    double sttPlain = -1.0, fefetPlain = -1.0, fefetMasked = -1.0;
    for (const auto &row : rows) {
        if (row.workload != "Facebook-BFS")
            continue;
        if (row.latencyMask == 0.0 && row.trafficReduction == 0.0) {
            if (row.cell == "STT-Opt")
                sttPlain = row.totalPowerW;
            if (row.cell == "FeFET-Opt")
                fefetPlain = row.latencyLoad;
        }
        if (row.cell == "FeFET-Opt" && row.latencyMask == 1.0 &&
            row.trafficReduction == 0.5) {
            fefetMasked = row.latencyLoad;
        }
    }
    ASSERT_GT(sttPlain, 0.0);
    EXPECT_LT(fefetMasked, fefetPlain / 4.0);
    for (const auto &row : rows) {
        if (row.workload == "Facebook-BFS" && row.latencyMask == 0.0 &&
            row.trafficReduction == 0.0 && row.cell != "SRAM") {
            EXPECT_GE(row.totalPowerW, sttPlain) << row.cell;
        }
    }
}

} // namespace
} // namespace nvmexp
